// Ablation — continuous kNN along routes (paper §2's CNN query).
//
// Compares two ways to serve CNN: the general-purpose signature index
// (per-node kNN evaluations, merged into validity intervals) versus the
// specialized UNICONS/NN-lists baseline (precomputed lists at condensed
// nodes + the sub-path candidate theorem). Routes are shortest paths
// between random endpoint pairs. Demonstrates the generality thesis: one
// index, competitive CNN, plus path information the NN lists cannot give.
#include "bench/bench_common.h"

#include "baselines/nn_lists.h"
#include "graph/dijkstra.h"
#include "query/continuous_knn.h"
#include "util/random.h"

namespace {

using namespace dsig;

std::vector<std::vector<NodeId>> RandomRoutes(const RoadNetwork& g,
                                              size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::vector<NodeId>> routes;
  while (routes.size() < count) {
    const NodeId a = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    if (a == b) continue;
    const ShortestPathTree tree = RunDijkstra(g, a);
    std::vector<NodeId> path = ReconstructPath(tree, a, b);
    if (path.size() >= 10) routes.push_back(std::move(path));
  }
  return routes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 10000));
  const size_t num_routes = static_cast<size_t>(flags.GetInt("paths", 25));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "cnn");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("paths", static_cast<double>(num_routes));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Continuous kNN along routes (CNN, paper §2) ===\n");
  std::printf("%zu nodes, p = 0.01, %zu shortest-path routes\n\n", nodes,
              num_routes);

  Workbench w = Workbench::Create(nodes, seed, /*buffer_pages=*/256);
  const std::vector<NodeId> objects =
      MakeDataset(*w.graph, {"0.01", 0.01, false}, seed + 1);
  const auto index = BuildSignatureIndex(
      *w.graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
  index->AttachStorage(w.buffer.get(), w.network.get(), w.order);

  Timer nn_build;
  const NnListIndex nn_lists(w.graph.get(), objects, /*list_depth=*/8,
                             /*condensed_degree=*/5);
  std::printf(
      "NN-lists precomputation: %.2fs for %zu condensed nodes (%.1f KB);\n"
      "signature index: %.1f KB (also serves range/aggregate/join/updates).\n\n",
      nn_build.ElapsedSeconds(), nn_lists.num_condensed(),
      static_cast<double>(nn_lists.IndexBytes()) / 1024.0,
      static_cast<double>(index->IndexBytes()) / 1024.0);

  const std::vector<std::vector<NodeId>> routes =
      RandomRoutes(*w.graph, num_routes, seed + 3);
  double avg_len = 0;
  for (const auto& r : routes) avg_len += static_cast<double>(r.size());
  avg_len /= static_cast<double>(routes.size());
  std::printf("average route length: %.1f nodes\n\n", avg_len);

  TablePrinter table({"k", "sig intervals", "sig ms/route",
                      "sig pages/route", "unicons intervals",
                      "unicons ms/route"});
  for (const size_t k : {1u, 3u, 8u}) {
    size_t sig_intervals = 0, nn_intervals = 0;
    const Measurement ms = MeasureItems(
        w.buffer.get(), routes, [&](const std::vector<NodeId>& route) {
          sig_intervals +=
              SignatureContinuousKnn(*index, route, k).intervals.size();
        });
    const Measurement mn = MeasureItems(
        w.buffer.get(), routes, [&](const std::vector<NodeId>& route) {
          nn_intervals += nn_lists.ContinuousKnn(route, k).size();
        });
    const double n = static_cast<double>(routes.size());
    const std::string label = std::to_string(k);
    auto* sig_point = json.Add("cnn_vs_k", "Signature", label, ms);
    if (sig_point != nullptr) {
      sig_point->metrics["intervals_per_route"] =
          static_cast<double>(sig_intervals) / n;
    }
    auto* nn_point = json.Add("cnn_vs_k", "UNICONS", label, mn);
    if (nn_point != nullptr) {
      nn_point->metrics["intervals_per_route"] =
          static_cast<double>(nn_intervals) / n;
    }
    table.AddRow({label, Fmt("%.1f", static_cast<double>(sig_intervals) / n),
                  Fmt("%.2f", ms.mean_ms), Fmt("%.1f", ms.pages_per_item),
                  Fmt("%.1f", static_cast<double>(nn_intervals) / n),
                  Fmt("%.2f", mn.mean_ms)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: both produce the same (membership) intervals; the\n"
      "specialized baseline is faster per route but needs its own\n"
      "precomputation and answers nothing else — the paper's generality\n"
      "argument in one table.\n");
  json.Write();
  return 0;
}
