// Ablation — buffer-pool sensitivity of the paper's page-access metric.
//
// The paper's testbed had 512 MB RAM against a ~141 MB signature index: the
// whole index was effectively cached, so its "page accesses" reflect a warm
// buffer. Our default benches charge a deliberately small LRU pool (a
// disk-resident index), which penalizes the signature's backtracking walks
// at large k far more than the paper's numbers show. This bench sweeps the
// buffer size to show both regimes and quantify the crossover — signature
// kNN page counts collapse toward the paper's once the pool approaches the
// index size.
#include "bench/bench_common.h"

#include "query/knn_query.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 20000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 60));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "buffer");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));
  json.SetParam("k", 20.0);

  std::printf("=== Ablation: buffer size vs page accesses (kNN, k=20) ===\n");
  std::printf("%zu nodes, p = 0.01, %zu type-3 queries per point\n\n", nodes,
              num_queries);

  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  const std::vector<NodeId> order = ComputeCcamOrder(graph, 64);
  const std::vector<NodeId> objects = UniformDataset(graph, 0.01, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(graph, num_queries, seed + 2);
  const auto index = BuildSignatureIndex(
      graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});

  TablePrinter table({"buffer (pages)", "buffer (MB)", "physical pg/query",
                      "logical pg/query", "hit rate"});
  for (const size_t buffer_pages : {64ul, 256ul, 1024ul, 4096ul, 1048576ul}) {
    BufferManager buffer(buffer_pages);
    const NetworkStore network(graph, order, &buffer);
    index->AttachStorage(&buffer, &network, order);
    // Warm-up pass (the paper's queries also ran against a warm testbed),
    // then a steady-state measurement against the warm pool.
    for (const NodeId q : queries) {
      SignatureKnnQuery(*index, q, 20, KnnResultType::kType3);
    }
    const Measurement m = MeasureItems(
        &buffer, queries,
        [&](NodeId q) { SignatureKnnQuery(*index, q, 20, KnnResultType::kType3); },
        /*clear_buffer=*/false);
    const BufferStats stats = m.buffer;
    const double n = static_cast<double>(queries.size());
    const double hit_rate =
        stats.logical_accesses == 0
            ? 0
            : 1.0 - static_cast<double>(stats.physical_accesses) /
                        static_cast<double>(stats.logical_accesses);
    const std::string label = buffer_pages >= 1048576ul
                                  ? "unbounded"
                                  : std::to_string(buffer_pages);
    auto* point = json.Add("pages_vs_buffer", "Signature", label, m);
    if (point != nullptr) {
      point->metrics["hit_rate"] = hit_rate;
      point->metrics["logical_per_query"] =
          static_cast<double>(stats.logical_accesses) / n;
    }
    table.AddRow(
        {label, Fmt("%.1f", ToMb(buffer_pages * kPageSizeBytes)),
         Fmt("%.1f", static_cast<double>(stats.physical_accesses) / n),
         Fmt("%.1f", static_cast<double>(stats.logical_accesses) / n),
         Fmt("%.0f%%", 100 * hit_rate)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: physical accesses collapse once the pool holds the\n"
      "index working set — the regime the paper's 512 MB testbed ran in;\n"
      "logical accesses are buffer-independent.\n");
  json.Write();
  return 0;
}
