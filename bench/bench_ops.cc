// E8 — micro-benchmarks of the signature's basic operations (§3.2), using
// google-benchmark: exact/approximate retrieval, exact/approximate
// comparison, distance sorting, and row decode/encode.
//
// E9 — `--exhibit=label_distance` switches the binary to the hub-label
// exhibit instead: exact node→object distance measured three ways on the
// same random pairs — the label tier (one sorted-array merge), signature
// link-chasing (one row decode per hop), and Dijkstra — with
// speedup_vs_chase attached per series and the usual --json BenchReport
// mirror. Prints a greppable LABEL_DISTANCE summary line for CI bounds.
#include <benchmark/benchmark.h>

#include <functional>

#include "bench/bench_common.h"
#include "core/distance_ops.h"
#include "core/hub_labels.h"
#include "core/signature_builder.h"
#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "query/planner.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

// One shared fixture: building the index dominates setup time, so reuse it
// across benchmarks (function-local static, never destroyed).
struct OpsEnv {
  RoadNetwork graph;
  std::vector<NodeId> objects;
  std::unique_ptr<SignatureIndex> index;

  OpsEnv()
      : graph(MakeRandomPlanar({.num_nodes = 10000, .seed = 42})),
        objects(UniformDataset(graph, 0.01, 43)),
        index(BuildSignatureIndex(graph, objects,
                                  {.t = 10,
                                   .c = 2.718281828,
                                   .keep_forest = false})) {}
};

OpsEnv& Env() {
  static OpsEnv& env = *new OpsEnv();
  return env;
}

void BM_ExactDistance(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(1);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const auto o = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(ExactDistance(*env.index, n, o));
  }
}
BENCHMARK(BM_ExactDistance);

void BM_ApproximateDistance(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(2);
  const Weight eps = static_cast<Weight>(state.range(0));
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const auto o = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(
        ApproximateDistance(*env.index, n, o, {eps, eps}));
  }
}
BENCHMARK(BM_ApproximateDistance)->Arg(10)->Arg(100)->Arg(1000);

void BM_ExactCompare(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(3);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const SignatureRow row = env.index->ReadRow(n);
    const auto a = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    const auto b = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(ExactCompare(*env.index, n, a, b, row));
  }
}
BENCHMARK(BM_ExactCompare);

void BM_ApproximateCompare(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(4);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const SignatureRow row = env.index->ReadRow(n);
    const auto a = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    const auto b = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(ApproximateCompare(*env.index, n, a, b, row));
  }
}
BENCHMARK(BM_ApproximateCompare);

void BM_SortByDistance(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(5);
  const size_t set_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const SignatureRow row = env.index->ReadRow(n);
    std::vector<uint32_t> objs;
    for (size_t i = 0; i < set_size; ++i) {
      objs.push_back(static_cast<uint32_t>(
          rng.NextUint64(env.objects.size())));
    }
    SortByDistance(*env.index, n, row, &objs);
    benchmark::DoNotOptimize(objs);
  }
}
BENCHMARK(BM_SortByDistance)->Arg(5)->Arg(20)->Arg(50);

void BM_DecodeRow(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(6);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    benchmark::DoNotOptimize(env.index->ReadRow(n));
  }
}
BENCHMARK(BM_DecodeRow);

void BM_DecodeSingleEntry(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(7);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const auto o = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(env.index->ReadEntry(n, o));
  }
}
BENCHMARK(BM_DecodeSingleEntry);

// ---- E9: label_distance exhibit -------------------------------------------

// Labels vs link-chase vs Dijkstra on identical random node→object pairs.
// The three answers are asserted equal pair by pair (integer weights make
// them bitwise comparable), so the speedup columns compare routes to the
// same result, not approximations of it.
int RunLabelDistanceExhibit(const Flags& flags) {
  if (!bench::ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 10000));
  const size_t pairs = static_cast<size_t>(flags.GetInt("queries", 500));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.01, seed + 1);
  const auto index = BuildSignatureIndex(
      graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});

  Timer label_timer;
  index->set_hub_labels(HubLabels::Build(graph, {}, &ThreadPool::Global()));
  const double build_s = label_timer.ElapsedSeconds();
  const HubLabelStats ls = index->hub_labels()->stats();
  std::printf(
      "label tier: built in %.2fs — %llu entries, %.1f/node, %.1f KB\n",
      build_s, static_cast<unsigned long long>(ls.entries),
      ls.avg_label_entries, static_cast<double>(ls.bytes) / 1024.0);

  struct Pair {
    NodeId n;
    uint32_t o;
  };
  Random rng(seed + 2);
  std::vector<Pair> workload(pairs);
  for (Pair& p : workload) {
    p.n = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
    p.o = static_cast<uint32_t>(rng.NextUint64(objects.size()));
  }

  // Route sanity before timing: all three machines answer every pair with
  // the same bits.
  for (const Pair& p : workload) {
    const Weight labeled = RoutedObjectDistance(*index, p.n, p.o, nullptr);
    const Weight chased = ExactDistance(*index, p.n, p.o);
    const Weight dijkstra =
        DijkstraDistance(graph, p.n, index->object_node(p.o));
    if (labeled != chased || labeled != dijkstra) {
      std::fprintf(stderr,
                   "route disagreement at n=%u o=%u: %f / %f / %f\n", p.n,
                   p.o, labeled, chased, dijkstra);
      return 1;
    }
  }

  bench::BenchJson json(flags, "ops");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("pairs", static_cast<double>(pairs));
  json.SetParam("label_entries", static_cast<double>(ls.entries));
  json.SetParam("label_bytes", static_cast<double>(ls.bytes));
  json.SetParam("label_avg_entries", ls.avg_label_entries);
  json.SetParam("label_build_s", build_s);

  struct Series {
    const char* name;
    std::function<void(const Pair&)> fn;
    bench::Measurement m;
  };
  std::vector<Series> series;
  series.push_back({"labels",
                    [&](const Pair& p) {
                      benchmark::DoNotOptimize(
                          RoutedObjectDistance(*index, p.n, p.o, nullptr));
                    },
                    {}});
  series.push_back({"link_chase",
                    [&](const Pair& p) {
                      benchmark::DoNotOptimize(
                          ExactDistance(*index, p.n, p.o));
                    },
                    {}});
  series.push_back({"dijkstra",
                    [&](const Pair& p) {
                      benchmark::DoNotOptimize(DijkstraDistance(
                          graph, p.n, index->object_node(p.o)));
                    },
                    {}});
  for (Series& s : series) {
    s.m = bench::MeasureItems(nullptr, workload, s.fn);
  }

  const double chase_ms = series[1].m.mean_ms;
  bench::TablePrinter table(
      {"series", "mean_ms", "p99_ms", "speedup_vs_chase"});
  for (Series& s : series) {
    const double speedup = s.m.mean_ms > 0 ? chase_ms / s.m.mean_ms : 1;
    table.AddRow({s.name, bench::Fmt("%.5f", s.m.mean_ms),
                  bench::Fmt("%.5f", s.m.latency_ms.p99),
                  bench::Fmt("%.1fx", speedup)});
    auto* point = json.Add("label_distance", s.name, "default", s.m);
    if (point != nullptr) point->metrics["speedup_vs_chase"] = speedup;
  }
  table.Print();
  std::printf(
      "LABEL_DISTANCE label_us=%.2f chase_us=%.2f dijkstra_us=%.2f "
      "speedup_vs_chase=%.1f speedup_vs_dijkstra=%.1f\n",
      series[0].m.mean_ms * 1000.0, chase_ms * 1000.0,
      series[2].m.mean_ms * 1000.0, chase_ms / series[0].m.mean_ms,
      series[2].m.mean_ms / series[0].m.mean_ms);
  json.Write();
  return 0;
}

}  // namespace
}  // namespace dsig

int main(int argc, char** argv) {
  const dsig::Flags flags(argc, argv);
  if (flags.GetString("exhibit", "") == "label_distance") {
    return dsig::RunLabelDistanceExhibit(flags);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
