// E8 — micro-benchmarks of the signature's basic operations (§3.2), using
// google-benchmark: exact/approximate retrieval, exact/approximate
// comparison, distance sorting, and row decode/encode.
#include <benchmark/benchmark.h>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

// One shared fixture: building the index dominates setup time, so reuse it
// across benchmarks (function-local static, never destroyed).
struct OpsEnv {
  RoadNetwork graph;
  std::vector<NodeId> objects;
  std::unique_ptr<SignatureIndex> index;

  OpsEnv()
      : graph(MakeRandomPlanar({.num_nodes = 10000, .seed = 42})),
        objects(UniformDataset(graph, 0.01, 43)),
        index(BuildSignatureIndex(graph, objects,
                                  {.t = 10,
                                   .c = 2.718281828,
                                   .keep_forest = false})) {}
};

OpsEnv& Env() {
  static OpsEnv& env = *new OpsEnv();
  return env;
}

void BM_ExactDistance(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(1);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const auto o = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(ExactDistance(*env.index, n, o));
  }
}
BENCHMARK(BM_ExactDistance);

void BM_ApproximateDistance(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(2);
  const Weight eps = static_cast<Weight>(state.range(0));
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const auto o = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(
        ApproximateDistance(*env.index, n, o, {eps, eps}));
  }
}
BENCHMARK(BM_ApproximateDistance)->Arg(10)->Arg(100)->Arg(1000);

void BM_ExactCompare(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(3);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const SignatureRow row = env.index->ReadRow(n);
    const auto a = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    const auto b = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(ExactCompare(*env.index, n, a, b, row));
  }
}
BENCHMARK(BM_ExactCompare);

void BM_ApproximateCompare(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(4);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const SignatureRow row = env.index->ReadRow(n);
    const auto a = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    const auto b = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(ApproximateCompare(*env.index, n, a, b, row));
  }
}
BENCHMARK(BM_ApproximateCompare);

void BM_SortByDistance(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(5);
  const size_t set_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const SignatureRow row = env.index->ReadRow(n);
    std::vector<uint32_t> objs;
    for (size_t i = 0; i < set_size; ++i) {
      objs.push_back(static_cast<uint32_t>(
          rng.NextUint64(env.objects.size())));
    }
    SortByDistance(*env.index, n, row, &objs);
    benchmark::DoNotOptimize(objs);
  }
}
BENCHMARK(BM_SortByDistance)->Arg(5)->Arg(20)->Arg(50);

void BM_DecodeRow(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(6);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    benchmark::DoNotOptimize(env.index->ReadRow(n));
  }
}
BENCHMARK(BM_DecodeRow);

void BM_DecodeSingleEntry(benchmark::State& state) {
  OpsEnv& env = Env();
  Random rng(7);
  for (auto _ : state) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(env.graph.num_nodes()));
    const auto o = static_cast<uint32_t>(rng.NextUint64(env.objects.size()));
    benchmark::DoNotOptimize(env.index->ReadEntry(n, o));
  }
}
BENCHMARK(BM_DecodeSingleEntry);

}  // namespace
}  // namespace dsig

BENCHMARK_MAIN();
