// Ablation — storage schema (paper §3.1): signature merged with the
// adjacency list vs stored separately.
//
// The paper: "since the signature is usually accessed together with the
// adjacency list, it is preferable to merge the signature with the adjacency
// list. However, if the adjacency list alone is accessed more frequently
// [...] a separate storage is preferred." This bench measures both schemas
// under (a) a query-heavy workload (kNN + range, signatures hot) and (b) a
// traversal-heavy workload (plain network expansions that never read
// signatures), reproducing the trade-off.
#include "bench/bench_common.h"

#include <queue>

#include "query/knn_query.h"
#include "query/range_query.h"

namespace {

using namespace dsig;
using namespace dsig::bench;

// A plain network traversal (bounded Dijkstra) charging adjacency pages —
// the "other road network operations" of §3.1.
void TraversalWorkload(const RoadNetwork& graph, const SignatureIndex& index,
                       NodeId source, Weight radius) {
  std::vector<Weight> dist(graph.num_nodes(), kInfiniteWeight);
  std::vector<bool> settled(graph.num_nodes(), false);
  using Entry = std::pair<Weight, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (settled[u] || d > radius) {
      if (d > radius) break;
      continue;
    }
    settled[u] = true;
    index.TouchAdjacency(u);
    for (const AdjacencyEntry& e : graph.adjacency(u)) {
      if (e.removed) continue;
      if (d + e.weight < dist[e.to]) {
        dist[e.to] = d + e.weight;
        heap.push({d + e.weight, e.to});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 10000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "storage_schema");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Ablation: merged vs separate storage schema (§3.1) ===\n");
  std::printf("%zu nodes, p = 0.01, %zu queries per workload\n\n", nodes,
              num_queries);

  Workbench w = Workbench::Create(nodes, seed, /*buffer_pages=*/128);
  const std::vector<NodeId> objects =
      MakeDataset(*w.graph, {"0.01", 0.01, false}, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(*w.graph, num_queries, seed + 2);
  const auto index = BuildSignatureIndex(
      *w.graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});

  TablePrinter table({"workload", "schema", "pages/query"});
  for (const bool merged : {false, true}) {
    if (merged) {
      index->AttachMergedStorage(w.buffer.get(), w.order);
    } else {
      index->AttachStorage(w.buffer.get(), w.network.get(), w.order);
    }
    const char* schema = merged ? "merged" : "separate";

    const Measurement mq =
        MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
          SignatureKnnQuery(*index, q, 10, KnnResultType::kType3);
          SignatureRangeQuery(*index, q, 100);
        });
    json.Add("pages_vs_schema", schema, "query-heavy", mq);
    table.AddRow({"query-heavy", schema, Fmt("%.1f", mq.pages_per_item)});

    const Measurement mt =
        MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
          TraversalWorkload(*w.graph, *index, q, 30);
        });
    json.Add("pages_vs_schema", schema, "traversal-heavy", mt);
    table.AddRow({"traversal-heavy", schema, Fmt("%.1f", mt.pages_per_item)});
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper §3.1): merged wins the query-heavy workload\n"
      "(backtracking reads adjacency + signature from one record); separate\n"
      "wins traversal-heavy (adjacency pages are not diluted by signature\n"
      "bytes).\n");
  json.Write();
  return 0;
}
