// E1 + E2 — Figure 6.4: index construction cost.
//
// Builds the full index, the NVD (VN3) index, and the signature index on the
// paper's five datasets and reports (a) index sizes and (b) construction
// clock time. Expected shape (paper §6.1): signature ~ 1/6-1/7 of full;
// full and signature sizes proportional to density; NVD size *grows* as
// density drops and is sensitive to clustering.
//
// A third exhibit sweeps the parallel build (SignatureBuildOptions::
// num_threads) over thread counts up to --threads (default 4) on the p=0.01
// dataset, recording build_seconds and speedup_vs_1 per point. The parallel
// pipeline is byte-identical to the serial one (see signature_builder.h), so
// the sweep measures pure scheduling overhead/speedup.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 8000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "construction");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Figure 6.4: index construction cost ===\n");
  std::printf("synthetic random-planar network, %zu nodes (paper: 183,231)\n\n",
              nodes);

  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});

  TablePrinter size_table({"dataset p", "|D|", "Full (MB)", "NVD (MB)",
                           "Signature (MB)", "Sig/Full"});
  TablePrinter time_table(
      {"dataset p", "Full (s)", "NVD (s)", "Signature (s)"});

  for (const DatasetSpec& spec : PaperDatasets()) {
    const std::vector<NodeId> objects = MakeDataset(graph, spec, seed + 1);

    std::unique_ptr<FullIndex> full;
    const Measurement mf = MeasureOnce(
        nullptr, [&] { full = FullIndex::Build(graph, objects); });
    const double full_seconds = mf.mean_ms / 1000.0;

    std::unique_ptr<Vn3Index> vn3_ptr;
    const Measurement mn = MeasureOnce(
        nullptr, [&] { vn3_ptr = std::make_unique<Vn3Index>(graph, objects); });
    const Vn3Index& vn3 = *vn3_ptr;
    const double nvd_seconds = mn.mean_ms / 1000.0;

    std::unique_ptr<SignatureIndex> signature;
    const Measurement ms = MeasureOnce(nullptr, [&] {
      signature = BuildSignatureIndex(
          graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
    });
    const double sig_seconds = ms.mean_ms / 1000.0;

    auto add_point = [&](const char* series, const Measurement& m,
                         double seconds, size_t bytes) {
      auto* point = json.Add("construction", series, spec.label, m);
      if (point != nullptr) {
        point->metrics["build_seconds"] = seconds;
        point->metrics["index_mb"] = ToMb(bytes);
      }
    };
    add_point("Full", mf, full_seconds, full->IndexBytes());
    add_point("NVD", mn, nvd_seconds, vn3.IndexBytes());
    add_point("Signature", ms, sig_seconds, signature->IndexBytes());

    size_table.AddRow(
        {spec.label, std::to_string(objects.size()),
         Fmt("%.2f", ToMb(full->IndexBytes())),
         Fmt("%.2f", ToMb(vn3.IndexBytes())),
         Fmt("%.3f", ToMb(signature->IndexBytes())),
         Fmt("%.3f", static_cast<double>(signature->IndexBytes()) /
                         static_cast<double>(full->IndexBytes()))});
    time_table.AddRow({spec.label, Fmt("%.2f", full_seconds),
                       Fmt("%.2f", nvd_seconds), Fmt("%.2f", sig_seconds)});
  }

  std::printf("--- (a) index size ---\n");
  size_table.Print();
  std::printf("\n--- (b) construction time ---\n");
  time_table.Print();
  std::printf(
      "\nExpected shape: Sig/Full ~ 1/6; NVD explodes for sparse datasets\n"
      "and is sensitive to the clustered 0.01(nu) dataset.\n");

  // --- (c) parallel signature build: thread-count sweep ---------------------
  const size_t max_threads =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("threads", 4)));
  json.SetParam("max_threads", static_cast<double>(max_threads));
  const std::vector<NodeId> sweep_objects =
      MakeDataset(graph, {"0.01", 0.01, false}, seed + 1);
  TablePrinter thread_table({"threads", "Signature (s)", "speedup vs 1"});
  double serial_seconds = 0;
  for (size_t t = 1; t <= max_threads; t *= 2) {
    std::unique_ptr<SignatureIndex> built;
    const Measurement m = MeasureOnce(nullptr, [&] {
      built = BuildSignatureIndex(graph, sweep_objects,
                                  {.t = 10,
                                   .c = 2.718281828,
                                   .keep_forest = false,
                                   .num_threads = t});
    });
    const double seconds = m.mean_ms / 1000.0;
    if (t == 1) serial_seconds = seconds;
    const double speedup = seconds > 0 ? serial_seconds / seconds : 0;
    auto* point =
        json.Add("construction_vs_threads", "Signature", std::to_string(t), m);
    if (point != nullptr) {
      point->metrics["build_seconds"] = seconds;
      point->metrics["speedup_vs_1"] = speedup;
      point->metrics["index_mb"] = ToMb(built->IndexBytes());
    }
    thread_table.AddRow({std::to_string(t), Fmt("%.2f", seconds),
                         Fmt("%.2f", speedup)});
  }
  std::printf("\n--- (c) signature build vs threads (p = 0.01) ---\n");
  thread_table.Print();

  json.Write();
  return 0;
}
