// E1 + E2 — Figure 6.4: index construction cost.
//
// Builds the full index, the NVD (VN3) index, and the signature index on the
// paper's five datasets and reports (a) index sizes and (b) construction
// clock time. Expected shape (paper §6.1): signature ~ 1/6-1/7 of full;
// full and signature sizes proportional to density; NVD size *grows* as
// density drops and is sensitive to clustering.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 8000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("=== Figure 6.4: index construction cost ===\n");
  std::printf("synthetic random-planar network, %zu nodes (paper: 183,231)\n\n",
              nodes);

  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});

  TablePrinter size_table({"dataset p", "|D|", "Full (MB)", "NVD (MB)",
                           "Signature (MB)", "Sig/Full"});
  TablePrinter time_table(
      {"dataset p", "Full (s)", "NVD (s)", "Signature (s)"});

  for (const DatasetSpec& spec : PaperDatasets()) {
    const std::vector<NodeId> objects = MakeDataset(graph, spec, seed + 1);

    Timer full_timer;
    const auto full = FullIndex::Build(graph, objects);
    const double full_seconds = full_timer.ElapsedSeconds();

    Timer nvd_timer;
    const Vn3Index vn3(graph, objects);
    const double nvd_seconds = nvd_timer.ElapsedSeconds();

    Timer sig_timer;
    const auto signature = BuildSignatureIndex(
        graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
    const double sig_seconds = sig_timer.ElapsedSeconds();

    size_table.AddRow(
        {spec.label, std::to_string(objects.size()),
         Fmt("%.2f", ToMb(full->IndexBytes())),
         Fmt("%.2f", ToMb(vn3.IndexBytes())),
         Fmt("%.3f", ToMb(signature->IndexBytes())),
         Fmt("%.3f", static_cast<double>(signature->IndexBytes()) /
                         static_cast<double>(full->IndexBytes()))});
    time_table.AddRow({spec.label, Fmt("%.2f", full_seconds),
                       Fmt("%.2f", nvd_seconds), Fmt("%.2f", sig_seconds)});
  }

  std::printf("--- (a) index size ---\n");
  size_table.Print();
  std::printf("\n--- (b) construction time ---\n");
  time_table.Print();
  std::printf(
      "\nExpected shape: Sig/Full ~ 1/6; NVD explodes for sparse datasets\n"
      "and is sensitive to the clustered 0.01(nu) dataset.\n");
  return 0;
}
