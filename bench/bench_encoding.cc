// E3 — Table 1: effectiveness of encoding and compression.
//
// For each dataset: the raw signature size (fixed-length category ids), the
// entropy-coded size and its ratio, and the compressed size and its ratio.
// Paper: encoding ratio ~0.74 across datasets (3 -> ~1.4 bits/id);
// compression flags ~70% of entries; compressed/encoded ~0.75-0.9.
//
// A second exhibit measures the codec kernels themselves: EncodeRow /
// DecodeRow / DecodeEntry throughput (entries/s and MB/s of encoded bytes)
// for each category-code scheme, on synthetic rows whose category
// distribution matches the reverse-zero-padding premise (each category
// outweighs all earlier ones). These rows gate the word-level kernel work:
// every query decodes through this path.
#include "bench/bench_common.h"

#include <bit>

#include "core/cross_node.h"
#include "core/encoding.h"
#include "util/random.h"
#include "util/simd/simd.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;
  using simd::KernelTable;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 8000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "encoding");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Table 1: encoding and compression on signatures ===\n");
  std::printf("%zu-node synthetic network, T=10, c=e\n\n", nodes);

  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});

  const std::vector<NodeId> order = ComputeCcamOrder(graph, 64);
  TablePrinter table({"dataset p", "Raw (MB)", "Encoded (MB)", "Ratio",
                      "Compressed (MB)", "Ratio", "entries flagged",
                      "x-node Ratio"});
  for (const DatasetSpec& spec : PaperDatasets()) {
    const std::vector<NodeId> objects = MakeDataset(graph, spec, seed + 1);
    std::unique_ptr<SignatureIndex> index;
    const Measurement m = MeasureOnce(nullptr, [&] {
      index = BuildSignatureIndex(
          graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
    });
    const SignatureSizeStats& s = index->size_stats();
    // §7 future-work ablation: cross-node deltas on top of the stored form.
    const CrossNodeStats cross =
        AnalyzeCrossNodeCompression(*index, order, /*max_chain=*/8);
    auto* point = json.Add("encoding", "Signature", spec.label, m);
    if (point != nullptr) {
      point->metrics["raw_mb"] = ToMb(s.raw_bits / 8);
      point->metrics["encoded_mb"] = ToMb(s.encoded_bits / 8);
      point->metrics["encoded_ratio"] = s.EncodedRatio();
      point->metrics["compressed_mb"] = ToMb(s.compressed_bits / 8);
      point->metrics["compressed_ratio"] = s.CompressedRatio();
      point->metrics["cross_node_ratio"] = cross.Ratio();
    }
    table.AddRow({spec.label, Fmt("%.3f", ToMb(s.raw_bits / 8)),
                  Fmt("%.3f", ToMb(s.encoded_bits / 8)),
                  Fmt("%.2f", s.EncodedRatio()),
                  Fmt("%.3f", ToMb(s.compressed_bits / 8)),
                  Fmt("%.2f", s.CompressedRatio()),
                  Fmt("%.0f%%", 100.0 * static_cast<double>(
                                            s.compressed_entries) /
                                    static_cast<double>(s.entries)),
                  Fmt("%.2f", cross.Ratio())});
  }
  table.Print();

  // --- Codec kernel throughput -------------------------------------------
  // Synthetic rows, skewed so category k carries weight 2^k (the RZP
  // premise): the realistic regime where most category codes are 1-3 bits.
  constexpr size_t kThroughputRows = 256;
  constexpr size_t kEntriesPerRow = 256;
  constexpr int kCategories = 8;
  constexpr int kLinkBits = 4;
  constexpr int kEncodeReps = 6;
  constexpr int kDecodeReps = 12;
  Random trng(seed + 99);
  std::vector<SignatureRow> plain_rows(kThroughputRows);
  std::vector<uint64_t> frequencies(kCategories, 0);
  for (SignatureRow& row : plain_rows) {
    row.resize(kEntriesPerRow);
    for (SignatureEntry& entry : row) {
      // P(category = k) proportional to 2^k: draw r in [1, 2^m - 1] and take
      // the bit width, so each category outweighs all earlier ones combined.
      const uint64_t r = 1 + trng.NextUint64((uint64_t{1} << kCategories) - 1);
      entry.category = static_cast<uint8_t>(std::bit_width(r) - 1);
      entry.link = static_cast<uint8_t>(trng.NextUint64(1u << kLinkBits));
      entry.compressed = trng.NextBool(0.4);
      if (!entry.compressed) ++frequencies[entry.category];
    }
  }
  const size_t total_entries = kThroughputRows * kEntriesPerRow;

  std::printf("\n=== Codec kernel throughput (%zu rows x %zu entries) ===\n",
              kThroughputRows, kEntriesPerRow);
  TablePrinter tput({"code", "op", "Mentries/s", "MB/s", "ms/pass"});
  uint64_t sink = 0;  // defeats dead-code elimination of the decode loops
  const std::vector<int> encode_passes(kEncodeReps, 0);
  const std::vector<int> decode_passes(kDecodeReps, 0);
  for (const CategoryCodeKind kind : kAllCategoryCodeKinds) {
    const SignatureCodec codec(
        BuildCategoryCode(kind, kCategories, frequencies), kLinkBits,
        /*has_flags=*/true);
    std::vector<EncodedRow> encoded(plain_rows.size());
    const Measurement enc = MeasureItems(nullptr, encode_passes, [&](int) {
      for (size_t r = 0; r < plain_rows.size(); ++r) {
        encoded[r] = codec.EncodeRow(plain_rows[r]);
      }
    });
    uint64_t encoded_bytes = 0;
    for (const EncodedRow& row : encoded) encoded_bytes += row.bytes.size();
    const Measurement dec = MeasureItems(nullptr, decode_passes, [&](int) {
      for (const EncodedRow& row : encoded) {
        sink += codec.DecodeRow(row).back().link;
      }
    });
    const Measurement ent = MeasureItems(nullptr, decode_passes, [&](int) {
      SignatureEntry entry;
      for (const EncodedRow& row : encoded) {
        // Every 8th component: the checkpoint-scan path queries actually hit.
        for (uint32_t i = 0; i < kEntriesPerRow; i += 8) {
          entry = codec.DecodeEntry(row, i, nullptr);
          sink += entry.link;
        }
      }
    });
    const auto add_point = [&](const char* op, const Measurement& m,
                               size_t entries_per_pass) {
      const double seconds_per_pass = m.mean_ms / 1e3;
      const double entries_per_s =
          static_cast<double>(entries_per_pass) / seconds_per_pass;
      const double mb_per_s =
          ToMb(encoded_bytes) / seconds_per_pass;
      tput.AddRow({CategoryCodeKindName(kind), op,
                   Fmt("%.1f", entries_per_s / 1e6), Fmt("%.1f", mb_per_s),
                   Fmt("%.3f", m.mean_ms)});
      auto* point = json.Add("codec_throughput", CategoryCodeKindName(kind),
                             op, m);
      if (point != nullptr) {
        point->metrics["entries_per_s"] = entries_per_s;
        point->metrics["mb_per_s"] = mb_per_s;
        point->metrics["encoded_bytes"] = static_cast<double>(encoded_bytes);
      }
    };
    add_point("encode", enc, total_entries);
    add_point("decode", dec, total_entries);
    add_point("decode_entry", ent, kThroughputRows * (kEntriesPerRow / 8));
  }
  tput.Print();
  std::printf("(sink %llu)\n", static_cast<unsigned long long>(sink));

  // --- SIMD query-kernel throughput --------------------------------------
  // The three kernel families the query layer runs per row (util/simd):
  // category-scan (range/knn/join band extraction), voting/aggregate
  // (distance aggregation), approx-compare/compact (reverse-kNN near/far
  // partition). One lane buffer sized like a dense row, same RZP-skewed
  // category mix as above, measured at every compiled dispatch level.
  constexpr size_t kLanes = 4096;
  constexpr int kKernelPasses = 2000;
  std::vector<uint8_t> cat_lanes(kLanes);
  std::vector<double> dist_lanes(kLanes);
  for (size_t i = 0; i < kLanes; ++i) {
    const uint64_t r = 1 + trng.NextUint64((uint64_t{1} << kCategories) - 1);
    cat_lanes[i] = static_cast<uint8_t>(std::bit_width(r) - 1);
    // ~30% far pairs, matching a mid-density object-distance-table row.
    dist_lanes[i] = trng.NextBool(0.3)
                        ? kInfiniteWeight
                        : static_cast<double>(1 + trng.NextUint64(100000));
  }
  std::vector<uint32_t> extracted(kLanes);
  std::vector<double> compacted(kLanes);
  const std::vector<int> kernel_passes(kKernelPasses, 0);
  // The band the query layer most often extracts: everything below the top
  // category (roughly half the lanes under the RZP skew).
  const int band_hi = kCategories - 1;

  std::printf("\n=== SIMD query-kernel throughput (%zu lanes/pass) ===\n",
              kLanes);
  std::printf("dispatch: %s\n", simd::CpuFeatureString().c_str());
  TablePrinter ksimd({"kernel", "level", "Mlanes/s", "ms/pass", "vs scalar"});
  struct KernelOp {
    const char* name;
    void (*run)(const KernelTable&, const std::vector<uint8_t>&,
                const std::vector<double>&, int, std::vector<uint32_t>*,
                std::vector<double>*, uint64_t*);
  };
  const KernelOp kernel_ops[] = {
      {"category_scan",
       [](const KernelTable& k, const std::vector<uint8_t>& cats,
          const std::vector<double>&, int hi, std::vector<uint32_t>* out,
          std::vector<double>*, uint64_t* s) {
         *s += k.extract_in_range(cats.data(), cats.size(), 0, hi, out->data());
       }},
      {"voting_aggregate",
       [](const KernelTable& k, const std::vector<uint8_t>&,
          const std::vector<double>& dists, int, std::vector<uint32_t>*,
          std::vector<double>*, uint64_t* s) {
         double sum = 0, mn = 0, mx = 0;
         k.aggregate_f64(dists.data(), dists.size(), &sum, &mn, &mx);
         *s += static_cast<uint64_t>(mx);
       }},
      {"approx_compact",
       [](const KernelTable& k, const std::vector<uint8_t>&,
          const std::vector<double>& dists, int, std::vector<uint32_t>*,
          std::vector<double>* out, uint64_t* s) {
         *s += k.compact_finite_f64(dists.data(), dists.size(), out->data());
       }},
  };
  for (const KernelOp& op : kernel_ops) {
    double scalar_rate = 0;
    for (const simd::SimdLevel level : simd::AvailableLevels()) {
      simd::SimdOverride pin(level);
      if (!pin.applied()) continue;
      const KernelTable& k = simd::Kernels();
      const Measurement m = MeasureItems(nullptr, kernel_passes, [&](int) {
        op.run(k, cat_lanes, dist_lanes, band_hi, &extracted, &compacted,
               &sink);
      });
      const double lanes_per_s =
          static_cast<double>(kLanes) / (m.mean_ms / 1e3);
      if (level == simd::SimdLevel::kScalar) scalar_rate = lanes_per_s;
      const double speedup = scalar_rate > 0 ? lanes_per_s / scalar_rate : 1;
      ksimd.AddRow({op.name, simd::SimdLevelName(level),
                    Fmt("%.0f", lanes_per_s / 1e6), Fmt("%.4f", m.mean_ms),
                    Fmt("%.2fx", speedup)});
      auto* point =
          json.Add("kernel_throughput", simd::SimdLevelName(level), op.name, m);
      if (point != nullptr) {
        point->metrics["lanes_per_s"] = lanes_per_s;
        point->metrics["speedup_vs_scalar"] = speedup;
      }
    }
  }
  ksimd.Print();
  std::printf("(sink %llu)\n", static_cast<unsigned long long>(sink));

  std::printf(
      "\nExpected shape: encoding ratio roughly constant (~0.6-0.8);\n"
      "compression ratio improves (smaller) as density p grows.\n"
      "x-node = paper's §7 future-work cross-node compression, relative to\n"
      "the stored (within-row compressed) size; < 1 confirms the hypothesis\n"
      "that nearby nodes' signatures are similar enough to delta-encode.\n");
  json.Write();
  return 0;
}
