// E3 — Table 1: effectiveness of encoding and compression.
//
// For each dataset: the raw signature size (fixed-length category ids), the
// entropy-coded size and its ratio, and the compressed size and its ratio.
// Paper: encoding ratio ~0.74 across datasets (3 -> ~1.4 bits/id);
// compression flags ~70% of entries; compressed/encoded ~0.75-0.9.
#include "bench/bench_common.h"

#include "core/cross_node.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 8000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "encoding");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Table 1: encoding and compression on signatures ===\n");
  std::printf("%zu-node synthetic network, T=10, c=e\n\n", nodes);

  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});

  const std::vector<NodeId> order = ComputeCcamOrder(graph, 64);
  TablePrinter table({"dataset p", "Raw (MB)", "Encoded (MB)", "Ratio",
                      "Compressed (MB)", "Ratio", "entries flagged",
                      "x-node Ratio"});
  for (const DatasetSpec& spec : PaperDatasets()) {
    const std::vector<NodeId> objects = MakeDataset(graph, spec, seed + 1);
    std::unique_ptr<SignatureIndex> index;
    const Measurement m = MeasureOnce(nullptr, [&] {
      index = BuildSignatureIndex(
          graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
    });
    const SignatureSizeStats& s = index->size_stats();
    // §7 future-work ablation: cross-node deltas on top of the stored form.
    const CrossNodeStats cross =
        AnalyzeCrossNodeCompression(*index, order, /*max_chain=*/8);
    auto* point = json.Add("encoding", "Signature", spec.label, m);
    if (point != nullptr) {
      point->metrics["raw_mb"] = ToMb(s.raw_bits / 8);
      point->metrics["encoded_mb"] = ToMb(s.encoded_bits / 8);
      point->metrics["encoded_ratio"] = s.EncodedRatio();
      point->metrics["compressed_mb"] = ToMb(s.compressed_bits / 8);
      point->metrics["compressed_ratio"] = s.CompressedRatio();
      point->metrics["cross_node_ratio"] = cross.Ratio();
    }
    table.AddRow({spec.label, Fmt("%.3f", ToMb(s.raw_bits / 8)),
                  Fmt("%.3f", ToMb(s.encoded_bits / 8)),
                  Fmt("%.2f", s.EncodedRatio()),
                  Fmt("%.3f", ToMb(s.compressed_bits / 8)),
                  Fmt("%.2f", s.CompressedRatio()),
                  Fmt("%.0f%%", 100.0 * static_cast<double>(
                                            s.compressed_entries) /
                                    static_cast<double>(s.entries)),
                  Fmt("%.2f", cross.Ratio())});
  }
  table.Print();
  std::printf(
      "\nExpected shape: encoding ratio roughly constant (~0.6-0.8);\n"
      "compression ratio improves (smaller) as density p grows.\n"
      "x-node = paper's §7 future-work cross-node compression, relative to\n"
      "the stored (within-row compressed) size; < 1 confirms the hypothesis\n"
      "that nearby nodes' signatures are similar enough to delta-encode.\n");
  json.Write();
  return 0;
}
