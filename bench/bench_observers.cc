// Ablation — the observer-voting approximate comparison (paper §3.2.2,
// Fig 3.2).
//
// The design choice under test: when two objects share a category, several
// *observers* (objects in strictly closer categories) vote on which is
// nearer via a 2-D embedding of the perpendicular-bisector heuristic. This
// bench measures, across datasets, how often the vote reaches a decision and
// how often decided votes are right — the quantities that determine how much
// exact refinement the initial sorting avoids.
#include "bench/bench_common.h"

#include "core/distance_ops.h"
#include "graph/dijkstra.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 6000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 40));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "observers");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Ablation: observer-voting comparison accuracy ===\n");
  std::printf("%zu nodes, same-category object pairs at %zu query nodes\n\n",
              nodes, num_queries);

  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  TablePrinter table({"dataset p", "pairs", "decided", "accuracy",
                      "would-save exact cmp"});
  for (const DatasetSpec& spec : PaperDatasets()) {
    const std::vector<NodeId> objects = MakeDataset(graph, spec, seed + 1);
    const auto index = BuildSignatureIndex(
        graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
    // Ground truth for accuracy scoring.
    std::vector<std::vector<Weight>> truth;
    for (const NodeId o : objects) truth.push_back(RunDijkstra(graph, o).dist);

    size_t pairs = 0, decided = 0, correct = 0;
    const std::vector<NodeId> queries =
        RandomQueryNodes(graph, num_queries, seed + 2);
    const Measurement m = MeasureItems(nullptr, queries, [&](NodeId q) {
      const SignatureRow row = index->ReadRow(q);
      for (uint32_t a = 0; a < objects.size() && pairs < 20000; ++a) {
        for (uint32_t b = a + 1; b < objects.size(); ++b) {
          if (row[a].category != row[b].category) continue;
          if (truth[a][q] == truth[b][q]) continue;  // true ties score noisily
          ++pairs;
          const CompareResult r = ApproximateCompare(*index, q, a, b, row);
          if (r == CompareResult::kEqual) continue;
          ++decided;
          if ((r == CompareResult::kLess) == (truth[a][q] < truth[b][q])) {
            ++correct;
          }
        }
      }
    });
    auto* point = json.Add("observer_accuracy", "Signature", spec.label, m);
    if (point != nullptr) {
      point->metrics["pairs"] = static_cast<double>(pairs);
      point->metrics["decided_rate"] =
          pairs == 0 ? 0.0 : static_cast<double>(decided) / pairs;
      point->metrics["accuracy"] =
          decided == 0 ? 0.0 : static_cast<double>(correct) / decided;
    }
    table.AddRow(
        {spec.label, std::to_string(pairs),
         pairs == 0 ? "-" : Fmt("%.0f%%", 100.0 * decided / pairs),
         decided == 0 ? "-" : Fmt("%.0f%%", 100.0 * correct / decided),
         pairs == 0 ? "-" : Fmt("%.0f%%", 100.0 * correct / pairs)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: denser datasets supply more observers, so the\n"
      "decision rate and accuracy rise with p; decided votes are much\n"
      "better than coin flips, which is what lets the initial sort cut\n"
      "exact comparisons (§6.2's third reason).\n");
  json.Write();
  return 0;
}
