// E6 — Figure 6.7: impact of partition parameters c and T on 5NN search.
//
// 25 signature indexes (T in {5,10,15,20,25} x c in {2..6}) on the p = 0.01
// dataset; clock time of 5NN queries. Expected shape: a flat surface (the
// index is robust to mis-set parameters); best c around 3 (~e) for every T;
// the best T drifts down as c grows.
#include "bench/bench_common.h"

#include "core/cost_model.h"
#include "query/knn_query.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 10000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "params");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));
  json.SetParam("k", 5.0);

  std::printf("=== Figure 6.7: impact of c, T on 5NN clock time (ms) ===\n");
  std::printf("%zu nodes, p = 0.01, %zu queries per cell\n\n", nodes,
              num_queries);

  Workbench w = Workbench::Create(nodes, seed, /*buffer_pages=*/256);
  const std::vector<NodeId> objects =
      MakeDataset(*w.graph, {"0.01", 0.01, false}, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(*w.graph, num_queries, seed + 2);

  const std::vector<double> ts = {5, 10, 15, 20, 25};
  const std::vector<double> cs = {2, 3, 4, 5, 6};

  TablePrinter table({"T \\ c", "c=2", "c=3", "c=4", "c=5", "c=6"});
  double best_ms = 1e18, worst_ms = 0;
  double best_t = 0, best_c = 0;
  for (const double t : ts) {
    std::vector<std::string> row = {Fmt("T=%.0f", t)};
    for (const double c : cs) {
      const auto index = BuildSignatureIndex(
          *w.graph, objects, {.t = t, .c = c, .keep_forest = false});
      index->AttachStorage(w.buffer.get(), w.network.get(), w.order);
      const Measurement m = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
        SignatureKnnQuery(*index, q, 5, KnnResultType::kType3);
      });
      const double ms = m.mean_ms;
      json.Add("knn5_vs_params", Fmt("c=%.0f", c), Fmt("T=%.0f", t), m);
      row.push_back(Fmt("%.3f", ms));
      if (ms < best_ms) {
        best_ms = ms;
        best_t = t;
        best_c = c;
      }
      worst_ms = std::max(worst_ms, ms);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nbest: T=%.0f c=%.0f (%.3f ms); worst/best spread = %.2fx\n",
              best_t, best_c, best_ms, worst_ms / best_ms);
  std::printf(
      "Expected shape: small spread (paper: all within 200-400 ms, i.e. "
      "~2x);\nbest c near 3 for every T; best T decreases as c grows.\n");

  // The §5.1 analytic model's prediction for comparison. The spreading bound
  // is the distance regime 5NN queries care about at this density.
  const GridCostModel model{.density = 0.01, .spreading = 200};
  const GridCostModel::Optimum numeric = model.FindOptimum();
  const GridCostModel::Optimum paper = model.PaperOptimum();
  std::printf(
      "\nAnalytic §5.1 model (grid, SP=200): numeric optimum T=%.1f c=%.1f;\n"
      "paper closed form T=%.1f c=e — relative cost %.2fx of numeric "
      "optimum.\n",
      numeric.t, numeric.c, paper.t, paper.cost / numeric.cost);
  json.Write();
  return 0;
}
