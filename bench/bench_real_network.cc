// Real-road-network check (paper §6 footnote 2).
//
// The paper ran every experiment on both the synthetic network and the
// Digital Chart of the World and reports the real network "shows a similar
// trend". DCW is not redistributable; our stand-in is the clustered
// continental generator (DESIGN.md substitutions). This bench repeats an
// abbreviated Fig 6.5 + Fig 6.6 on that network so the similar-trend claim
// is checkable.
#include "bench/bench_common.h"

#include "query/knn_query.h"
#include "query/range_query.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t clusters = static_cast<size_t>(flags.GetInt("clusters", 12));
  const size_t per_cluster =
      static_cast<size_t>(flags.GetInt("cluster_nodes", 1200));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 80));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "real_network");
  json.SetParam("clusters", static_cast<double>(clusters));
  json.SetParam("cluster_nodes", static_cast<double>(per_cluster));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf(
      "=== Real-network trends (paper §6 fn.2; DCW stand-in) ===\n"
      "clustered continental network: %zu cities x %zu junctions\n\n",
      clusters, per_cluster);

  const RoadNetwork graph = MakeClusteredContinental(
      {.num_clusters = clusters, .nodes_per_cluster = per_cluster,
       .seed = seed});
  const std::vector<NodeId> order = ComputeCcamOrder(graph, 64);
  BufferManager buffer(256);
  const NetworkStore network(graph, order, &buffer);
  const std::vector<NodeId> objects = UniformDataset(graph, 0.01, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(graph, num_queries, seed + 2);

  const auto signature = BuildSignatureIndex(
      graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
  signature->AttachStorage(&buffer, &network, order);
  const auto full = FullIndex::Build(graph, objects);
  full->AttachStorage(&buffer, order);
  Vn3Index vn3(graph, objects);
  vn3.AttachStorage(&buffer);

  const auto measure = [&](auto&& run) {
    return MeasureItems(&buffer, queries, run);
  };

  TablePrinter range_table({"R", "Full pg", "NVD pg", "Sig pg", "Full ms",
                            "NVD ms", "Sig ms"});
  for (const Weight r : {10.0, 100.0, 1000.0, 10000.0}) {
    const Measurement mf = measure([&](NodeId q) { full->RangeQuery(q, r); });
    const Measurement mv = measure([&](NodeId q) { vn3.Range(q, r); });
    const Measurement ms = measure([&](NodeId q) {
      SignatureRangeQuery(*signature, q, r);
    });
    const std::string label = Fmt("%.0f", r);
    json.Add("range_vs_radius", "Full", label, mf);
    json.Add("range_vs_radius", "NVD", label, mv);
    json.Add("range_vs_radius", "Signature", label, ms);
    range_table.AddRow({label, Fmt("%.1f", mf.pages_per_item),
                        Fmt("%.1f", mv.pages_per_item),
                        Fmt("%.1f", ms.pages_per_item),
                        Fmt("%.3f", mf.mean_ms), Fmt("%.3f", mv.mean_ms),
                        Fmt("%.3f", ms.mean_ms)});
  }
  std::printf("--- range search ---\n");
  range_table.Print();

  TablePrinter knn_table({"k", "Full pg", "NVD pg", "Sig pg", "Full ms",
                          "NVD ms", "Sig ms"});
  for (const size_t k : {1u, 10u, 50u}) {
    const Measurement mf = measure([&](NodeId q) { full->KnnQuery(q, k); });
    const Measurement mv = measure([&](NodeId q) { vn3.Knn(q, k); });
    const Measurement ms = measure([&](NodeId q) {
      SignatureKnnQuery(*signature, q, k, KnnResultType::kType3);
    });
    const std::string label = std::to_string(k);
    json.Add("knn_vs_k", "Full", label, mf);
    json.Add("knn_vs_k", "NVD", label, mv);
    json.Add("knn_vs_k", "Signature", label, ms);
    knn_table.AddRow({label, Fmt("%.1f", mf.pages_per_item),
                      Fmt("%.1f", mv.pages_per_item),
                      Fmt("%.1f", ms.pages_per_item),
                      Fmt("%.3f", mf.mean_ms), Fmt("%.3f", mv.mean_ms),
                      Fmt("%.3f", ms.mean_ms)});
  }
  std::printf("\n--- kNN search (type 3) ---\n");
  knn_table.Print();
  std::printf(
      "\nExpected shape: same ordering as the synthetic network (Fig 6.5 /\n"
      "6.6): full flat, NVD degrades with R and k, signature in between.\n");
  json.Write();
  return 0;
}
