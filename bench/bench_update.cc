// E7 — update-cost ablation (paper §5.4 claims, no dedicated figure).
//
// Applies random edge-weight changes and edge insertions to a live signature
// index and reports how many spanning-tree entries and signature rows each
// update touches, versus the cost of rebuilding the index from scratch.
// Expected shape: updates touch a small fraction of rows (locality from the
// exponential categories + reverse edge index), orders of magnitude cheaper
// than a rebuild.
//
// A second exhibit measures what durability costs: the same update stream
// applied in-place versus through DurableUpdater's WAL at each sync policy.
// Expected shape: buffered logging (sync=none or checkpoint-interval
// batching) stays within ~2x of in-place; fsync-per-record is dominated by
// the disk flush.
#include "bench/bench_common.h"

#include <filesystem>

#include "core/update.h"
#include "io/durable_index.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 10000));
  const size_t num_updates = static_cast<size_t>(flags.GetInt("updates", 60));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "update");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("updates", static_cast<double>(num_updates));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Update cost: incremental maintenance vs rebuild ===\n");
  std::printf("%zu nodes, %zu random updates per dataset\n\n", nodes,
              num_updates);

  TablePrinter table({"dataset p", "kind", "rows touched/upd", "% of rows",
                      "tree entries/upd", "ms/update", "rebuild (ms)"});

  for (const double density : {0.001, 0.01}) {
    for (const int kind : {0, 1, 2}) {  // 0=decrease, 1=increase, 2=insert
      RoadNetwork graph =
          MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
      const std::vector<NodeId> objects =
          UniformDataset(graph, density, seed + 1);

      Timer rebuild_timer;
      auto index = BuildSignatureIndex(graph, objects,
                                       {.t = 10, .c = 2.718281828});
      const double rebuild_ms = rebuild_timer.ElapsedMillis();
      SignatureUpdater updater(&graph, index.get());

      Random rng(seed + static_cast<uint64_t>(kind));
      size_t rows = 0, tree_entries = 0, applied = 0;
      std::vector<size_t> update_ids(num_updates);
      for (size_t i = 0; i < num_updates; ++i) update_ids[i] = i;
      const Measurement m = MeasureItems(nullptr, update_ids, [&](size_t) {
        UpdateStats stats;
        if (kind == 2) {
          // A realistic new road is local: connect a node to a
          // neighbour-of-neighbour it has no direct edge to yet.
          const NodeId u =
              static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
          NodeId v = kInvalidNode;
          for (const AdjacencyEntry& e1 : graph.adjacency(u)) {
            if (e1.removed) continue;
            for (const AdjacencyEntry& e2 : graph.adjacency(e1.to)) {
              if (e2.removed || e2.to == u) continue;
              if (graph.FindEdge(u, e2.to) == kInvalidEdge) {
                v = e2.to;
                break;
              }
            }
            if (v != kInvalidNode) break;
          }
          if (v == kInvalidNode) return;
          stats = updater.AddEdge(u, v, rng.NextInt(1, 10));
        } else {
          const EdgeId e =
              static_cast<EdgeId>(rng.NextUint64(graph.num_edge_slots()));
          if (graph.edge_removed(e)) return;
          const Weight w = graph.edge_weight(e);
          const Weight nw = kind == 0 ? std::max<Weight>(1, w - 2) : w + 2;
          if (nw == w) return;
          stats = updater.SetEdgeWeight(e, nw);
        }
        rows += stats.rows_rewritten;
        tree_entries += stats.tree_entries_changed;
        ++applied;
      });
      const double ms_per_update =
          m.mean_ms * static_cast<double>(num_updates) /
          static_cast<double>(applied);
      const double rows_per_update =
          static_cast<double>(rows) / static_cast<double>(applied);
      const char* kind_name =
          kind == 0 ? "decrease" : (kind == 1 ? "increase" : "insert");
      auto* point =
          json.Add("update_cost", kind_name, Fmt("%.3f", density), m);
      if (point != nullptr) {
        point->metrics["rows_per_update"] = rows_per_update;
        point->metrics["tree_entries_per_update"] =
            static_cast<double>(tree_entries) / static_cast<double>(applied);
        point->metrics["ms_per_update"] = ms_per_update;
        point->metrics["rebuild_ms"] = rebuild_ms;
      }
      table.AddRow({Fmt("%.3f", density), kind_name,
                    Fmt("%.1f", rows_per_update),
                    Fmt("%.2f%%", 100.0 * rows_per_update /
                                      static_cast<double>(nodes)),
                    Fmt("%.1f", static_cast<double>(tree_entries) /
                                    static_cast<double>(applied)),
                    Fmt("%.2f", ms_per_update), Fmt("%.0f", rebuild_ms)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: a few %% of rows touched per update; ms/update "
      "orders\nof magnitude below the rebuild time.\n");

  // --- WAL overhead: durable vs in-place updates --------------------------
  std::printf("\n=== WAL overhead: the price of crash consistency ===\n");

  // One scripted update stream, replayed identically under every mode.
  std::vector<UpdateRecord> script;
  {
    const RoadNetwork base = MakeRandomPlanar({.num_nodes = nodes,
                                               .seed = seed});
    Random rng(seed + 5);
    for (size_t i = 0; i < num_updates; ++i) {
      if (rng.NextBool(0.3)) {
        const NodeId u = static_cast<NodeId>(rng.NextUint64(base.num_nodes()));
        NodeId v = static_cast<NodeId>(rng.NextUint64(base.num_nodes()));
        if (u == v) v = (v + 1) % static_cast<NodeId>(base.num_nodes());
        script.push_back(UpdateRecord::Add(u, v, rng.NextInt(1, 10)));
      } else {
        const EdgeId e =
            static_cast<EdgeId>(rng.NextUint64(base.num_edge_slots()));
        script.push_back(UpdateRecord::SetWeight(e, rng.NextInt(1, 10)));
      }
    }
  }

  struct WalMode {
    const char* name;
    bool wal;
    DurableOptions::SyncMode sync;
    uint64_t interval;
  };
  const WalMode modes[] = {
      {"in-place", false, DurableOptions::SyncMode::kNone, 0},
      {"wal sync=none", true, DurableOptions::SyncMode::kNone, 0},
      {"wal ckpt-interval=1000", true, DurableOptions::SyncMode::kCheckpoint,
       1000},
      {"wal sync=every-record", true, DurableOptions::SyncMode::kEveryRecord,
       0},
  };

  TablePrinter wal_table({"mode", "ms/update", "overhead x"});
  double in_place_ms = 0;
  for (const WalMode& mode : modes) {
    RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
    const std::vector<NodeId> objects = UniformDataset(graph, 0.01, seed + 1);
    auto index =
        BuildSignatureIndex(graph, objects, {.t = 10, .c = 2.718281828});

    double total_ms = 0;
    if (!mode.wal) {
      SignatureUpdater updater(&graph, index.get());
      Timer timer;
      for (const UpdateRecord& record : script) updater.Apply(record);
      total_ms = timer.ElapsedMillis();
    } else {
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           (std::string("bench_update_wal_") + std::to_string(mode.interval) +
            "_" + std::to_string(static_cast<int>(mode.sync))))
              .string();
      std::filesystem::remove_all(dir);
      std::filesystem::create_directories(dir);
      DurableOptions options;
      options.sync = mode.sync;
      options.checkpoint_interval = mode.interval;
      auto live = DurableUpdater::Initialize(dir, &graph, index.get(),
                                             options);
      if (!live.ok()) {
        std::fprintf(stderr, "cannot initialize %s: %s\n", dir.c_str(),
                     live.status().ToString().c_str());
        return 1;
      }
      Timer timer;
      for (const UpdateRecord& record : script) (*live)->Apply(record);
      total_ms = timer.ElapsedMillis();
      (*live)->Close();
      std::filesystem::remove_all(dir);
    }

    const double ms_per_update =
        total_ms / static_cast<double>(script.size());
    if (!mode.wal) in_place_ms = ms_per_update;
    const double overhead = in_place_ms > 0 ? ms_per_update / in_place_ms : 1;
    wal_table.AddRow({mode.name, Fmt("%.3f", ms_per_update),
                      Fmt("%.2f", overhead)});
    Measurement m;
    m.mean_ms = ms_per_update;
    m.items = script.size();
    auto* point = json.Add("wal_overhead", mode.name, Fmt("%zu", nodes), m);
    if (point != nullptr) {
      point->metrics["ms_per_update"] = ms_per_update;
      point->metrics["overhead_x"] = overhead;
    }
  }
  wal_table.Print();
  std::printf(
      "\nExpected shape: buffered WAL modes within ~2x of in-place; "
      "fsync-per-record\npays the disk flush on every update.\n");
  json.Write();
  return 0;
}
