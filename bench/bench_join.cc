// E9 — generalization ablation (paper §4.3): ε-join and aggregation.
//
// Two datasets (e.g. restaurants and hotels) joined at random nodes for a
// sweep of ε; plus distance aggregates over a radius sweep. Reports result
// sizes, how much the category bounds pruned, and clock time — evidence for
// the paper's claim that the signature generalizes beyond range/kNN.
#include "bench/bench_common.h"

#include "query/aggregate_query.h"
#include "query/closest_pair.h"
#include "query/join_query.h"
#include "query/reverse_knn.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 10000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 20));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "join");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Generalized queries: epsilon-join and aggregation ===\n");
  std::printf("%zu nodes, two p = 0.01 datasets, %zu query nodes\n\n", nodes,
              num_queries);

  Workbench w = Workbench::Create(nodes, seed, /*buffer_pages=*/256);
  const std::vector<NodeId> left_objects =
      UniformDataset(*w.graph, 0.01, seed + 1);
  const std::vector<NodeId> right_objects =
      UniformDataset(*w.graph, 0.01, seed + 2);
  const std::vector<NodeId> queries =
      RandomQueryNodes(*w.graph, num_queries, seed + 3);

  const auto left = BuildSignatureIndex(
      *w.graph, left_objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
  left->AttachStorage(w.buffer.get(), w.network.get(), w.order);
  const auto right = BuildSignatureIndex(
      *w.graph, right_objects,
      {.t = 10, .c = 2.718281828, .keep_forest = false});
  right->AttachStorage(w.buffer.get(), w.network.get(), w.order);

  const size_t total_pairs = left_objects.size() * right_objects.size();

  TablePrinter join_table({"eps", "pairs", "pruned by cats", "exact evals",
                           "ms/join"});
  for (const Weight eps : {10.0, 50.0, 200.0}) {
    size_t pairs = 0, pruned = 0, exact = 0;
    const Measurement m =
        MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
          const JoinResult r = SignatureEpsilonJoin(*left, *right, q, eps);
          pairs += r.pairs.size();
          pruned += r.pruned_by_categories;
          exact += r.exact_evaluations;
        });
    const double n = static_cast<double>(queries.size());
    auto* point = json.Add("join_vs_eps", "Signature", Fmt("%.0f", eps), m);
    if (point != nullptr) {
      point->metrics["pairs_per_query"] = static_cast<double>(pairs) / n;
      point->metrics["pruned_rate"] =
          static_cast<double>(pruned) / (n * static_cast<double>(total_pairs));
      point->metrics["exact_evals_per_query"] =
          static_cast<double>(exact) / n;
    }
    join_table.AddRow(
        {Fmt("%.0f", eps), Fmt("%.1f", static_cast<double>(pairs) / n),
         Fmt("%.0f%%", 100.0 * static_cast<double>(pruned) /
                           (n * static_cast<double>(total_pairs))),
         Fmt("%.1f", static_cast<double>(exact) / n),
         Fmt("%.2f", m.mean_ms)});
  }
  std::printf("--- epsilon-join (|A| = %zu, |B| = %zu, %zu pairs) ---\n",
              left_objects.size(), right_objects.size(), total_pairs);
  join_table.Print();

  TablePrinter agg_table(
      {"radius", "count", "avg dist", "ms/count", "ms/aggregate"});
  for (const Weight radius : {50.0, 200.0, 1000.0}) {
    size_t count = 0;
    Weight sum = 0;
    const Measurement mc =
        MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
          count += SignatureCountQuery(*left, q, radius).count;
        });
    const Measurement ma =
        MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
          sum += SignatureDistanceAggregateQuery(*left, q, radius).sum;
        });
    const double n = static_cast<double>(queries.size());
    const std::string label = Fmt("%.0f", radius);
    json.Add("aggregate_vs_radius", "Count", label, mc);
    json.Add("aggregate_vs_radius", "Aggregate", label, ma);
    agg_table.AddRow(
        {label, Fmt("%.1f", static_cast<double>(count) / n),
         count == 0 ? "-" : Fmt("%.1f", sum / static_cast<double>(count)),
         Fmt("%.3f", mc.mean_ms), Fmt("%.3f", ma.mean_ms)});
  }
  std::printf("\n--- aggregation over radius ---\n");
  agg_table.Print();

  // Further §4.3 generalizations served by the same index: closest pair
  // between the datasets and reverse kNN.
  Timer cp_timer;
  const ClosestPairResult cp = SignatureClosestPair(*left, *right);
  std::printf(
      "\n--- closest pair ---\nd(A#%u, B#%u) = %.0f; refined %zu of %zu "
      "pairs; %.2f ms\n",
      cp.left, cp.right, cp.distance, cp.refined, total_pairs,
      cp_timer.ElapsedMillis());

  TablePrinter rknn_table({"k", "results/query", "refined/query", "ms/query"});
  for (const size_t k : {1u, 4u, 8u}) {
    size_t results = 0, refined = 0;
    const Measurement m =
        MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
          const ReverseKnnResult r = SignatureReverseKnn(*left, q, k);
          results += r.objects.size();
          refined += r.refined;
        });
    const double n = static_cast<double>(queries.size());
    auto* point = json.Add("rknn_vs_k", "Signature", std::to_string(k), m);
    if (point != nullptr) {
      point->metrics["results_per_query"] =
          static_cast<double>(results) / n;
      point->metrics["refined_per_query"] =
          static_cast<double>(refined) / n;
    }
    rknn_table.AddRow({std::to_string(k),
                       Fmt("%.1f", static_cast<double>(results) / n),
                       Fmt("%.1f", static_cast<double>(refined) / n),
                       Fmt("%.2f", m.mean_ms)});
  }
  std::printf("\n--- reverse kNN ---\n");
  rknn_table.Print();
  std::printf(
      "\nExpected shape: category bounds prune the vast majority of join\n"
      "pairs; COUNT costs far less than SUM/MIN/MAX (no exact retrievals).\n");
  json.Write();
  return 0;
}
