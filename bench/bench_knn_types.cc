// Ablation — the three kNN result types of §4.2.
//
// The paper differentiates kNN queries by how much distance information they
// return (type 3: membership only; type 2: ordered; type 1: exact
// distances) precisely because cheaper types skip sorting and retrieval
// work. This bench quantifies that staircase: pages and time per query for
// each type across k.
#include "bench/bench_common.h"

#include "obs/op_counters.h"
#include "query/knn_query.h"

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 10000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "knn_types");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Ablation: kNN result types (paper §4.2) ===\n");
  std::printf("%zu nodes, p = 0.01, %zu queries/point\n\n", nodes,
              num_queries);

  Workbench w = Workbench::Create(nodes, seed, /*buffer_pages=*/256);
  const std::vector<NodeId> objects =
      MakeDataset(*w.graph, {"0.01", 0.01, false}, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(*w.graph, num_queries, seed + 2);
  const auto index = BuildSignatureIndex(
      *w.graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
  index->AttachStorage(w.buffer.get(), w.network.get(), w.order);

  TablePrinter table({"k", "type3 pages", "type3 ms", "type2 pages",
                      "type2 ms", "type1 pages", "type1 ms"});
  TablePrinter ops({"k", "type", "steps/query", "exact cmp/query",
                    "approx cmp/query", "resolves/query"});
  for (const size_t k : {1u, 5u, 10u, 20u, 50u}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const KnnResultType type :
         {KnnResultType::kType3, KnnResultType::kType2,
          KnnResultType::kType1}) {
      const Measurement m = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
        SignatureKnnQuery(*index, q, k, type);
      });
      const double n = static_cast<double>(queries.size());
      row.push_back(Fmt("%.1f", m.pages_per_item));
      row.push_back(Fmt("%.3f", m.mean_ms));
      const OpCounters& c = m.ops;
      const char* type_name = type == KnnResultType::kType3   ? "3"
                              : type == KnnResultType::kType2 ? "2"
                                                              : "1";
      json.Add("knn_types", std::string("type") + type_name,
               std::to_string(k), m);
      ops.AddRow({std::to_string(k), type_name,
                  Fmt("%.1f", static_cast<double>(c.backtrack_steps) / n),
                  Fmt("%.1f", static_cast<double>(c.exact_compares) / n),
                  Fmt("%.1f", static_cast<double>(c.approx_compares) / n),
                  Fmt("%.1f", static_cast<double>(c.resolves) / n)});
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n--- basic-operation decomposition (paper §3.2 metrics) ---\n");
  ops.Print();
  std::printf(
      "\nExpected shape: type3 <= type2 <= type1 in both metrics; the gap\n"
      "widens with k (type 2 sorts every contributing bucket, type 1 walks\n"
      "every result to its exact distance).\n");
  json.Write();
  return 0;
}
