// Regression guard — the cost of the tracing instrumentation itself.
//
// The serve path wraps EVERY request in a light collect trace (totals +
// op/buffer deltas, no span rooting) and upgrades a sampled subset to a
// full span-rooting trace, because Span objects sit on per-backtrack-step
// and per-entry-decode inner loops. The split is only sound if:
//   1. a disabled Span stays a thread-local load and a branch
//      (nanoseconds, not a function call into the tracer), and
//   2. the always-on light wrapper does not move query latency measurably.
// This bench measures both — plus the full-trace cost that justifies the
// sampling design — and prints a TRACE_OVERHEAD line that CI asserts
// against hard bounds (ns_per_span_disabled < 30, light overhead < 2%), so
// an accidental virtual call, mutex, or clock read on the fast path fails
// the build instead of quietly taxing every query.
#include "bench/bench_common.h"

#include <algorithm>

#include "query/knn_query.h"

namespace {

// Defeats hoisting of the span's thread-local root load out of the loop:
// the compiler must assume memory (and so the TLS slot) changed.
inline void ClobberMemory() { asm volatile("" ::: "memory"); }

// Nanoseconds per Span construct+destruct at the current tracing state.
double MeasureSpanNs(size_t iterations) {
  dsig::Timer timer;
  for (size_t i = 0; i < iterations; ++i) {
    dsig::obs::Span span(dsig::obs::Phase::kRowDecode);
    ClobberMemory();
  }
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(iterations);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsig;
  using namespace dsig::bench;

  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 4000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 400));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t span_iters =
      static_cast<size_t>(flags.GetInt("span-iters", 2000000));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 3));

  BenchJson json(flags, "trace_overhead");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Observability tax: spans and the collect-root wrapper ===\n");

  // --- 1. Span cost, disabled vs under an active collect root. ---
  obs::SetTracingEnabled(false);
  MeasureSpanNs(span_iters / 10);  // warm up TLS + branch predictor
  const double disabled_ns = MeasureSpanNs(span_iters);

  double active_ns;
  {
    obs::QueryTrace root(nullptr, obs::QueryTrace::Mode::kCollectRoot);
    MeasureSpanNs(span_iters / 10);
    active_ns = MeasureSpanNs(span_iters);
    root.Finish();
  }
  std::printf("span: %.2f ns disabled, %.1f ns under a collect root\n",
              disabled_ns, active_ns);

  // --- 2. kNN latency with and without the per-request collect wrapper. ---
  // Interleaved min-of-N rounds: both variants see the same cache and
  // frequency conditions, and the min discards scheduler noise.
  const RoadNetwork graph =
      MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.01, seed);
  const auto index = BuildSignatureIndex(graph, objects, {.t = 10, .c = 2});
  const std::vector<NodeId> queries =
      RandomQueryNodes(graph, num_queries, seed + 1);

  auto run_plain = [&] {
    Timer timer;
    for (const NodeId q : queries) {
      SignatureKnnQuery(*index, q, 10, KnnResultType::kType1);
    }
    return timer.ElapsedMillis();
  };
  auto run_wrapped = [&](obs::QueryTrace::Mode mode) {
    Timer timer;
    for (const NodeId q : queries) {
      obs::QueryTrace trace(nullptr, mode);
      SignatureKnnQuery(*index, q, 10, KnnResultType::kType1);
      obs::TraceSummary summary = trace.Finish();
      (void)summary;
    }
    return timer.ElapsedMillis();
  };

  run_plain();  // one throwaway round to warm the index
  double best_plain = 1e300, best_light = 1e300, best_full = 1e300;
  for (int r = 0; r < rounds; ++r) {
    best_plain = std::min(best_plain, run_plain());
    best_light = std::min(
        best_light, run_wrapped(obs::QueryTrace::Mode::kCollectLight));
    best_full =
        std::min(best_full, run_wrapped(obs::QueryTrace::Mode::kCollectRoot));
  }
  const double light_percent = (best_light - best_plain) / best_plain * 100.0;
  const double full_percent = (best_full - best_plain) / best_plain * 100.0;

  const double n = static_cast<double>(num_queries);
  std::printf("knn k=10: %.3f ms/query plain, %.3f ms/query light (%+.3f%%), "
              "%.3f ms/query full trace (%+.1f%%)\n",
              best_plain / n, best_light / n, light_percent, best_full / n,
              full_percent);

  // The line CI greps and asserts bounds against. The full-trace number is
  // informational: it is paid only on 1-in-trace_sample_period requests.
  std::printf("TRACE_OVERHEAD ns_per_span_disabled=%.2f "
              "ns_per_span_active=%.1f knn_light_overhead_percent=%.3f "
              "knn_full_overhead_percent=%.1f\n",
              disabled_ns, active_ns, light_percent, full_percent);

  if (json.enabled()) {
    json.AddScalar("span_overhead", "Span", "disabled", "ns_per_span",
                   disabled_ns);
    json.AddScalar("span_overhead", "Span", "active", "ns_per_span",
                   active_ns);
    auto* point = json.AddScalar("request_overhead", "Signature", "knn_k10",
                                 "light_overhead_percent", light_percent);
    if (point != nullptr) {
      point->metrics["full_overhead_percent"] = full_percent;
      point->metrics["plain_ms_per_query"] = best_plain / n;
      point->metrics["light_ms_per_query"] = best_light / n;
      point->metrics["full_ms_per_query"] = best_full / n;
    }
  }
  json.Write();
  return 0;
}
