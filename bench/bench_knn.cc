// E5 — Figure 6.6: kNN query performance vs k.
//
// Type-3 kNN with k in {1, 5, 10, 20, 50} on p = 0.01; page accesses and
// clock time per query for full index, NVD (VN3), signature, and INE.
//
// Expected shape: full ~independent of k; NVD wins k=1 but degrades sharply
// (x50+ pages k=1 -> 50 in the paper); signature grows moderately (~x8).
//
// Two hot-path exhibits ride along:
//  * knn_vs_threads — the same signature workload through the parallel batch
//    driver (query/batch.h) with a private ThreadPool per point, up to
//    --threads workers (default 4); records batch wall time and queries/s.
//  * knn_rowcache — a repeated-querier workload (a few queriers re-asking
//    from the same nodes) with the decoded-row cache disabled vs enabled,
//    recording the per-query time and the cache hit rate per point.
#include "bench/bench_common.h"

#include <cmath>
#include <limits>

#include "core/row_cache.h"
#include "query/batch.h"
#include "query/knn_query.h"
#include "util/simd/simd.h"
#include "util/thread_pool.h"

namespace {

using namespace dsig;
using namespace dsig::bench;

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 20000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const size_t buffer_pages =
      static_cast<size_t>(flags.GetInt("buffer", 256));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "knn");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("buffer_pages", static_cast<double>(buffer_pages));
  json.SetParam("seed", static_cast<double>(seed));
  json.SetParam("density", "0.01");

  std::printf("=== Figure 6.6: kNN search, k = 1..50, p = 0.01 ===\n");
  std::printf("%zu nodes (paper: 183,231), %zu type-3 queries/point\n\n",
              nodes, num_queries);

  Workbench w = Workbench::Create(nodes, seed, buffer_pages);
  const std::vector<NodeId> objects =
      MakeDataset(*w.graph, {"0.01", 0.01, false}, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(*w.graph, num_queries, seed + 2);

  const auto signature = BuildSignatureIndex(
      *w.graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
  signature->AttachStorage(w.buffer.get(), w.network.get(), w.order);
  const auto full = FullIndex::Build(*w.graph, objects);
  full->AttachStorage(w.buffer.get(), w.order);
  Vn3Index vn3(*w.graph, objects);
  vn3.AttachStorage(w.buffer.get());
  const IneSearch ine(w.graph.get(), objects, w.network.get());

  TablePrinter pages({"k", "Full", "NVD", "Signature", "INE"});
  TablePrinter times(
      {"k", "Full (ms)", "NVD (ms)", "Signature (ms)", "INE (ms)"});
  for (const size_t k : {1u, 5u, 10u, 20u, 50u}) {
    const std::string x = std::to_string(k);
    const Measurement mf = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      full->KnnQuery(q, k);
    });
    const Measurement mv = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      vn3.Knn(q, k);
    });
    const Measurement ms = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      SignatureKnnQuery(*signature, q, k, KnnResultType::kType3);
    });
    const Measurement mi = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      ine.Knn(q, k);
    });
    json.Add("knn_vs_k", "Full", x, mf);
    json.Add("knn_vs_k", "NVD", x, mv);
    json.Add("knn_vs_k", "Signature", x, ms);
    json.Add("knn_vs_k", "INE", x, mi);
    pages.AddRow({x, Fmt("%.1f", mf.pages_per_item),
                  Fmt("%.1f", mv.pages_per_item), Fmt("%.1f", ms.pages_per_item),
                  Fmt("%.1f", mi.pages_per_item)});
    times.AddRow({x, Fmt("%.3f", mf.mean_ms), Fmt("%.3f", mv.mean_ms),
                  Fmt("%.3f", ms.mean_ms), Fmt("%.3f", mi.mean_ms)});
  }
  std::printf("--- (a) page accesses/query ---\n");
  pages.Print();
  std::printf("\n--- (b) clock time/query ---\n");
  times.Print();
  std::printf(
      "\nExpected shape: Full flat; NVD best at k=1 then degrades sharply;\n"
      "Signature grows ~8x from k=1 to k=50 (paper) vs NVD's 50-170x.\n");

  // --- (c) parallel batch driver: thread-count sweep ------------------------
  const size_t max_threads =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("threads", 4)));
  json.SetParam("max_threads", static_cast<double>(max_threads));
  const size_t batch_k = 10;
  TablePrinter thread_table({"threads", "batch (ms)", "queries/s", "speedup"});
  double serial_batch_ms = 0;
  for (size_t t = 1; t <= max_threads; t *= 2) {
    ThreadPool pool(t);
    const Measurement m = MeasureOnce(w.buffer.get(), [&] {
      BatchKnnQuery(*signature, queries, batch_k, KnnResultType::kType3,
                    {.pool = &pool});
    });
    const double batch_ms = m.mean_ms;  // one item == the whole batch
    if (t == 1) serial_batch_ms = batch_ms;
    const double speedup = batch_ms > 0 ? serial_batch_ms / batch_ms : 0;
    const double qps =
        batch_ms > 0 ? 1000.0 * static_cast<double>(queries.size()) / batch_ms
                     : 0;
    auto* point =
        json.Add("knn_vs_threads", "Signature", std::to_string(t), m);
    if (point != nullptr) {
      point->metrics["batch_ms"] = batch_ms;
      point->metrics["queries_per_second"] = qps;
      point->metrics["speedup_vs_1"] = speedup;
    }
    thread_table.AddRow({std::to_string(t), Fmt("%.2f", batch_ms),
                         Fmt("%.0f", qps), Fmt("%.2f", speedup)});
  }
  std::printf("\n--- (c) batch kNN vs threads (k = %zu) ---\n", batch_k);
  thread_table.Print();

  // --- (d) decoded-row cache on a repeated-querier workload -----------------
  // A handful of queriers each re-ask kNN from their own node several times
  // (the paper's motivating navigation clients). With the cache disabled
  // every repeat re-decodes the same compressed rows; with it enabled the
  // repeats hit resolved rows.
  std::vector<NodeId> repeated;
  {
    const size_t queriers = std::min<size_t>(8, queries.size());
    const size_t repeats = 16;
    for (size_t r = 0; r < repeats; ++r) {
      for (size_t i = 0; i < queriers; ++i) repeated.push_back(queries[i]);
    }
  }
  auto* reg = &obs::MetricsRegistry::Global();
  TablePrinter cache_table({"row cache", "ms/query", "hit rate"});
  for (const bool enabled : {false, true}) {
    signature->ConfigureRowCache(
        {.byte_budget = enabled ? RowCache::Options().byte_budget : 0});
    const uint64_t hits0 = reg->GetCounter("rowcache.hits")->Value();
    const uint64_t misses0 = reg->GetCounter("rowcache.misses")->Value();
    const Measurement m =
        MeasureItems(w.buffer.get(), repeated, [&](NodeId q) {
          SignatureKnnQuery(*signature, q, batch_k, KnnResultType::kType3);
        });
    const double hits =
        static_cast<double>(reg->GetCounter("rowcache.hits")->Value() - hits0);
    const double misses = static_cast<double>(
        reg->GetCounter("rowcache.misses")->Value() - misses0);
    const double hit_rate =
        hits + misses > 0 ? hits / (hits + misses) : 0;
    const char* label = enabled ? "enabled" : "disabled";
    auto* point = json.Add("knn_rowcache", label, std::to_string(batch_k), m);
    if (point != nullptr) {
      point->metrics["hit_rate"] = hit_rate;
      point->metrics["cache_bytes"] =
          static_cast<double>(signature->row_cache().bytes());
    }
    cache_table.AddRow(
        {label, Fmt("%.3f", m.mean_ms), Fmt("%.3f", hit_rate)});
  }
  std::printf("\n--- (d) repeated queriers, row cache off/on (k = %zu) ---\n",
              batch_k);
  cache_table.Print();
  PublishRowCacheMetrics();

  // --- (e) SIMD dispatch A/B: same workload at every compiled level --------
  // Warm buffer (so decode/compute, not page I/O, is what differs), row
  // cache on, levels interleaved in-process (MeasureDispatchLevels). The
  // kernel share of a query grows with object density — p = 0.01 is the
  // figure's dataset, p = 0.05 the paper's densest — so both are measured.
  {
    Workbench ab =
        Workbench::Create(nodes, seed, std::max<size_t>(buffer_pages, 4096));
    const std::vector<NodeId> ab_queries =
        RandomQueryNodes(*ab.graph, num_queries, seed + 2);
    TablePrinter dispatch_table({"workload", "level", "ms/query",
                                 "vs scalar"});
    for (const double density : {0.01, 0.05}) {
      const std::vector<NodeId> ab_objects =
          UniformDataset(*ab.graph, density, seed + 1);
      const auto ab_index = BuildSignatureIndex(
          *ab.graph, ab_objects,
          {.t = 10, .c = 2.718281828, .keep_forest = false});
      ab_index->AttachStorage(ab.buffer.get(), ab.network.get(), ab.order);
      for (const size_t k : {10u, 50u}) {
        const std::string label =
            "k=" + std::to_string(k) + " p=" + Fmt("%.2f", density);
        MeasureDispatchLevels(
            &json, &dispatch_table, "knn_dispatch", label, ab.buffer.get(),
            ab_queries, [&](NodeId q) {
              SignatureKnnQuery(*ab_index, q, k, KnnResultType::kType3);
            });
      }
    }
    std::printf("\n--- (e) SIMD dispatch A/B, warm buffer (min of "
                "interleaved rounds) ---\n");
    std::printf("dispatch: %s\n", simd::CpuFeatureString().c_str());
    dispatch_table.Print();
  }

  json.Write();
  return 0;
}
