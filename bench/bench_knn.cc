// E5 — Figure 6.6: kNN query performance vs k.
//
// Type-3 kNN with k in {1, 5, 10, 20, 50} on p = 0.01; page accesses and
// clock time per query for full index, NVD (VN3), signature, and INE.
//
// Expected shape: full ~independent of k; NVD wins k=1 but degrades sharply
// (x50+ pages k=1 -> 50 in the paper); signature grows moderately (~x8).
#include "bench/bench_common.h"

#include "query/knn_query.h"

namespace {

using namespace dsig;
using namespace dsig::bench;

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 20000));
  const size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const size_t buffer_pages =
      static_cast<size_t>(flags.GetInt("buffer", 256));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "knn");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(num_queries));
  json.SetParam("buffer_pages", static_cast<double>(buffer_pages));
  json.SetParam("seed", static_cast<double>(seed));
  json.SetParam("density", "0.01");

  std::printf("=== Figure 6.6: kNN search, k = 1..50, p = 0.01 ===\n");
  std::printf("%zu nodes (paper: 183,231), %zu type-3 queries/point\n\n",
              nodes, num_queries);

  Workbench w = Workbench::Create(nodes, seed, buffer_pages);
  const std::vector<NodeId> objects =
      MakeDataset(*w.graph, {"0.01", 0.01, false}, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(*w.graph, num_queries, seed + 2);

  const auto signature = BuildSignatureIndex(
      *w.graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
  signature->AttachStorage(w.buffer.get(), w.network.get(), w.order);
  const auto full = FullIndex::Build(*w.graph, objects);
  full->AttachStorage(w.buffer.get(), w.order);
  Vn3Index vn3(*w.graph, objects);
  vn3.AttachStorage(w.buffer.get());
  const IneSearch ine(w.graph.get(), objects, w.network.get());

  TablePrinter pages({"k", "Full", "NVD", "Signature", "INE"});
  TablePrinter times(
      {"k", "Full (ms)", "NVD (ms)", "Signature (ms)", "INE (ms)"});
  for (const size_t k : {1u, 5u, 10u, 20u, 50u}) {
    const std::string x = std::to_string(k);
    const Measurement mf = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      full->KnnQuery(q, k);
    });
    const Measurement mv = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      vn3.Knn(q, k);
    });
    const Measurement ms = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      SignatureKnnQuery(*signature, q, k, KnnResultType::kType3);
    });
    const Measurement mi = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      ine.Knn(q, k);
    });
    json.Add("knn_vs_k", "Full", x, mf);
    json.Add("knn_vs_k", "NVD", x, mv);
    json.Add("knn_vs_k", "Signature", x, ms);
    json.Add("knn_vs_k", "INE", x, mi);
    pages.AddRow({x, Fmt("%.1f", mf.pages_per_item),
                  Fmt("%.1f", mv.pages_per_item), Fmt("%.1f", ms.pages_per_item),
                  Fmt("%.1f", mi.pages_per_item)});
    times.AddRow({x, Fmt("%.3f", mf.mean_ms), Fmt("%.3f", mv.mean_ms),
                  Fmt("%.3f", ms.mean_ms), Fmt("%.3f", mi.mean_ms)});
  }
  std::printf("--- (a) page accesses/query ---\n");
  pages.Print();
  std::printf("\n--- (b) clock time/query ---\n");
  times.Print();
  std::printf(
      "\nExpected shape: Full flat; NVD best at k=1 then degrades sharply;\n"
      "Signature grows ~8x from k=1 to k=50 (paper) vs NVD's 50-170x.\n");
  json.Write();
  return 0;
}
