// E4 — Figure 6.5: range query performance vs radius R.
//
// R in {10, 100, 1000, 10000}; datasets p = 0.01 and 0.01(nu); metrics are
// physical page accesses (LRU buffer) and clock time per query, for the full
// index, NVD (VN3), the signature index, and INE (the index-free expansion,
// included for reference).
//
// Expected shape: full index flat and lowest (except tiny R); NVD jumps once
// the query's NVP stops covering the radius (R >= 1000), worse on the
// clustered dataset; signature grows sublinearly in R.
#include "bench/bench_common.h"

#include "query/range_query.h"

namespace {

using namespace dsig;
using namespace dsig::bench;

void RunDataset(const DatasetSpec& spec, size_t nodes, size_t num_queries,
                size_t buffer_pages, uint64_t seed, BenchJson* json) {
  Workbench w = Workbench::Create(nodes, seed, buffer_pages);
  const std::vector<NodeId> objects = MakeDataset(*w.graph, spec, seed + 1);
  const std::vector<NodeId> queries =
      RandomQueryNodes(*w.graph, num_queries, seed + 2);

  const auto signature = BuildSignatureIndex(
      *w.graph, objects, {.t = 10, .c = 2.718281828, .keep_forest = false});
  signature->AttachStorage(w.buffer.get(), w.network.get(), w.order);
  const auto full = FullIndex::Build(*w.graph, objects);
  full->AttachStorage(w.buffer.get(), w.order);
  Vn3Index vn3(*w.graph, objects);
  vn3.AttachStorage(w.buffer.get());
  const IneSearch ine(w.graph.get(), objects, w.network.get());

  const std::string exhibit = "range_vs_radius_p" + spec.label;
  TablePrinter pages({"R", "Full", "NVD", "Signature", "INE"});
  TablePrinter times({"R", "Full (ms)", "NVD (ms)", "Signature (ms)",
                      "INE (ms)"});
  for (const Weight r : {10.0, 100.0, 1000.0, 10000.0}) {
    const std::string label = Fmt("%.0f", r);
    const Measurement mf = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      full->RangeQuery(q, r);
    });
    const Measurement mv = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      vn3.Range(q, r);
    });
    const Measurement ms = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      SignatureRangeQuery(*signature, q, r);
    });
    const Measurement mi = MeasureItems(w.buffer.get(), queries, [&](NodeId q) {
      ine.Range(q, r);
    });
    json->Add(exhibit, "Full", label, mf);
    json->Add(exhibit, "NVD", label, mv);
    json->Add(exhibit, "Signature", label, ms);
    json->Add(exhibit, "INE", label, mi);
    pages.AddRow({label, Fmt("%.1f", mf.pages_per_item),
                  Fmt("%.1f", mv.pages_per_item),
                  Fmt("%.1f", ms.pages_per_item),
                  Fmt("%.1f", mi.pages_per_item)});
    times.AddRow({label, Fmt("%.3f", mf.mean_ms), Fmt("%.3f", mv.mean_ms),
                  Fmt("%.3f", ms.mean_ms), Fmt("%.3f", mi.mean_ms)});
  }
  std::printf("--- dataset p = %s: (a) page accesses/query ---\n",
              spec.label.c_str());
  pages.Print();
  std::printf("--- dataset p = %s: (b) clock time/query ---\n",
              spec.label.c_str());
  times.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (!ApplyObsFlags(flags)) return 1;
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 20000));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 100));
  const size_t buffer_pages =
      static_cast<size_t>(flags.GetInt("buffer", 256));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  BenchJson json(flags, "range");
  json.SetParam("nodes", static_cast<double>(nodes));
  json.SetParam("queries", static_cast<double>(queries));
  json.SetParam("buffer_pages", static_cast<double>(buffer_pages));
  json.SetParam("seed", static_cast<double>(seed));

  std::printf("=== Figure 6.5: range search, R = 10..10000 ===\n");
  std::printf("%zu nodes (paper: 183,231), %zu queries/point\n\n", nodes,
              queries);
  RunDataset({"0.01", 0.01, false}, nodes, queries, buffer_pages, seed, &json);
  RunDataset({"0.01(nu)", 0.01, true}, nodes, queries, buffer_pages, seed,
             &json);
  std::printf(
      "Expected shape: Full ~flat; NVD jumps sharply R=100 -> 1000 (more on\n"
      "the clustered dataset); Signature sublinear in R; INE worst at large "
      "R.\n");

  // --- SIMD dispatch A/B (p = 0.05, warm buffer) ---------------------------
  // Same signature workload at every compiled level, interleaved in-process
  // (MeasureDispatchLevels). The paper's densest dataset is where the
  // category-scan kernel carries the most lanes per row; large R is the
  // category-confirm regime where that scan dominates the query.
  {
    Workbench ab = Workbench::Create(
        nodes, seed, std::max<size_t>(buffer_pages, 4096));
    const std::vector<NodeId> ab_objects =
        UniformDataset(*ab.graph, 0.05, seed + 1);
    const auto ab_index = BuildSignatureIndex(
        *ab.graph, ab_objects, {.t = 10, .c = 2.718281828,
                                .keep_forest = false});
    ab_index->AttachStorage(ab.buffer.get(), ab.network.get(), ab.order);
    const std::vector<NodeId> ab_queries =
        RandomQueryNodes(*ab.graph, queries, seed + 2);
    TablePrinter dispatch_table({"R", "level", "ms/query", "vs scalar"});
    for (const Weight r : {100.0, 1000.0, 10000.0}) {
      MeasureDispatchLevels(&json, &dispatch_table, "range_dispatch",
                            Fmt("%.0f", r), ab.buffer.get(), ab_queries,
                            [&](NodeId q) {
                              SignatureRangeQuery(*ab_index, q, r);
                            });
    }
    std::printf("\n--- SIMD dispatch A/B, p = 0.05, warm buffer (min of "
                "interleaved rounds) ---\n");
    std::printf("dispatch: %s\n", simd::CpuFeatureString().c_str());
    dispatch_table.Print();
  }
  json.Write();
  return 0;
}
