// Shared scaffolding for the paper-reproduction benches.
//
// Every bench binary reproduces one exhibit of the paper's §6 evaluation
// (see DESIGN.md's experiment index) and prints the same rows/series the
// paper reports. Networks are scaled down by default so the full suite runs
// on a laptop in minutes; flags let you scale up:
//   --nodes=N      synthetic network size (default per bench)
//   --queries=Q    queries per workload point
//   --seed=S       master seed
//   --buffer=B     buffer pool pages (default 256)
//
// Observability flags, shared by every bench (see ApplyObsFlags):
//   --json=FILE    mirror the printed exhibits into a BENCH_*.json report
//   --trace        emit one JSON trace line per query to stderr
//   --log-level=L  minimum DSIG_LOG severity (debug|info|warning|error)
#ifndef DSIG_BENCH_BENCH_COMMON_H_
#define DSIG_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "baselines/full_index.h"
#include "baselines/ine.h"
#include "baselines/nvd/vn3.h"
#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/trace.h"
#include "storage/network_store.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/simd/simd.h"
#include "util/timer.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace bench {

// The paper's dataset grid: uniform densities plus the clustered 0.01(nu).
struct DatasetSpec {
  std::string label;
  double density;
  bool clustered;
};

inline std::vector<DatasetSpec> PaperDatasets() {
  return {{"0.0005", 0.0005, false},
          {"0.001", 0.001, false},
          {"0.01", 0.01, false},
          {"0.01(nu)", 0.01, true},
          {"0.05", 0.05, false}};
}

inline std::vector<NodeId> MakeDataset(const RoadNetwork& graph,
                                       const DatasetSpec& spec,
                                       uint64_t seed) {
  if (spec.clustered) {
    // Paper: the non-uniform dataset has 100 clusters; scale the cluster
    // count with the dataset so tiny datasets still have >1 object/cluster.
    const size_t want = static_cast<size_t>(
        spec.density * static_cast<double>(graph.num_nodes()));
    const size_t clusters = std::max<size_t>(4, std::min<size_t>(100, want / 2));
    return ClusteredDataset(graph, spec.density, clusters, seed);
  }
  return UniformDataset(graph, spec.density, seed);
}

// A fully-attached experiment context: one network, one buffer pool, one
// CCAM layout shared by all indexes.
struct Workbench {
  std::unique_ptr<RoadNetwork> graph;
  std::vector<NodeId> order;
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<NetworkStore> network;

  static Workbench Create(size_t nodes, uint64_t seed, size_t buffer_pages) {
    Workbench w;
    w.graph = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = nodes, .seed = seed}));
    w.order = ComputeCcamOrder(*w.graph, 64);
    w.buffer = std::make_unique<BufferManager>(buffer_pages);
    w.network =
        std::make_unique<NetworkStore>(*w.graph, w.order, w.buffer.get());
    return w;
  }
};

inline double ToMb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// Simple aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    PrintRow(headers_, widths);
    std::string rule;
    for (size_t i = 0; i < widths.size(); ++i) {
      rule += std::string(widths[i], '-');
      if (i + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < widths.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// ---- Observability glue ---------------------------------------------------

// Applies the shared observability flags (--log-level, --trace). Returns
// false, with a message, on an unknown --log-level value.
inline bool ApplyObsFlags(const Flags& flags) {
  const std::string level = flags.GetString("log-level", "");
  if (!level.empty()) {
    LogSeverity severity = LogSeverity::kInfo;
    if (!ParseLogSeverity(level, &severity)) {
      std::fprintf(stderr, "unknown --log-level value: %s\n", level.c_str());
      return false;
    }
    SetMinLogSeverity(severity);
  }
  if (flags.GetBool("trace", false)) obs::SetTracingEnabled(true);
  return true;
}

// One measured workload point: the per-item latency distribution plus the
// OpCounters / BufferStats activity of the whole run.
struct Measurement {
  size_t items = 0;
  double mean_ms = 0;         // wall time / items
  double pages_per_item = 0;  // physical accesses / items (0 without buffer)
  obs::HistogramSnapshot latency_ms;
  OpCounters ops;             // run totals
  BufferStats buffer;         // run totals
};

// Runs `fn(item)` over `items`, timing each item into a histogram and
// capturing the op-counter and buffer-stat deltas. `clear_buffer` selects
// cold-cache (Clear) vs steady-state (ResetStats only) measurement.
template <typename Item, typename Fn>
Measurement MeasureItems(BufferManager* buffer, const std::vector<Item>& items,
                         const Fn& fn, bool clear_buffer = true) {
  if (buffer != nullptr) {
    if (clear_buffer) {
      buffer->Clear();
    } else {
      buffer->ResetStats();
    }
  }
  const OpCounters ops_before = GlobalOpCounters();
  obs::Histogram latency;
  Timer total;
  for (const auto& item : items) {
    Timer timer;
    fn(item);
    latency.Record(timer.ElapsedMillis());
  }
  Measurement m;
  m.items = items.size();
  const double n = items.empty() ? 1.0 : static_cast<double>(items.size());
  m.mean_ms = total.ElapsedMillis() / n;
  m.ops = GlobalOpCounters() - ops_before;
  if (buffer != nullptr) {
    m.buffer = buffer->stats();
    m.pages_per_item = static_cast<double>(m.buffer.physical_accesses) / n;
  }
  m.latency_ms = latency.Snapshot();
  return m;
}

// Times a single action as a one-item Measurement (used by construction-style
// benches so even scalar exhibits carry a latency entry and op breakdown).
template <typename Fn>
Measurement MeasureOnce(BufferManager* buffer, const Fn& fn,
                        bool clear_buffer = true) {
  return MeasureItems(buffer, std::vector<int>{0},
                      [&fn](int) { fn(); }, clear_buffer);
}

// Mirrors a bench's printed exhibits into a BENCH_*.json report when run
// with --json=FILE; a cheap no-op otherwise.
class BenchJson {
 public:
  BenchJson(const Flags& flags, const std::string& bench_name)
      : path_(flags.GetString("json", "")), report_(bench_name) {}

  bool enabled() const { return !path_.empty(); }

  void SetParam(const std::string& key, const std::string& value) {
    report_.SetParam(key, value);
  }
  void SetParam(const std::string& key, double value) {
    report_.SetParam(key, value);
  }

  // Adds one measured point. Extra scalar metrics can be attached through
  // the returned pointer (nullptr when reporting is disabled).
  obs::BenchReport::Point* Add(const std::string& exhibit,
                               const std::string& series, const std::string& x,
                               const Measurement& m) {
    if (!enabled()) return nullptr;
    obs::BenchReport::Point* point = report_.AddPoint(exhibit, series, x);
    point->queries = m.items;
    point->metrics["mean_ms"] = m.mean_ms;
    point->metrics["pages_per_query"] = m.pages_per_item;
    point->has_latency = true;
    point->latency = m.latency_ms;
    m.ops.ForEach(
        [point](const char* name, uint64_t v) { point->ops[name] = v; });
    m.buffer.ForEach(
        [point](const char* name, uint64_t v) { point->buffer[name] = v; });
    return point;
  }

  // Adds a scalar-only point (no latency distribution), e.g. index sizes.
  obs::BenchReport::Point* AddScalar(const std::string& exhibit,
                                     const std::string& series,
                                     const std::string& x,
                                     const std::string& metric, double value) {
    if (!enabled()) return nullptr;
    obs::BenchReport::Point* point = report_.AddPoint(exhibit, series, x);
    point->metrics[metric] = value;
    return point;
  }

  // Writes the report; call once at the end of main().
  void Write() {
    if (!enabled()) return;
    if (report_.WriteFile(path_)) {
      std::printf("wrote %s\n", path_.c_str());
    }
  }

 private:
  std::string path_;
  obs::BenchReport report_;
};

// ---- SIMD dispatch A/B ----------------------------------------------------

// Compares the compiled dispatch levels in-process on one query workload:
// warms the buffer once, then interleaves rounds (each round measures every
// level) and keeps the per-level minimum mean — process-to-process timing
// noise swamps kernel-scale effects, so interleave + min is the
// drift-robust estimator. Results are bit-identical across levels
// (tests/simd_kernels_test.cc), which is what makes the delta pure kernel
// time. Emits one table row and one `exhibit` point per level, with the
// level name as the series and speedup_vs_scalar attached.
template <typename Fn>
inline void MeasureDispatchLevels(BenchJson* json, TablePrinter* table,
                                  const std::string& exhibit,
                                  const std::string& x, BufferManager* buffer,
                                  const std::vector<NodeId>& queries,
                                  const Fn& fn, int rounds = 7) {
  const std::vector<simd::SimdLevel> levels = simd::AvailableLevels();
  std::vector<double> best(levels.size(),
                           std::numeric_limits<double>::infinity());
  std::vector<Measurement> at_best(levels.size());
  for (const NodeId q : queries) fn(q);  // warm the buffer and caches
  for (int round = 0; round < rounds; ++round) {
    for (size_t li = 0; li < levels.size(); ++li) {
      simd::SimdOverride pin(levels[li]);
      if (!pin.applied()) continue;
      const Measurement m =
          MeasureItems(buffer, queries, fn, /*clear_buffer=*/false);
      if (m.mean_ms < best[li]) {
        best[li] = m.mean_ms;
        at_best[li] = m;
      }
    }
  }
  for (size_t li = 0; li < levels.size(); ++li) {
    if (!std::isfinite(best[li])) continue;
    const double speedup = best[li] > 0 ? best[0] / best[li] : 1;
    table->AddRow({x, simd::SimdLevelName(levels[li]), Fmt("%.4f", best[li]),
                   Fmt("%.2fx", speedup)});
    auto* point = json->Add(exhibit, simd::SimdLevelName(levels[li]), x, at_best[li]);
    if (point != nullptr) {
      point->metrics["best_ms_per_query"] = best[li];
      point->metrics["speedup_vs_scalar"] = speedup;
    }
  }
}

}  // namespace bench
}  // namespace dsig

#endif  // DSIG_BENCH_BENCH_COMMON_H_
