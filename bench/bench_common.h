// Shared scaffolding for the paper-reproduction benches.
//
// Every bench binary reproduces one exhibit of the paper's §6 evaluation
// (see DESIGN.md's experiment index) and prints the same rows/series the
// paper reports. Networks are scaled down by default so the full suite runs
// on a laptop in minutes; flags let you scale up:
//   --nodes=N      synthetic network size (default per bench)
//   --queries=Q    queries per workload point
//   --seed=S       master seed
//   --buffer=B     buffer pool pages (default 256)
#ifndef DSIG_BENCH_BENCH_COMMON_H_
#define DSIG_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/full_index.h"
#include "baselines/ine.h"
#include "baselines/nvd/vn3.h"
#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "storage/network_store.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace bench {

// The paper's dataset grid: uniform densities plus the clustered 0.01(nu).
struct DatasetSpec {
  std::string label;
  double density;
  bool clustered;
};

inline std::vector<DatasetSpec> PaperDatasets() {
  return {{"0.0005", 0.0005, false},
          {"0.001", 0.001, false},
          {"0.01", 0.01, false},
          {"0.01(nu)", 0.01, true},
          {"0.05", 0.05, false}};
}

inline std::vector<NodeId> MakeDataset(const RoadNetwork& graph,
                                       const DatasetSpec& spec,
                                       uint64_t seed) {
  if (spec.clustered) {
    // Paper: the non-uniform dataset has 100 clusters; scale the cluster
    // count with the dataset so tiny datasets still have >1 object/cluster.
    const size_t want = static_cast<size_t>(
        spec.density * static_cast<double>(graph.num_nodes()));
    const size_t clusters = std::max<size_t>(4, std::min<size_t>(100, want / 2));
    return ClusteredDataset(graph, spec.density, clusters, seed);
  }
  return UniformDataset(graph, spec.density, seed);
}

// A fully-attached experiment context: one network, one buffer pool, one
// CCAM layout shared by all indexes.
struct Workbench {
  std::unique_ptr<RoadNetwork> graph;
  std::vector<NodeId> order;
  std::unique_ptr<BufferManager> buffer;
  std::unique_ptr<NetworkStore> network;

  static Workbench Create(size_t nodes, uint64_t seed, size_t buffer_pages) {
    Workbench w;
    w.graph = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = nodes, .seed = seed}));
    w.order = ComputeCcamOrder(*w.graph, 64);
    w.buffer = std::make_unique<BufferManager>(buffer_pages);
    w.network =
        std::make_unique<NetworkStore>(*w.graph, w.order, w.buffer.get());
    return w;
  }
};

inline double ToMb(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

// Simple aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    PrintRow(headers_, widths);
    std::string rule;
    for (size_t i = 0; i < widths.size(); ++i) {
      rule += std::string(widths[i], '-');
      if (i + 1 < widths.size()) rule += "-+-";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) PrintRow(row, widths);
  }

 private:
  static void PrintRow(const std::vector<std::string>& row,
                       const std::vector<size_t>& widths) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      cell.resize(widths[i], ' ');
      line += cell;
      if (i + 1 < widths.size()) line += " | ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace bench
}  // namespace dsig

#endif  // DSIG_BENCH_BENCH_COMMON_H_
