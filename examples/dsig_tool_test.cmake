# End-to-end pipeline smoke test for dsig_tool: generate -> build -> info ->
# knn -> range, failing on any non-zero exit.
set(NET ${WORKDIR}/tool_test.net)
set(IDX ${WORKDIR}/tool_test.idx)
foreach(args
    "generate;--network=${NET};--nodes=2000"
    "build;--network=${NET};--index=${IDX};--density=0.02"
    "info;--network=${NET};--index=${IDX}"
    "knn;--network=${NET};--index=${IDX};--node=10;--k=3"
    "range;--network=${NET};--index=${IDX};--node=10;--radius=40")
  execute_process(COMMAND ${TOOL} ${args} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dsig_tool ${args} failed with ${rc}")
  endif()
endforeach()
