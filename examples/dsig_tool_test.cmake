# End-to-end pipeline smoke test for dsig_tool: generate -> build -> info ->
# verify -> knn -> range, failing on any non-zero exit; then the corruption
# drill: a copy of the index is damaged with `corrupt` and both `verify` and
# `info` must refuse it (clean non-zero exit), while the pristine file keeps
# verifying.
set(NET ${WORKDIR}/tool_test.net)
set(IDX ${WORKDIR}/tool_test.idx)
set(BAD ${WORKDIR}/tool_test_corrupt.idx)
foreach(args
    "generate;--network=${NET};--nodes=2000"
    "build;--network=${NET};--index=${IDX};--density=0.02;--threads=2"
    "info;--network=${NET};--index=${IDX}"
    "verify;--network=${NET};--index=${IDX}"
    "knn;--network=${NET};--index=${IDX};--node=10;--k=3"
    "range;--network=${NET};--index=${IDX};--node=10;--radius=40")
  execute_process(COMMAND ${TOOL} ${args} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dsig_tool ${args} failed with ${rc}")
  endif()
endforeach()

# Flip one byte near the end of a copy (row data / object table region).
execute_process(COMMAND ${CMAKE_COMMAND} -E copy ${IDX} ${BAD} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "copying the index for the corruption drill failed")
endif()
execute_process(COMMAND ${TOOL} corrupt --file=${BAD} --offset=-200 --xor=0x40
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool corrupt failed with ${rc}")
endif()

# The damaged copy must be rejected by verify AND by plain loading (info),
# with a proper exit code rather than a crash signal (ctest reports signals
# as large/negative codes; we require exactly 1).
foreach(cmd verify info)
  execute_process(COMMAND ${TOOL} ${cmd} --network=${NET} --index=${BAD}
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR
            "dsig_tool ${cmd} on a corrupt index exited ${rc}, expected 1")
  endif()
endforeach()

# Truncation must also be caught.
execute_process(COMMAND ${CMAKE_COMMAND} -E copy ${IDX} ${BAD} RESULT_VARIABLE rc)
execute_process(COMMAND ${TOOL} corrupt --file=${BAD} --offset=100 --truncate
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool corrupt --truncate failed with ${rc}")
endif()
execute_process(COMMAND ${TOOL} verify --network=${NET} --index=${BAD}
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
          "dsig_tool verify on a truncated index exited ${rc}, expected 1")
endif()

# The pristine index is untouched by all of the above.
execute_process(COMMAND ${TOOL} verify --network=${NET} --index=${IDX}
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "pristine index stopped verifying (${rc})")
endif()

# Observability smoke: `stats` runs a small query workload in-process and
# dumps the metrics registry. The dump must show real work (nonzero
# ops.row_reads), a populated query-latency histogram, and the pool /
# row-cache sections (--threads exercises the parallel batch driver, so
# pool.tasks_run must be nonzero).
execute_process(COMMAND ${TOOL} stats --network=${NET} --index=${IDX}
                        --queries=5 --threads=2
                OUTPUT_VARIABLE stats_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool stats failed with ${rc}")
endif()
if(NOT stats_out MATCHES "\"ops\\.row_reads\": [1-9]")
  message(FATAL_ERROR "stats output missing nonzero ops.row_reads:\n${stats_out}")
endif()
if(NOT stats_out MATCHES "\"query\\.knn\\.latency_ms\"")
  message(FATAL_ERROR "stats output missing kNN latency histogram:\n${stats_out}")
endif()
if(NOT stats_out MATCHES "\"p50\"")
  message(FATAL_ERROR "stats output missing latency percentiles:\n${stats_out}")
endif()
if(NOT stats_out MATCHES "\"pool\\.tasks_run\": [1-9]")
  message(FATAL_ERROR "stats output missing nonzero pool.tasks_run:\n${stats_out}")
endif()
if(NOT stats_out MATCHES "\"rowcache\\.hit_rate\"")
  message(FATAL_ERROR "stats output missing rowcache.hit_rate gauge:\n${stats_out}")
endif()

# Live-update observability: --updates applies a small in-process update
# storm before the query workload, so the dump must additionally carry the
# update.* counters and the epoch/retired-bytes gauges.
execute_process(COMMAND ${TOOL} stats --network=${NET} --index=${IDX}
                        --queries=2 --updates=8
                OUTPUT_VARIABLE upd_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool stats --updates failed with ${rc}")
endif()
if(NOT upd_out MATCHES "\"update\\.edges_applied\": [1-9]")
  message(FATAL_ERROR "stats --updates missing update.edges_applied:\n${upd_out}")
endif()
if(NOT upd_out MATCHES "\"update\\.epoch\"")
  message(FATAL_ERROR "stats --updates missing update.epoch gauge:\n${upd_out}")
endif()

# Crash/recovery drill: `chaos` runs an update storm with concurrent query
# threads, kills the WAL at a byte offset, hard-drops all in-memory state,
# and recovers. It must exit 0, report a verified recovery, and dump
# nonzero wal.* metrics.
execute_process(COMMAND ${TOOL} chaos --dir=${WORKDIR}/tool_chaos
                        --nodes=300 --updates=40 --threads=2 --seed=5
                        --crash-at=500
                OUTPUT_VARIABLE chaos_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool chaos failed with ${rc}")
endif()
if(NOT chaos_out MATCHES "replayed records, index verified clean")
  message(FATAL_ERROR "chaos output missing verified recovery line:\n${chaos_out}")
endif()
if(NOT chaos_out MATCHES "\"wal\\.records\": [1-9]")
  message(FATAL_ERROR "chaos output missing nonzero wal.records:\n${chaos_out}")
endif()

# Hub-label tier: `build --labels` persists the optional label section, the
# deep verify covers it, `info` reports it, and the `stats` dump carries the
# labels.* gauges with the tier present. The unlabeled index built above
# keeps reporting "labels  : none" — files without the section are
# first-class.
set(LIDX ${WORKDIR}/tool_test_labels.idx)
execute_process(COMMAND ${TOOL} build --network=${NET} --index=${LIDX}
                        --density=0.02 --threads=2 --labels
                OUTPUT_VARIABLE lbuild_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool build --labels failed with ${rc}")
endif()
if(NOT lbuild_out MATCHES "built hub labels in")
  message(FATAL_ERROR "build --labels missing construction line:\n${lbuild_out}")
endif()
execute_process(COMMAND ${TOOL} verify --network=${NET} --index=${LIDX}
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "labeled index failed deep verify (${rc})")
endif()
execute_process(COMMAND ${TOOL} info --network=${NET} --index=${LIDX}
                OUTPUT_VARIABLE linfo_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool info on labeled index failed with ${rc}")
endif()
if(NOT linfo_out MATCHES "labels  : [1-9][0-9]* entries")
  message(FATAL_ERROR "info missing label stats line:\n${linfo_out}")
endif()
execute_process(COMMAND ${TOOL} info --network=${NET} --index=${IDX}
                OUTPUT_VARIABLE uinfo_out RESULT_VARIABLE rc)
if(NOT uinfo_out MATCHES "labels  : none")
  message(FATAL_ERROR "unlabeled info should report no labels:\n${uinfo_out}")
endif()
execute_process(COMMAND ${TOOL} stats --network=${NET} --index=${LIDX}
                        --queries=5
                OUTPUT_VARIABLE lstats_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool stats on labeled index failed with ${rc}")
endif()
if(NOT lstats_out MATCHES "\"labels\\.present\": 1")
  message(FATAL_ERROR "stats missing labels.present gauge:\n${lstats_out}")
endif()
if(NOT lstats_out MATCHES "\"labels\\.entries\": [1-9]")
  message(FATAL_ERROR "stats missing nonzero labels.entries:\n${lstats_out}")
endif()

# Prometheus exposition of the same registry.
execute_process(COMMAND ${TOOL} stats --network=${NET} --index=${IDX}
                        --queries=2 --format=prometheus
                OUTPUT_VARIABLE prom_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dsig_tool stats --format=prometheus failed with ${rc}")
endif()
if(NOT prom_out MATCHES "# TYPE dsig_ops_row_reads counter")
  message(FATAL_ERROR "prometheus output missing row_reads counter:\n${prom_out}")
endif()
if(NOT prom_out MATCHES "# TYPE dsig_pool_tasks_run counter")
  message(FATAL_ERROR "prometheus output missing pool counter:\n${prom_out}")
endif()
if(NOT prom_out MATCHES "# TYPE dsig_rowcache_hit_rate gauge")
  message(FATAL_ERROR "prometheus output missing rowcache hit_rate:\n${prom_out}")
endif()
