// Quickstart: build a distance-signature index on a small road network and
// run the basic operations plus one of each query type.
//
//   $ ./quickstart
#include <cstdio>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "workload/dataset_generator.h"

int main() {
  using namespace dsig;

  // 1. A road network: junctions + weighted road segments. Generators for
  //    grids, random planar networks, and clustered continents are provided;
  //    you can also AddNode/AddEdge your own data.
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 2000, .seed = 7});
  std::printf("network: %zu junctions, %zu road segments\n",
              graph.num_nodes(), graph.num_edges());

  // 2. A dataset: objects (restaurants, hospitals, ...) living on nodes.
  const std::vector<NodeId> restaurants = UniformDataset(graph, 0.01, 11);
  std::printf("dataset: %zu restaurants\n\n", restaurants.size());

  // 3. The index. T and c control the exponential category partition
  //    (paper's optimum: c = e, T = sqrt(SP/e)); compression and the
  //    reverse-zero-padding category code are on by default.
  const auto index = BuildSignatureIndex(
      graph, restaurants, {.t = 10.0, .c = 2.718281828});
  std::printf("signature index: %.1f KB (%.2f bits/entry)\n",
              static_cast<double>(index->IndexBytes()) / 1024.0,
              static_cast<double>(index->size_stats().compressed_bits) /
                  static_cast<double>(index->size_stats().entries));

  const NodeId home = 42;

  // 4a. Exact distance by guided backtracking.
  std::printf("\nexact distance home -> restaurant #0: %.0f\n",
              ExactDistance(*index, home, 0));

  // 4b. Approximate distance: a range good enough to answer "within 25?".
  const DistanceRange approx =
      ApproximateDistance(*index, home, 0, {25.0, 25.0});
  std::printf("approximate distance: [%.0f, %s)\n", approx.lb,
              approx.ub == kInfiniteWeight ? "inf"
                                           : std::to_string(approx.ub).c_str());

  // 5. Range query: everything within 60 units.
  const RangeQueryResult range = SignatureRangeQuery(*index, home, 60);
  std::printf("\nrestaurants within 60 units: %zu (refined %zu)\n",
              range.objects.size(), range.refined);

  // 6. kNN with exact distances (type 1).
  const KnnResult knn =
      SignatureKnnQuery(*index, home, 3, KnnResultType::kType1);
  std::printf("3 nearest restaurants:\n");
  for (size_t i = 0; i < knn.objects.size(); ++i) {
    std::printf("  #%u at node %u, distance %.0f\n", knn.objects[i],
                index->object_node(knn.objects[i]), knn.distances[i]);
  }
  return 0;
}
