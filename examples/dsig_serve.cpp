// dsig_serve: the fault-tolerant serving front-end as a process.
//
// Serves kNN / range / join / update over the DSRV socket protocol with
// admission control, deadlines, and graceful degradation (see
// ARCHITECTURE.md, "Serving, overload & degradation"). The durable
// deployment lives in --dir: a fresh directory gets a generated city +
// Initialize; a directory with a MANIFEST is recovered (checkpoint +
// committed WAL tail), which is what makes kill -9 survivable.
//
//   $ ./dsig_serve --dir=/tmp/dsig [--nodes=5000] [--seed=42] [--port=0]
//                  [--port-file=PATH] [--checkpoint-interval=64]
//                  [--max-inflight=8] [--max-queue=32]
//                  [--degrade-fraction=0.5] [--default-deadline-ms=0]
//                  [--max-runtime-s=300]
//                  [--tenants=name:weight:rate_qps,name:weight:rate_qps,...]
//                  [--tenant-slo-budget-ms=100]
//                  [--no-coalesce] [--read-timeout-ms=5000]
//                  [--write-timeout-ms=5000] [--idle-timeout-ms=0]
//                  [--max-connections=0]
//                  [--slo-budget-ms=50] [--slo-join-budget-ms=250]
//                  [--slo-update-budget-ms=100] [--slo-availability=0.99]
//                  [--slo-fast-s=10] [--slo-slow-s=60] [--slo-slot-ms=1000]
//                  [--slow-query-log=PATH] [--slow-trace-qps=20]
//                  [--trace-sample-period=16]
//
// SLO flags declare per-request-class objectives (latency budget +
// availability) evaluated with fast/slow burn-rate windows; `dsig_tool slo`
// reads the resulting health report. --slow-query-log appends one JSON
// trace line (queue wait + execution phases) per SLO-breaching request.
//
// --tenants declares fair-share principals: wire tenant id = position in
// the list, weight = DWRR slot share under contention, rate_qps = token-
// bucket cap (0 = unlimited). Unknown wire ids fold into the first tenant.
// Each tenant gets its own serve.tenant.<name>.* metrics, a windowed
// latency ring, and a "tenant_<name>" SLO evaluated at
// --tenant-slo-budget-ms. --no-coalesce disables single-flight coalescing
// of identical hot queries; the timeout/connection flags are the hostile-
// client hardening knobs (serve/net.h).
//
// Prints one "SERVE_READY port=... nodes=... objects=..." line when
// accepting. SIGTERM / SIGINT drain gracefully: stop accepting, fail queued
// work with SHUTTING_DOWN, finish in-flight requests, write a final
// checkpoint, exit 0.
//
//   $ ./dsig_serve --recover-check --dir=/tmp/dsig
//
// recovers (with full index verification) and prints "RECOVER_OK
// last_seq=N ..." or exits 1 — the chaos harness's oracle that no
// acknowledged update was lost.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "obs/simd_metrics.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/simd/simd.h"
#include "workload/dataset_generator.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void HandleSignal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace dsig;

  // Installed before the (potentially slow) build/recover phase: a SIGTERM
  // at any point drains through the checkpoint epilogue instead of dying
  // with default disposition.
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  const Flags flags(argc, argv);
  const std::string dir = flags.GetString(
      "dir", (std::filesystem::temp_directory_path() / "dsig_serve").string());

  DurableOptions durable;
  durable.checkpoint_interval =
      static_cast<uint64_t>(flags.GetInt("checkpoint-interval", 64));
  // Transient checkpoint I/O errors retry instead of surfacing (satellite:
  // bounded retry with backoff + jitter; io/durable_index.h).
  durable.ckpt_retries = static_cast<int>(flags.GetInt("ckpt-retries", 2));

  if (flags.GetBool("recover-check", false)) {
    RecoverOptions verify;
    verify.verify = true;
    auto recovered = DurableUpdater::Recover(dir, durable, verify);
    if (!recovered.ok()) {
      std::fprintf(stderr, "RECOVER_FAIL %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    std::printf("RECOVER_OK last_seq=%llu checkpoint_seq=%llu replayed=%llu\n",
                static_cast<unsigned long long>(
                    recovered->updater->next_seq() - 1),
                static_cast<unsigned long long>(
                    recovered->updater->checkpoint_seq()),
                static_cast<unsigned long long>(recovered->replayed_records));
    return 0;
  }

  // Bring up the deployment: recover an existing directory, else generate
  // and initialize a fresh one.
  std::unique_ptr<RoadNetwork> owned_graph;
  std::unique_ptr<SignatureIndex> owned_index;
  std::unique_ptr<DurableUpdater> updater;
  if (std::filesystem::exists(DurableUpdater::ManifestPath(dir))) {
    auto recovered = DurableUpdater::Recover(dir, durable);
    if (!recovered.ok()) {
      std::fprintf(stderr, "cannot recover %s: %s\n", dir.c_str(),
                   recovered.status().ToString().c_str());
      return 1;
    }
    owned_graph = std::move(recovered->graph);
    owned_index = std::move(recovered->index);
    updater = std::move(recovered->updater);
    std::printf("recovered %s: checkpoint seq %llu + %llu replayed records\n",
                dir.c_str(),
                static_cast<unsigned long long>(updater->checkpoint_seq()),
                static_cast<unsigned long long>(recovered->replayed_records));
  } else {
    std::filesystem::create_directories(dir);
    const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 5000));
    const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    const double density = flags.GetDouble("density", 0.005);
    owned_graph = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = nodes, .seed = seed}));
    const std::vector<NodeId> objects =
        UniformDataset(*owned_graph, density, seed + 1);
    // keep_forest: the updater needs the per-object spanning trees.
    owned_index = BuildSignatureIndex(*owned_graph, objects,
                                      {.t = 10, .c = 2.718281828,
                                       .keep_forest = true});
    auto initialized = DurableUpdater::Initialize(dir, owned_graph.get(),
                                                  owned_index.get(), durable);
    if (!initialized.ok()) {
      std::fprintf(stderr, "cannot initialize %s: %s\n", dir.c_str(),
                   initialized.status().ToString().c_str());
      return 1;
    }
    updater = std::move(initialized).value();
  }

  serve::ServerOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.admission.query.max_inflight =
      static_cast<size_t>(flags.GetInt("max-inflight", 8));
  options.admission.query.max_queue =
      static_cast<size_t>(flags.GetInt("max-queue", 32));
  options.admission.update.max_queue =
      static_cast<size_t>(flags.GetInt("update-queue", 64));
  options.admission.retry_after_base_ms =
      flags.GetDouble("retry-after-base-ms", 25);
  options.degrade_queue_fraction = flags.GetDouble("degrade-fraction", 0.5);
  options.default_deadline_ms = flags.GetDouble("default-deadline-ms", 0);

  // Fair-share tenants: "name:weight:rate_qps,..." — wire id = position.
  const std::string tenant_spec = flags.GetString("tenants", "");
  if (!tenant_spec.empty()) {
    size_t start = 0;
    while (start <= tenant_spec.size()) {
      size_t comma = tenant_spec.find(',', start);
      if (comma == std::string::npos) comma = tenant_spec.size();
      const std::string entry = tenant_spec.substr(start, comma - start);
      start = comma + 1;
      if (entry.empty()) continue;
      serve::TenantConfig tenant;
      const size_t c1 = entry.find(':');
      const size_t c2 = c1 == std::string::npos ? c1 : entry.find(':', c1 + 1);
      tenant.name = entry.substr(0, c1);
      if (c1 != std::string::npos) {
        tenant.weight = std::atof(entry.substr(c1 + 1).c_str());
      }
      if (c2 != std::string::npos) {
        tenant.rate_qps = std::atof(entry.substr(c2 + 1).c_str());
      }
      if (tenant.name.empty() || tenant.weight <= 0) {
        std::fprintf(stderr, "bad --tenants entry \"%s\"\n", entry.c_str());
        return 1;
      }
      options.admission.tenants.push_back(std::move(tenant));
    }
  }
  const double tenant_budget_ms = flags.GetDouble("tenant-slo-budget-ms", 100);
  for (const auto& tenant : options.admission.tenants) {
    options.tenant_slo.push_back(
        {"tenant_" + tenant.name, tenant_budget_ms, 0.99});
  }

  // Single-flight coalescing + hostile-client hardening.
  options.coalesce = !flags.GetBool("no-coalesce", false);
  options.read_timeout_ms = flags.GetDouble("read-timeout-ms", 5000);
  options.write_timeout_ms = flags.GetDouble("write-timeout-ms", 5000);
  options.idle_timeout_ms = flags.GetDouble("idle-timeout-ms", 0);
  options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 0));

  // SLO objectives: one latency budget for the interactive classes (knn,
  // range), separate knobs for the join scan and updates.
  const double slo_budget_ms = flags.GetDouble("slo-budget-ms", 50);
  const double slo_availability = flags.GetDouble("slo-availability", 0.99);
  options.slo = {
      {"knn", slo_budget_ms, slo_availability},
      {"range", slo_budget_ms, slo_availability},
      {"join", flags.GetDouble("slo-join-budget-ms", 250), slo_availability},
      {"update", flags.GetDouble("slo-update-budget-ms", 100),
       slo_availability},
  };
  options.slo_windows.fast_ns = static_cast<uint64_t>(
      flags.GetDouble("slo-fast-s", 10) * 1e9);
  options.slo_windows.slow_ns = static_cast<uint64_t>(
      flags.GetDouble("slo-slow-s", 60) * 1e9);
  options.slo_windows.slot_ns = static_cast<uint64_t>(
      flags.GetDouble("slo-slot-ms", 1000) * 1e6);

  const std::string slow_log = flags.GetString("slow-query-log", "");
  std::FILE* slow_log_file = nullptr;
  if (!slow_log.empty()) {
    slow_log_file = std::fopen(slow_log.c_str(), "a");
    if (slow_log_file == nullptr) {
      std::fprintf(stderr, "cannot open slow-query log %s\n",
                   slow_log.c_str());
      return 1;
    }
    options.slow_trace_sink = slow_log_file;
    options.slow_trace_qps = flags.GetDouble("slow-trace-qps", 20);
  }
  options.trace_sample_period = static_cast<uint32_t>(
      flags.GetInt("trace-sample-period", 16));

  serve::DsigServer::Deployment deployment;
  deployment.graph = owned_graph.get();
  deployment.index = owned_index.get();
  deployment.updater = updater.get();
  auto server = serve::DsigServer::Start(deployment, options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u\n", (*server)->port());
      std::fclose(f);
    }
  }
  // Record the SIMD dispatch state before serving: the line makes every
  // server log self-describing, the gauge flows into /stats exports and
  // serve_report.json.
  obs::PublishSimdMetrics();
  std::printf("simd: %s\n", simd::CpuFeatureString().c_str());
  std::printf("SERVE_READY port=%u nodes=%zu objects=%zu tenants=%zu dir=%s\n",
              (*server)->port(), owned_graph->num_nodes(),
              owned_index->num_objects(),
              options.admission.tenants.empty()
                  ? size_t{1}
                  : options.admission.tenants.size(),
              dir.c_str());
  std::fflush(stdout);

  // Park until a signal (or the runtime cap, so a harness failure cannot
  // leak a server into CI forever).
  const double max_runtime_s = flags.GetDouble("max-runtime-s", 300);
  const auto started = std::chrono::steady_clock::now();
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (max_runtime_s > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
                .count() >= max_runtime_s) {
      break;
    }
  }

  // Graceful drain: refuse new work, finish in-flight work, then make
  // everything applied so far durable in one final checkpoint.
  std::printf("draining (signal %d)...\n", static_cast<int>(g_signal));
  (*server)->Stop();
  if (slow_log_file != nullptr) std::fclose(slow_log_file);
  const Status checkpointed = updater->Checkpoint();
  if (!checkpointed.ok()) {
    std::fprintf(stderr, "final checkpoint failed: %s\n",
                 checkpointed.ToString().c_str());
    return 1;
  }
  const Status closed = updater->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "close failed: %s\n", closed.ToString().c_str());
    return 1;
  }
  std::printf("SERVE_DRAINED checkpoint_seq=%llu\n",
              static_cast<unsigned long long>(updater->checkpoint_seq()));
  return 0;
}
