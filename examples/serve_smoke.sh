#!/usr/bin/env bash
# Chaos smoke for the serving front-end. Two legs:
#
#   A  start dsig_serve on a fresh deployment, drive open-loop traffic,
#      assert the loadgen completed work with zero protocol errors, then
#      kill -9 the server mid-flight and assert recovery replays at least
#      as far as the highest update sequence any client saw acknowledged —
#      "no acknowledged update lost", the durability headline.
#
#   B  restart on the recovered deployment with starvation budgets, short
#      SLO burn windows, and 2x the traffic. Assert overload shows up as
#      load shedding (RETRY_AFTER) and degraded (category-only) answers
#      rather than collapse, that the SLO engine reports burn-rate critical
#      while the overload is inside its windows (health_overload.json) and
#      recovers to ok once it ages out (health_after.json), that breaching
#      requests left trace lines in the slow-query log, then SIGTERM the
#      server and assert a clean drain (exit 0, SERVE_DRAINED, final
#      checkpoint) and recover-check once more.
#
#   C  tenant isolation: restart with two fair-share tenants (compliant,
#      flood — the flooder rate-capped at its token bucket), drive both from
#      one loadgen with the flooder at 10x the compliant rate, and assert
#      from the TENANT_SUMMARY lines that the flooder was shed hard while
#      the compliant tenant completed nearly everything with a p99 inside
#      its objective; the server's own TENANT_HEALTH ledger must agree.
#
# Usage: serve_smoke.sh <dsig_serve> <dsig_loadgen> <dsig_tool> [workdir]
set -u

SERVE="$1"
LOADGEN="$2"
TOOL="$3"
WORK="${4:-$(mktemp -d)}"
mkdir -p "$WORK"
DIR="$WORK/deploy"
SERVER_PID=""

fail() {
  echo "SERVE_SMOKE FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    [ -f "$log" ] && { echo "--- $log"; tail -20 "$log"; } >&2
  done
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  exit 1
}

# Scrape "key=value" off a LOADGEN_SUMMARY / RECOVER_OK line.
scrape() { # file key
  grep -o "$2=[^ ]*" "$1" | head -1 | cut -d= -f2
}

wait_port() { # port-file
  for _ in $(seq 1 300); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

# ---- Leg A: traffic, kill -9, recovery oracle -------------------------------
rm -rf "$DIR"
mkdir -p "$DIR"
rm -f "$WORK/port"
# Launched directly (not via a compound command) so $! is the server itself,
# which is what kill -9 must hit.
"$SERVE" --dir="$DIR" --nodes=3000 --checkpoint-interval=32 \
  --port-file="$WORK/port" >"$WORK/serve_a.log" 2>&1 &
SERVER_PID=$!
wait_port "$WORK/port" || fail "server A never published its port"

"$LOADGEN" --port-file="$WORK/port" --rate=300 --duration-s=2 --threads=4 \
  --deadline-ms=200 --update-fraction=0.15 --seed=11 \
  --report="$WORK/serve_report.json" >"$WORK/loadgen_a.log" 2>&1 \
  || fail "loadgen A exited nonzero"

completed=$(scrape "$WORK/loadgen_a.log" completed)
protocol_errors=$(scrape "$WORK/loadgen_a.log" protocol_errors)
max_acked_seq=$(scrape "$WORK/loadgen_a.log" max_acked_seq)
[ -n "$completed" ] || fail "no LOADGEN_SUMMARY in leg A"
[ "$completed" -gt 0 ] || fail "leg A completed nothing"
[ "$protocol_errors" -eq 0 ] || fail "leg A protocol_errors=$protocol_errors"
[ "$max_acked_seq" -gt 0 ] || fail "leg A acked no updates"
[ -s "$WORK/serve_report.json" ] || fail "loadgen wrote no report"
# The loadgen cross-checked its client-side p99 against the server's
# windowed view; the report must carry that consistency probe.
grep -q '"server_stats_ok": 1' "$WORK/serve_report.json" \
  || fail "loadgen report has no server-side stats (p99 consistency probe)"

kill -9 "$SERVER_PID" 2>/dev/null || fail "server A already gone before kill -9"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

"$SERVE" --dir="$DIR" --recover-check >"$WORK/recover_a.log" 2>&1 \
  || fail "recover-check after kill -9 failed"
grep -q RECOVER_OK "$WORK/recover_a.log" || fail "no RECOVER_OK after kill -9"
last_seq=$(scrape "$WORK/recover_a.log" last_seq)
[ "$last_seq" -ge "$max_acked_seq" ] \
  || fail "acknowledged update lost: recovered seq $last_seq < acked $max_acked_seq"
echo "leg A ok: completed=$completed acked_seq=$max_acked_seq recovered_seq=$last_seq"

# ---- Leg B: overload + graceful drain ---------------------------------------
# Overload is statistical; retry the leg a few times before declaring the
# server refuses to shed.
for attempt in 1 2 3; do
  rm -f "$WORK/port" "$WORK/slow_queries.jsonl"
  # Short burn windows (fast 2s / slow 8s) so the 2-second overload fills
  # both and the recovery sleep empties them; a generous 200ms budget so
  # only shed/timed-out requests burn error budget, not healthy latency;
  # a three-nines availability objective so the ~5% shed rate the tiny
  # queue produces burns at ~50x — unambiguously past the 14.4 critical
  # threshold — while zero bad requests still burns zero.
  "$SERVE" --dir="$DIR" --port-file="$WORK/port" \
    --max-inflight=1 --max-queue=2 --retry-after-base-ms=5 \
    --degrade-fraction=0.25 --slo-availability=0.999 \
    --slo-budget-ms=200 --slo-fast-s=2 --slo-slow-s=8 --slo-slot-ms=250 \
    --slow-query-log="$WORK/slow_queries.jsonl" --trace-sample-period=4 \
    >"$WORK/serve_b.log" 2>&1 &
  SERVER_PID=$!
  wait_port "$WORK/port" || fail "server B never published its port"

  # More connections (8) than slot + queue (1 + 2), and a join-heavy mix so
  # requests are slow enough to pile up: whenever four senders overlap, the
  # fourth is shed. The single slot makes overload structural, not timing.
  "$LOADGEN" --port-file="$WORK/port" --rate=1000 --duration-s=2 --threads=8 \
    --join-fraction=0.25 --deadline-ms=50 --max-retries=1 \
    --seed=$((attempt * 13)) \
    >"$WORK/loadgen_b.log" 2>&1 || fail "loadgen B exited nonzero"

  shed=$(scrape "$WORK/loadgen_b.log" shed)
  degraded=$(scrape "$WORK/loadgen_b.log" degraded)
  b_protocol_errors=$(scrape "$WORK/loadgen_b.log" protocol_errors)
  [ "$b_protocol_errors" -eq 0 ] || fail "leg B protocol_errors=$b_protocol_errors"

  overloaded=0
  if [ "$shed" -gt 0 ] && [ "$degraded" -gt 0 ]; then
    overloaded=1
    # Probe immediately, while the shed traffic is still inside both burn
    # windows: the health report must say critical.
    "$TOOL" slo --port-file="$WORK/port" --out="$WORK/health_overload.json" \
      >"$WORK/slo_overload.log" 2>&1 || fail "dsig_tool slo (overload) failed"
    # Let the overload age out of the slow (8s) window, then probe again
    # with fresh good traffic: burn drops to zero and the class windows
    # forget the overload latencies, while the lifetime histogram does not.
    sleep 10
    "$TOOL" slo --port-file="$WORK/port" --probe=30 \
      --out="$WORK/health_after.json" \
      >"$WORK/slo_after.log" 2>&1 || fail "dsig_tool slo (recovery) failed"
  fi

  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  rc=$?
  SERVER_PID=""
  [ "$rc" -eq 0 ] || fail "server B exited $rc after SIGTERM"
  grep -q SERVE_DRAINED "$WORK/serve_b.log" || fail "server B drained without SERVE_DRAINED"

  [ "$overloaded" -eq 1 ] && break
  [ "$attempt" -lt 3 ] || fail "no overload after 3 attempts (shed=$shed degraded=$degraded)"
done
echo "leg B ok: shed=$shed degraded=$degraded"

# ---- SLO burn-rate + slow-query-log assertions ------------------------------
grep -q 'SLO_OVERALL state=critical' "$WORK/slo_overload.log" \
  || fail "SLO not critical during overload (slo_overload.log)"
grep -q 'SLO_OVERALL state=ok' "$WORK/slo_after.log" \
  || fail "SLO did not recover to ok (slo_after.log)"
[ -s "$WORK/slow_queries.jsonl" ] || fail "no slow-query trace lines"
grep -q '"trace_id"' "$WORK/slow_queries.jsonl" \
  || fail "slow-query lines carry no trace_id"

# The archived health reports are machine-readable: re-assert the burn-rate
# transition from them, and that after recovery the windowed view has
# forgotten the overload latencies while the lifetime histogram remembers.
python3 - "$WORK/health_overload.json" "$WORK/health_after.json" <<'EOF' \
  || fail "health report assertions failed"
import json, sys

with open(sys.argv[1]) as f:
    overload = json.load(f)
with open(sys.argv[2]) as f:
    after = json.load(f)

assert overload["slo"]["overall"] == "critical", overload["slo"]["overall"]
worst = next(c for c in overload["slo"]["classes"] if c["state"] == "critical")
assert worst["fast_burn"] >= 14.4 and worst["slow_burn"] >= 14.4, worst

assert after["slo"]["overall"] == "ok", after["slo"]["overall"]
knn = next(c for c in after["slo"]["classes"] if c["class"] == "knn")
assert knn["fast_burn"] == 0.0, knn
# The probe traffic is all the window remembers; the overload's queueing
# latencies survive only in the lifetime percentile.
assert knn["window_count"] > 0, knn
assert knn["lifetime_p99_ms"] > 1.3 * knn["window_p99_ms"], (
    knn["lifetime_p99_ms"], knn["window_p99_ms"])
print("health reports ok: burn", round(worst["slow_burn"], 1),
      "-> 0; window p99", round(knn["window_p99_ms"], 2),
      "ms vs lifetime p99", round(knn["lifetime_p99_ms"], 2), "ms")
EOF

"$SERVE" --dir="$DIR" --recover-check >"$WORK/recover_b.log" 2>&1 \
  || fail "final recover-check failed"
grep -q RECOVER_OK "$WORK/recover_b.log" || fail "no RECOVER_OK after drain"

# ---- Leg C: two-tenant isolation --------------------------------------------
# Tenant 0 "compliant" (unlimited), tenant 1 "flood" rate-capped at 100 qps.
# The loadgen drives the flooder at 10x the compliant rate; isolation means
# the flood is shed at its bucket and its own queue while the compliant
# tenant's completions and p99 are untouched.
rm -f "$WORK/port"
"$SERVE" --dir="$DIR" --port-file="$WORK/port" \
  --max-inflight=2 --max-queue=8 \
  --tenants=compliant:1:0,flood:1:100 --tenant-slo-budget-ms=150 \
  >"$WORK/serve_c.log" 2>&1 &
SERVER_PID=$!
wait_port "$WORK/port" || fail "server C never published its port"
grep -q 'tenants=2' "$WORK/serve_c.log" || fail "server C did not load 2 tenants"

"$LOADGEN" --port-file="$WORK/port" --duration-s=2 --threads=2 \
  --tenants=compliant:0:40,flood:1:400 \
  --update-fraction=0 --join-fraction=0 --deadline-ms=250 --max-retries=1 \
  --seed=29 --report="$WORK/serve_report_tenants.json" \
  >"$WORK/loadgen_c.log" 2>&1 || fail "loadgen C exited nonzero"

compliant_line=$(grep 'TENANT_SUMMARY tenant=compliant' "$WORK/loadgen_c.log")
flood_line=$(grep 'TENANT_SUMMARY tenant=flood' "$WORK/loadgen_c.log")
[ -n "$compliant_line" ] && [ -n "$flood_line" ] \
  || fail "leg C missing TENANT_SUMMARY lines"
t_scrape() { echo "$1" | grep -o "$2=[^ ]*" | head -1 | cut -d= -f2; }
flood_shed=$(t_scrape "$flood_line" shed)
flood_arrivals=$(t_scrape "$flood_line" arrivals)
c_arrivals=$(t_scrape "$compliant_line" arrivals)
c_completed=$(t_scrape "$compliant_line" completed)
c_shed=$(t_scrape "$compliant_line" shed)
c_p99=$(t_scrape "$compliant_line" p99_ms)
[ "$flood_shed" -gt $((flood_arrivals / 4)) ] \
  || fail "flooder was not shed (shed=$flood_shed of $flood_arrivals)"
[ "$c_completed" -ge $((c_arrivals * 95 / 100)) ] \
  || fail "compliant tenant lost work: completed=$c_completed of $c_arrivals"
[ "$c_shed" -le $((c_arrivals / 20)) ] \
  || fail "compliant tenant shed alongside the flooder: shed=$c_shed"
awk "BEGIN { exit !($c_p99 < 150) }" \
  || fail "compliant p99=${c_p99}ms breached its 150ms objective"
grep -q 'loadgen_tenant' "$WORK/serve_report_tenants.json" \
  || fail "tenant report carries no per-tenant points"

# The server's own per-tenant SLO ledger agrees with the client's view.
"$TOOL" slo --port-file="$WORK/port" --out="$WORK/health_tenants.json" \
  >"$WORK/slo_tenants.log" 2>&1 || fail "dsig_tool slo (tenants) failed"
grep -q 'TENANT_HEALTH class=tenant_compliant state=ok' "$WORK/slo_tenants.log" \
  || fail "compliant tenant not healthy in TENANT_HEALTH"
grep -q 'TENANT_HEALTH class=tenant_flood' "$WORK/slo_tenants.log" \
  || fail "no TENANT_HEALTH line for the flood tenant"

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
rc=$?
SERVER_PID=""
[ "$rc" -eq 0 ] || fail "server C exited $rc after SIGTERM"
echo "leg C ok: flood shed=$flood_shed/$flood_arrivals compliant p99=${c_p99}ms shed=$c_shed"

echo "SERVE_SMOKE OK"
