#!/usr/bin/env bash
# Chaos smoke for the serving front-end. Two legs:
#
#   A  start dsig_serve on a fresh deployment, drive open-loop traffic,
#      assert the loadgen completed work with zero protocol errors, then
#      kill -9 the server mid-flight and assert recovery replays at least
#      as far as the highest update sequence any client saw acknowledged —
#      "no acknowledged update lost", the durability headline.
#
#   B  restart on the recovered deployment with starvation budgets and
#      2x the traffic, assert overload shows up as load shedding
#      (RETRY_AFTER) and degraded (category-only) answers rather than
#      collapse, SIGTERM the server and assert a clean drain (exit 0,
#      SERVE_DRAINED, final checkpoint), then recover-check once more.
#
# Usage: serve_smoke.sh <dsig_serve> <dsig_loadgen> [workdir]
set -u

SERVE="$1"
LOADGEN="$2"
WORK="${3:-$(mktemp -d)}"
mkdir -p "$WORK"
DIR="$WORK/deploy"
SERVER_PID=""

fail() {
  echo "SERVE_SMOKE FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    [ -f "$log" ] && { echo "--- $log"; tail -20 "$log"; } >&2
  done
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  exit 1
}

# Scrape "key=value" off a LOADGEN_SUMMARY / RECOVER_OK line.
scrape() { # file key
  grep -o "$2=[^ ]*" "$1" | head -1 | cut -d= -f2
}

wait_port() { # port-file
  for _ in $(seq 1 300); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  return 1
}

# ---- Leg A: traffic, kill -9, recovery oracle -------------------------------
rm -rf "$DIR"
mkdir -p "$DIR"
rm -f "$WORK/port"
# Launched directly (not via a compound command) so $! is the server itself,
# which is what kill -9 must hit.
"$SERVE" --dir="$DIR" --nodes=3000 --checkpoint-interval=32 \
  --port-file="$WORK/port" >"$WORK/serve_a.log" 2>&1 &
SERVER_PID=$!
wait_port "$WORK/port" || fail "server A never published its port"

"$LOADGEN" --port-file="$WORK/port" --rate=300 --duration-s=2 --threads=4 \
  --deadline-ms=200 --update-fraction=0.15 --seed=11 \
  --report="$WORK/serve_report.json" >"$WORK/loadgen_a.log" 2>&1 \
  || fail "loadgen A exited nonzero"

completed=$(scrape "$WORK/loadgen_a.log" completed)
protocol_errors=$(scrape "$WORK/loadgen_a.log" protocol_errors)
max_acked_seq=$(scrape "$WORK/loadgen_a.log" max_acked_seq)
[ -n "$completed" ] || fail "no LOADGEN_SUMMARY in leg A"
[ "$completed" -gt 0 ] || fail "leg A completed nothing"
[ "$protocol_errors" -eq 0 ] || fail "leg A protocol_errors=$protocol_errors"
[ "$max_acked_seq" -gt 0 ] || fail "leg A acked no updates"
[ -s "$WORK/serve_report.json" ] || fail "loadgen wrote no report"

kill -9 "$SERVER_PID" 2>/dev/null || fail "server A already gone before kill -9"
wait "$SERVER_PID" 2>/dev/null
SERVER_PID=""

"$SERVE" --dir="$DIR" --recover-check >"$WORK/recover_a.log" 2>&1 \
  || fail "recover-check after kill -9 failed"
grep -q RECOVER_OK "$WORK/recover_a.log" || fail "no RECOVER_OK after kill -9"
last_seq=$(scrape "$WORK/recover_a.log" last_seq)
[ "$last_seq" -ge "$max_acked_seq" ] \
  || fail "acknowledged update lost: recovered seq $last_seq < acked $max_acked_seq"
echo "leg A ok: completed=$completed acked_seq=$max_acked_seq recovered_seq=$last_seq"

# ---- Leg B: overload + graceful drain ---------------------------------------
# Overload is statistical; retry the leg a few times before declaring the
# server refuses to shed.
for attempt in 1 2 3; do
  rm -f "$WORK/port"
  "$SERVE" --dir="$DIR" --port-file="$WORK/port" \
    --max-inflight=1 --max-queue=2 --retry-after-base-ms=5 \
    --degrade-fraction=0.25 >"$WORK/serve_b.log" 2>&1 &
  SERVER_PID=$!
  wait_port "$WORK/port" || fail "server B never published its port"

  # More connections (8) than slot + queue (1 + 2), and a join-heavy mix so
  # requests are slow enough to pile up: whenever four senders overlap, the
  # fourth is shed. The single slot makes overload structural, not timing.
  "$LOADGEN" --port-file="$WORK/port" --rate=1000 --duration-s=2 --threads=8 \
    --join-fraction=0.25 --deadline-ms=50 --max-retries=1 \
    --seed=$((attempt * 13)) \
    >"$WORK/loadgen_b.log" 2>&1 || fail "loadgen B exited nonzero"

  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID"
  rc=$?
  SERVER_PID=""
  [ "$rc" -eq 0 ] || fail "server B exited $rc after SIGTERM"
  grep -q SERVE_DRAINED "$WORK/serve_b.log" || fail "server B drained without SERVE_DRAINED"

  shed=$(scrape "$WORK/loadgen_b.log" shed)
  degraded=$(scrape "$WORK/loadgen_b.log" degraded)
  b_protocol_errors=$(scrape "$WORK/loadgen_b.log" protocol_errors)
  [ "$b_protocol_errors" -eq 0 ] || fail "leg B protocol_errors=$b_protocol_errors"
  if [ "$shed" -gt 0 ] && [ "$degraded" -gt 0 ]; then
    break
  fi
  [ "$attempt" -lt 3 ] || fail "no overload after 3 attempts (shed=$shed degraded=$degraded)"
done
echo "leg B ok: shed=$shed degraded=$degraded"

"$SERVE" --dir="$DIR" --recover-check >"$WORK/recover_b.log" 2>&1 \
  || fail "final recover-check failed"
grep -q RECOVER_OK "$WORK/recover_b.log" || fail "no RECOVER_OK after drain"

echo "SERVE_SMOKE OK"
