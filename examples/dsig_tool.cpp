// dsig_tool — command-line front end for building, persisting, and querying
// signature indexes. Demonstrates the persistence API end to end.
//
// Commands:
//   generate  --network=<file> [--nodes=N] [--kind=planar|continental] [--seed=S]
//   build     --network=<file> --index=<file> [--density=p] [--t=T] [--c=C]
//   info      --network=<file> --index=<file>
//   knn       --network=<file> --index=<file> --node=<id> [--k=K]
//   range     --network=<file> --index=<file> --node=<id> [--radius=R]
//
// Example session:
//   dsig_tool generate --network=/tmp/city.net --nodes=5000
//   dsig_tool build    --network=/tmp/city.net --index=/tmp/city.idx
//   dsig_tool knn      --network=/tmp/city.net --index=/tmp/city.idx --node=42
#include <cstdio>
#include <string>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "io/persistence.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workload/dataset_generator.h"

namespace {

using namespace dsig;

int Usage() {
  std::fprintf(stderr,
               "usage: dsig_tool <generate|build|info|knn|range> [flags]\n"
               "see the header of examples/dsig_tool.cpp for details\n");
  return 1;
}

int Generate(const Flags& flags) {
  const std::string path = flags.GetString("network", "");
  if (path.empty()) return Usage();
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 5000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string kind = flags.GetString("kind", "planar");
  RoadNetwork graph;
  if (kind == "continental") {
    graph = MakeClusteredContinental(
        {.num_clusters = std::max<size_t>(2, nodes / 1000),
         .nodes_per_cluster = 1000,
         .seed = seed});
  } else {
    graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  }
  if (!SaveRoadNetwork(graph, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu junctions, %zu segments\n", path.c_str(),
              graph.num_nodes(), graph.num_edges());
  return 0;
}

int Build(const Flags& flags) {
  const std::string network_path = flags.GetString("network", "");
  const std::string index_path = flags.GetString("index", "");
  if (network_path.empty() || index_path.empty()) return Usage();
  const auto graph = LoadRoadNetwork(network_path);
  if (graph == nullptr) {
    std::fprintf(stderr, "cannot load %s\n", network_path.c_str());
    return 1;
  }
  const double density = flags.GetDouble("density", 0.01);
  const std::vector<NodeId> objects = UniformDataset(
      *graph, density, static_cast<uint64_t>(flags.GetInt("seed", 43)));
  Timer timer;
  const auto index = BuildSignatureIndex(
      *graph, objects,
      {.t = flags.GetDouble("t", 10.0),
       .c = flags.GetDouble("c", 2.718281828),
       .keep_forest = false});
  std::printf("built index over %zu objects in %.2fs (%.1f KB)\n",
              objects.size(), timer.ElapsedSeconds(),
              static_cast<double>(index->IndexBytes()) / 1024.0);
  if (!SaveSignatureIndex(*index, index_path)) {
    std::fprintf(stderr, "cannot write %s\n", index_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", index_path.c_str());
  return 0;
}

struct Loaded {
  std::unique_ptr<RoadNetwork> graph;
  std::unique_ptr<SignatureIndex> index;
};

Loaded LoadBoth(const Flags& flags) {
  Loaded loaded;
  loaded.graph = LoadRoadNetwork(flags.GetString("network", ""));
  if (loaded.graph == nullptr) {
    std::fprintf(stderr, "cannot load network\n");
    return loaded;
  }
  loaded.index =
      LoadSignatureIndex(*loaded.graph, flags.GetString("index", ""));
  if (loaded.index == nullptr) {
    std::fprintf(stderr, "cannot load index (wrong network?)\n");
  }
  return loaded;
}

int Info(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags);
  if (loaded.index == nullptr) return 1;
  const SignatureSizeStats& s = loaded.index->size_stats();
  std::printf("network : %zu junctions, %zu segments\n",
              loaded.graph->num_nodes(), loaded.graph->num_edges());
  std::printf("objects : %zu\n", loaded.index->num_objects());
  std::printf("categories: %d (T=%.1f, c=%.3f)\n",
              loaded.index->partition().num_categories(),
              loaded.index->partition().t(), loaded.index->partition().c());
  std::printf("size    : %.1f KB stored (raw %.1f KB, encoded %.1f KB)\n",
              static_cast<double>(s.compressed_bits) / 8 / 1024.0,
              static_cast<double>(s.raw_bits) / 8 / 1024.0,
              static_cast<double>(s.encoded_bits) / 8 / 1024.0);
  std::printf("compressed entries: %.0f%%\n",
              100.0 * static_cast<double>(s.compressed_entries) /
                  static_cast<double>(s.entries));
  return 0;
}

int Knn(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags);
  if (loaded.index == nullptr) return 1;
  const NodeId node = static_cast<NodeId>(flags.GetInt("node", 0));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  if (node >= loaded.graph->num_nodes()) {
    std::fprintf(stderr, "node out of range\n");
    return 1;
  }
  const KnnResult result =
      SignatureKnnQuery(*loaded.index, node, k, KnnResultType::kType1);
  std::printf("%zu nearest objects from node %u:\n", result.objects.size(),
              node);
  for (size_t i = 0; i < result.objects.size(); ++i) {
    std::printf("  #%u at node %u, distance %.0f\n", result.objects[i],
                loaded.index->object_node(result.objects[i]),
                result.distances[i]);
  }
  return 0;
}

int Range(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags);
  if (loaded.index == nullptr) return 1;
  const NodeId node = static_cast<NodeId>(flags.GetInt("node", 0));
  const Weight radius = flags.GetDouble("radius", 50.0);
  if (node >= loaded.graph->num_nodes()) {
    std::fprintf(stderr, "node out of range\n");
    return 1;
  }
  const RangeQueryResult result =
      SignatureRangeQuery(*loaded.index, node, radius);
  std::printf("%zu objects within %.0f of node %u (refined %zu)\n",
              result.objects.size(), radius, node, result.refined);
  for (const uint32_t o : result.objects) {
    std::printf("  #%u at node %u\n", o, loaded.index->object_node(o));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv);
  if (command == "generate") return Generate(flags);
  if (command == "build") return Build(flags);
  if (command == "info") return Info(flags);
  if (command == "knn") return Knn(flags);
  if (command == "range") return Range(flags);
  return Usage();
}
