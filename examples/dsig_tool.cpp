// dsig_tool — command-line front end for building, persisting, verifying,
// and querying signature indexes. Demonstrates the persistence API end to
// end, including its corruption handling.
//
// Commands:
//   generate  --network=<file> [--nodes=N] [--kind=planar|continental] [--seed=S]
//   build     --network=<file> --index=<file> [--density=p] [--t=T] [--c=C]
//             [--threads=N] [--labels]
//   info      --network=<file> --index=<file>
//   verify    --network=<file> --index=<file>
//   corrupt   --file=<file> --offset=<byte> [--xor=mask] [--truncate]
//   knn       --network=<file> --index=<file> --node=<id> [--k=K]
//   range     --network=<file> --index=<file> --node=<id> [--radius=R]
//   stats     --network=<file> --index=<file> [--queries=N] [--k=K]
//             [--radius=R] [--threads=N] [--cache-kb=N] [--updates=N]
//             [--format=json|prometheus]
//   chaos     --dir=<dir> [--nodes=N] [--updates=N] [--threads=N]
//             [--crash-at=BYTE] [--checkpoint-interval=N] [--seed=S]
//   slo       --port=P | --port-file=PATH  [--probe=N] [--out=FILE]
//             [--timeout-ms=2000]
//
// `build --threads=N` runs the construction pipeline on N worker threads
// (0 = all hardware threads); the built index is byte-identical at every N.
// `build --labels` additionally constructs the exact-distance hub-label
// tier (core/hub_labels.h) and persists it as the optional section of the
// index file; `info` and `stats` report it (label entry counts, bytes, and
// the labels.* gauges in the registry dump), and files built without it
// keep loading unchanged.
// `stats --threads=N` serves the query workload through the parallel batch
// driver on N threads; `--cache-kb` sizes the decoded-row LRU (0 disables
// it). The dumped registry includes the pool ("pool.*") and row-cache
// ("rowcache.*", with hit_rate) metrics next to the buffer and op counters.
//
// `stats --updates=N` first drives N random live updates through
// SignatureUpdater (rebuilding the spanning forest on load), so the
// update.* counters and epoch gauges appear in the dump alongside the query
// metrics. `chaos` is the command-line face of the update/query chaos
// harness: it builds a throwaway deployment in --dir, hammers it with a
// random update storm under the WAL while query threads run concurrently,
// optionally injects a crash at WAL byte --crash-at, then hard-drops the
// process state, recovers from disk, deep-verifies the recovered index, and
// dumps the wal.*/update.* metrics.
//
// Global flags (any command):
//   --trace            emit one JSON trace line per query to stderr
//   --log-level=LEVEL  minimum DSIG_LOG severity (debug|info|warning|error)
//
// `slo` asks a running dsig_serve for its SLO health: prints the greppable
// SLO_HEALTH / SLO_OVERALL lines (per-class burn-rate state) and, with
// --out, archives the machine-readable health report (the kStats JSON:
// metrics registry + SLO engine) to a file. --probe=N first issues N cheap
// kNN queries so an idle server has fresh traffic in its windows.
//
// `verify` loads the index and runs the deep integrity check
// (SignatureIndex::Verify): exit 0 = clean, nonzero = corrupt, with the
// violation printed. `corrupt` deliberately damages a file in place — XOR a
// mask into one byte (negative offsets count from the end) or truncate — so
// the corruption handling can be exercised from the shell.
//
// Example session:
//   dsig_tool generate --network=/tmp/city.net --nodes=5000
//   dsig_tool build    --network=/tmp/city.net --index=/tmp/city.idx
//   dsig_tool verify   --network=/tmp/city.net --index=/tmp/city.idx
//   dsig_tool corrupt  --file=/tmp/city.idx --offset=-100 --xor=0x40
//   dsig_tool verify   --network=/tmp/city.net --index=/tmp/city.idx  # fails
//   dsig_tool stats    --network=/tmp/city.net --index=/tmp/city.idx --trace
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "core/hub_labels.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "io/persistence.h"
#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/simd_metrics.h"
#include "obs/trace.h"
#include "query/batch.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "serve/loadgen.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/simd/simd.h"
#include "util/timer.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace {

using namespace dsig;

int Usage() {
  std::fprintf(
      stderr,
      "usage: dsig_tool "
      "<generate|build|info|verify|corrupt|knn|range|stats|chaos|slo> "
      "[flags]\n"
      "global flags: --trace --log-level=<debug|info|warning|error>\n"
      "see the header of examples/dsig_tool.cpp for details\n");
  return 1;
}

int Generate(const Flags& flags) {
  const std::string path = flags.GetString("network", "");
  if (path.empty()) return Usage();
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 5000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string kind = flags.GetString("kind", "planar");
  RoadNetwork graph;
  if (kind == "continental") {
    graph = MakeClusteredContinental(
        {.num_clusters = std::max<size_t>(2, nodes / 1000),
         .nodes_per_cluster = 1000,
         .seed = seed});
  } else {
    graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  }
  const Status status = SaveRoadNetwork(graph, path);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu junctions, %zu segments\n", path.c_str(),
              graph.num_nodes(), graph.num_edges());
  return 0;
}

int Build(const Flags& flags) {
  const std::string network_path = flags.GetString("network", "");
  const std::string index_path = flags.GetString("index", "");
  if (network_path.empty() || index_path.empty()) return Usage();
  auto graph = LoadRoadNetwork(network_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", network_path.c_str(),
                 graph.status().ToString().c_str());
    return 1;
  }
  const double density = flags.GetDouble("density", 0.01);
  const std::vector<NodeId> objects = UniformDataset(
      **graph, density, static_cast<uint64_t>(flags.GetInt("seed", 43)));
  Timer timer;
  const auto index = BuildSignatureIndex(
      **graph, objects,
      {.t = flags.GetDouble("t", 10.0),
       .c = flags.GetDouble("c", 2.718281828),
       .keep_forest = false,
       .num_threads = static_cast<size_t>(flags.GetInt("threads", 0))});
  std::printf("built index over %zu objects in %.2fs (%.1f KB)\n",
              objects.size(), timer.ElapsedSeconds(),
              static_cast<double>(index->IndexBytes()) / 1024.0);
  if (flags.GetBool("labels", false)) {
    Timer label_timer;
    index->set_hub_labels(
        HubLabels::Build(**graph, {}, &ThreadPool::Global()));
    const HubLabelStats ls = index->hub_labels()->stats();
    std::printf(
        "built hub labels in %.2fs: %llu entries "
        "(%.1f/node, %.1f KB, %llu pruned settles)\n",
        label_timer.ElapsedSeconds(),
        static_cast<unsigned long long>(ls.entries), ls.avg_label_entries,
        static_cast<double>(ls.bytes) / 1024.0,
        static_cast<unsigned long long>(ls.pruned_settles));
  }
  const Status status = SaveSignatureIndex(*index, index_path);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", index_path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", index_path.c_str());
  return 0;
}

struct Loaded {
  std::unique_ptr<RoadNetwork> graph;
  std::unique_ptr<SignatureIndex> index;
};

Loaded LoadBoth(const Flags& flags, bool verify = false) {
  Loaded loaded;
  auto graph = LoadRoadNetwork(flags.GetString("network", ""));
  if (!graph.ok()) {
    std::fprintf(stderr, "cannot load network: %s\n",
                 graph.status().ToString().c_str());
    return loaded;
  }
  loaded.graph = std::move(*graph);
  auto index = LoadSignatureIndex(*loaded.graph, flags.GetString("index", ""),
                                  {.verify = verify, .faults = {}});
  if (!index.ok()) {
    std::fprintf(stderr, "cannot load index: %s\n",
                 index.status().ToString().c_str());
    return loaded;
  }
  loaded.index = std::move(*index);
  return loaded;
}

int Info(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags);
  if (loaded.index == nullptr) return 1;
  const SignatureSizeStats& s = loaded.index->size_stats();
  std::printf("network : %zu junctions, %zu segments\n",
              loaded.graph->num_nodes(), loaded.graph->num_edges());
  std::printf("objects : %zu\n", loaded.index->num_objects());
  std::printf("categories: %d (T=%.1f, c=%.3f)\n",
              loaded.index->partition().num_categories(),
              loaded.index->partition().t(), loaded.index->partition().c());
  std::printf("size    : %.1f KB stored (raw %.1f KB, encoded %.1f KB)\n",
              static_cast<double>(s.compressed_bits) / 8 / 1024.0,
              static_cast<double>(s.raw_bits) / 8 / 1024.0,
              static_cast<double>(s.encoded_bits) / 8 / 1024.0);
  std::printf("compressed entries: %.0f%%\n",
              100.0 * static_cast<double>(s.compressed_entries) /
                  static_cast<double>(s.entries));
  if (const HubLabels* labels = loaded.index->hub_labels();
      labels != nullptr && labels->ready()) {
    const HubLabelStats ls = labels->stats();
    std::printf("labels  : %llu entries (%.1f/node, %.1f KB)%s\n",
                static_cast<unsigned long long>(ls.entries),
                ls.avg_label_entries,
                static_cast<double>(ls.bytes) / 1024.0,
                labels->stale() ? " [stale]" : "");
  } else {
    std::printf("labels  : none\n");
  }
  return 0;
}

// Loads with LoadOptions::verify, so the checksums AND the deep structural
// invariants (decodability, link chains, categories) are all proven.
int Verify(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags, /*verify=*/true);
  if (loaded.index == nullptr) return 1;
  std::printf("index is clean: %zu rows over %zu objects verified\n",
              loaded.graph->num_nodes(), loaded.index->num_objects());
  return 0;
}

// Damages a file in place: XORs --xor (default 0x01) into the byte at
// --offset (negative = from the end), or cuts the file off there when
// --truncate is given.
int Corrupt(const Flags& flags) {
  const std::string path = flags.GetString("file", "");
  if (path.empty() || !flags.Has("offset")) return Usage();
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  int64_t offset = flags.GetInt("offset", 0);
  if (offset < 0) offset += size;
  if (offset < 0 || offset >= size) {
    std::fprintf(stderr, "offset out of range (file has %ld bytes)\n", size);
    std::fclose(file);
    return 1;
  }
  if (flags.GetBool("truncate", false)) {
    std::fclose(file);
    // Rewrite the prefix: portable truncation without ftruncate.
    std::FILE* in = std::fopen(path.c_str(), "rb");
    std::string prefix(static_cast<size_t>(offset), '\0');
    const size_t got = std::fread(prefix.data(), 1, prefix.size(), in);
    std::fclose(in);
    std::FILE* out = std::fopen(path.c_str(), "wb");
    std::fwrite(prefix.data(), 1, got, out);
    std::fclose(out);
    std::printf("truncated %s to %lld bytes\n", path.c_str(),
                static_cast<long long>(offset));
    return 0;
  }
  const uint8_t mask =
      static_cast<uint8_t>(flags.GetInt("xor", 0x01) & 0xFF);
  std::fseek(file, static_cast<long>(offset), SEEK_SET);
  uint8_t byte = 0;
  if (std::fread(&byte, 1, 1, file) != 1) {
    std::fclose(file);
    std::fprintf(stderr, "cannot read byte %lld\n",
                 static_cast<long long>(offset));
    return 1;
  }
  byte ^= mask;
  std::fseek(file, static_cast<long>(offset), SEEK_SET);
  std::fwrite(&byte, 1, 1, file);
  std::fclose(file);
  std::printf("flipped byte %lld of %s with mask 0x%02x\n",
              static_cast<long long>(offset), path.c_str(), mask);
  return 0;
}

int Knn(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags);
  if (loaded.index == nullptr) return 1;
  const NodeId node = static_cast<NodeId>(flags.GetInt("node", 0));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  if (node >= loaded.graph->num_nodes()) {
    std::fprintf(stderr, "node out of range\n");
    return 1;
  }
  const KnnResult result =
      SignatureKnnQuery(*loaded.index, node, k, KnnResultType::kType1);
  std::printf("%zu nearest objects from node %u:\n", result.objects.size(),
              node);
  for (size_t i = 0; i < result.objects.size(); ++i) {
    std::printf("  #%u at node %u, distance %.0f\n", result.objects[i],
                loaded.index->object_node(result.objects[i]),
                result.distances[i]);
  }
  return 0;
}

int Range(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags);
  if (loaded.index == nullptr) return 1;
  const NodeId node = static_cast<NodeId>(flags.GetInt("node", 0));
  const Weight radius = flags.GetDouble("radius", 50.0);
  if (node >= loaded.graph->num_nodes()) {
    std::fprintf(stderr, "node out of range\n");
    return 1;
  }
  const RangeQueryResult result =
      SignatureRangeQuery(*loaded.index, node, radius);
  std::printf("%zu objects within %.0f of node %u (refined %zu)\n",
              result.objects.size(), radius, node, result.refined);
  for (const uint32_t o : result.objects) {
    std::printf("  #%u at node %u\n", o, loaded.index->object_node(o));
  }
  return 0;
}

// Runs a small in-process query workload against the loaded index, then
// dumps the process-wide metrics registry — counters, gauges, and latency
// histograms — as JSON (default) or Prometheus text.
int Stats(const Flags& flags) {
  const Loaded loaded = LoadBoth(flags);
  if (loaded.index == nullptr) return 1;
  const size_t num_queries =
      static_cast<size_t>(flags.GetInt("queries", 10));
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const Weight radius = flags.GetDouble("radius", 100.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 44));

  if (flags.Has("cache-kb")) {
    loaded.index->ConfigureRowCache(
        {.byte_budget =
             static_cast<size_t>(flags.GetInt("cache-kb", 0)) * 1024});
  }

  // Optional live-update leg: drive random mutations through the updater so
  // the update.* counters and epoch gauges show up in the dump.
  const int num_updates = static_cast<int>(flags.GetInt("updates", 0));
  if (num_updates > 0) {
    loaded.index->RebuildForest();  // persistence does not store the forest
    SignatureUpdater updater(loaded.graph.get(), loaded.index.get());
    Random rng(seed + 17);
    for (int i = 0; i < num_updates; ++i) {
      if (rng.NextBool(0.3)) {
        const NodeId u = static_cast<NodeId>(
            rng.NextUint64(loaded.graph->num_nodes()));
        NodeId v =
            static_cast<NodeId>(rng.NextUint64(loaded.graph->num_nodes()));
        if (u == v) {
          v = (v + 1) % static_cast<NodeId>(loaded.graph->num_nodes());
        }
        updater.AddEdge(u, v, rng.NextInt(1, 10));
      } else {
        const EdgeId e = static_cast<EdgeId>(
            rng.NextUint64(loaded.graph->num_edge_slots()));
        if (loaded.graph->edge_removed(e)) continue;
        updater.SetEdgeWeight(e, rng.NextInt(1, 10));
      }
    }
    loaded.index->ReclaimRetiredRows();  // freshen the epoch gauges
  }

  const std::vector<NodeId> queries =
      RandomQueryNodes(*loaded.graph, num_queries, seed);
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 1));
  if (threads > 1) {
    ThreadPool pool(threads);
    RunBatch(
        queries.size(),
        [&](size_t i) {
          SignatureKnnQuery(*loaded.index, queries[i], k,
                            KnnResultType::kType1);
          SignatureRangeQuery(*loaded.index, queries[i], radius);
        },
        {.pool = &pool});
  } else {
    for (const NodeId q : queries) {
      SignatureKnnQuery(*loaded.index, q, k, KnnResultType::kType1);
      SignatureRangeQuery(*loaded.index, q, radius);
    }
  }
  PublishOpCounters();
  obs::PublishBufferPoolMetrics();
  obs::PublishThreadPoolMetrics();
  PublishRowCacheMetrics();
  obs::PublishSimdMetrics();
  PublishHubLabelMetrics(loaded.index->hub_labels());
  // Human-readable dispatch line on stderr; stdout stays machine-readable.
  std::fprintf(stderr, "simd: %s\n", simd::CpuFeatureString().c_str());

  const std::string format = flags.GetString("format", "json");
  if (format == "prometheus") {
    std::fputs(obs::MetricsRegistry::Global().ToPrometheusText().c_str(),
               stdout);
  } else if (format == "json") {
    std::printf("%s\n", obs::MetricsRegistry::Global().ToJson().c_str());
  } else {
    std::fprintf(stderr, "unknown --format=%s (json|prometheus)\n",
                 format.c_str());
    return 1;
  }
  return 0;
}

// Update/query chaos driver over the durable-update protocol: a random
// update storm runs through the WAL while query threads hammer the index,
// an optional injected crash tears the log at --crash-at, and the run ends
// with a hard drop of all process state followed by recovery plus deep
// verification — the same contract tests/update_chaos_test.cc proves
// exhaustively, runnable against arbitrary sizes from the shell.
int Chaos(const Flags& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Usage();
  std::filesystem::create_directories(dir);
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 400));
  const int updates = static_cast<int>(flags.GetInt("updates", 200));
  const size_t threads = static_cast<size_t>(flags.GetInt("threads", 2));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  RoadNetwork graph = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.02, seed);
  auto index = BuildSignatureIndex(graph, objects, {.t = 8, .c = 2});
  std::printf("deployment: %zu junctions, %zu objects, index %.1f KB\n",
              graph.num_nodes(), objects.size(),
              static_cast<double>(index->IndexBytes()) / 1024.0);

  DurableOptions options;
  options.checkpoint_interval =
      static_cast<uint64_t>(flags.GetInt("checkpoint-interval", 0));
  if (flags.Has("crash-at")) {
    options.wal_faults.fail_at =
        static_cast<uint64_t>(flags.GetInt("crash-at", 0));
  }
  auto live = DurableUpdater::Initialize(dir, &graph, index.get(), options);
  if (!live.ok()) {
    std::fprintf(stderr, "cannot initialize %s: %s\n", dir.c_str(),
                 live.status().ToString().c_str());
    return 1;
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> queries_served{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      Random rng(seed * 31 + t);
      while (!done.load(std::memory_order_relaxed)) {
        const NodeId n =
            static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
        SignatureKnnQuery(*index, n, 4, KnnResultType::kType1);
        queries_served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Random rng(seed + 1);
  int applied = 0;
  Status crash = Status::Ok();
  for (int i = 0; i < updates; ++i) {
    UpdateRecord record;
    const double roll = rng.NextDouble();
    if (roll < 0.4) {
      const NodeId u = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
      if (u == v) v = (v + 1) % static_cast<NodeId>(graph.num_nodes());
      record = UpdateRecord::Add(u, v, rng.NextInt(1, 10));
    } else {
      const EdgeId e =
          static_cast<EdgeId>(rng.NextUint64(graph.num_edge_slots()));
      if (graph.edge_removed(e)) continue;
      record = roll < 0.45 ? UpdateRecord::Remove(e)
                           : UpdateRecord::SetWeight(e, rng.NextInt(1, 10));
    }
    const auto result = (*live)->Apply(record);
    if (!result.ok()) {
      crash = result.status();
      break;
    }
    ++applied;
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  std::printf("storm   : %d/%d updates applied, %llu concurrent queries\n",
              applied, updates,
              static_cast<unsigned long long>(queries_served.load()));
  if (!crash.ok()) {
    std::printf("crash   : %s\n", crash.ToString().c_str());
  }

  // Hard crash: discard all in-memory state, then recover from disk alone.
  live->reset();
  index.reset();
  RecoverOptions verify;
  verify.verify = true;
  auto recovered = DurableUpdater::Recover(dir, {}, verify);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery FAILED: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "recovery: checkpoint seq %llu + %llu replayed records, "
      "index verified clean\n",
      static_cast<unsigned long long>(recovered->updater->checkpoint_seq()),
      static_cast<unsigned long long>(recovered->replayed_records));

  recovered->index->ReclaimRetiredRows();
  PublishOpCounters();
  std::printf("%s\n", obs::MetricsRegistry::Global().ToJson().c_str());
  return 0;
}

// SLO health of a running dsig_serve: greppable text to stdout, optional
// machine-readable report (the kStats JSON) to --out. Exit 0 whenever the
// fetch succeeds — health state is data, not an exit code; the smoke
// harness asserts on the printed lines.
int Slo(const Flags& flags) {
  uint16_t port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const std::string port_file = flags.GetString("port-file", "");
  if (port == 0 && !port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot read --port-file=%s\n", port_file.c_str());
      return 1;
    }
    unsigned parsed = 0;
    if (std::fscanf(f, "%u", &parsed) != 1) {
      std::fclose(f);
      std::fprintf(stderr, "no port in %s\n", port_file.c_str());
      return 1;
    }
    std::fclose(f);
    port = static_cast<uint16_t>(parsed);
  }
  if (port == 0) return Usage();
  const double timeout_ms = flags.GetDouble("timeout-ms", 2000);

  serve::ServeClient client;
  const Status connected = client.Connect(port, timeout_ms);
  if (!connected.ok()) {
    std::fprintf(stderr, "cannot connect to 127.0.0.1:%u: %s\n", port,
                 connected.ToString().c_str());
    return 1;
  }

  // Warm the windows with cheap traffic so an idle server reports on
  // something fresher than silence.
  const int probes = static_cast<int>(flags.GetInt("probe", 0));
  if (probes > 0) {
    serve::Request ping;
    ping.type = serve::RequestType::kPing;
    ping.id = 1;
    auto pong = client.Call(ping);
    if (!pong.ok() || (*pong).num_nodes == 0) {
      std::fprintf(stderr, "probe ping failed\n");
      return 1;
    }
    Random rng(17);
    for (int i = 0; i < probes; ++i) {
      serve::Request probe;
      probe.type = serve::RequestType::kKnn;
      probe.id = 100 + static_cast<uint64_t>(i);
      probe.node = static_cast<uint32_t>(rng.NextUint64((*pong).num_nodes));
      probe.k = 4;
      (void)client.Call(probe);
    }
  }

  serve::Request slo;
  slo.type = serve::RequestType::kSlo;
  slo.id = 2;
  auto health = client.Call(slo);
  if (!health.ok()) {
    std::fprintf(stderr, "slo request failed: %s\n",
                 health.status().ToString().c_str());
    return 1;
  }
  std::fputs((*health).text.c_str(), stdout);

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    serve::Request stats;
    stats.type = serve::RequestType::kStats;
    stats.id = 3;
    auto report = client.Call(stats);
    if (!report.ok()) {
      std::fprintf(stderr, "stats request failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::fputs((*report).text.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv);
  if (flags.Has("log-level")) {
    LogSeverity severity;
    if (!ParseLogSeverity(flags.GetString("log-level", ""), &severity)) {
      std::fprintf(stderr, "unknown --log-level=%s\n",
                   flags.GetString("log-level", "").c_str());
      return 1;
    }
    SetMinLogSeverity(severity);
  }
  if (flags.GetBool("trace", false)) obs::SetTracingEnabled(true);
  if (command == "generate") return Generate(flags);
  if (command == "build") return Build(flags);
  if (command == "info") return Info(flags);
  if (command == "verify") return Verify(flags);
  if (command == "corrupt") return Corrupt(flags);
  if (command == "knn") return Knn(flags);
  if (command == "range") return Range(flags);
  if (command == "stats") return Stats(flags);
  if (command == "chaos") return Chaos(flags);
  if (command == "slo") return Slo(flags);
  return Usage();
}
