// dsig_loadgen: open-loop load generator for dsig_serve.
//
// Drives Poisson traffic (kNN / range / join / updates) at a target rate
// against a running server, with per-request deadlines, client-side
// timeouts, and decorrelated-jitter retries honouring RETRY_AFTER — a
// well-behaved production client in miniature. See serve/loadgen.h.
//
//   $ ./dsig_loadgen --port=PORT [--rate=200] [--duration-s=5] [--threads=4]
//                    [--update-fraction=0.1] [--deadline-ms=100]
//                    [--timeout-ms=1000] [--max-retries=3] [--seed=42]
//                    [--backoff-base-ms=10] [--backoff-cap-ms=1000]
//                    [--tenants=name:id:rate,name:id:rate,...]
//                    [--knn-k=8] [--epsilon=0] [--report=serve_report.json]
//
// --port-file=PATH reads the port dsig_serve wrote. --tenants runs one
// open-loop generator per entry (tenant wire id + its own rate, overriding
// --rate) — the two-tenant isolation harness in examples/serve_smoke.sh is
// the canonical use. Prints one greppable LOADGEN_SUMMARY line plus one
// TENANT_SUMMARY line per tenant; exits 1 only on setup failure (cannot
// reach the server at all) — traffic-level assertions belong to the caller.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "serve/loadgen.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dsig;

  const Flags flags(argc, argv);
  serve::LoadgenOptions options;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const std::string port_file = flags.GetString("port-file", "");
  if (options.port == 0 && !port_file.empty()) {
    std::ifstream in(port_file);
    unsigned port = 0;
    in >> port;
    options.port = static_cast<uint16_t>(port);
  }
  if (options.port == 0) {
    std::fprintf(stderr, "need --port or --port-file\n");
    return 1;
  }
  options.rate = flags.GetDouble("rate", 200);
  options.duration_s = flags.GetDouble("duration-s", 5);
  options.threads = static_cast<int>(flags.GetInt("threads", 4));
  options.update_fraction = flags.GetDouble("update-fraction", 0.1);
  options.join_fraction = flags.GetDouble("join-fraction", 0.02);
  options.deadline_ms = flags.GetDouble("deadline-ms", 100);
  options.timeout_ms = flags.GetDouble("timeout-ms", 1000);
  options.max_retries = static_cast<int>(flags.GetInt("max-retries", 3));
  options.backoff_base_ms = flags.GetDouble("backoff-base-ms", 10);
  options.backoff_cap_ms = flags.GetDouble("backoff-cap-ms", 1000);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.knn_k = static_cast<uint32_t>(flags.GetInt("knn-k", 8));
  options.epsilon = flags.GetDouble("epsilon", 0);
  options.report_path = flags.GetString("report", "");

  // Multi-tenant fan-out: "name:id:rate,..." — one generator per entry.
  const std::string tenant_spec = flags.GetString("tenants", "");
  if (!tenant_spec.empty()) {
    size_t start = 0;
    while (start <= tenant_spec.size()) {
      size_t comma = tenant_spec.find(',', start);
      if (comma == std::string::npos) comma = tenant_spec.size();
      const std::string entry = tenant_spec.substr(start, comma - start);
      start = comma + 1;
      if (entry.empty()) continue;
      const size_t c1 = entry.find(':');
      const size_t c2 = c1 == std::string::npos ? c1 : entry.find(':', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) {
        std::fprintf(stderr, "bad --tenants entry \"%s\" (name:id:rate)\n",
                     entry.c_str());
        return 1;
      }
      serve::TenantLoad tenant;
      tenant.name = entry.substr(0, c1);
      tenant.tenant_id =
          static_cast<uint32_t>(std::atoi(entry.substr(c1 + 1).c_str()));
      tenant.rate = std::atof(entry.substr(c2 + 1).c_str());
      if (tenant.name.empty() || tenant.rate <= 0) {
        std::fprintf(stderr, "bad --tenants entry \"%s\" (name:id:rate)\n",
                     entry.c_str());
        return 1;
      }
      options.tenants.push_back(std::move(tenant));
    }
  }

  auto report = serve::RunLoadgen(options);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", serve::FormatLoadgenSummary(*report).c_str());
  return 0;
}
