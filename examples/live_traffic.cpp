// Live traffic: crash-consistent incremental maintenance under edge updates
// (§5.4 + the WAL/checkpoint durability layer).
//
// A navigation service keeps a signature index over charging stations while
// road conditions change: congestion (weight increases), clearing
// (decreases), and a new bypass road (edge insertion). Every mutation is
// logged to a write-ahead log before the index is patched in place — only
// rows whose category or backtracking link changed are rewritten — with a
// periodic checkpoint truncating the log. kNN answers stay exact
// throughout, and --crash-after=N kills the in-memory state after N updates
// to demonstrate recovery: reload the checkpoint, replay the committed log
// tail, keep serving.
//
//   $ ./live_traffic [--nodes=5000] [--seed=42] [--dir=PATH]
//                    [--checkpoint-interval=25] [--crash-after=N]
#include <csignal>
#include <cstdio>
#include <filesystem>

#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "query/knn_query.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace {

// Graceful shutdown: SIGTERM/SIGINT stop the update loop at the next safe
// point; main then writes a final checkpoint and exits 0, so an operator
// stopping the demo never loses applied updates to WAL replay on restart.
volatile std::sig_atomic_t g_signal = 0;
void HandleSignal(int sig) { g_signal = sig; }

void PrintKnn(const dsig::SignatureIndex& index, dsig::NodeId car,
              const char* moment) {
  const dsig::KnnResult r =
      SignatureKnnQuery(index, car, 3, dsig::KnnResultType::kType1);
  std::printf("%s — 3 nearest charging stations from node %u:\n", moment,
              car);
  for (size_t i = 0; i < r.objects.size(); ++i) {
    std::printf("  station #%u at node %u, %.0f units away\n", r.objects[i],
                index.object_node(r.objects[i]), r.distances[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsig;

  // Installed before the (potentially slow) build phase: a signal during
  // startup makes the update loop exit at its first check and drain, rather
  // than killing the process with default disposition.
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  const Flags flags(argc, argv);
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 5000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int crash_after = static_cast<int>(flags.GetInt("crash-after", -1));
  const std::string dir = flags.GetString(
      "dir",
      (std::filesystem::temp_directory_path() / "live_traffic").string());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  RoadNetwork city = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  const std::vector<NodeId> stations = UniformDataset(city, 0.005, seed + 1);
  std::printf("city: %zu junctions, %zu charging stations\n",
              city.num_nodes(), stations.size());

  // keep_forest = true retains the per-object spanning trees the updater
  // needs (the paper's "intermediate results during signature construction").
  auto index = BuildSignatureIndex(
      city, stations, {.t = 10, .c = 2.718281828, .keep_forest = true});

  // Every mutation goes WAL-first; a checkpoint every N updates bounds
  // recovery replay. Queries keep running against epoch snapshots while
  // updates apply.
  DurableOptions options;
  options.checkpoint_interval =
      static_cast<uint64_t>(flags.GetInt("checkpoint-interval", 25));
  auto live = DurableUpdater::Initialize(dir, &city, index.get(), options);
  if (!live.ok()) {
    std::fprintf(stderr, "cannot initialize %s: %s\n", dir.c_str(),
                 live.status().ToString().c_str());
    return 1;
  }
  std::printf("durable deployment in %s (checkpoint every %llu updates)\n\n",
              dir.c_str(),
              static_cast<unsigned long long>(options.checkpoint_interval));

  const NodeId car = static_cast<NodeId>(nodes / 3);
  PrintKnn(*index, car, "08:00 (free flow)");

  // Rush hour: congestion doubles the cost of random roads, then the city
  // opens a bypass next to the car. Each change is durable before it is
  // visible.
  Random rng(seed + 9);
  size_t rows = 0;
  int applied = 0;
  bool crashed = false;
  DurableUpdater::Recovered recovered;  // keeps post-crash state alive
  DurableUpdater* updater = live->get();
  SignatureIndex* serving = index.get();
  RoadNetwork* roads = &city;
  for (int i = 0; i < 30 && g_signal == 0; ++i) {
    if (crash_after >= 0 && applied == crash_after && !crashed) {
      // Power loss: every in-memory structure is gone. Only the WAL,
      // checkpoints, and MANIFEST in `dir` survive.
      live->reset();
      index.reset();
      std::printf("\n!! crash after %d updates — recovering from %s\n",
                  applied, dir.c_str());
      RecoverOptions verify;
      verify.verify = true;
      auto rec = DurableUpdater::Recover(dir, options, verify);
      if (!rec.ok()) {
        std::fprintf(stderr, "recovery failed: %s\n",
                     rec.status().ToString().c_str());
        return 1;
      }
      recovered = std::move(rec).value();
      std::printf(
          "!! recovered: checkpoint seq %llu + %llu replayed records, "
          "index verified clean\n\n",
          static_cast<unsigned long long>(
              recovered.updater->checkpoint_seq()),
          static_cast<unsigned long long>(recovered.replayed_records));
      updater = recovered.updater.get();
      serving = recovered.index.get();
      roads = recovered.graph.get();
      crashed = true;
    }
    const EdgeId e =
        static_cast<EdgeId>(rng.NextUint64(roads->num_edge_slots()));
    if (roads->edge_removed(e)) continue;
    const auto stats =
        updater->SetEdgeWeight(e, roads->edge_weight(e) * 2);
    if (!stats.ok()) {
      std::fprintf(stderr, "update failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    rows += stats->rows_rewritten;
    ++applied;
  }
  if (g_signal != 0) {
    std::printf("\nsignal %d — draining: writing final checkpoint\n",
                static_cast<int>(g_signal));
    const Status checkpointed = updater->Checkpoint();
    if (!checkpointed.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   checkpointed.ToString().c_str());
      return 1;
    }
    std::printf("drained cleanly at checkpoint seq %llu\n",
                static_cast<unsigned long long>(updater->checkpoint_seq()));
    return 0;
  }

  std::printf("\n08:30 — %d roads congested; %zu signature rows patched "
              "(%.2f%% of the index)\n\n",
              applied, rows,
              100.0 * static_cast<double>(rows) /
                  static_cast<double>(roads->num_nodes() *
                                      static_cast<size_t>(applied)));
  PrintKnn(*serving, car, "08:30 (rush hour)");

  // The city opens a bypass next to the car.
  const NodeId other = (car + 17) % static_cast<NodeId>(roads->num_nodes());
  const auto bypass = updater->AddEdge(car, other, 1);
  if (!bypass.ok()) {
    std::fprintf(stderr, "update failed: %s\n",
                 bypass.status().ToString().c_str());
    return 1;
  }
  std::printf("\n09:00 — bypass %u-%u opened; %zu rows patched\n\n", car,
              other, bypass->rows_rewritten);
  PrintKnn(*serving, car, "09:00 (bypass open)");

  std::printf("\n%llu updates since the last checkpoint remain in the WAL\n",
              static_cast<unsigned long long>(
                  updater->records_since_checkpoint()));
  return 0;
}
