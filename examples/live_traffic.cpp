// Live traffic: incremental index maintenance under edge updates (§5.4).
//
// A navigation service keeps a signature index over charging stations while
// road conditions change: congestion (weight increases), clearing
// (decreases), and a new bypass road (edge insertion). The index is patched
// in place — only rows whose category or backtracking link changed are
// rewritten — and kNN answers stay exact throughout.
//
//   $ ./live_traffic [--nodes=5000] [--seed=42]
#include <cstdio>

#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "util/flags.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace {

void PrintKnn(const dsig::SignatureIndex& index, dsig::NodeId car,
              const char* moment) {
  const dsig::KnnResult r =
      SignatureKnnQuery(index, car, 3, dsig::KnnResultType::kType1);
  std::printf("%s — 3 nearest charging stations from node %u:\n", moment,
              car);
  for (size_t i = 0; i < r.objects.size(); ++i) {
    std::printf("  station #%u at node %u, %.0f units away\n", r.objects[i],
                index.object_node(r.objects[i]), r.distances[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsig;

  const Flags flags(argc, argv);
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 5000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  RoadNetwork city = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  const std::vector<NodeId> stations = UniformDataset(city, 0.005, seed + 1);
  std::printf("city: %zu junctions, %zu charging stations\n\n",
              city.num_nodes(), stations.size());

  // keep_forest = true retains the per-object spanning trees the updater
  // needs (the paper's "intermediate results during signature construction").
  auto index = BuildSignatureIndex(
      city, stations, {.t = 10, .c = 2.718281828, .keep_forest = true});
  SignatureUpdater updater(&city, index.get());

  const NodeId car = static_cast<NodeId>(nodes / 3);
  PrintKnn(*index, car, "08:00 (free flow)");

  // Rush hour: congestion doubles the cost of roads near the car.
  Random rng(seed + 9);
  size_t rows = 0, applied = 0;
  for (int i = 0; i < 30; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.NextUint64(city.num_edge_slots()));
    if (city.edge_removed(e)) continue;
    const UpdateStats stats =
        updater.SetEdgeWeight(e, city.edge_weight(e) * 2);
    rows += stats.rows_rewritten;
    ++applied;
  }
  std::printf("\n08:30 — %zu roads congested; %zu signature rows patched "
              "(%.2f%% of the index)\n\n",
              applied, rows,
              100.0 * static_cast<double>(rows) /
                  static_cast<double>(city.num_nodes() * applied));
  PrintKnn(*index, car, "08:30 (rush hour)");

  // The city opens a bypass next to the car.
  const NodeId other = (car + 17) % static_cast<NodeId>(city.num_nodes());
  const UpdateStats bypass = updater.AddEdge(car, other, 1);
  std::printf("\n09:00 — bypass %u-%u opened; %zu rows patched\n\n", car,
              other, bypass.rows_rewritten);
  PrintKnn(*index, car, "09:00 (bypass open)");
  return 0;
}
