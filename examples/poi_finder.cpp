// POI finder: kNN with full path information on a continental network.
//
// The paper's introduction faults solution-specific indexes (e.g. NN lists)
// for not even supporting "kNN queries with path information returned"; the
// signature's backtracking links give the path for free. This example finds
// the k nearest hospitals from a junction and prints each shortest path by
// following links.
//
//   $ ./poi_finder [--k=5] [--from=<node>] [--clusters=8] [--seed=42]
#include <cstdio>
#include <vector>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "util/flags.h"
#include "workload/dataset_generator.h"

namespace {

// Walks the backtracking links from `from` to the object's node.
std::vector<dsig::NodeId> PathToObject(const dsig::SignatureIndex& index,
                                       dsig::NodeId from, uint32_t object) {
  std::vector<dsig::NodeId> path = {from};
  dsig::NodeId at = from;
  while (at != index.object_node(object)) {
    const dsig::SignatureEntry entry = index.ReadEntry(at, object);
    const dsig::AdjacencyEntry& hop = index.graph().adjacency(at)[entry.link];
    at = hop.to;
    path.push_back(at);
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dsig;

  const Flags flags(argc, argv);
  const size_t k = static_cast<size_t>(flags.GetInt("k", 5));
  const size_t clusters = static_cast<size_t>(flags.GetInt("clusters", 8));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // A clustered "continent": dense cities joined by highways — the shape of
  // real road data like the Digital Chart of the World.
  const RoadNetwork graph = MakeClusteredContinental(
      {.num_clusters = clusters, .nodes_per_cluster = 600, .seed = seed});
  const std::vector<NodeId> hospitals = UniformDataset(graph, 0.005, seed + 1);
  std::printf("continent: %zu junctions in %zu cities; %zu hospitals\n",
              graph.num_nodes(), clusters, hospitals.size());

  const auto index = BuildSignatureIndex(
      graph, hospitals, {.t = 10, .c = 2.718281828, .keep_forest = false});

  const NodeId from = static_cast<NodeId>(
      flags.GetInt("from", static_cast<int64_t>(graph.num_nodes() / 2)));
  std::printf("query: %zu nearest hospitals from junction %u\n\n", k, from);

  const KnnResult result =
      SignatureKnnQuery(*index, from, k, KnnResultType::kType1);
  for (size_t i = 0; i < result.objects.size(); ++i) {
    const uint32_t o = result.objects[i];
    const std::vector<NodeId> path = PathToObject(*index, from, o);
    std::printf("%zu. hospital #%u at junction %u — distance %.0f, %zu hops\n",
                i + 1, o, index->object_node(o), result.distances[i],
                path.size() - 1);
    std::printf("   route: ");
    for (size_t j = 0; j < path.size(); ++j) {
      if (j > 0) std::printf(" -> ");
      if (j == 6 && path.size() > 9) {
        std::printf("... -> %u", path.back());
        break;
      }
      std::printf("%u", path[j]);
    }
    std::printf("\n");
  }
  return 0;
}
