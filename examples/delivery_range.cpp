// Delivery planning: range, aggregation, and ε-join over two datasets.
//
// A courier company keeps two datasets on one city network: depots and
// customers. This example answers three operational questions with one
// general-purpose index per dataset (paper §4's point — the same structure
// serves every distance query):
//   1. which customers can depot X reach within its delivery radius (range);
//   2. how many customers / average distance per depot (aggregation);
//   3. which (depot, customer) pairs are within a radius of each other
//      anywhere in the city (ε-join).
//
//   $ ./delivery_range [--nodes=6000] [--radius=80] [--seed=42]
#include <cstdio>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/aggregate_query.h"
#include "query/join_query.h"
#include "query/range_query.h"
#include "util/flags.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

int main(int argc, char** argv) {
  using namespace dsig;

  const Flags flags(argc, argv);
  const size_t nodes = static_cast<size_t>(flags.GetInt("nodes", 6000));
  const Weight radius = flags.GetDouble("radius", 80);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  const RoadNetwork city = MakeRandomPlanar({.num_nodes = nodes, .seed = seed});
  const std::vector<NodeId> depots = UniformDataset(city, 0.002, seed + 1);
  const std::vector<NodeId> customers =
      ClusteredDataset(city, 0.02, 12, seed + 2);
  std::printf("city: %zu junctions; %zu depots, %zu customers\n\n",
              city.num_nodes(), depots.size(), customers.size());

  const auto depot_index = BuildSignatureIndex(
      city, depots, {.t = 10, .c = 2.718281828, .keep_forest = false});
  const auto customer_index = BuildSignatureIndex(
      city, customers, {.t = 10, .c = 2.718281828, .keep_forest = false});

  // 1. Coverage of each depot: customers within the delivery radius,
  //    evaluated as a range query on the customer index AT the depot node.
  std::printf("per-depot coverage (radius %.0f):\n", radius);
  for (uint32_t d = 0; d < depots.size(); ++d) {
    const RangeQueryResult in_range =
        SignatureRangeQuery(*customer_index, depots[d], radius);
    const DistanceAggregateResult agg =
        SignatureDistanceAggregateQuery(*customer_index, depots[d], radius);
    std::printf(
        "  depot %2u @ node %5u: %3zu customers, avg distance %.1f\n", d,
        depots[d], in_range.objects.size(),
        agg.count == 0 ? 0.0 : agg.sum / static_cast<double>(agg.count));
  }

  // 2. Which customers are underserved (no depot within the radius)?
  size_t underserved = 0;
  for (const NodeId c : customers) {
    if (SignatureCountQuery(*depot_index, c, radius).count == 0) {
      ++underserved;
    }
  }
  std::printf("\nunderserved customers (no depot within %.0f): %zu of %zu\n",
              radius, underserved, customers.size());

  // 3. ε-join at a prospective new hub location: depot-customer pairs whose
  //    mutual distance is within the radius.
  const NodeId hub = RandomQueryNodes(city, 1, seed + 3)[0];
  const JoinResult join =
      SignatureEpsilonJoin(*depot_index, *customer_index, hub, radius);
  std::printf(
      "\nepsilon-join at candidate hub %u: %zu (depot, customer) pairs "
      "within %.0f\n",
      hub, join.pairs.size(), radius);
  std::printf("  (%zu of %zu pairs pruned from categories alone, %zu exact "
              "evaluations)\n",
              join.pruned_by_categories, depots.size() * customers.size(),
              join.exact_evaluations);
  return 0;
}
