// Cross-cutting edge cases: grid topologies (the paper's analytic setting,
// full of distance ties), parallel edges, degenerate datasets, and
// interactions the per-module tests don't reach.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/full_index.h"
#include "baselines/ine.h"
#include "baselines/nvd/vn3.h"
#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(GridEdgeCaseTest, SignatureStackOnUniformGrid) {
  // The §5.1 setting: unit-weight grid, uniform objects. Ties are maximal
  // here (many equal-length paths), stressing comparison and sorting.
  const RoadNetwork g = MakeGrid({.width = 25, .height = 25});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 3);
  const auto index = BuildSignatureIndex(g, objects, {.t = 3, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 20, 1)) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      ASSERT_EQ(ExactDistance(*index, n, o), truth[o][n]);
    }
    // kNN distance multiset matches brute force despite ties.
    const KnnResult knn =
        SignatureKnnQuery(*index, n, 5, KnnResultType::kType1);
    std::vector<Weight> expected;
    for (const auto& row : truth) expected.push_back(row[n]);
    std::sort(expected.begin(), expected.end());
    expected.resize(5);
    EXPECT_EQ(knn.distances, expected);
  }
}

TEST(GridEdgeCaseTest, Vn3OnUniformGridMatchesIne) {
  const RoadNetwork g = MakeGrid({.width = 20, .height = 20});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, 5);
  const Vn3Index vn3(g, objects);
  const IneSearch ine(&g, objects, nullptr);
  for (const NodeId q : testing_util::SampleNodes(g, 15, 2)) {
    const auto got = vn3.Knn(q, 4);
    const IneResult expected = ine.Knn(q, 4);
    ASSERT_EQ(got.size(), expected.objects.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, expected.objects[i].first);
    }
  }
}

TEST(ParallelEdgeTest, SignatureStackHandlesParallelEdges) {
  // Two roads between the same junctions with different weights: the
  // backtracking link must select the correct slot.
  RoadNetwork g;
  for (int i = 0; i < 5; ++i) g.AddNode({static_cast<double>(i), 0});
  g.AddEdge(0, 1, 5);
  g.AddEdge(0, 1, 2);  // faster parallel road
  g.AddEdge(1, 2, 3);
  g.AddEdge(2, 3, 1);
  g.AddEdge(3, 4, 4);
  g.AddEdge(0, 4, 20);
  const auto index = BuildSignatureIndex(g, {4}, {.t = 2, .c = 2});
  EXPECT_EQ(ExactDistance(*index, 0, 0), 10);  // 0-1(2)-2(3)-3(1)-4(4)
  EXPECT_EQ(ExactDistance(*index, 1, 0), 8);
}

TEST(ParallelEdgeTest, UpdatesOnParallelEdges) {
  RoadNetwork g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  const EdgeId slow = g.AddEdge(0, 1, 9);
  g.AddEdge(0, 1, 4);
  auto index = BuildSignatureIndex(g, {1}, {.t = 2, .c = 2});
  EXPECT_EQ(ExactDistance(*index, 0, 0), 4);
  SignatureUpdater updater(&g, index.get());
  updater.SetEdgeWeight(slow, 1);  // the slow road becomes the fast one
  EXPECT_EQ(ExactDistance(*index, 0, 0), 1);
  updater.RemoveEdge(slow);
  EXPECT_EQ(ExactDistance(*index, 0, 0), 4);
}

TEST(DegenerateDatasetTest, SingleObject) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 200, .seed = 4});
  const NodeId object = 17;
  const auto index = BuildSignatureIndex(g, {object}, {.t = 5, .c = 2});
  const ShortestPathTree truth = RunDijkstra(g, object);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(ExactDistance(*index, n, 0), truth.dist[n]);
  }
  const KnnResult knn =
      SignatureKnnQuery(*index, 3, 5, KnnResultType::kType1);
  EXPECT_EQ(knn.objects.size(), 1u);
}

TEST(DegenerateDatasetTest, EveryNodeIsAnObject) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) all[n] = n;
  const auto index = BuildSignatureIndex(g, all, {.t = 2, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, all);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const RangeQueryResult r = SignatureRangeQuery(*index, n, 6);
    std::vector<uint32_t> expected;
    for (uint32_t o = 0; o < all.size(); ++o) {
      if (truth[o][n] <= 6) expected.push_back(o);
    }
    EXPECT_EQ(r.objects, expected);
  }
}

TEST(StorageInteractionTest, AttachAfterUpdateUsesNewRowSizes) {
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 500, .seed = 6});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, 6);
  auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  SignatureUpdater updater(&g, index.get());
  updater.SetEdgeWeight(3, g.edge_weight(3) + 4);

  // Re-attaching storage after updates must lay out the *current* encoded
  // rows; whole-row reads then charge consistently.
  BufferManager buffer(0);
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  const NetworkStore network(g, order, &buffer);
  index->AttachStorage(&buffer, &network, order);
  for (const NodeId n : testing_util::SampleNodes(g, 10, 1)) {
    index->ReadRow(n);
  }
  EXPECT_GT(buffer.stats().logical_accesses, 0u);
}

TEST(HeavyWeightTest, WideWeightSpectrum) {
  // Continental networks mix unit streets with 1000-unit highways; the
  // partition must span the whole spectrum without loss.
  const RoadNetwork g = MakeClusteredContinental(
      {.num_clusters = 4, .nodes_per_cluster = 150, .seed = 2});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 2);
  const auto index = BuildSignatureIndex(g, objects, {.t = 10, .c = 2.7});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 15, 3)) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      ASSERT_EQ(ExactDistance(*index, n, o), truth[o][n]);
    }
  }
}

TEST(HeavyWeightTest, PartitionCoversSpectrum) {
  const RoadNetwork g = MakeClusteredContinental(
      {.num_clusters = 3, .nodes_per_cluster = 100, .seed = 5});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 5);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  // More than a handful of categories (long highways stretch the spectrum).
  EXPECT_GT(index->partition().num_categories(), 6);
}

}  // namespace
}  // namespace dsig
