#include "storage/pager.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph_generator.h"
#include "storage/network_store.h"

namespace dsig {
namespace {

std::vector<uint32_t> IdentityOrder(size_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(PageLayoutTest, SmallRecordsShareAPage) {
  // Four records of 1100 bytes: three fit a 4096-byte page, the fourth
  // starts a new page.
  const std::vector<uint64_t> bits(4, 1100 * 8);
  const PageLayout layout(bits, IdentityOrder(4));
  EXPECT_EQ(layout.FirstPage(0), 0u);
  EXPECT_EQ(layout.FirstPage(1), 0u);
  EXPECT_EQ(layout.FirstPage(2), 0u);
  EXPECT_EQ(layout.FirstPage(3), 1u);
  EXPECT_EQ(layout.num_pages(), 2u);
}

TEST(PageLayoutTest, LargeRecordSpansPages) {
  const std::vector<uint64_t> bits = {10000 * 8};
  const PageLayout layout(bits, IdentityOrder(1));
  EXPECT_EQ(layout.FirstPage(0), 0u);
  EXPECT_EQ(layout.LastPage(0), 2u);  // 10000 bytes -> 3 pages
  EXPECT_EQ(layout.num_pages(), 3u);
}

TEST(PageLayoutTest, PageAtBitOffset) {
  const std::vector<uint64_t> bits = {10000 * 8};
  const PageLayout layout(bits, IdentityOrder(1));
  EXPECT_EQ(layout.PageAt(0, 0), 0u);
  EXPECT_EQ(layout.PageAt(0, kPageSizeBits - 1), 0u);
  EXPECT_EQ(layout.PageAt(0, kPageSizeBits), 1u);
  EXPECT_EQ(layout.PageAt(0, 10000 * 8 - 1), 2u);
}

TEST(PageLayoutTest, OrderControlsPlacement) {
  // Two records; reversed order puts record 1 first.
  const std::vector<uint64_t> bits = {kPageSizeBits, kPageSizeBits};
  const PageLayout layout(bits, {1, 0});
  EXPECT_EQ(layout.FirstPage(1), 0u);
  EXPECT_EQ(layout.FirstPage(0), 1u);
}

TEST(PageLayoutTest, ZeroSizeRecords) {
  const std::vector<uint64_t> bits = {0, 100, 0};
  const PageLayout layout(bits, IdentityOrder(3));
  EXPECT_EQ(layout.num_pages(), 1u);
  EXPECT_EQ(layout.record_bits(0), 0u);
  EXPECT_EQ(layout.PageAt(0, 0), 0u);
}

TEST(PageLayoutTest, PayloadVsTotalBytes) {
  // Two records that each waste most of a page.
  const std::vector<uint64_t> bits = {3000 * 8, 3000 * 8};
  const PageLayout layout(bits, IdentityOrder(2));
  EXPECT_EQ(layout.payload_bytes(), 6000u);
  EXPECT_EQ(layout.total_bytes(), 2 * kPageSizeBytes);
}

TEST(PagedStoreTest, TouchChargesBuffer) {
  BufferManager buffer(100);
  const std::vector<uint64_t> bits = {10000 * 8, 100 * 8};
  PagedStore store(PageLayout(bits, IdentityOrder(2)), &buffer);
  store.TouchRecord(0);  // spans 3 pages
  EXPECT_EQ(buffer.stats().logical_accesses, 3u);
  store.TouchRecordAt(1, 0);  // single page
  EXPECT_EQ(buffer.stats().logical_accesses, 4u);
}

TEST(PagedStoreTest, NullBufferIsNoOp) {
  const std::vector<uint64_t> bits = {100};
  PagedStore store(PageLayout(bits, IdentityOrder(1)), nullptr);
  store.TouchRecord(0);  // must not crash
}

TEST(NetworkStoreTest, AdjacencyPagingChargesBuffer) {
  const RoadNetwork g = MakeGrid({.width = 10, .height = 10});
  BufferManager buffer(1000);
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  const NetworkStore store(g, order, &buffer);
  EXPECT_GT(store.num_pages(), 0u);
  store.TouchNode(0);
  EXPECT_GE(buffer.stats().logical_accesses, 1u);
}

TEST(NetworkStoreTest, RecordBitsGrowWithDegree) {
  const RoadNetwork g = MakeGrid({.width = 5, .height = 5});
  // Corner (degree 2) vs center (degree 4).
  EXPECT_LT(AdjacencyRecordBits(g, 0), AdjacencyRecordBits(g, 12));
}

}  // namespace
}  // namespace dsig
