// RunBatch / BatchKnnQuery: parallel batches return exactly the serial
// results, and the thread-local op counters accumulated by worker threads
// are withdrawn and credited to the CALLING thread so measurement code sees
// identical deltas at every thread count.
#include "query/batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "obs/op_counters.h"
#include "util/thread_pool.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace {

TEST(RunBatchTest, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 500;
  std::vector<std::atomic<int>> visits(n);
  RunBatch(n, [&](size_t i) { visits[i].fetch_add(1); }, {.pool = &pool});
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(visits[i].load(), 1);
}

TEST(RunBatchTest, ZeroItemsIsANoop) {
  bool ran = false;
  RunBatch(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(RunBatchTest, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(RunBatch(
                   100,
                   [&](size_t i) {
                     if (i == 42) throw std::runtime_error("bad query");
                   },
                   {.pool = &pool}),
               std::runtime_error);
}

class BatchKnnFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = 1200, .seed = 31}));
    objects_ = UniformDataset(*graph_, 0.03, 31);
    index_ = BuildSignatureIndex(*graph_, objects_,
                                 {.t = 10, .c = 2.718281828});
    queries_ = RandomQueryNodes(*graph_, 60, 32);
  }

  std::unique_ptr<RoadNetwork> graph_;
  std::vector<NodeId> objects_;
  std::unique_ptr<SignatureIndex> index_;
  std::vector<NodeId> queries_;
};

TEST_F(BatchKnnFixture, ResultsMatchSerialAtEveryThreadCount) {
  // Type 1 returns objects in distance order with exact distances, so the
  // serial and batch results must compare equal element by element.
  const size_t k = 5;
  std::vector<KnnResult> serial;
  serial.reserve(queries_.size());
  for (const NodeId q : queries_) {
    serial.push_back(SignatureKnnQuery(*index_, q, k, KnnResultType::kType1));
  }
  for (const size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<KnnResult> batch = BatchKnnQuery(
        *index_, queries_, k, KnnResultType::kType1, {.pool = &pool});
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].objects, serial[i].objects)
          << "query " << i << " threads " << threads;
      EXPECT_EQ(batch[i].distances, serial[i].distances)
          << "query " << i << " threads " << threads;
    }
  }
}

TEST_F(BatchKnnFixture, OpCountersLandOnCallingThreadAndMatchSerial) {
  const size_t k = 5;
  // Row caching memoizes work across runs, which would make the two counter
  // deltas differ for reasons unrelated to the batch driver; disable it and
  // reset between runs.
  index_->ConfigureRowCache({.byte_budget = 0});

  const OpCounters before_serial = GlobalOpCounters();
  for (const NodeId q : queries_) {
    SignatureKnnQuery(*index_, q, k, KnnResultType::kType3);
  }
  const OpCounters serial_delta = GlobalOpCounters() - before_serial;
  EXPECT_GT(serial_delta.entry_reads + serial_delta.row_reads, 0u);

  for (const size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const OpCounters before = GlobalOpCounters();
    BatchKnnQuery(*index_, queries_, k, KnnResultType::kType3, {.pool = &pool});
    const OpCounters batch_delta = GlobalOpCounters() - before;
#define DSIG_EXPECT_COUNTER_EQ(field, comment)                       \
  EXPECT_EQ(batch_delta.field, serial_delta.field)                   \
      << #field " diverged at " << threads << " threads";
    DSIG_OP_COUNTER_FIELDS(DSIG_EXPECT_COUNTER_EQ)
#undef DSIG_EXPECT_COUNTER_EQ
  }
}

TEST_F(BatchKnnFixture, DefaultOptionsUseGlobalPool) {
  const std::vector<KnnResult> batch =
      BatchKnnQuery(*index_, queries_, 3, KnnResultType::kType1);
  ASSERT_EQ(batch.size(), queries_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const KnnResult serial =
        SignatureKnnQuery(*index_, queries_[i], 3, KnnResultType::kType1);
    EXPECT_EQ(batch[i].objects, serial.objects) << "query " << i;
    EXPECT_EQ(batch[i].distances, serial.distances) << "query " << i;
  }
}

}  // namespace
}  // namespace dsig
