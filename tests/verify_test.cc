// SignatureIndex::Verify must accept every freshly built index and detect
// each class of seeded violation: undecodable bits, out-of-range links,
// categories that disagree with the link-chain distance, and link cycles.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/signature_builder.h"
#include "core/signature_index.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "util/status.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

struct Fixture {
  RoadNetwork graph;
  std::vector<NodeId> objects;
  std::unique_ptr<SignatureIndex> index;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.graph = MakeRandomPlanar({.num_nodes = 120, .seed = seed});
  f.objects = UniformDataset(f.graph, 0.06, seed);
  f.index = BuildSignatureIndex(f.graph, f.objects, {.t = 5, .c = 2});
  return f;
}

// Re-encodes `row` (fully resolved) as node `n`'s stored row.
void ReplaceRowBits(SignatureIndex* index, NodeId n, const SignatureRow& row) {
  index->mutable_encoded_row(n) = index->codec().EncodeRow(row);
}

// A node that carries no object, with an adjacent node that also carries
// none (so link edits never touch the trivial own-node entries).
NodeId NonObjectNode(const Fixture& f) {
  for (NodeId n = 0; n < f.graph.num_nodes(); ++n) {
    if (f.index->object_at(n) == kInvalidObject) return n;
  }
  ADD_FAILURE() << "fixture has objects on every node";
  return 0;
}

TEST(VerifyTest, FreshIndexesAreClean) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Fixture f = MakeFixture(seed);
    const Status status = f.index->Verify();
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status;
  }
}

TEST(VerifyTest, DetectsUndecodableRow) {
  Fixture f = MakeFixture(10);
  const NodeId n = NonObjectNode(f);
  // One extra phantom bit: the row now ends mid-component or decodes to a
  // surplus entry; either way TryDecodeRow must say no.
  f.index->mutable_encoded_row(n).size_bits += 1;
  const Status status = f.index->Verify();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("does not decode"), std::string::npos)
      << status;
}

TEST(VerifyTest, DetectsLinkBeyondAdjacencyList) {
  Fixture f = MakeFixture(11);
  const NodeId n = NonObjectNode(f);
  SignatureRow row = f.index->ReadRow(n);
  uint32_t o = 0;
  while (f.objects[o] == n) ++o;
  // The codec's link width has one bit of headroom over max_degree, so the
  // out-of-range slot id survives the encode/decode round trip.
  row[o].link = static_cast<uint8_t>(f.graph.degree(n));
  ReplaceRowBits(f.index.get(), n, row);
  const Status status = f.index->Verify();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("beyond the adjacency list"),
            std::string::npos)
      << status;
}

TEST(VerifyTest, DetectsCategoryChainDisagreement) {
  Fixture f = MakeFixture(12);
  const NodeId n = NonObjectNode(f);
  SignatureRow row = f.index->ReadRow(n);
  uint32_t o = 0;
  while (f.objects[o] == n) ++o;
  const int m = f.index->partition().num_categories();
  row[o].category = static_cast<uint8_t>(row[o].category + 1 < m
                                             ? row[o].category + 1
                                             : row[o].category - 1);
  ReplaceRowBits(f.index.get(), n, row);
  const Status status = f.index->Verify();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("disagrees with the distance"),
            std::string::npos)
      << status;
}

TEST(VerifyTest, DetectsLinkCycle) {
  Fixture f = MakeFixture(13);
  // Two adjacent non-object nodes pointed at each other for one object: the
  // chain walk must flag the cycle instead of spinning.
  for (EdgeId e = 0; e < f.graph.num_edge_slots(); ++e) {
    const auto [u, v] = f.graph.edge_endpoints(e);
    if (f.index->object_at(u) != kInvalidObject ||
        f.index->object_at(v) != kInvalidObject) {
      continue;
    }
    const uint32_t o = 0;
    SignatureRow row_u = f.index->ReadRow(u);
    SignatureRow row_v = f.index->ReadRow(v);
    row_u[o].link = static_cast<uint8_t>(f.graph.AdjacencyIndexOf(u, e));
    row_v[o].link = static_cast<uint8_t>(f.graph.AdjacencyIndexOf(v, e));
    ReplaceRowBits(f.index.get(), u, row_u);
    ReplaceRowBits(f.index.get(), v, row_v);
    const Status status = f.index->Verify();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("cycle"), std::string::npos) << status;
    return;
  }
  GTEST_SKIP() << "no edge between two non-object nodes in this fixture";
}

TEST(VerifyTest, GarbledRowBitsNeverPassSilently) {
  // Random in-place bit damage to stored rows: Verify may attribute it to
  // any invariant, but a clean bill of health would mean silent corruption.
  // (A flipped category that still matches its chain distance is impossible:
  // category ranges are disjoint and the links are untouched.)
  for (uint64_t trial = 0; trial < 8; ++trial) {
    Fixture f = MakeFixture(20 + trial);
    const NodeId n = static_cast<NodeId>(
        (trial * 37) % f.graph.num_nodes());
    EncodedRow& encoded = f.index->mutable_encoded_row(n);
    if (encoded.bytes.empty()) continue;
    encoded.bytes[encoded.bytes.size() / 2] ^=
        static_cast<uint8_t>(1u << (trial % 8));
    const Status status = f.index->Verify();
    EXPECT_FALSE(status.ok()) << "trial " << trial << " node " << n;
  }
}

}  // namespace
}  // namespace dsig
