#include "spatial/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace dsig {
namespace {

TEST(RectTest, ExpandAndArea) {
  Rect r;
  EXPECT_TRUE(r.IsEmpty());
  r.ExpandToInclude(Point{1, 2});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_EQ(r.Area(), 0);
  r.ExpandToInclude(Point{3, 5});
  EXPECT_EQ(r.Area(), 6);
}

TEST(RectTest, IntersectsAndContains) {
  const Rect a{0, 0, 2, 2};
  const Rect b{1, 1, 3, 3};
  const Rect c{5, 5, 6, 6};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Point{1, 1}));
  EXPECT_TRUE(a.Contains(Point{2, 2}));  // boundary closed
  EXPECT_FALSE(a.Contains(Point{2.1, 1}));
}

TEST(RectTest, Enlargement) {
  const Rect a{0, 0, 2, 2};
  EXPECT_EQ(a.Enlargement({1, 1, 2, 2}), 0);
  EXPECT_EQ(a.Enlargement({0, 0, 4, 2}), 4);
}

TEST(RTreeTest, EmptyTreeSearch) {
  const RTree tree;
  EXPECT_TRUE(tree.Search({0, 0, 10, 10}).values.empty());
}

TEST(RTreeTest, InsertAndFind) {
  RTree tree(4);
  tree.Insert({0, 0, 1, 1}, 100);
  tree.Insert({5, 5, 6, 6}, 200);
  const auto hits = tree.Search({0.5, 0.5, 5.5, 5.5}).values;
  EXPECT_EQ(hits.size(), 2u);
  const auto miss = tree.Search({2, 2, 3, 3}).values;
  EXPECT_TRUE(miss.empty());
}

TEST(RTreeTest, LocatePoint) {
  RTree tree(4);
  tree.Insert({0, 0, 2, 2}, 1);
  tree.Insert({1, 1, 3, 3}, 2);
  auto result = tree.Locate(Point{1.5, 1.5});
  std::sort(result.values.begin(), result.values.end());
  EXPECT_EQ(result.values, std::vector<uint32_t>({1, 2}));
  EXPECT_GT(result.nodes_visited, 0u);
  EXPECT_EQ(result.nodes_visited, result.visited_nodes.size());
}

TEST(RTreeTest, GrowsInHeightUnderLoad) {
  RTree tree(4);
  for (int i = 0; i < 100; ++i) {
    const double x = i % 10, y = i / 10;
    tree.Insert({x, y, x + 0.5, y + 0.5}, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.height(), 1);
  EXPECT_GT(tree.SizeBytes(), 0u);
}

// Property: search results always match a brute-force scan.
class RTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreePropertyTest, SearchMatchesBruteForce) {
  Random rng(GetParam());
  RTree tree(8);
  std::vector<Rect> rects;
  for (uint32_t i = 0; i < 400; ++i) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    const Rect r{x, y, x + rng.NextDouble(0, 5), y + rng.NextDouble(0, 5)};
    rects.push_back(r);
    tree.Insert(r, i);
  }
  for (int q = 0; q < 50; ++q) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    const Rect query{x, y, x + rng.NextDouble(0, 10),
                     y + rng.NextDouble(0, 10)};
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Intersects(query)) expected.push_back(i);
    }
    std::vector<uint32_t> actual = tree.Search(query).values;
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST_P(RTreePropertyTest, LocateMatchesBruteForce) {
  Random rng(GetParam() + 1000);
  RTree tree(6);
  std::vector<Rect> rects;
  for (uint32_t i = 0; i < 300; ++i) {
    const double x = rng.NextDouble(0, 50);
    const double y = rng.NextDouble(0, 50);
    const Rect r{x, y, x + rng.NextDouble(0, 8), y + rng.NextDouble(0, 8)};
    rects.push_back(r);
    tree.Insert(r, i);
  }
  for (int q = 0; q < 100; ++q) {
    const Point p{rng.NextDouble(0, 50), rng.NextDouble(0, 50)};
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Contains(p)) expected.push_back(i);
    }
    std::vector<uint32_t> actual = tree.Locate(p).values;
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreePropertyTest,
                         ::testing::Values(1, 2, 3, 42));

}  // namespace
}  // namespace dsig
