#include <gtest/gtest.h>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(MergedStorageTest, QueriesAreSchemaIndependent) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 600, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, 3);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  BufferManager buffer(64);
  const NetworkStore network(g, order, &buffer);

  // Results must be identical regardless of schema; only charging differs.
  index->AttachStorage(&buffer, &network, order);
  std::vector<std::vector<uint32_t>> separate_results;
  for (const NodeId q : testing_util::SampleNodes(g, 10, 1)) {
    separate_results.push_back(SignatureRangeQuery(*index, q, 40).objects);
  }
  index->AttachMergedStorage(&buffer, order);
  size_t i = 0;
  for (const NodeId q : testing_util::SampleNodes(g, 10, 1)) {
    EXPECT_EQ(SignatureRangeQuery(*index, q, 40).objects,
              separate_results[i++]);
  }
}

TEST(MergedStorageTest, MergedChargesCombinedRecords) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 5});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 5);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  BufferManager buffer(0);
  index->AttachMergedStorage(&buffer, order);
  EXPECT_TRUE(index->merged_storage());

  buffer.Clear();
  index->ReadRow(17);
  EXPECT_GE(buffer.stats().logical_accesses, 1u);

  // In merged mode a backtracking step's adjacency + component read usually
  // lands on the same combined record, so the step should cost at most the
  // two touches it makes (often hitting the same page).
  buffer.Clear();
  ExactDistance(*index, order.back(), 0);
  EXPECT_GT(buffer.stats().logical_accesses, 0u);
}

TEST(MergedStorageTest, SwitchingSchemasBackAndForth) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1, 5}, {.t = 4, .c = 2});
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) order[n] = n;
  BufferManager buffer(8);
  const NetworkStore network(g, order, &buffer);

  index->AttachMergedStorage(&buffer, order);
  EXPECT_TRUE(index->merged_storage());
  const Weight d1 = ExactDistance(*index, 0, 0);
  index->AttachStorage(&buffer, &network, order);
  EXPECT_FALSE(index->merged_storage());
  const Weight d2 = ExactDistance(*index, 0, 0);
  EXPECT_EQ(d1, d2);
}

TEST(MergedStorageTest, MergedBeatsSeparateOnBacktrackingHeavyWork) {
  // Backtracking reads adjacency and signature of the same node; merged
  // schema puts them on the same record, so cold physical reads drop.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 3000, .seed = 7});
  const std::vector<NodeId> objects = UniformDataset(g, 0.01, 7);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  const std::vector<NodeId> queries = testing_util::SampleNodes(g, 40, 2);

  BufferManager buffer(32);
  const NetworkStore network(g, order, &buffer);
  index->AttachStorage(&buffer, &network, order);
  buffer.Clear();
  for (const NodeId q : queries) {
    SignatureKnnQuery(*index, q, 5, KnnResultType::kType1);
  }
  const uint64_t separate = buffer.stats().physical_accesses;

  index->AttachMergedStorage(&buffer, order);
  buffer.Clear();
  for (const NodeId q : queries) {
    SignatureKnnQuery(*index, q, 5, KnnResultType::kType1);
  }
  const uint64_t merged = buffer.stats().physical_accesses;
  EXPECT_LT(merged, separate + separate / 5);
}

}  // namespace
}  // namespace dsig
