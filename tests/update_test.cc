#include "core/update.h"

#include <gtest/gtest.h>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

// The maintained index must be semantically fresh: every row category equals
// the category of the TRUE current distance under the index's own partition,
// and guided backtracking still retrieves exact distances (i.e., all links
// are valid next hops).
void ExpectIndexMatchesRebuild(const RoadNetwork& g,
                               const std::vector<NodeId>& objects,
                               const SignatureIndex& maintained) {
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const SignatureRow row = maintained.ReadRow(n);
    ASSERT_EQ(row.size(), objects.size());
    for (uint32_t o = 0; o < row.size(); ++o) {
      EXPECT_EQ(row[o].category,
                maintained.partition().CategoryOf(truth[o][n]))
          << "node " << n << " object " << o;
      EXPECT_EQ(ExactDistance(maintained, n, o), truth[o][n])
          << "node " << n << " object " << o;
    }
  }
}

TEST(SignatureUpdaterTest, RequiresForest) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  auto index =
      BuildSignatureIndex(g, {1}, {.t = 4, .c = 2, .keep_forest = true});
  SignatureUpdater updater(&g, index.get());  // must not die
  SUCCEED();
}

TEST(SignatureUpdaterTest, WeightDecreaseUpdatesCategories) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {5};
  auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  SignatureUpdater updater(&g, index.get());
  EXPECT_EQ(ExactDistance(*index, 0, 0), 12);
  // Shorten 4-5: d(0, 5) via 0-3-4-5 becomes 3+1+1 = 5.
  const UpdateStats stats = updater.SetEdgeWeight(g.FindEdge(4, 5), 1);
  EXPECT_GT(stats.tree_entries_changed, 0u);
  EXPECT_GT(stats.rows_rewritten, 0u);
  EXPECT_EQ(ExactDistance(*index, 0, 0), 5);
  ExpectIndexMatchesRebuild(g, objects, *index);
}

TEST(SignatureUpdaterTest, EdgeAdditionCreatesShortcut) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {6};
  auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  SignatureUpdater updater(&g, index.get());
  EXPECT_EQ(ExactDistance(*index, 2, 0), 17);  // 2-5-4-6 = 2+8+7
  EdgeId new_edge = kInvalidEdge;
  updater.AddEdge(2, 6, 1, &new_edge);
  ASSERT_NE(new_edge, kInvalidEdge);
  EXPECT_EQ(ExactDistance(*index, 2, 0), 1);
  ExpectIndexMatchesRebuild(g, objects, *index);
}

TEST(SignatureUpdaterTest, WeightIncreaseReroutes) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {0, 6};
  auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  SignatureUpdater updater(&g, index.get());
  updater.SetEdgeWeight(g.FindEdge(0, 3), 50);
  ExpectIndexMatchesRebuild(g, objects, *index);
}

TEST(SignatureUpdaterTest, RemovalReroutes) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {0, 5};
  auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  SignatureUpdater updater(&g, index.get());
  updater.RemoveEdge(g.FindEdge(3, 4));
  ExpectIndexMatchesRebuild(g, objects, *index);
}

TEST(SignatureUpdaterTest, NoOpWeightChange) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  auto index = BuildSignatureIndex(g, {1}, {.t = 4, .c = 2});
  SignatureUpdater updater(&g, index.get());
  const EdgeId e = g.FindEdge(0, 1);
  const UpdateStats stats = updater.SetEdgeWeight(e, g.edge_weight(e));
  EXPECT_EQ(stats.tree_entries_changed, 0u);
  EXPECT_EQ(stats.rows_rewritten, 0u);
}

TEST(SignatureUpdaterTest, UpdatesRefreshObjectTable) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {0, 5};
  auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  SignatureUpdater updater(&g, index.get());
  // d(0, 5) = 12 initially; a direct shortcut drops it to 1.
  updater.AddEdge(0, 5, 1);
  EXPECT_FALSE(index->object_table().IsFar(0, 1));
  EXPECT_EQ(index->object_table().Get(0, 1), 1);
}

// Property: a long random mixed update sequence keeps the index exactly
// equivalent to a rebuild, and queries stay correct throughout.
class UpdaterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UpdaterPropertyTest, RandomUpdateSequence) {
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 250, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, GetParam());
  auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  SignatureUpdater updater(&g, index.get());
  Random rng(GetParam() + 7);
  for (int step = 0; step < 25; ++step) {
    const int action = static_cast<int>(rng.NextUint64(3));
    if (action == 0) {
      const NodeId u = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      if (u == v) v = (v + 1) % static_cast<NodeId>(g.num_nodes());
      updater.AddEdge(u, v, rng.NextInt(1, 10));
    } else {
      const EdgeId e =
          static_cast<EdgeId>(rng.NextUint64(g.num_edge_slots()));
      if (g.edge_removed(e)) continue;
      updater.SetEdgeWeight(e, rng.NextInt(1, 10));
    }
  }
  ExpectIndexMatchesRebuild(g, objects, *index);

  // And queries still agree with brute force.
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 5, GetParam())) {
    const KnnResult r = SignatureKnnQuery(*index, n, 5,
                                          KnnResultType::kType1);
    std::vector<Weight> expected;
    for (const auto& row : truth) expected.push_back(row[n]);
    std::sort(expected.begin(), expected.end());
    expected.resize(5);
    EXPECT_EQ(r.distances, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdaterPropertyTest,
                         ::testing::Values(1, 6, 16));

TEST(SignatureUpdaterTest, UpdateLocalityIsBounded) {
  // Paper §5.4: a local change should touch few signatures relative to a
  // rebuild, thanks to exponential categories and the reverse index.
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 2000, .seed = 5});
  const std::vector<NodeId> objects = UniformDataset(g, 0.01, 5);
  auto index = BuildSignatureIndex(g, objects, {.t = 10, .c = 2.7});
  SignatureUpdater updater(&g, index.get());
  Random rng(5);
  size_t total_rows = 0;
  int updates = 0;
  for (int i = 0; i < 20; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.NextUint64(g.num_edge_slots()));
    if (g.edge_removed(e)) continue;
    const Weight w = g.edge_weight(e);
    const UpdateStats stats =
        updater.SetEdgeWeight(e, std::max<Weight>(1, w - 1));
    total_rows += stats.rows_rewritten;
    ++updates;
  }
  ASSERT_GT(updates, 0);
  // On average far fewer than all rows are rewritten per update.
  EXPECT_LT(total_rows / static_cast<size_t>(updates), g.num_nodes() / 4);
}

// Regression: a hot decoded-row cache must never serve a resolution
// computed against the pre-update object table. The updater invalidates the
// complete affected-node set before publishing any rewritten row, so a
// cache-warmed index must stay entry-identical to one with caching disabled
// across a long update sequence.
TEST(SignatureUpdaterTest, HotRowCacheNeverServesStaleResolutions) {
  const std::vector<NodeId> objects = [] {
    const RoadNetwork g = MakeRandomPlanar({.num_nodes = 250, .seed = 12});
    return UniformDataset(g, 0.05, 12);
  }();

  RoadNetwork hot_graph = MakeRandomPlanar({.num_nodes = 250, .seed = 12});
  auto hot = BuildSignatureIndex(hot_graph, objects, {.t = 5, .c = 2});
  hot->ConfigureRowCache({.byte_budget = 1 << 20});  // everything fits

  RoadNetwork cold_graph = MakeRandomPlanar({.num_nodes = 250, .seed = 12});
  auto cold = BuildSignatureIndex(cold_graph, objects, {.t = 5, .c = 2});
  cold->ConfigureRowCache({.byte_budget = 0});  // caching disabled

  SignatureUpdater hot_updater(&hot_graph, hot.get());
  SignatureUpdater cold_updater(&cold_graph, cold.get());

  Random rng(12);
  for (int step = 0; step < 8; ++step) {
    // Warm the cache: every single-entry read of a compressed component
    // resolves (and caches) the whole row.
    for (NodeId n = 0; n < hot_graph.num_nodes(); ++n) {
      for (uint32_t o = 0; o < objects.size(); ++o) hot->ReadEntry(n, o);
    }
    EdgeId e;
    do {
      e = static_cast<EdgeId>(rng.NextUint64(hot_graph.num_edge_slots()));
    } while (hot_graph.edge_removed(e));
    const Weight w = rng.NextInt(1, 10);
    hot_updater.SetEdgeWeight(e, w);
    cold_updater.SetEdgeWeight(e, w);

    // Entry-for-entry equivalence with the uncached twin.
    for (NodeId n = 0; n < hot_graph.num_nodes(); ++n) {
      for (uint32_t o = 0; o < objects.size(); ++o) {
        const SignatureEntry a = hot->ReadEntry(n, o);
        const SignatureEntry b = cold->ReadEntry(n, o);
        ASSERT_EQ(a.category, b.category)
            << "step " << step << " node " << n << " object " << o;
        ASSERT_EQ(a.link, b.link)
            << "step " << step << " node " << n << " object " << o;
      }
    }
    // And retrieval through the cached rows stays exact on a sample.
    for (const NodeId n : testing_util::SampleNodes(hot_graph, 4, 12)) {
      for (uint32_t o = 0; o < objects.size(); ++o) {
        ASSERT_EQ(ExactDistance(*hot, n, o), ExactDistance(*cold, n, o));
      }
    }
  }
  EXPECT_GT(hot->row_cache().entries(), 0u);  // the cache was actually live
}

}  // namespace
}  // namespace dsig
