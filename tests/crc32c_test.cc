#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace dsig {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 appendix B.4 test vectors for CRC-32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);

  const std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  const std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(Crc32c(data.data(), data.size()), clean);
}

}  // namespace
}  // namespace dsig
