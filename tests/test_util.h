// Shared helpers for the test suite.
#ifndef DSIG_TESTS_TEST_UTIL_H_
#define DSIG_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "graph/road_network.h"
#include "util/random.h"

namespace dsig {
namespace testing_util {

// The 7-node network of the paper's Fig 3.1-style examples: a small
// connected graph with integer weights, handy for hand-checkable cases.
//
//      n0 --4-- n1 --6-- n2
//      |        |        |
//      3        5        2
//      |        |        |
//      n3 --1-- n4 --8-- n5
//               |
//               7
//               |
//               n6
inline RoadNetwork MakeSevenNodeNetwork() {
  RoadNetwork g;
  for (int i = 0; i < 7; ++i) {
    g.AddNode({static_cast<double>(i % 3), static_cast<double>(i / 3)});
  }
  g.AddEdge(0, 1, 4);
  g.AddEdge(1, 2, 6);
  g.AddEdge(0, 3, 3);
  g.AddEdge(1, 4, 5);
  g.AddEdge(2, 5, 2);
  g.AddEdge(3, 4, 1);
  g.AddEdge(4, 5, 8);
  g.AddEdge(4, 6, 7);
  return g;
}

// Ground-truth distances from every node in `sources`.
inline std::vector<std::vector<Weight>> BruteForceDistances(
    const RoadNetwork& graph, const std::vector<NodeId>& sources) {
  std::vector<std::vector<Weight>> result;
  result.reserve(sources.size());
  for (const NodeId s : sources) {
    result.push_back(RunDijkstra(graph, s).dist);
  }
  return result;
}

// Distinct random nodes.
inline std::vector<NodeId> SampleNodes(const RoadNetwork& graph, size_t count,
                                       uint64_t seed) {
  Random rng(seed);
  std::vector<bool> used(graph.num_nodes(), false);
  std::vector<NodeId> nodes;
  while (nodes.size() < count) {
    const NodeId n = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
    if (used[n]) continue;
    used[n] = true;
    nodes.push_back(n);
  }
  return nodes;
}

}  // namespace testing_util
}  // namespace dsig

#endif  // DSIG_TESTS_TEST_UTIL_H_
