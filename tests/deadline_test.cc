// Deadline propagation: the util/deadline.h primitives, the query layer's
// typed partial results, and the "an expired request costs nothing"
// guarantee the serving front-end depends on.
#include "util/deadline.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "query/join_query.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "storage/buffer_manager.h"
#include "storage/network_store.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 1e12);
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
  EXPECT_LE(Deadline::AfterMillis(-5).remaining_millis(), 0);
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 59'000);
}

TEST(DeadlineTest, AmbientDefaultIsInfiniteAndFree) {
  EXPECT_TRUE(CurrentDeadline().infinite());
  EXPECT_FALSE(DeadlineExpired());
}

TEST(DeadlineTest, ScopesNestAndRestore) {
  {
    const DeadlineScope outer(Deadline::AfterMillis(60'000));
    EXPECT_FALSE(CurrentDeadline().infinite());
    EXPECT_FALSE(DeadlineExpired());
    {
      // Inner scope may tighten to already-expired...
      const DeadlineScope inner(Deadline::AfterMillis(-1));
      EXPECT_TRUE(DeadlineExpired());
      {
        // ...and a cache-filling shield may loosen back to infinite.
        const DeadlineScope shield(Deadline::Infinite());
        EXPECT_FALSE(DeadlineExpired());
      }
      EXPECT_TRUE(DeadlineExpired());
    }
    EXPECT_FALSE(DeadlineExpired());
  }
  EXPECT_TRUE(CurrentDeadline().infinite());
}

TEST(DeadlineTest, FailAfterSeamOnlyAppliesUnderFiniteDeadline) {
  SetDeadlineCheckFailAfter(0);
  // No finite ambient deadline: the seam must stay inert.
  EXPECT_FALSE(DeadlineExpired());
  {
    const DeadlineScope scope(Deadline::AfterMillis(60'000));
    EXPECT_TRUE(DeadlineExpired());   // seam fires on the first real check
    EXPECT_TRUE(DeadlineExpired());   // and latches
  }
  SetDeadlineCheckFailAfter(-1);
  EXPECT_FALSE(DeadlineExpired());
}

// --- Query-layer behaviour --------------------------------------------------

struct Fixture {
  RoadNetwork graph = MakeRandomPlanar({.num_nodes = 400, .seed = 7});
  std::vector<NodeId> objects = UniformDataset(graph, 0.05, 7);
  std::unique_ptr<SignatureIndex> index =
      BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
};

TEST(QueryDeadlineTest, ExpiredDeadlineNeverTouchesTheBufferPool) {
  Fixture f;
  BufferManager buffer(0);
  const std::vector<NodeId> order = ComputeCcamOrder(f.graph, 64);
  const NetworkStore network(f.graph, order, &buffer);
  f.index->AttachStorage(&buffer, &network, order);

  const uint64_t before = buffer.stats().logical_accesses;
  const DeadlineScope scope(Deadline::AfterMillis(-1));

  const KnnResult knn =
      SignatureKnnQuery(*f.index, 3, 5, KnnResultType::kType1);
  EXPECT_TRUE(knn.deadline_exceeded);
  EXPECT_TRUE(knn.objects.empty());

  const RangeQueryResult range = SignatureRangeQuery(*f.index, 3, 100);
  EXPECT_TRUE(range.deadline_exceeded);
  EXPECT_TRUE(range.objects.empty());

  const JoinResult join = SignatureEpsilonJoin(*f.index, *f.index, 3, 100);
  EXPECT_TRUE(join.deadline_exceeded);
  EXPECT_TRUE(join.pairs.empty());

  // The whole point: a hopeless request charges zero pages.
  EXPECT_EQ(buffer.stats().logical_accesses, before);
}

TEST(QueryDeadlineTest, KnnMidQueryExpiryYieldsWellFormedPartial) {
  Fixture f;
  const NodeId n = 10;
  const KnnResult exact =
      SignatureKnnQuery(*f.index, n, 8, KnnResultType::kType1);
  ASSERT_EQ(exact.objects.size(), 8u);

  // Expiry can land at any phase; sweep seam points to hit several. Each
  // partial must be one of the two documented shapes:
  //   * membership-only (distances empty): the exact k-NN set, unranked;
  //   * aligned prefix: every reported distance is a true exact distance.
  for (const int fail_after : {0, 2, 4, 8, 16, 32}) {
    const DeadlineScope scope(Deadline::AfterMillis(60'000));
    SetDeadlineCheckFailAfter(fail_after);
    const KnnResult partial =
        SignatureKnnQuery(*f.index, n, 8, KnnResultType::kType1);
    SetDeadlineCheckFailAfter(-1);
    if (!partial.deadline_exceeded) {
      // Seam exhausted after the query finished whole; must equal exact.
      EXPECT_EQ(partial.objects, exact.objects);
      continue;
    }
    EXPECT_LE(partial.objects.size(), 8u);
    if (partial.distances.empty()) {
      // Membership-only partial: still a subset of the exact answer set.
      for (const uint32_t o : partial.objects) {
        EXPECT_NE(std::find(exact.objects.begin(), exact.objects.end(), o),
                  exact.objects.end())
            << "fail_after=" << fail_after << " object " << o;
      }
    } else {
      ASSERT_EQ(partial.objects.size(), partial.distances.size());
      for (size_t i = 0; i < partial.objects.size(); ++i) {
        const size_t at = static_cast<size_t>(
            std::find(exact.objects.begin(), exact.objects.end(),
                      partial.objects[i]) -
            exact.objects.begin());
        ASSERT_LT(at, exact.objects.size()) << "fail_after=" << fail_after;
        EXPECT_DOUBLE_EQ(partial.distances[i], exact.distances[at]);
      }
    }
  }
}

TEST(QueryDeadlineTest, RangeMidQueryExpiryYieldsConfirmedSubset) {
  Fixture f;
  const NodeId n = 42;
  const KnnResult anchor =
      SignatureKnnQuery(*f.index, n, 5, KnnResultType::kType1);
  ASSERT_FALSE(anchor.distances.empty());
  const Weight epsilon = anchor.distances.back();

  const RangeQueryResult exact = SignatureRangeQuery(*f.index, n, epsilon);
  EXPECT_FALSE(exact.deadline_exceeded);

  const DeadlineScope scope(Deadline::AfterMillis(60'000));
  SetDeadlineCheckFailAfter(2);
  const RangeQueryResult partial = SignatureRangeQuery(*f.index, n, epsilon);
  SetDeadlineCheckFailAfter(-1);

  EXPECT_TRUE(partial.deadline_exceeded);
  EXPECT_LE(partial.objects.size(), exact.objects.size());
  // Every confirmed object really is in the exact answer — partial means
  // smaller, never wrong.
  for (const uint32_t o : partial.objects) {
    EXPECT_NE(std::find(exact.objects.begin(), exact.objects.end(), o),
              exact.objects.end())
        << "object " << o;
  }
}

TEST(QueryDeadlineTest, JoinMidQueryExpiryYieldsConfirmedSubset) {
  Fixture f;
  const NodeId n = 99;
  const KnnResult anchor =
      SignatureKnnQuery(*f.index, n, 3, KnnResultType::kType1);
  ASSERT_FALSE(anchor.distances.empty());
  const Weight epsilon = 2 * anchor.distances.back();

  const JoinResult exact = SignatureEpsilonJoin(*f.index, *f.index, n, epsilon);
  const DeadlineScope scope(Deadline::AfterMillis(60'000));
  SetDeadlineCheckFailAfter(2);
  const JoinResult partial =
      SignatureEpsilonJoin(*f.index, *f.index, n, epsilon);
  SetDeadlineCheckFailAfter(-1);

  EXPECT_TRUE(partial.deadline_exceeded);
  EXPECT_LE(partial.pairs.size(), exact.pairs.size());
  for (const JoinPair& pair : partial.pairs) {
    const bool found =
        std::any_of(exact.pairs.begin(), exact.pairs.end(),
                    [&](const JoinPair& e) {
                      return e.left == pair.left && e.right == pair.right;
                    });
    EXPECT_TRUE(found) << pair.left << "," << pair.right;
  }
}

TEST(QueryDeadlineTest, SortAbortLeavesAPermutation) {
  Fixture f;
  const NodeId n = 5;
  const SignatureRow row = f.index->ReadRow(n);
  std::vector<uint32_t> bucket(f.index->num_objects());
  for (uint32_t o = 0; o < bucket.size(); ++o) bucket[o] = o;
  const std::vector<uint32_t> original = bucket;

  const DeadlineScope scope(Deadline::AfterMillis(60'000));
  SetDeadlineCheckFailAfter(0);  // expire on the very first check
  SortByDistance(*f.index, n, row, &bucket);
  SetDeadlineCheckFailAfter(-1);

  // Aborting mid-sort must lose or duplicate nothing: same multiset.
  std::vector<uint32_t> a = original, b = bucket;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dsig
