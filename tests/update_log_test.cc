// Unit tests for the write-ahead update log: framing round-trips, torn-tail
// trimming at every byte, injected-crash append sweeps, and the typed-error
// contract for corruption that cannot be a torn write.
#include "core/update_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace dsig {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  if (!data.empty()) {
    EXPECT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  }
  std::fclose(f);
  return data;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!data.empty()) {
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  }
  std::fclose(f);
}

std::vector<UpdateRecord> ScriptedStream() {
  return {
      UpdateRecord::Add(3, 7, 1.5),
      UpdateRecord::SetWeight(0, 2.25),
      UpdateRecord::Remove(2),
      UpdateRecord::Add(1, 9, 0.75),
      UpdateRecord::SetWeight(4, 10.0),
  };
}

TEST(UpdateLogTest, RoundTripsRecordsAndSequenceNumbers) {
  const std::string path = TempPath("wal_roundtrip.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 42).ok());

  auto log = UpdateLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ((*log)->base_seq(), 42u);
  EXPECT_EQ((*log)->record_count(), 0u);
  for (const UpdateRecord& r : ScriptedStream()) {
    ASSERT_TRUE((*log)->Append(r).ok());
  }
  ASSERT_TRUE((*log)->Sync().ok());
  EXPECT_EQ((*log)->record_count(), ScriptedStream().size());
  ASSERT_TRUE((*log)->Close().ok());

  const auto replay = UpdateLog::Replay(path);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->base_seq, 42u);
  EXPECT_EQ(replay->torn_bytes, 0u);
  EXPECT_EQ(replay->records, ScriptedStream());
  EXPECT_EQ(replay->committed_bytes,
            UpdateLog::kHeaderBytes +
                ScriptedStream().size() * UpdateLog::kFrameBytes);
}

TEST(UpdateLogTest, AppendingResumesAfterReopen) {
  const std::string path = TempPath("wal_reopen.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 0).ok());
  {
    auto log = UpdateLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(UpdateRecord::Add(0, 1, 1.0)).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  {
    auto log = UpdateLog::Open(path);
    ASSERT_TRUE(log.ok());
    EXPECT_EQ((*log)->record_count(), 1u);
    ASSERT_TRUE((*log)->Append(UpdateRecord::Remove(5)).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  const auto replay = UpdateLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[0], UpdateRecord::Add(0, 1, 1.0));
  EXPECT_EQ(replay->records[1], UpdateRecord::Remove(5));
}

TEST(UpdateLogTest, CreateAtomicallyReplacesAnExistingLog) {
  const std::string path = TempPath("wal_replace.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 1).ok());
  {
    auto log = UpdateLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(UpdateRecord::Remove(0)).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  ASSERT_TRUE(UpdateLog::Create(path, 9).ok());
  const auto replay = UpdateLog::Replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->base_seq, 9u);
  EXPECT_TRUE(replay->records.empty());
}

TEST(UpdateLogTest, CrashDuringCreateLeavesTheOldLogIntact) {
  const std::string path = TempPath("wal_create_crash.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 3).ok());
  for (uint64_t fail_at = 0; fail_at < UpdateLog::kHeaderBytes; ++fail_at) {
    ASSERT_FALSE(UpdateLog::Create(path, 8, {.fail_at = fail_at}).ok())
        << "create survived crash at byte " << fail_at;
    const auto replay = UpdateLog::Replay(path);
    ASSERT_TRUE(replay.ok()) << replay.status();
    EXPECT_EQ(replay->base_seq, 3u) << "old log lost at byte " << fail_at;
  }
}

// The crash-consistency core: kill the writer at every byte offset of a
// scripted append stream and check that replay recovers exactly the frames
// that were fully written — no crash, no corruption error, no extra record.
TEST(UpdateLogTest, EveryByteCrashSweepRecoversTheCommittedPrefix) {
  const std::vector<UpdateRecord> stream = ScriptedStream();
  const uint64_t total =
      UpdateLog::kHeaderBytes + stream.size() * UpdateLog::kFrameBytes;
  const std::string path = TempPath("wal_crash_sweep.wal");
  for (uint64_t fail_at = UpdateLog::kHeaderBytes; fail_at <= total;
       ++fail_at) {
    ASSERT_TRUE(UpdateLog::Create(path, 0).ok());
    auto log = UpdateLog::Open(path, {.fail_at = fail_at});
    ASSERT_TRUE(log.ok());
    Status status;
    for (const UpdateRecord& r : stream) {
      status = (*log)->Append(r);
      if (!status.ok()) break;
    }
    if (fail_at < total) {
      ASSERT_FALSE(status.ok()) << "no crash at byte " << fail_at;
      // Sticky: once the log failed, nothing else may commit.
      EXPECT_FALSE((*log)->Append(stream[0]).ok());
      EXPECT_FALSE((*log)->Sync().ok());
    } else {
      ASSERT_TRUE(status.ok());
    }
    (*log)->Close();
    log->reset();  // release the FILE* before replaying

    const auto replay = UpdateLog::Replay(path);
    ASSERT_TRUE(replay.ok())
        << "crash at byte " << fail_at << ": " << replay.status();
    const uint64_t committed_frames =
        (fail_at - UpdateLog::kHeaderBytes) / UpdateLog::kFrameBytes;
    ASSERT_EQ(replay->records.size(), committed_frames)
        << "crash at byte " << fail_at;
    for (size_t i = 0; i < replay->records.size(); ++i) {
      EXPECT_EQ(replay->records[i], stream[i]) << "crash at byte " << fail_at;
    }
    // Reopening truncates the torn tail and appending continues cleanly.
    auto reopened = UpdateLog::Open(path);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ((*reopened)->bytes(),
              UpdateLog::kHeaderBytes +
                  committed_frames * UpdateLog::kFrameBytes);
    ASSERT_TRUE((*reopened)->Append(UpdateRecord::Remove(11)).ok());
    ASSERT_TRUE((*reopened)->Close().ok());
    const auto after = UpdateLog::Replay(path);
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after->records.size(), committed_frames + 1);
    EXPECT_EQ(after->records.back(), UpdateRecord::Remove(11));
  }
}

TEST(UpdateLogTest, EveryTruncationReplaysThePrefixOrFailsTyped) {
  const std::string path = TempPath("wal_trunc.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 0).ok());
  {
    auto log = UpdateLog::Open(path);
    ASSERT_TRUE(log.ok());
    for (const UpdateRecord& r : ScriptedStream()) {
      ASSERT_TRUE((*log)->Append(r).ok());
    }
    ASSERT_TRUE((*log)->Close().ok());
  }
  const std::vector<uint8_t> pristine = ReadFile(path);
  for (uint64_t cut = 0; cut <= pristine.size(); ++cut) {
    const auto replay = UpdateLog::Replay(path, {.truncate_at = cut});
    if (cut < UpdateLog::kHeaderBytes) {
      ASSERT_FALSE(replay.ok()) << "cut " << cut;
      EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
    } else {
      ASSERT_TRUE(replay.ok()) << "cut " << cut << ": " << replay.status();
      const uint64_t frames =
          (cut - UpdateLog::kHeaderBytes) / UpdateLog::kFrameBytes;
      EXPECT_EQ(replay->records.size(), frames) << "cut " << cut;
    }
  }
}

TEST(UpdateLogTest, MidLogChecksumFailureIsCorruptionNotATornTail) {
  const std::string path = TempPath("wal_midlog.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 0).ok());
  {
    auto log = UpdateLog::Open(path);
    ASSERT_TRUE(log.ok());
    for (const UpdateRecord& r : ScriptedStream()) {
      ASSERT_TRUE((*log)->Append(r).ok());
    }
    ASSERT_TRUE((*log)->Close().ok());
  }
  // Flip a payload byte of the *first* record: committed frames follow it,
  // so this can only be bit rot and must not silently drop records.
  const uint64_t offset = UpdateLog::kHeaderBytes + 8 + 2;
  const auto replay = UpdateLog::Replay(path, {.flip_byte = offset});
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);

  // The same flip in the *last* record is indistinguishable from a torn
  // write, so it trims to the previous record instead.
  const uint64_t last = UpdateLog::kHeaderBytes +
                        (ScriptedStream().size() - 1) * UpdateLog::kFrameBytes +
                        8 + 2;
  const auto trimmed = UpdateLog::Replay(path, {.flip_byte = last});
  ASSERT_TRUE(trimmed.ok()) << trimmed.status();
  EXPECT_EQ(trimmed->records.size(), ScriptedStream().size() - 1);
}

TEST(UpdateLogTest, HeaderAndFrameDamageFailTyped) {
  const std::string path = TempPath("wal_damage.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 1234).ok());
  {
    auto log = UpdateLog::Open(path);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(UpdateRecord::Add(0, 1, 2.0)).ok());
    ASSERT_TRUE((*log)->Close().ok());
  }
  // Magic, version, base_seq, header CRC: every header byte is guarded.
  for (uint64_t offset = 0; offset < UpdateLog::kHeaderBytes; ++offset) {
    const auto replay = UpdateLog::Replay(path, {.flip_byte = offset});
    ASSERT_FALSE(replay.ok()) << "header flip at " << offset;
    EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
  }
  // A smashed length field cannot be a torn write (a torn frame is a strict
  // prefix, so a complete length field is always genuine).
  std::vector<uint8_t> smashed = ReadFile(path);
  smashed[UpdateLog::kHeaderBytes + 0] = 0xFF;
  WriteFile(path, smashed);
  const auto replay = UpdateLog::Replay(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);

  // Garbage and missing files are typed, never aborts.
  EXPECT_EQ(UpdateLog::Replay(TempPath("wal_missing.wal")).status().code(),
            StatusCode::kNotFound);
  WriteFile(path, {0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_EQ(UpdateLog::Replay(path).status().code(), StatusCode::kCorruption);
}

TEST(UpdateLogTest, ApplyToReproducesEdgeIdsAndRejectsNonsense) {
  RoadNetwork graph;
  for (int i = 0; i < 4; ++i) graph.AddNode({});
  const EdgeId e0 = graph.AddEdge(0, 1, 1.0);
  ASSERT_EQ(e0, 0u);

  RoadNetwork replayed;
  for (int i = 0; i < 4; ++i) replayed.AddNode({});
  replayed.AddEdge(0, 1, 1.0);

  const std::vector<UpdateRecord> stream = {
      UpdateRecord::Add(1, 2, 3.0),       // allocates EdgeId 1
      UpdateRecord::SetWeight(1, 4.5),
      UpdateRecord::Add(2, 3, 1.0),       // allocates EdgeId 2
      UpdateRecord::Remove(0),
  };
  for (const UpdateRecord& r : stream) {
    ASSERT_TRUE(r.ApplyTo(&replayed).ok());
  }
  EXPECT_EQ(replayed.num_edge_slots(), 3u);
  EXPECT_EQ(replayed.edge_weight(1), 4.5);
  EXPECT_TRUE(replayed.edge_removed(0));

  // Out-of-range and invalid records are typed corruption, not aborts.
  EXPECT_EQ(UpdateRecord::Add(0, 9, 1.0).ApplyTo(&replayed).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(UpdateRecord::Remove(99).ApplyTo(&replayed).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(UpdateRecord::Remove(0).ApplyTo(&replayed).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(UpdateRecord::SetWeight(1, -2.0).ApplyTo(&replayed).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(UpdateRecord::Add(1, 1, 1.0).ApplyTo(&replayed).code(),
            StatusCode::kCorruption);
  UpdateRecord bad_op = UpdateRecord::Remove(1);
  bad_op.op = 77;
  EXPECT_EQ(bad_op.ApplyTo(&replayed).code(), StatusCode::kCorruption);

  // Append refuses invalid records without latching the log.
  const std::string path = TempPath("wal_validate.wal");
  ASSERT_TRUE(UpdateLog::Create(path, 0).ok());
  auto log = UpdateLog::Open(path);
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE((*log)->Append(UpdateRecord::Add(1, 1, 1.0)).ok());
  EXPECT_TRUE((*log)->Append(UpdateRecord::Add(0, 1, 1.0)).ok());
  EXPECT_TRUE((*log)->Close().ok());
}

}  // namespace
}  // namespace dsig
