#include "obs/op_counters.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(OpCountersTest, ResetZeroes) {
  GlobalOpCounters().backtrack_steps += 5;
  ResetOpCounters();
  EXPECT_EQ(GlobalOpCounters().backtrack_steps, 0u);
  EXPECT_EQ(GlobalOpCounters().row_reads, 0u);
}

TEST(OpCountersTest, ExactDistanceCountsSteps) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {6}, {.t = 4, .c = 2});
  ResetOpCounters();
  ExactDistance(*index, 0, 0);  // path 0-3-4-6: three hops
  EXPECT_EQ(GlobalOpCounters().backtrack_steps, 3u);
}

TEST(OpCountersTest, RangeQueryDecomposition) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 500, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, 3);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  ResetOpCounters();
  const OpCounters before = GlobalOpCounters();
  SignatureRangeQuery(*index, 7, 30);
  const OpCounters delta = GlobalOpCounters() - before;
  EXPECT_EQ(delta.row_reads, 1u);  // one signature row per range query
  // Backtracking only happens for straddling candidates.
  EXPECT_GE(delta.backtrack_steps, 0u);
  EXPECT_EQ(delta.exact_compares, 0u);  // range queries never compare
}

TEST(OpCountersTest, KnnTypesUseIncreasingWork) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 5});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 5);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const NodeId q = 11;

  ResetOpCounters();
  SignatureKnnQuery(*index, q, 10, KnnResultType::kType3);
  const uint64_t type3_steps = GlobalOpCounters().backtrack_steps;

  ResetOpCounters();
  SignatureKnnQuery(*index, q, 10, KnnResultType::kType2);
  const uint64_t type2_steps = GlobalOpCounters().backtrack_steps;
  const uint64_t type2_compares = GlobalOpCounters().exact_compares;

  EXPECT_GE(type2_steps, type3_steps);  // type 2 sorts every bucket
  EXPECT_GT(type2_compares, 0u);
}

TEST(OpCountersTest, ForEachVisitsEveryFieldInOrder) {
  // The X-macro is the single source of truth: the visitor must cover the
  // whole struct (every field is a uint64_t) in declaration order.
  OpCounters c{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<std::string> names;
  uint64_t sum = 0;
  size_t count = 0;
  c.ForEach([&](const char* name, uint64_t value) {
    names.emplace_back(name);
    sum += value;
    ++count;
  });
  EXPECT_EQ(count, sizeof(OpCounters) / sizeof(uint64_t));
  EXPECT_EQ(sum, 1u + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9);
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "row_reads");
  EXPECT_EQ(names[1], "entry_reads");
  EXPECT_EQ(names.back(), "label_demotions");
}

TEST(OpCountersTest, SubtractionGivesDeltas) {
  OpCounters a{10, 9, 8, 7, 6, 5};
  OpCounters b{1, 2, 3, 4, 5, 5};
  const OpCounters d = a - b;
  EXPECT_EQ(d.row_reads, 9u);
  EXPECT_EQ(d.entry_reads, 7u);
  EXPECT_EQ(d.backtrack_steps, 5u);
  EXPECT_EQ(d.exact_compares, 3u);
  EXPECT_EQ(d.approx_compares, 1u);
  EXPECT_EQ(d.resolves, 0u);
}

}  // namespace
}  // namespace dsig
