#include "baselines/full_index.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(FullIndexTest, DistancesMatchDijkstra) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {1, 5, 6};
  const auto index = FullIndex::Build(g, objects);
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      EXPECT_EQ(index->Distance(n, o), truth[o][n]);
    }
  }
}

TEST(FullIndexTest, RangeAndKnn) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 3);
  const auto index = FullIndex::Build(g, objects);
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 10, 1)) {
    // Range.
    std::vector<uint32_t> expected;
    for (uint32_t o = 0; o < objects.size(); ++o) {
      if (truth[o][n] <= 20) expected.push_back(o);
    }
    EXPECT_EQ(index->RangeQuery(n, 20), expected);
    // kNN distances.
    const auto knn = index->KnnQuery(n, 5);
    std::vector<Weight> expected_d;
    for (const auto& row : truth) expected_d.push_back(row[n]);
    std::sort(expected_d.begin(), expected_d.end());
    expected_d.resize(5);
    ASSERT_EQ(knn.size(), 5u);
    for (size_t i = 0; i < 5; ++i) EXPECT_EQ(knn[i].first, expected_d[i]);
  }
}

TEST(FullIndexTest, IndexBytesIsFourBytesPerEntry) {
  const RoadNetwork g = MakeGrid({.width = 10, .height = 10});
  const auto index = FullIndex::Build(g, {0, 55});
  EXPECT_EQ(index->IndexBytes(), 100u * 2 * 4);
}

TEST(FullIndexTest, StorageChargesPages) {
  const RoadNetwork g = MakeGrid({.width = 20, .height = 20});
  const std::vector<NodeId> objects = UniformDataset(g, 0.1, 1);
  const auto index = FullIndex::Build(g, objects);
  BufferManager buffer(0);  // every access physical
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  index->AttachStorage(&buffer, order);
  index->RangeQuery(5, 10);
  EXPECT_GT(buffer.stats().physical_accesses, 0u);
  const uint64_t after_range = buffer.stats().physical_accesses;
  index->Distance(5, 0);  // single component: exactly one page
  EXPECT_EQ(buffer.stats().physical_accesses, after_range + 1);
}

}  // namespace
}  // namespace dsig
