// Update/query chaos harness: crashes the durable-update protocol at every
// WAL byte, simulates the checkpoint crash window, and hammers the index
// with concurrent queries during update storms. The crash sweeps prove the
// recovery contract (recovered index == rebuild over the committed record
// prefix, always passing Verify()); the concurrent cases are the TSan
// targets proving snapshot isolation (a query sees pre- or post-update
// state, never a mix).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/distance_ops.h"
#include "core/hub_labels.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "core/update_log.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "query/batch.h"
#include "query/planner.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Semantic equivalence to a rebuild: every category matches the category of
// the true current distance, and backtracking retrieves that distance.
void ExpectIndexMatchesRebuild(const RoadNetwork& g,
                               const std::vector<NodeId>& objects,
                               const SignatureIndex& maintained) {
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const SignatureRow row = maintained.ReadRow(n);
    ASSERT_EQ(row.size(), objects.size());
    for (uint32_t o = 0; o < row.size(); ++o) {
      ASSERT_EQ(row[o].category,
                maintained.partition().CategoryOf(truth[o][n]))
          << "node " << n << " object " << o;
      ASSERT_EQ(ExactDistance(maintained, n, o), truth[o][n])
          << "node " << n << " object " << o;
    }
  }
}

struct ChaosCorpus {
  std::vector<NodeId> objects;
  std::vector<UpdateRecord> script;
};

// RoadNetwork is move-only; the generator is deterministic, so "copy" means
// regenerate from the same seed.
RoadNetwork MakeChaosGraph() {
  return MakeRandomPlanar({.num_nodes = 50, .seed = 21});
}

// Small on purpose: the every-byte sweep re-initializes, crashes, and
// recovers the deployment once per WAL byte.
ChaosCorpus MakeChaosCorpus() {
  ChaosCorpus c;
  const RoadNetwork graph = MakeChaosGraph();
  c.objects = UniformDataset(graph, 0.08, 21);
  Random rng(99);
  for (int i = 0; i < 6; ++i) {
    const int action = static_cast<int>(rng.NextUint64(3));
    if (action == 0) {
      const NodeId u = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
      if (u == v) v = (v + 1) % static_cast<NodeId>(graph.num_nodes());
      c.script.push_back(UpdateRecord::Add(u, v, rng.NextInt(1, 10)));
    } else {
      // Original edges only, so the script stays applicable to any prefix.
      const EdgeId e =
          static_cast<EdgeId>(rng.NextUint64(graph.num_edge_slots()));
      c.script.push_back(UpdateRecord::SetWeight(e, rng.NextInt(1, 10)));
    }
  }
  return c;
}

// The acceptance property: crash the process at EVERY byte offset of the
// WAL while a scripted update sequence runs. Whatever prefix of records
// committed, recovery must (a) pass deep verification, and (b) be
// semantically identical to rebuilding from the post-replay network.
TEST(UpdateChaosTest, EveryWalByteCrashRecoversTheCommittedPrefix) {
  const ChaosCorpus corpus = MakeChaosCorpus();
  const uint64_t total_bytes =
      UpdateLog::kHeaderBytes + corpus.script.size() * UpdateLog::kFrameBytes;

  for (uint64_t fail_at = UpdateLog::kHeaderBytes; fail_at <= total_bytes;
       ++fail_at) {
    SCOPED_TRACE("crash at WAL byte " + std::to_string(fail_at));
    const std::string dir = TempDir("chaos_sweep");
    RoadNetwork g = MakeChaosGraph();
    auto index = BuildSignatureIndex(g, corpus.objects, {.t = 5, .c = 2});

    DurableOptions options;
    options.wal_faults.fail_at = fail_at;
    auto live = DurableUpdater::Initialize(dir, &g, index.get(), options);
    ASSERT_TRUE(live.ok()) << live.status();
    for (const UpdateRecord& record : corpus.script) {
      const auto applied = (*live)->Apply(record);
      if (!applied.ok()) {
        // The crash point: the sticky error must hold from here on.
        const auto again = (*live)->Apply(record);
        ASSERT_FALSE(again.ok());
        break;
      }
    }
    // "Crash": drop every in-memory object, keeping only the directory.
    live->reset();
    index.reset();

    // The committed prefix is what an independent scan says it is.
    auto scan = UpdateLog::Replay(DurableUpdater::WalPath(dir));
    ASSERT_TRUE(scan.ok()) << scan.status();
    const size_t committed = scan->records.size();
    ASSERT_LE(committed, corpus.script.size());

    RecoverOptions verify;
    verify.verify = true;  // deep invariants on every recovery
    auto recovered = DurableUpdater::Recover(dir, {}, verify);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->replayed_records, committed);

    // The recovered network must be the base graph plus exactly the
    // committed records.
    RoadNetwork expected = MakeChaosGraph();
    for (size_t i = 0; i < committed; ++i) {
      ASSERT_TRUE(corpus.script[i].ApplyTo(&expected).ok());
    }
    ASSERT_EQ(recovered->graph->num_edge_slots(), expected.num_edge_slots());
    for (EdgeId e = 0; e < expected.num_edge_slots(); ++e) {
      ASSERT_EQ(recovered->graph->edge_removed(e), expected.edge_removed(e));
      if (!expected.edge_removed(e)) {
        ASSERT_EQ(recovered->graph->edge_weight(e), expected.edge_weight(e));
      }
    }
    ExpectIndexMatchesRebuild(*recovered->graph, corpus.objects,
                              *recovered->index);
  }
}

// A full round trip without crashes: apply, close cleanly, recover, keep
// applying, checkpoint, recover again (now with nothing to replay).
TEST(UpdateChaosTest, CleanShutdownRecoversAndCheckpointTruncates) {
  const ChaosCorpus corpus = MakeChaosCorpus();
  const std::string dir = TempDir("chaos_clean");
  RoadNetwork g = MakeChaosGraph();
  auto index = BuildSignatureIndex(g, corpus.objects, {.t = 5, .c = 2});
  // A label tier rides along: the first applied record must latch it stale,
  // and no checkpoint may persist the stale tier.
  index->set_hub_labels(HubLabels::Build(g, {}, nullptr));

  auto live = DurableUpdater::Initialize(dir, &g, index.get(), {});
  ASSERT_TRUE(live.ok()) << live.status();
  ASSERT_FALSE(index->hub_labels()->stale());
  for (const UpdateRecord& record : corpus.script) {
    ASSERT_TRUE((*live)->Apply(record).ok());
    EXPECT_TRUE(index->hub_labels()->stale());
  }
  EXPECT_EQ((*live)->records_since_checkpoint(), corpus.script.size());
  ASSERT_TRUE((*live)->Close().ok());
  live->reset();
  index.reset();

  RecoverOptions verify_opts;
  verify_opts.verify = true;
  auto recovered = DurableUpdater::Recover(dir, {}, verify_opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->replayed_records, corpus.script.size());
  ExpectIndexMatchesRebuild(*recovered->graph, corpus.objects,
                            *recovered->index);

  // Checkpoint absorbs the log; the next recovery replays nothing.
  ASSERT_TRUE(recovered->updater->Checkpoint().ok());
  EXPECT_EQ(recovered->updater->checkpoint_seq(), corpus.script.size());
  EXPECT_EQ(recovered->updater->records_since_checkpoint(), 0u);
  recovered->updater->Close();

  auto again = DurableUpdater::Recover(dir, {}, verify_opts);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->replayed_records, 0u);
  ExpectIndexMatchesRebuild(*again->graph, corpus.objects, *again->index);
  // The checkpoint was taken after updates had latched the labels stale, so
  // the recovered index must come back without a label tier (a stale tier
  // describes the pre-update network — persisting it would be corruption).
  EXPECT_EQ(again->index->hub_labels(), nullptr);
}

// The designed crash window: MANIFEST committed the new checkpoint but the
// process died before the WAL restart, leaving the previous generation's
// log (whose records the checkpoint already absorbed). Recovery must
// seq-skip them — replaying an AddEdge would allocate a duplicate EdgeId.
TEST(UpdateChaosTest, CrashBetweenManifestRenameAndWalRestartSeqSkips) {
  const ChaosCorpus corpus = MakeChaosCorpus();
  const std::string dir = TempDir("chaos_window");
  RoadNetwork g = MakeChaosGraph();
  auto index = BuildSignatureIndex(g, corpus.objects, {.t = 5, .c = 2});

  auto live = DurableUpdater::Initialize(dir, &g, index.get(), {});
  ASSERT_TRUE(live.ok()) << live.status();
  for (const UpdateRecord& record : corpus.script) {
    ASSERT_TRUE((*live)->Apply(record).ok());
  }
  // Snapshot the pre-checkpoint log, checkpoint, then put the old log back:
  // byte-identical to dying right after the MANIFEST rename.
  const std::string wal = DurableUpdater::WalPath(dir);
  const std::string stale = wal + ".stale";
  std::filesystem::copy_file(wal, stale);
  ASSERT_TRUE((*live)->Checkpoint().ok());
  (*live)->Close();
  live->reset();
  index.reset();
  std::filesystem::rename(stale, wal);

  RecoverOptions verify_opts;
  verify_opts.verify = true;
  auto recovered = DurableUpdater::Recover(dir, {}, verify_opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->replayed_records, 0u);  // all absorbed, all skipped
  ExpectIndexMatchesRebuild(*recovered->graph, corpus.objects,
                            *recovered->index);

  // And the stale log is still appendable: new updates get fresh seqs.
  ASSERT_TRUE(recovered->updater->AddEdge(0, 7, 3).ok());
  EXPECT_EQ(recovered->updater->next_seq(), corpus.script.size() + 2);
}

TEST(UpdateChaosTest, AutoCheckpointFiresOnInterval) {
  const ChaosCorpus corpus = MakeChaosCorpus();
  const std::string dir = TempDir("chaos_auto");
  RoadNetwork g = MakeChaosGraph();
  auto index = BuildSignatureIndex(g, corpus.objects, {.t = 5, .c = 2});

  DurableOptions options;
  options.checkpoint_interval = 4;
  auto live = DurableUpdater::Initialize(dir, &g, index.get(), options);
  ASSERT_TRUE(live.ok()) << live.status();
  for (const UpdateRecord& record : corpus.script) {  // 6 records
    ASSERT_TRUE((*live)->Apply(record).ok());
  }
  EXPECT_EQ((*live)->checkpoint_seq(), 4u);
  EXPECT_EQ((*live)->records_since_checkpoint(), 2u);
  // The superseded seq-0 checkpoint pair was deleted.
  EXPECT_FALSE(std::filesystem::exists(
      DurableUpdater::NetworkCheckpointPath(dir, 0)));
  EXPECT_FALSE(
      std::filesystem::exists(DurableUpdater::IndexCheckpointPath(dir, 0)));
}

// --- concurrency (the TSan targets) --------------------------------------

// One edge toggles between two weights, flipping the network between two
// known states A and B. Query threads continuously retrieve the full
// distance vector from a probe node; every vector they see must equal
// state A's or state B's vector in its ENTIRETY — one mixed entry means a
// query straddled an update, i.e. snapshot isolation broke.
TEST(UpdateChaosTest, TogglingQueriesSeeOnlyTheTwoLegalStates) {
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 60, .seed = 33});
  const std::vector<NodeId> objects = UniformDataset(g, 0.1, 33);
  const size_t k = objects.size();

  // Pick a toggle edge that actually moves several distances: the first
  // edge whose 1 <-> 40 weight flip changes the probe's distance vector.
  const NodeId probe = 11;
  EdgeId toggle = kInvalidEdge;
  const Weight w_a = 1;
  const Weight w_b = 40;
  std::vector<Weight> vec_a, vec_b;
  for (EdgeId e = 0; e < g.num_edge_slots() && toggle == kInvalidEdge; ++e) {
    const Weight original = g.edge_weight(e);
    g.SetEdgeWeight(e, w_a);
    const auto ta = testing_util::BruteForceDistances(g, objects);
    g.SetEdgeWeight(e, w_b);
    const auto tb = testing_util::BruteForceDistances(g, objects);
    std::vector<Weight> a, b;
    for (uint32_t o = 0; o < objects.size(); ++o) {
      a.push_back(ta[o][probe]);
      b.push_back(tb[o][probe]);
    }
    if (a != b) {
      toggle = e;
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      vec_a = a;  // already sorted, as kType1 returns them
      vec_b = b;
    } else {
      g.SetEdgeWeight(e, original);
    }
  }
  ASSERT_NE(toggle, kInvalidEdge);

  g.SetEdgeWeight(toggle, w_a);
  auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  SignatureUpdater updater(&g, index.get());

  std::atomic<bool> done{false};
  std::atomic<int> mixed{0};
  std::atomic<uint64_t> reads{0};
  auto reader = [&] {
    while (!done.load(std::memory_order_relaxed)) {
      // Whole-vector read under one snapshot (the entry point pins it).
      const KnnResult r =
          SignatureKnnQuery(*index, probe, k, KnnResultType::kType1);
      if (r.distances != vec_a && r.distances != vec_b) mixed.fetch_add(1);
      reads.fetch_add(1);
    }
  };
  std::thread t1(reader), t2(reader);
  for (int flip = 0; flip < 120; ++flip) {
    updater.SetEdgeWeight(toggle, flip % 2 == 0 ? w_b : w_a);
  }
  done.store(true);
  t1.join();
  t2.join();
  EXPECT_EQ(mixed.load(), 0)
      << "a query observed a distance vector that is neither pre- nor "
         "post-update state";
  EXPECT_GT(reads.load(), 0u);
}

// Random update storm against continuous mixed queries. No golden values
// mid-storm — the point is TSan coverage of every updater/reader pair — but
// results must stay structurally sane, and the final index must still be
// semantically fresh.
TEST(UpdateChaosTest, UpdateStormWithConcurrentMixedQueries) {
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 120, .seed = 8});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, 8);
  auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  // A hot row cache, so cache invalidation races are part of the storm.
  index->ConfigureRowCache({.byte_budget = 1 << 16});
  // And a label tier, so the planner's stale demotion races with queries
  // mid-flight: readers that raced the first MarkStale answered from their
  // pinned pre-update snapshot, which is exactly what isolation allows.
  index->set_hub_labels(HubLabels::Build(g, {}, nullptr));
  SignatureUpdater updater(&g, index.get());

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  auto reader = [&](uint64_t seed) {
    Random rng(seed);
    while (!done.load(std::memory_order_relaxed)) {
      const NodeId n = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      const KnnResult knn =
          SignatureKnnQuery(*index, n, 4, KnnResultType::kType1);
      for (size_t i = 1; i < knn.distances.size(); ++i) {
        if (knn.distances[i - 1] > knn.distances[i]) violations.fetch_add(1);
      }
      const RangeQueryResult range = SignatureRangeQuery(*index, n, 25);
      if (range.objects.size() > objects.size()) violations.fetch_add(1);
      // Fan a small batch across the process pool: its workers take their
      // own per-thread snapshots, interleaving RunBatch with the storm.
      const std::vector<NodeId> batch = {
          n, static_cast<NodeId>((n + 17) % g.num_nodes()),
          static_cast<NodeId>((n + 31) % g.num_nodes())};
      const auto results =
          BatchKnnQuery(*index, batch, 3, KnnResultType::kType3);
      if (results.size() != batch.size()) violations.fetch_add(1);
    }
  };
  std::thread t1(reader, 101), t2(reader, 202);

  Random rng(7);
  for (int step = 0; step < 150; ++step) {
    const int action = static_cast<int>(rng.NextUint64(3));
    if (action == 0) {
      const NodeId u = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      if (u == v) v = (v + 1) % static_cast<NodeId>(g.num_nodes());
      updater.AddEdge(u, v, rng.NextInt(1, 10));
    } else {
      const EdgeId e =
          static_cast<EdgeId>(rng.NextUint64(g.num_edge_slots()));
      if (g.edge_removed(e)) continue;
      updater.SetEdgeWeight(e, rng.NextInt(1, 10));
    }
  }
  done.store(true);
  t1.join();
  t2.join();
  EXPECT_EQ(violations.load(), 0);
  // The storm applied updates, so the tier is latched stale and demoted;
  // the maintained signature path carries all queries from here.
  EXPECT_TRUE(index->hub_labels()->stale());
  EXPECT_FALSE(LabelsUsable(*index));
  ExpectIndexMatchesRebuild(g, objects, *index);
  // An offline rebuild on the post-storm network re-enables the tier with
  // fresh distances (unless the forced-no-labels CI leg pins the planner
  // off — the direct Distance checks below hold either way).
  index->set_hub_labels(HubLabels::Build(g, {}, nullptr));
  const char* pin = std::getenv("DSIG_FORCE_NO_LABELS");
  if (pin == nullptr || pin[0] == '\0' || std::strcmp(pin, "0") == 0) {
    ASSERT_TRUE(LabelsUsable(*index));
  }
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (uint32_t o = 0; o < objects.size(); ++o) {
    ASSERT_EQ(index->hub_labels()->Distance(19, objects[o]), truth[o][19]);
  }
}

}  // namespace
}  // namespace dsig
