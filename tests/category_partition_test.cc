#include "core/category_partition.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dsig {
namespace {

TEST(CategoryPartitionTest, PaperExampleFourCategories) {
  // The paper's §3.1 example: 0-100, 100-400, 400-900, beyond 900.
  const CategoryPartition p =
      CategoryPartition::FromBoundaries({100, 400, 900});
  EXPECT_EQ(p.num_categories(), 4);
  EXPECT_EQ(p.CategoryOf(75), 0);   // object a
  EXPECT_EQ(p.CategoryOf(475), 2);  // object b
  EXPECT_EQ(p.CategoryOf(100), 1);  // boundary goes up
  EXPECT_EQ(p.CategoryOf(10000), 3);
  EXPECT_EQ(p.LowerBound(0), 0);
  EXPECT_EQ(p.UpperBound(0), 100);
  EXPECT_EQ(p.LowerBound(3), 900);
  EXPECT_EQ(p.UpperBound(3), kInfiniteWeight);
}

TEST(CategoryPartitionTest, ExponentialBoundaries) {
  const CategoryPartition p = CategoryPartition::Exponential(10, 2, 100);
  // Boundaries: 10, 20, 40, 80 -> 5 categories ending with [80, inf).
  EXPECT_EQ(p.num_categories(), 5);
  EXPECT_EQ(p.UpperBound(0), 10);
  EXPECT_EQ(p.UpperBound(1), 20);
  EXPECT_EQ(p.UpperBound(2), 40);
  EXPECT_EQ(p.UpperBound(3), 80);
  EXPECT_EQ(p.UpperBound(4), kInfiniteWeight);
  EXPECT_EQ(p.CategoryOf(0), 0);
  EXPECT_EQ(p.CategoryOf(9.99), 0);
  EXPECT_EQ(p.CategoryOf(10), 1);
  EXPECT_EQ(p.CategoryOf(79.5), 3);
  EXPECT_EQ(p.CategoryOf(95), 4);
}

TEST(CategoryPartitionTest, CategoriesPartitionTheSpectrum) {
  const CategoryPartition p = CategoryPartition::Exponential(5, 3, 1000);
  for (double d = 0; d < 1200; d += 0.37) {
    const int cat = p.CategoryOf(d);
    EXPECT_GE(d, p.LowerBound(cat));
    EXPECT_LT(d, p.UpperBound(cat));
    if (cat > 0) {
      EXPECT_EQ(p.UpperBound(cat - 1), p.LowerBound(cat));
    }
  }
}

TEST(CategoryPartitionTest, OptimalUsesEulerNumber) {
  const CategoryPartition p = CategoryPartition::Optimal(1000, 5000);
  EXPECT_NEAR(p.c(), std::exp(1.0), 1e-12);
  EXPECT_NEAR(p.t(), std::sqrt(1000 / std::exp(1.0)), 1e-9);
}

TEST(CategoryPartitionTest, DegenerateSingleBoundary) {
  const CategoryPartition p = CategoryPartition::Exponential(10, 2, 10);
  EXPECT_EQ(p.num_categories(), 2);
  EXPECT_EQ(p.CategoryOf(3), 0);
  EXPECT_EQ(p.CategoryOf(10), 1);
}

TEST(CategoryPartitionTest, FixedCodeBits) {
  EXPECT_EQ(CategoryPartition::FromBoundaries({1}).fixed_code_bits(), 1);
  EXPECT_EQ(CategoryPartition::FromBoundaries({1, 2, 3}).fixed_code_bits(),
            2);
  EXPECT_EQ(
      CategoryPartition::FromBoundaries({1, 2, 3, 4, 5, 6, 7}).fixed_code_bits(),
      3);
}

TEST(DistanceRangeTest, PartialIntersection) {
  const DistanceRange a{10, 20};
  EXPECT_TRUE(a.PartiallyIntersects({15, 30}));   // overlap, not contained
  EXPECT_TRUE(a.PartiallyIntersects({0, 15}));    // overlap from below
  EXPECT_FALSE(a.PartiallyIntersects({20, 30}));  // disjoint (half-open)
  EXPECT_FALSE(a.PartiallyIntersects({0, 10}));   // disjoint
  EXPECT_FALSE(a.PartiallyIntersects({5, 25}));   // a contained in other
  EXPECT_TRUE(a.PartiallyIntersects({12, 18}));   // other contained in a
}

TEST(DistanceRangeTest, PointDelta) {
  // Range straddling a point threshold partially intersects it; a range
  // ending or starting at the point does not.
  const DistanceRange point{15, 15};
  EXPECT_TRUE(DistanceRange({10, 20}).PartiallyIntersects(point));
  EXPECT_FALSE(DistanceRange({15, 20}).PartiallyIntersects(point));
  EXPECT_FALSE(DistanceRange({10, 15}).PartiallyIntersects(point));
}

TEST(DistanceRangeTest, ContainsIsHalfOpen) {
  const DistanceRange r{10, 20};
  EXPECT_TRUE(r.Contains(10));
  EXPECT_TRUE(r.Contains(19.999));
  EXPECT_FALSE(r.Contains(20));
  EXPECT_FALSE(r.Contains(9.999));
}

}  // namespace
}  // namespace dsig
