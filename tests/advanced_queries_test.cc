// Reverse kNN and closest-pair: the §4.3 generalization queries, validated
// against brute force.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/closest_pair.h"
#include "query/reverse_knn.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::vector<uint32_t> BruteForceReverseKnn(
    const std::vector<std::vector<Weight>>& truth,
    const std::vector<NodeId>& objects, NodeId q, size_t k) {
  std::vector<uint32_t> result;
  k = std::min(k, objects.size() - 1);
  for (uint32_t o = 0; o < objects.size(); ++o) {
    std::vector<Weight> to_others;
    for (uint32_t x = 0; x < objects.size(); ++x) {
      if (x != o) to_others.push_back(truth[o][objects[x]]);
    }
    std::sort(to_others.begin(), to_others.end());
    if (truth[o][q] <= to_others[k - 1]) result.push_back(o);
  }
  return result;
}

TEST(ReverseKnnTest, SmallNetworkHandChecked) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  // Objects at 1, 5, 6. Pairwise: d(1,5)=12? 1-2-5=8; 1-4-5=13 -> 8.
  // d(1,6)=5+7=12; d(5,6)=8+7=15.
  const auto index = BuildSignatureIndex(g, {1, 5, 6}, {.t = 4, .c = 2});
  // q = node 0: d(0,1)=4, d(0,5)=12, d(0,6)=11.
  // k=1 thresholds: obj0(1): nearest other is 5 at 8 -> 4 <= 8 in.
  //                 obj1(5): nearest is 1 at 8 -> 12 > 8 out.
  //                 obj2(6): nearest is 1 at 12 -> 11 <= 12 in.
  const ReverseKnnResult r = SignatureReverseKnn(*index, 0, 1);
  EXPECT_EQ(r.objects, (std::vector<uint32_t>{0, 2}));
}

class ReverseKnnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReverseKnnPropertyTest, MatchesBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 350, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, GetParam());
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId q : testing_util::SampleNodes(g, 12, GetParam() + 1)) {
    for (const size_t k : {1u, 3u, 7u}) {
      EXPECT_EQ(SignatureReverseKnn(*index, q, k).objects,
                BruteForceReverseKnn(truth, objects, q, k))
          << "q=" << q << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseKnnPropertyTest,
                         ::testing::Values(3, 13, 33));

TEST(ReverseKnnTest, QueryAtObjectNode) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1, 5}, {.t = 4, .c = 2});
  // The object at the query node is always a result (distance 0).
  const ReverseKnnResult r = SignatureReverseKnn(*index, 1, 1);
  EXPECT_TRUE(std::find(r.objects.begin(), r.objects.end(), 0u) !=
              r.objects.end());
}

TEST(ClosestPairTest, SmallNetworkHandChecked) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto depots = BuildSignatureIndex(g, {0, 2}, {.t = 4, .c = 2});
  const auto shops = BuildSignatureIndex(g, {3, 5}, {.t = 4, .c = 2});
  // Pair distances: d(0,3)=3, d(0,5)=12, d(2,3)=11, d(2,5)=2.
  const ClosestPairResult r = SignatureClosestPair(*depots, *shops);
  EXPECT_EQ(r.distance, 2);
  EXPECT_EQ(r.left, 1u);   // object at node 2
  EXPECT_EQ(r.right, 1u);  // object at node 5
}

TEST(ClosestPairTest, CoLocatedPairShortCircuits) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto a = BuildSignatureIndex(g, {0, 4}, {.t = 4, .c = 2});
  const auto b = BuildSignatureIndex(g, {4, 6}, {.t = 4, .c = 2});
  const ClosestPairResult r = SignatureClosestPair(*a, *b);
  EXPECT_EQ(r.distance, 0);
}

class ClosestPairPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosestPairPropertyTest, MatchesBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 300, .seed = GetParam()});
  const std::vector<NodeId> left_objects =
      UniformDataset(g, 0.04, GetParam());
  const std::vector<NodeId> right_objects =
      UniformDataset(g, 0.04, GetParam() + 70);
  const auto left = BuildSignatureIndex(g, left_objects, {.t = 5, .c = 2});
  const auto right = BuildSignatureIndex(g, right_objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, left_objects);
  Weight expected = kInfiniteWeight;
  for (uint32_t a = 0; a < left_objects.size(); ++a) {
    for (uint32_t b = 0; b < right_objects.size(); ++b) {
      expected = std::min(expected, truth[a][right_objects[b]]);
    }
  }
  const ClosestPairResult r = SignatureClosestPair(*left, *right);
  EXPECT_EQ(r.distance, expected);
  EXPECT_EQ(truth[r.left][right_objects[r.right]], expected);
  // Pruning must leave most pairs untouched.
  EXPECT_LT(r.refined, left_objects.size() * right_objects.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosestPairPropertyTest,
                         ::testing::Values(5, 15, 35));

}  // namespace
}  // namespace dsig
