#include "baselines/nvd/vn3.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/ine.h"
#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(BorderGraphTest, RestrictedDistancesComposeExactly) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 3);
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, objects);
  const BorderGraph bg(g, &nvd);
  // Within-cell distances must never undercut true network distances.
  for (uint32_t c = 0; c < nvd.num_cells(); ++c) {
    for (const NodeId b1 : nvd.borders[c]) {
      const ShortestPathTree tree = RunDijkstra(g, b1);
      for (const NodeId b2 : nvd.borders[c]) {
        const Weight restricted = bg.BorderToBorder(c, b1, b2);
        if (restricted != kInfiniteWeight) {
          EXPECT_GE(restricted, tree.dist[b2] - 1e-9);
        }
      }
    }
  }
}

TEST(BorderGraphTest, InnerToBorderSelfIsZero) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 6});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 6);
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, objects);
  const BorderGraph bg(g, &nvd);
  for (uint32_t c = 0; c < nvd.num_cells(); ++c) {
    for (const NodeId b : nvd.borders[c]) {
      EXPECT_EQ(bg.InnerToBorder(b, b), 0);
    }
  }
}

TEST(Vn3Test, FirstNnIsCellGenerator) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 2});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 2);
  const Vn3Index vn3(g, objects);
  for (const NodeId q : testing_util::SampleNodes(g, 20, 1)) {
    const auto result = vn3.Knn(q, 1);
    ASSERT_EQ(result.size(), 1u);
    // Ties between equally-near generators may pick either; the distance is
    // always the NVD-stored distance to the cell generator.
    EXPECT_EQ(result[0].first, vn3.nvd().dist_to_generator[q]);
    if (result[0].second != vn3.nvd().cell_of_node[q]) {
      // must be a genuine tie
      const NodeId other = vn3.nvd().generators[result[0].second];
      EXPECT_EQ(DijkstraDistance(g, q, other), result[0].first);
    }
  }
}

class Vn3PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Vn3PropertyTest, KnnMatchesIne) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 500, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, GetParam());
  const Vn3Index vn3(g, objects);
  const IneSearch ine(&g, objects, nullptr);
  for (const NodeId q : testing_util::SampleNodes(g, 15, GetParam() + 1)) {
    for (const size_t k : {1u, 3u, 7u}) {
      const auto got = vn3.Knn(q, k);
      const IneResult expected = ine.Knn(q, k);
      ASSERT_EQ(got.size(), expected.objects.size()) << "q=" << q
                                                     << " k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, expected.objects[i].first)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST_P(Vn3PropertyTest, RangeMatchesIne) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 500, .seed = GetParam() + 50});
  const std::vector<NodeId> objects =
      UniformDataset(g, 0.03, GetParam() + 50);
  const Vn3Index vn3(g, objects);
  const IneSearch ine(&g, objects, nullptr);
  for (const NodeId q : testing_util::SampleNodes(g, 10, GetParam())) {
    for (const Weight eps : {5.0, 20.0, 60.0}) {
      const auto got = vn3.Range(q, eps);
      const IneResult expected = ine.Range(q, eps);
      ASSERT_EQ(got.size(), expected.objects.size())
          << "q=" << q << " eps=" << eps;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, expected.objects[i].first);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Vn3PropertyTest,
                         ::testing::Values(2, 12, 22));

TEST(Vn3Test, ChargesPagesWhenAttached) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 8});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 8);
  Vn3Index vn3(g, objects);
  BufferManager buffer(0);
  vn3.AttachStorage(&buffer);
  vn3.Knn(11, 3);
  EXPECT_GT(buffer.stats().physical_accesses, 0u);
  // Larger k touches at least as many pages.
  const uint64_t k3 = buffer.stats().physical_accesses;
  buffer.Clear();
  vn3.Knn(11, 10);
  EXPECT_GE(buffer.stats().physical_accesses, k3);
}

TEST(Vn3Test, IndexBytesGrowsForSparserData) {
  // Paper Fig 6.4: NVD storage explodes as density drops (bigger cells,
  // more borders per cell).
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1500, .seed = 4});
  const Vn3Index dense(g, UniformDataset(g, 0.05, 4));
  const Vn3Index sparse(g, UniformDataset(g, 0.005, 4));
  const double dense_per_object =
      static_cast<double>(dense.IndexBytes()) / dense.nvd().num_cells();
  const double sparse_per_object =
      static_cast<double>(sparse.IndexBytes()) / sparse.nvd().num_cells();
  EXPECT_GT(sparse_per_object, dense_per_object);
}

}  // namespace
}  // namespace dsig
