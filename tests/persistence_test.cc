#include "io/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(RoadNetworkPersistenceTest, RoundTripsExactly) {
  RoadNetwork original = MakeRandomPlanar({.num_nodes = 300, .seed = 5});
  original.RemoveEdge(original.FindEdge(
      original.edge_endpoints(0).first, original.edge_endpoints(0).second));
  const std::string path = TempPath("network.bin");
  ASSERT_TRUE(SaveRoadNetwork(original, path));
  const auto loaded = LoadRoadNetwork(path);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded->num_edge_slots(), original.num_edge_slots());
  ASSERT_EQ(loaded->num_edges(), original.num_edges());
  for (NodeId n = 0; n < original.num_nodes(); ++n) {
    EXPECT_EQ(loaded->position(n).x, original.position(n).x);
    EXPECT_EQ(loaded->position(n).y, original.position(n).y);
    // Adjacency slot order must be identical (links depend on it).
    ASSERT_EQ(loaded->degree(n), original.degree(n));
    for (size_t i = 0; i < original.degree(n); ++i) {
      EXPECT_EQ(loaded->adjacency(n)[i].to, original.adjacency(n)[i].to);
      EXPECT_EQ(loaded->adjacency(n)[i].weight,
                original.adjacency(n)[i].weight);
      EXPECT_EQ(loaded->adjacency(n)[i].removed,
                original.adjacency(n)[i].removed);
    }
  }
}

TEST(RoadNetworkPersistenceTest, RejectsMissingAndGarbageFiles) {
  EXPECT_EQ(LoadRoadNetwork("/nonexistent/nowhere.bin"), nullptr);
  const std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a network", f);
  std::fclose(f);
  EXPECT_EQ(LoadRoadNetwork(path), nullptr);
}

TEST(SignatureIndexPersistenceTest, RoundTripPreservesEverything) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 400, .seed = 9});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.05, 9);
  const auto original = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  const std::string path = TempPath("index.bin");
  ASSERT_TRUE(SaveSignatureIndex(*original, path));
  const auto loaded = LoadSignatureIndex(graph, path);
  ASSERT_NE(loaded, nullptr);

  EXPECT_EQ(loaded->objects(), original->objects());
  EXPECT_EQ(loaded->partition().num_categories(),
            original->partition().num_categories());
  EXPECT_EQ(loaded->size_stats().compressed_bits,
            original->size_stats().compressed_bits);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    EXPECT_EQ(loaded->ReadRow(n), original->ReadRow(n)) << "node " << n;
  }
  // Object table intact (far markers and values).
  for (uint32_t u = 0; u < objects.size(); ++u) {
    for (uint32_t v = 0; v < objects.size(); ++v) {
      ASSERT_EQ(loaded->object_table().IsFar(u, v),
                original->object_table().IsFar(u, v));
      if (!loaded->object_table().IsFar(u, v)) {
        EXPECT_EQ(loaded->object_table().Get(u, v),
                  original->object_table().Get(u, v));
      }
    }
  }
}

TEST(SignatureIndexPersistenceTest, LoadedIndexAnswersQueries) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 350, .seed = 2});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.04, 2);
  const auto original = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  const std::string path = TempPath("index_q.bin");
  ASSERT_TRUE(SaveSignatureIndex(*original, path));
  const auto loaded = LoadSignatureIndex(graph, path);
  ASSERT_NE(loaded, nullptr);
  const auto truth = testing_util::BruteForceDistances(graph, objects);
  for (const NodeId n : testing_util::SampleNodes(graph, 10, 3)) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      EXPECT_EQ(ExactDistance(*loaded, n, o), truth[o][n]);
    }
  }
}

TEST(SignatureIndexPersistenceTest, RebuildForestEnablesUpdates) {
  RoadNetwork graph = MakeRandomPlanar({.num_nodes = 200, .seed = 4});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.05, 4);
  const auto original = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  const std::string path = TempPath("index_u.bin");
  ASSERT_TRUE(SaveSignatureIndex(*original, path));
  auto loaded = LoadSignatureIndex(graph, path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->forest(), nullptr);
  loaded->RebuildForest();
  ASSERT_NE(loaded->forest(), nullptr);
  SignatureUpdater updater(&graph, loaded.get());
  const UpdateStats stats = updater.SetEdgeWeight(0, graph.edge_weight(0) + 3);
  // The update machinery works on the rebuilt forest.
  const auto truth = testing_util::BruteForceDistances(graph, objects);
  for (uint32_t o = 0; o < objects.size(); ++o) {
    EXPECT_EQ(ExactDistance(*loaded, 7, o), truth[o][7]);
  }
  (void)stats;
}

TEST(SignatureIndexPersistenceTest, RejectsWrongGraph) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 300, .seed = 6});
  const RoadNetwork other = MakeRandomPlanar({.num_nodes = 301, .seed = 6});
  const auto index =
      BuildSignatureIndex(graph, UniformDataset(graph, 0.05, 6),
                          {.t = 5, .c = 2});
  const std::string path = TempPath("index_w.bin");
  ASSERT_TRUE(SaveSignatureIndex(*index, path));
  EXPECT_EQ(LoadSignatureIndex(other, path), nullptr);
  EXPECT_NE(LoadSignatureIndex(graph, path), nullptr);
}

}  // namespace
}  // namespace dsig
