#include "io/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "core/distance_ops.h"
#include "core/hub_labels.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "io/binary_io.h"
#include "query/knn_query.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// XORs `mask` into the byte at `offset` of `path` (corruption helper).
void FlipByte(const std::string& path, long offset, uint8_t mask) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  uint8_t byte = 0;
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte ^= mask;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  std::fclose(f);
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

TEST(RoadNetworkPersistenceTest, RoundTripsExactly) {
  RoadNetwork original = MakeRandomPlanar({.num_nodes = 300, .seed = 5});
  original.RemoveEdge(original.FindEdge(
      original.edge_endpoints(0).first, original.edge_endpoints(0).second));
  const std::string path = TempPath("network.bin");
  ASSERT_TRUE(SaveRoadNetwork(original, path).ok());
  auto loaded_or = LoadRoadNetwork(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  const auto& loaded = *loaded_or;
  ASSERT_EQ(loaded->num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded->num_edge_slots(), original.num_edge_slots());
  ASSERT_EQ(loaded->num_edges(), original.num_edges());
  for (NodeId n = 0; n < original.num_nodes(); ++n) {
    EXPECT_EQ(loaded->position(n).x, original.position(n).x);
    EXPECT_EQ(loaded->position(n).y, original.position(n).y);
    // Adjacency slot order must be identical (links depend on it).
    ASSERT_EQ(loaded->degree(n), original.degree(n));
    for (size_t i = 0; i < original.degree(n); ++i) {
      EXPECT_EQ(loaded->adjacency(n)[i].to, original.adjacency(n)[i].to);
      EXPECT_EQ(loaded->adjacency(n)[i].weight,
                original.adjacency(n)[i].weight);
      EXPECT_EQ(loaded->adjacency(n)[i].removed,
                original.adjacency(n)[i].removed);
    }
  }
}

TEST(RoadNetworkPersistenceTest, RejectsMissingAndGarbageFiles) {
  const auto missing = LoadRoadNetwork("/nonexistent/nowhere.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  const std::string path = TempPath("garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a network", f);
  std::fclose(f);
  const auto garbage = LoadRoadNetwork(path);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(garbage.status().code(), StatusCode::kCorruption);
  EXPECT_NE(garbage.status().message().find("bad magic"), std::string::npos);
}

TEST(RoadNetworkPersistenceTest, RejectsWrongMagicAndVersionSkew) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 60, .seed = 7});
  const std::string path = TempPath("header.net");
  ASSERT_TRUE(SaveRoadNetwork(graph, path).ok());

  // Byte 0 is the magic.
  FlipByte(path, 0, 0xFF);
  const auto bad_magic = LoadRoadNetwork(path);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("bad magic"),
            std::string::npos);
  FlipByte(path, 0, 0xFF);

  // Byte 4 is the version.
  FlipByte(path, 4, 0xFF);
  const auto skewed = LoadRoadNetwork(path);
  ASSERT_FALSE(skewed.ok());
  EXPECT_NE(skewed.status().message().find("version"), std::string::npos);
  FlipByte(path, 4, 0xFF);

  EXPECT_TRUE(LoadRoadNetwork(path).ok());
}

TEST(RoadNetworkPersistenceTest, RejectsAnIndexFileAsANetwork) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 80, .seed = 8});
  const auto index = BuildSignatureIndex(graph, UniformDataset(graph, 0.1, 8),
                                         {.t = 5, .c = 2});
  const std::string path = TempPath("mistaken.idx");
  ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());
  const auto as_network = LoadRoadNetwork(path);
  ASSERT_FALSE(as_network.ok());
  EXPECT_NE(as_network.status().message().find("bad magic"),
            std::string::npos);
  // And the other way around.
  const std::string net_path = TempPath("mistaken.net");
  ASSERT_TRUE(SaveRoadNetwork(graph, net_path).ok());
  EXPECT_FALSE(LoadSignatureIndex(graph, net_path).ok());
}

TEST(RoadNetworkPersistenceTest, FailedSaveLeavesNoFileBehind) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 100, .seed = 9});
  const std::string path = TempPath("failed.net");
  // Simulated full disk after 64 bytes: the save reports the I/O error and
  // neither the final file nor the temp file exists afterwards.
  const Status status =
      SaveRoadNetwork(graph, path, {.faults = {.fail_at = 64}});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(RoadNetworkPersistenceTest, FailedResaveKeepsTheOldFileLoadable) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 100, .seed = 10});
  const std::string path = TempPath("atomic.net");
  ASSERT_TRUE(SaveRoadNetwork(graph, path).ok());
  // A later save that dies half-way must not clobber the good file.
  ASSERT_FALSE(
      SaveRoadNetwork(graph, path, {.faults = {.fail_at = 64}}).ok());
  const auto loaded = LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ((*loaded)->num_nodes(), graph.num_nodes());
  EXPECT_FALSE(FileExists(path + ".tmp"));
}

TEST(SignatureIndexPersistenceTest, RoundTripPreservesEverything) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 400, .seed = 9});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.05, 9);
  const auto original = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  const std::string path = TempPath("index.bin");
  ASSERT_TRUE(SaveSignatureIndex(*original, path).ok());
  auto loaded_or = LoadSignatureIndex(graph, path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  const auto& loaded = *loaded_or;

  EXPECT_EQ(loaded->objects(), original->objects());
  EXPECT_EQ(loaded->partition().num_categories(),
            original->partition().num_categories());
  EXPECT_EQ(loaded->size_stats().compressed_bits,
            original->size_stats().compressed_bits);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    EXPECT_EQ(loaded->ReadRow(n), original->ReadRow(n)) << "node " << n;
  }
  // Object table intact (far markers and values).
  for (uint32_t u = 0; u < objects.size(); ++u) {
    for (uint32_t v = 0; v < objects.size(); ++v) {
      ASSERT_EQ(loaded->object_table().IsFar(u, v),
                original->object_table().IsFar(u, v));
      if (!loaded->object_table().IsFar(u, v)) {
        EXPECT_EQ(loaded->object_table().Get(u, v),
                  original->object_table().Get(u, v));
      }
    }
  }
}

TEST(SignatureIndexPersistenceTest, LoadedIndexAnswersQueries) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 350, .seed = 2});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.04, 2);
  const auto original = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  const std::string path = TempPath("index_q.bin");
  ASSERT_TRUE(SaveSignatureIndex(*original, path).ok());
  auto loaded_or = LoadSignatureIndex(graph, path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  const auto& loaded = *loaded_or;
  const auto truth = testing_util::BruteForceDistances(graph, objects);
  for (const NodeId n : testing_util::SampleNodes(graph, 10, 3)) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      EXPECT_EQ(ExactDistance(*loaded, n, o), truth[o][n]);
    }
  }
}

TEST(SignatureIndexPersistenceTest, VerifyOnLoadAcceptsACleanIndex) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 250, .seed = 11});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.05, 11);
  const auto original = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  const std::string path = TempPath("index_v.bin");
  ASSERT_TRUE(SaveSignatureIndex(*original, path).ok());
  const auto loaded =
      LoadSignatureIndex(graph, path, {.verify = true, .faults = {}});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
}

TEST(SignatureIndexPersistenceTest, RebuildForestEnablesUpdates) {
  RoadNetwork graph = MakeRandomPlanar({.num_nodes = 200, .seed = 4});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.05, 4);
  const auto original = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  const std::string path = TempPath("index_u.bin");
  ASSERT_TRUE(SaveSignatureIndex(*original, path).ok());
  auto loaded_or = LoadSignatureIndex(graph, path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  auto& loaded = *loaded_or;
  EXPECT_EQ(loaded->forest(), nullptr);
  loaded->RebuildForest();
  ASSERT_NE(loaded->forest(), nullptr);
  SignatureUpdater updater(&graph, loaded.get());
  const UpdateStats stats = updater.SetEdgeWeight(0, graph.edge_weight(0) + 3);
  // The update machinery works on the rebuilt forest.
  const auto truth = testing_util::BruteForceDistances(graph, objects);
  for (uint32_t o = 0; o < objects.size(); ++o) {
    EXPECT_EQ(ExactDistance(*loaded, 7, o), truth[o][7]);
  }
  (void)stats;
}

TEST(SignatureIndexPersistenceTest, RejectsWrongGraph) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 300, .seed = 6});
  const RoadNetwork other = MakeRandomPlanar({.num_nodes = 301, .seed = 6});
  const auto index =
      BuildSignatureIndex(graph, UniformDataset(graph, 0.05, 6),
                          {.t = 5, .c = 2});
  const std::string path = TempPath("index_w.bin");
  ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());
  const auto mismatched = LoadSignatureIndex(other, path);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(mismatched.status().message().find("different network"),
            std::string::npos);
  EXPECT_TRUE(LoadSignatureIndex(graph, path).ok());
}

TEST(SignatureIndexPersistenceTest, InjectedReadFaultsSurfaceAsErrors) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 150, .seed = 12});
  const auto index = BuildSignatureIndex(graph, UniformDataset(graph, 0.05, 12),
                                         {.t = 5, .c = 2});
  const std::string path = TempPath("index_f.bin");
  ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());

  // Hard I/O error in the middle of the file.
  const auto io_failed =
      LoadSignatureIndex(graph, path, {.faults = {.fail_at = 500}});
  ASSERT_FALSE(io_failed.ok());
  EXPECT_EQ(io_failed.status().code(), StatusCode::kIoError);

  // Short read (file cut off beneath us).
  const auto truncated =
      LoadSignatureIndex(graph, path, {.faults = {.truncate_at = 700}});
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);

  // Single flipped bit: some section checksum must catch it.
  const auto flipped = LoadSignatureIndex(
      graph, path, {.faults = {.flip_byte = 900, .flip_mask = 0x20}});
  ASSERT_FALSE(flipped.ok());
  EXPECT_EQ(flipped.status().code(), StatusCode::kCorruption);

  // kNoFault plans are inert.
  EXPECT_TRUE(LoadSignatureIndex(graph, path, {.faults = {}}).ok());
}

TEST(SignatureIndexPersistenceTest, HubLabelSectionRoundTrips) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 200, .seed = 41});
  const auto index = BuildSignatureIndex(graph, UniformDataset(graph, 0.06, 41),
                                         {.t = 5, .c = 2});
  index->set_hub_labels(HubLabels::Build(graph, {}, nullptr));
  const std::string path = TempPath("index_labels.bin");
  ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());

  // Loads (including a deep Verify, which covers VerifyStructure) and the
  // tier answers exactly what the in-memory build answers.
  auto loaded_or = LoadSignatureIndex(graph, path, {.verify = true});
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  const auto& loaded = *loaded_or;
  ASSERT_NE(loaded->hub_labels(), nullptr);
  ASSERT_TRUE(loaded->hub_labels()->ready());
  EXPECT_FALSE(loaded->hub_labels()->stale());
  for (const NodeId u : testing_util::SampleNodes(graph, 5, 41)) {
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      ASSERT_EQ(loaded->hub_labels()->Distance(u, v),
                index->hub_labels()->Distance(u, v));
    }
  }

  // A flipped byte inside the (trailing) label section is caught by its
  // section CRC. The labels are the last section before the 16-byte footer.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  FlipByte(path, size - 200, 0x08);
  const auto corrupt = LoadSignatureIndex(graph, path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kCorruption);
}

TEST(SignatureIndexPersistenceTest, FilesWithoutLabelsStillLoad) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 150, .seed = 43});
  const auto index = BuildSignatureIndex(graph, UniformDataset(graph, 0.06, 43),
                                         {.t = 5, .c = 2});
  const std::string path = TempPath("index_nolabels.bin");
  ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());
  auto loaded_or = LoadSignatureIndex(graph, path, {.verify = true});
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  EXPECT_EQ((*loaded_or)->hub_labels(), nullptr);
}

TEST(SignatureIndexPersistenceTest, StaleLabelsAreNotPersisted) {
  const RoadNetwork graph = MakeRandomPlanar({.num_nodes = 150, .seed = 47});
  const auto index = BuildSignatureIndex(graph, UniformDataset(graph, 0.06, 47),
                                         {.t = 5, .c = 2});
  index->set_hub_labels(HubLabels::Build(graph, {}, nullptr));
  index->InvalidateHubLabels();
  const std::string path = TempPath("index_stale.bin");
  ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());
  auto loaded_or = LoadSignatureIndex(graph, path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status();
  // Stale labels describe a network that no longer exists; the file must
  // come back without a label tier rather than with a wrong one.
  EXPECT_EQ((*loaded_or)->hub_labels(), nullptr);
}

}  // namespace
}  // namespace dsig
