#include "baselines/nn_lists.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/ine.h"
#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(NnListIndexTest, CondensedNodesAreHighDegree) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 3});
  const NnListIndex index(&g, UniformDataset(g, 0.05, 3), 8, 5);
  EXPECT_GT(index.num_condensed(), 0u);
  EXPECT_LT(index.num_condensed(), g.num_nodes());
  EXPECT_GT(index.IndexBytes(), 0u);
}

class NnListPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NnListPropertyTest, KnnMatchesIne) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 500, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, GetParam());
  const NnListIndex index(&g, objects, 10, 5);
  const IneSearch ine(&g, objects, nullptr);
  for (const NodeId q : testing_util::SampleNodes(g, 12, GetParam() + 1)) {
    for (const size_t k : {1u, 4u, 10u}) {
      const auto got = index.Knn(q, k);
      const IneResult expected = ine.Knn(q, k);
      ASSERT_EQ(got.size(), expected.objects.size()) << "q=" << q
                                                     << " k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].distance, expected.objects[i].first)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnListPropertyTest,
                         ::testing::Values(4, 14, 24));

TEST(NnListIndexTest, KnnAtCondensedNodeServedFromList) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 7});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 7);
  const NnListIndex index(&g, objects, 6, 4);
  const IneSearch ine(&g, objects, nullptr);
  // Find a condensed node: degree >= 4.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    size_t degree = 0;
    for (const auto& e : g.adjacency(n)) degree += e.removed ? 0 : 1;
    if (degree < 4) continue;
    const auto got = index.Knn(n, 3);
    const IneResult expected = ine.Knn(n, 3);
    ASSERT_EQ(got.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(got[i].distance, expected.objects[i].first);
    }
    break;
  }
}

TEST(NnListIndexTest, RejectsKBeyondListDepth) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const NnListIndex index(&g, {1, 5, 6}, 2, 4);
  EXPECT_DEATH(index.Knn(0, 3), "list depth");
}

std::vector<NodeId> ShortestPathBetween(const RoadNetwork& g, NodeId a,
                                        NodeId b) {
  const ShortestPathTree tree = RunDijkstra(g, a);
  return ReconstructPath(tree, a, b);
}

class NnListCnnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NnListCnnPropertyTest, CnnMatchesPerNodeBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 400, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, GetParam());
  const NnListIndex index(&g, objects, 10, 4);
  const auto truth = testing_util::BruteForceDistances(g, objects);
  Random rng(GetParam() + 5);
  for (int trial = 0; trial < 4; ++trial) {
    const NodeId a = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    const NodeId b = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
    const std::vector<NodeId> path = ShortestPathBetween(g, a, b);
    if (path.size() < 2) continue;
    const size_t k = 3;
    const auto intervals = index.ContinuousKnn(path, k);
    ASSERT_FALSE(intervals.empty());
    EXPECT_EQ(intervals.front().first_index, 0u);
    EXPECT_EQ(intervals.back().last_index, path.size() - 1);
    for (const auto& interval : intervals) {
      for (size_t i = interval.first_index; i <= interval.last_index; ++i) {
        std::vector<Weight> expected;
        for (const auto& row : truth) expected.push_back(row[path[i]]);
        std::sort(expected.begin(), expected.end());
        expected.resize(k);
        std::vector<Weight> got;
        for (const uint32_t o : interval.objects) {
          got.push_back(truth[o][path[i]]);
        }
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expected) << "position " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnListCnnPropertyTest,
                         ::testing::Values(6, 16, 26));

}  // namespace
}  // namespace dsig
