#include "baselines/ier.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/ine.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(IerTest, ScaleIsPositiveOnPlanarNetworks) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 2});
  const IerSearch ier(&g, UniformDataset(g, 0.05, 2), nullptr);
  EXPECT_GT(ier.euclidean_scale(), 0);
}

class IerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IerPropertyTest, KnnMatchesIne) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 500, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, GetParam());
  const IerSearch ier(&g, objects, nullptr);
  const IneSearch ine(&g, objects, nullptr);
  for (const NodeId q : testing_util::SampleNodes(g, 10, GetParam() + 1)) {
    for (const size_t k : {1u, 4u, 8u}) {
      const IerResult got = ier.Knn(q, k);
      const IneResult expected = ine.Knn(q, k);
      ASSERT_EQ(got.objects.size(), expected.objects.size());
      for (size_t i = 0; i < got.objects.size(); ++i) {
        EXPECT_EQ(got.objects[i].first, expected.objects[i].first)
            << "q=" << q << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST_P(IerPropertyTest, RangeMatchesIne) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 500, .seed = GetParam() + 31});
  const std::vector<NodeId> objects =
      UniformDataset(g, 0.04, GetParam() + 31);
  const IerSearch ier(&g, objects, nullptr);
  const IneSearch ine(&g, objects, nullptr);
  for (const NodeId q : testing_util::SampleNodes(g, 8, GetParam())) {
    for (const Weight eps : {10.0, 40.0, 90.0}) {
      const IerResult got = ier.Range(q, eps);
      const IneResult expected = ine.Range(q, eps);
      ASSERT_EQ(got.objects.size(), expected.objects.size())
          << "q=" << q << " eps=" << eps;
      for (size_t i = 0; i < got.objects.size(); ++i) {
        EXPECT_EQ(got.objects[i].first, expected.objects[i].first);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IerPropertyTest,
                         ::testing::Values(5, 15, 25));

TEST(IerTest, LooseBoundForcesManyEvaluations) {
  // The paper's criticism: when the Euclidean bound is loose (weights are
  // random 1..10, so the admissible scale is tiny), IER refines many more
  // candidates than k.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1000, .seed = 6});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 6);
  const IerSearch ier(&g, objects, nullptr);
  size_t evaluations = 0, queries = 0;
  for (const NodeId q : testing_util::SampleNodes(g, 10, 1)) {
    evaluations += ier.Knn(q, 1).network_evaluations;
    ++queries;
  }
  EXPECT_GT(evaluations, queries * 2);  // far more than 1 refinement per 1NN
}

TEST(IerTest, KnnEvaluationsBoundedByCandidates) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 8});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 8);
  const IerSearch ier(&g, objects, nullptr);
  const IerResult r = ier.Knn(3, 5);
  EXPECT_LE(r.network_evaluations, objects.size());
  EXPECT_EQ(r.objects.size(), 5u);
}

}  // namespace
}  // namespace dsig
