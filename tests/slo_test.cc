#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace dsig {
namespace obs {
namespace {

constexpr uint64_t kSec = 1000ull * 1000 * 1000;

SloWindows TestWindows() {
  SloWindows w;
  w.fast_ns = 5 * kSec;
  w.slow_ns = 30 * kSec;
  w.slot_ns = kSec;
  return w;
}

std::vector<SloObjective> TestObjectives() {
  return {
      {"knn", 10.0, 0.99},     // 10 ms budget, 99% availability
      {"update", 50.0, 0.999},
  };
}

class SloEngineTest : public ::testing::Test {
 protected:
  SloEngineTest() : engine_(TestObjectives(), TestWindows()) {}
  SloEngine engine_;
};

TEST_F(SloEngineTest, ClassIndexResolvesDeclaredClassesOnly) {
  EXPECT_EQ(engine_.ClassIndex("knn"), 0);
  EXPECT_EQ(engine_.ClassIndex("update"), 1);
  EXPECT_EQ(engine_.ClassIndex("range"), -1);
  EXPECT_EQ(engine_.ClassIndex(""), -1);
  EXPECT_EQ(engine_.num_classes(), 2u);
}

TEST_F(SloEngineTest, RecordReturnsTheBreachVerdict) {
  const uint64_t now = 100 * kSec;
  // In budget and ok: no breach.
  EXPECT_FALSE(engine_.RecordAt(0, 5.0, /*ok=*/true, /*executed=*/true, now));
  // Over budget: breach even though the request succeeded.
  EXPECT_TRUE(engine_.RecordAt(0, 50.0, true, true, now));
  // Failed: breach even though it was fast.
  EXPECT_TRUE(engine_.RecordAt(0, 1.0, false, false, now));
  // Out-of-range class indexes are ignored, never crash.
  EXPECT_FALSE(engine_.RecordAt(-1, 1.0, false, false, now));
  EXPECT_FALSE(engine_.RecordAt(99, 1.0, false, false, now));
}

TEST_F(SloEngineTest, AllGoodTrafficIsOk) {
  const uint64_t base = 1000 * kSec;
  for (int s = 0; s < 30; ++s) {
    for (int i = 0; i < 10; ++i) {
      engine_.RecordAt(0, 2.0, true, true, base + s * kSec);
    }
  }
  const SloClassHealth health = engine_.HealthAt(0, base + 30 * kSec);
  EXPECT_EQ(health.state, SloState::kOk);
  EXPECT_EQ(health.fast_bad, 0u);
  EXPECT_DOUBLE_EQ(health.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(health.slow_burn, 0.0);
  EXPECT_GT(health.window_count, 0u);
  EXPECT_GT(health.window_p99_ms, 0.0);
}

TEST_F(SloEngineTest, SustainedBadTrafficGoesCritical) {
  // 50% bad on a 99% objective: burn = 0.5 / 0.01 = 50 >> 14.4, sustained
  // across both windows.
  const uint64_t base = 2000 * kSec;
  for (int s = 0; s < 30; ++s) {
    for (int i = 0; i < 10; ++i) {
      const bool ok = i % 2 == 0;
      engine_.RecordAt(0, 2.0, ok, ok, base + s * kSec);
    }
  }
  const SloClassHealth health = engine_.HealthAt(0, base + 30 * kSec);
  EXPECT_EQ(health.state, SloState::kCritical);
  EXPECT_GE(health.fast_burn, 14.4);
  EXPECT_GE(health.slow_burn, 14.4);
}

TEST_F(SloEngineTest, FastWindowSpikeAloneIsNotCritical) {
  // A burst of errors confined to the last 3 seconds of a 30-second run:
  // the fast window burns hot but the slow window stays under threshold, so
  // the multi-window rule holds fire.
  const uint64_t base = 3000 * kSec;
  for (int s = 0; s < 27; ++s) {
    for (int i = 0; i < 100; ++i) {
      engine_.RecordAt(0, 2.0, true, true, base + s * kSec);
    }
  }
  for (int s = 27; s < 30; ++s) {
    for (int i = 0; i < 10; ++i) {
      engine_.RecordAt(0, 2.0, false, false, base + s * kSec);
    }
  }
  const SloClassHealth health = engine_.HealthAt(0, base + 30 * kSec);
  EXPECT_GE(health.fast_burn, 14.4);
  EXPECT_LT(health.slow_burn, 14.4);
  EXPECT_NE(health.state, SloState::kCritical);
}

TEST_F(SloEngineTest, CriticalRecoversOnceBadTrafficAgesOut) {
  const uint64_t base = 4000 * kSec;
  // Overload: everything bad for 30 s -> critical.
  for (int s = 0; s < 30; ++s) {
    engine_.RecordAt(0, 100.0, false, true, base + s * kSec);
  }
  EXPECT_EQ(engine_.HealthAt(0, base + 30 * kSec).state, SloState::kCritical);

  // Recovery: good traffic only. The fast window forgets in 5 s, dropping
  // the state out of critical; once the slow window forgets too, burn is 0.
  const uint64_t recovery = base + 30 * kSec;
  for (int s = 0; s < 10; ++s) {
    engine_.RecordAt(0, 2.0, true, true, recovery + s * kSec);
  }
  const SloClassHealth after_fast =
      engine_.HealthAt(0, recovery + 10 * kSec);
  EXPECT_NE(after_fast.state, SloState::kCritical);

  const SloClassHealth after_slow =
      engine_.HealthAt(0, recovery + 40 * kSec);
  EXPECT_EQ(after_slow.state, SloState::kOk);
  EXPECT_DOUBLE_EQ(after_slow.fast_burn, 0.0);
}

TEST_F(SloEngineTest, ShedRequestsBurnBudgetButNotLatency) {
  const uint64_t base = 5000 * kSec;
  engine_.RecordAt(0, 5.0, true, true, base);
  // Shed: ok=false, executed=false — counts against availability, stays out
  // of the latency window.
  engine_.RecordAt(0, 0.01, false, false, base);
  const SloClassHealth health = engine_.HealthAt(0, base + kSec);
  EXPECT_EQ(health.fast_total, 2u);
  EXPECT_EQ(health.fast_bad, 1u);
  EXPECT_EQ(health.window_count, 1u);  // only the executed request
  EXPECT_EQ(health.lifetime_count, 1u);
}

TEST_F(SloEngineTest, OverallIsTheWorstClassState) {
  std::vector<SloClassHealth> classes(2);
  classes[0].state = SloState::kOk;
  classes[1].state = SloState::kWarning;
  EXPECT_EQ(SloEngine::Overall(classes), SloState::kWarning);
  classes[0].state = SloState::kCritical;
  EXPECT_EQ(SloEngine::Overall(classes), SloState::kCritical);
  EXPECT_EQ(SloEngine::Overall({}), SloState::kOk);
}

TEST_F(SloEngineTest, ReportJsonCarriesTheHealthReport) {
  const uint64_t base = 6000 * kSec;
  engine_.RecordAt(0, 2.0, true, true, base);
  const std::string json = engine_.ReportJsonAt(base + kSec);
  EXPECT_NE(json.find("\"overall\""), std::string::npos);
  EXPECT_NE(json.find("\"classes\""), std::string::npos);
  EXPECT_NE(json.find("\"knn\""), std::string::npos);
  EXPECT_NE(json.find("\"update\""), std::string::npos);
  EXPECT_NE(json.find("\"fast_burn\""), std::string::npos);
  EXPECT_NE(json.find("\"state\""), std::string::npos);
  EXPECT_NE(json.find("\"window_p99_ms\""), std::string::npos);
}

TEST_F(SloEngineTest, PublishGaugesLandsInTheGlobalRegistry) {
  const uint64_t base = 7000 * kSec;
  for (int i = 0; i < 10; ++i) {
    engine_.RecordAt(0, 100.0, false, true, base);
  }
  engine_.PublishGaugesAt(base + kSec);
  auto& registry = MetricsRegistry::Global();
  EXPECT_GT(registry.GetGauge("slo.knn.burn_fast")->Value(), 14.4);
  EXPECT_GE(registry.GetGauge("slo.knn.state")->Value(), 0.0);
}

TEST(SloStateTest, NamesAreStable) {
  EXPECT_STREQ(SloStateName(SloState::kOk), "ok");
  EXPECT_STREQ(SloStateName(SloState::kWarning), "warning");
  EXPECT_STREQ(SloStateName(SloState::kCritical), "critical");
}

}  // namespace
}  // namespace obs
}  // namespace dsig
