#include "query/aggregate_query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(AggregateQueryTest, CountOnSmallNetwork) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1, 5, 6}, {.t = 4, .c = 2});
  EXPECT_EQ(SignatureCountQuery(*index, 0, 4).count, 1u);
  EXPECT_EQ(SignatureCountQuery(*index, 0, 11).count, 2u);
  EXPECT_EQ(SignatureCountQuery(*index, 0, 100).count, 3u);
  EXPECT_EQ(SignatureCountQuery(*index, 0, 1).count, 0u);
}

TEST(AggregateQueryTest, DistanceAggregatesOnSmallNetwork) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1, 5, 6}, {.t = 4, .c = 2});
  // From node 0: distances 4, 12, 11.
  const DistanceAggregateResult r =
      SignatureDistanceAggregateQuery(*index, 0, 100);
  EXPECT_EQ(r.count, 3u);
  EXPECT_EQ(r.sum, 27);
  EXPECT_EQ(r.min, 4);
  EXPECT_EQ(r.max, 12);
}

TEST(AggregateQueryTest, EmptyResult) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {5}, {.t = 4, .c = 2});
  const DistanceAggregateResult r =
      SignatureDistanceAggregateQuery(*index, 0, 1);
  EXPECT_EQ(r.count, 0u);
  EXPECT_EQ(r.sum, 0);
  EXPECT_EQ(r.min, kInfiniteWeight);
}

class AggregatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregatePropertyTest, MatchesBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 350, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, GetParam());
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 10, GetParam())) {
    for (const Weight eps : {5.0, 20.0, 50.0}) {
      size_t count = 0;
      Weight sum = 0, mn = kInfiniteWeight, mx = 0;
      for (uint32_t o = 0; o < objects.size(); ++o) {
        const Weight d = truth[o][n];
        if (d <= eps) {
          ++count;
          sum += d;
          mn = std::min(mn, d);
          mx = std::max(mx, d);
        }
      }
      EXPECT_EQ(SignatureCountQuery(*index, n, eps).count, count);
      const DistanceAggregateResult r =
          SignatureDistanceAggregateQuery(*index, n, eps);
      EXPECT_EQ(r.count, count);
      EXPECT_EQ(r.sum, sum);
      if (count > 0) {
        EXPECT_EQ(r.min, mn);
        EXPECT_EQ(r.max, mx);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregatePropertyTest,
                         ::testing::Values(4, 14, 44));

}  // namespace
}  // namespace dsig
