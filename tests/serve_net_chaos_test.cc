// Network-fault chaos: the SocketFaultPlan injector (short I/O, mid-frame
// resets, stalls), whole-transfer deadlines, slowloris and mid-frame-reset
// hostile clients against a live server, and max-connection accept
// backpressure.
#include "serve/net.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "obs/metrics.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/deadline.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace serve {
namespace {

// A connected AF_UNIX socket pair; [0] and [1] are the two ends.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

std::vector<uint8_t> Pattern(size_t n) {
  std::vector<uint8_t> bytes(n);
  std::iota(bytes.begin(), bytes.end(), uint8_t{0});
  return bytes;
}

// --- SendAll / RecvAll ------------------------------------------------------

TEST(SocketIoTest, ChoppedTransfersStillArriveIntact) {
  SocketPair pair;
  const auto sent = Pattern(257);  // not a multiple of the chunk size
  SocketFaultState faults;
  faults.plan.max_chunk = 3;

  std::thread sender([&] {
    const auto result =
        SendAll(pair.fds[0], sent.data(), sent.size(), 0, &faults);
    EXPECT_TRUE(result.ok);
  });
  std::vector<uint8_t> got(sent.size());
  const auto result = RecvAll(pair.fds[1], got.data(), got.size());
  sender.join();
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(got, sent);
  EXPECT_EQ(faults.bytes_moved, sent.size());
}

TEST(SocketIoTest, ResetAfterBytesFiresARealReset) {
  SocketPair pair;
  const auto sent = Pattern(64);
  SocketFaultState faults;
  faults.plan.reset_after_bytes = 10;

  const auto result = SendAll(pair.fds[0], sent.data(), sent.size(), 0,
                              &faults);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.fault_reset);
  EXPECT_EQ(faults.bytes_moved, 10u);

  // The peer sees exactly the bytes before the reset, then a broken stream.
  std::vector<uint8_t> got(10);
  const auto head = RecvAll(pair.fds[1], got.data(), got.size());
  EXPECT_TRUE(head.ok);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), sent.begin()));
  uint8_t more = 0;
  const auto tail = RecvAll(pair.fds[1], &more, 1);
  EXPECT_FALSE(tail.ok);
}

TEST(SocketIoTest, RecvDeadlineTripsOnASilentPeer) {
  SocketPair pair;
  uint8_t byte = 0;
  const uint64_t before = Deadline::NowNanos();
  const auto result = RecvAll(pair.fds[1], &byte, 1, /*deadline_ms=*/80);
  const double waited_ms =
      static_cast<double>(Deadline::NowNanos() - before) / 1e6;
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.timed_out);
  EXPECT_GE(waited_ms, 60.0);
  EXPECT_LT(waited_ms, 5000.0);
}

TEST(SocketIoTest, DeadlineCoversTheWholeTransferNotEachChunk) {
  // A peer dribbling one byte per 30 ms would defeat a per-recv timeout of
  // 100 ms forever; the whole-transfer deadline must still fire.
  SocketPair pair;
  std::thread dribbler([&] {
    for (int i = 0; i < 20; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      const uint8_t b = static_cast<uint8_t>(i);
      // MSG_NOSIGNAL: the receiver hangs up mid-dribble by design.
      if (send(pair.fds[0], &b, 1, MSG_NOSIGNAL) != 1) break;
    }
  });
  std::vector<uint8_t> got(64);
  const auto result =
      RecvAll(pair.fds[1], got.data(), got.size(), /*deadline_ms=*/150);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.timed_out);
  ::close(pair.fds[1]);
  pair.fds[1] = -1;
  dribbler.join();
}

TEST(SocketIoTest, StallInjectionDelaysTheMarkedByte) {
  SocketPair pair;
  const auto sent = Pattern(32);
  SocketFaultState faults;
  faults.plan.stall_at_byte = 16;
  faults.plan.stall_ms = 120;

  std::vector<uint8_t> got(sent.size());
  std::thread receiver([&] {
    const auto result = RecvAll(pair.fds[1], got.data(), got.size());
    EXPECT_TRUE(result.ok);
  });
  const uint64_t before = Deadline::NowNanos();
  const auto result =
      SendAll(pair.fds[0], sent.data(), sent.size(), 0, &faults);
  const double took_ms =
      static_cast<double>(Deadline::NowNanos() - before) / 1e6;
  receiver.join();
  EXPECT_TRUE(result.ok);
  EXPECT_GE(took_ms, 100.0);
  EXPECT_EQ(got, sent);
}

TEST(SocketIoTest, CleanEofIsDistinguishedFromTruncation) {
  SocketPair pair;
  // Nothing sent, peer closes: a clean EOF (idle connection went away).
  ::close(pair.fds[0]);
  pair.fds[0] = -1;
  uint8_t byte = 0;
  const auto clean = RecvAll(pair.fds[1], &byte, 1);
  EXPECT_FALSE(clean.ok);
  EXPECT_TRUE(clean.clean_eof);

  // Half a message then close: truncation, NOT clean.
  SocketPair second;
  const auto sent = Pattern(4);
  ASSERT_TRUE(SendAll(second.fds[0], sent.data(), sent.size()).ok);
  ::close(second.fds[0]);
  second.fds[0] = -1;
  std::vector<uint8_t> got(8);
  const auto truncated = RecvAll(second.fds[1], got.data(), got.size());
  EXPECT_FALSE(truncated.ok);
  EXPECT_FALSE(truncated.clean_eof);
}

// --- Live server under hostile clients --------------------------------------

std::string TempDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class ChaosServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = 300, .seed = 7}));
    objects_ = UniformDataset(*graph_, 0.05, 7);
    index_ = BuildSignatureIndex(*graph_, objects_,
                                 {.t = 5, .c = 2, .keep_forest = true});
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = TempDir(std::string("serve_chaos_") + info->name() + "_" +
                   std::to_string(static_cast<unsigned>(::getpid())));
    auto updater =
        DurableUpdater::Initialize(dir_, graph_.get(), index_.get(), {});
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    updater_ = std::move(updater).value();
  }

  void StartServer(const ServerOptions& options) {
    DsigServer::Deployment deployment;
    deployment.graph = graph_.get();
    deployment.index = index_.get();
    deployment.updater = updater_.get();
    auto server = DsigServer::Start(deployment, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  // Raw TCP connect to the server, no protocol client in the way.
  int RawConnect() {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  // The server must still answer a well-formed client.
  void ExpectServerHealthy() {
    ServeClient client;
    ASSERT_TRUE(client.Connect(server_->port(), 5000).ok());
    Request ping;
    ping.type = RequestType::kPing;
    ping.id = 999;
    auto response = client.Call(ping);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, ResponseStatus::kOk);
  }

  std::unique_ptr<RoadNetwork> graph_;
  std::vector<NodeId> objects_;
  std::unique_ptr<SignatureIndex> index_;
  std::string dir_;
  std::unique_ptr<DurableUpdater> updater_;
  std::unique_ptr<DsigServer> server_;
};

TEST_F(ChaosServerFixture, SlowlorisDribbleIsCutOffByTheReadDeadline) {
  ServerOptions options;
  options.read_timeout_ms = 200;  // frame must complete within this
  StartServer(options);
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t timeouts0 =
      registry.GetCounter("serve.net.read_timeouts")->Value();

  // Start a frame, then dribble: one header byte, silence.
  const int fd = RawConnect();
  Request knn;
  knn.type = RequestType::kKnn;
  knn.node = 17;
  knn.k = 3;
  knn.knn_type = 1;
  std::vector<uint8_t> frame;
  EncodeRequest(knn, &frame);
  ASSERT_TRUE(SendAll(fd, frame.data(), 1).ok);

  // The server must hang up on us rather than hold the connection thread
  // hostage: the next read on our end sees the close.
  uint8_t byte = 0;
  const auto result = RecvAll(fd, &byte, 1, /*deadline_ms=*/5000);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.timed_out) << "server kept a slowloris alive";
  ::close(fd);
  EXPECT_GT(registry.GetCounter("serve.net.read_timeouts")->Value(),
            timeouts0);
  ExpectServerHealthy();
}

TEST_F(ChaosServerFixture, MidFrameResetDoesNotKillTheServer) {
  StartServer({});
  // Send half a valid frame, then a real RST.
  const int fd = RawConnect();
  Request knn;
  knn.type = RequestType::kKnn;
  knn.node = 17;
  knn.k = 3;
  knn.knn_type = 1;
  std::vector<uint8_t> frame;
  EncodeRequest(knn, &frame);
  SocketFaultState faults;
  faults.plan.reset_after_bytes = frame.size() / 2;
  const auto result =
      SendAll(fd, frame.data(), frame.size(), 0, &faults);
  EXPECT_TRUE(result.fault_reset);
  ExpectServerHealthy();
}

TEST_F(ChaosServerFixture, FaultSweepAcrossEveryResetOffset) {
  // One knn frame, reset after every possible prefix — the server survives
  // all of them and then still answers. This is the socket twin of the
  // storage layer's corruption fuzz.
  StartServer({});
  Request knn;
  knn.type = RequestType::kKnn;
  knn.node = 17;
  knn.k = 3;
  knn.knn_type = 1;
  std::vector<uint8_t> frame;
  EncodeRequest(knn, &frame);
  for (size_t cut = 0; cut < frame.size(); cut += 5) {
    const int fd = RawConnect();
    SocketFaultState faults;
    faults.plan.reset_after_bytes = cut;
    faults.plan.max_chunk = 7;  // and prove the short-write loop on the way
    SendAll(fd, frame.data(), frame.size(), 0, &faults);
    if (!faults.armed() || faults.bytes_moved == frame.size()) ::close(fd);
  }
  ExpectServerHealthy();
}

TEST_F(ChaosServerFixture, MaxConnectionsHoldsExtraClientsUnserviced) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(options);
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t waits0 =
      registry.GetCounter("serve.net.accept_waits")->Value();

  ServeClient first;
  ASSERT_TRUE(first.Connect(server_->port(), 5000).ok());
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 1;
  ASSERT_TRUE(first.Call(ping).ok());

  // The second client connects at the TCP level (the listen backlog takes
  // it) but gets no service while the first holds the only slot.
  ServeClient second;
  ASSERT_TRUE(second.Connect(server_->port(), 1000).ok());
  ping.id = 2;
  bool timed_out = false;
  EXPECT_FALSE(second.Call(ping, &timed_out).ok());
  EXPECT_TRUE(timed_out);
  EXPECT_GT(registry.GetCounter("serve.net.accept_waits")->Value(), waits0);

  // Freeing the first slot unblocks service for a fresh connection.
  first.Close();
  ServeClient third;
  ASSERT_TRUE(third.Connect(server_->port(), 5000).ok());
  ping.id = 3;
  auto served = third.Call(ping);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_EQ(served->status, ResponseStatus::kOk);
}

TEST_F(ChaosServerFixture, AbortiveCloseSendsButDoesNotHang) {
  // AbortiveClose on an idle protocol connection: the server logs a broken
  // stream, not a crash, and Stop() still drains cleanly afterwards.
  StartServer({});
  const int fd = RawConnect();
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 5;
  std::vector<uint8_t> frame;
  EncodeRequest(ping, &frame);
  ASSERT_TRUE(SendAll(fd, frame.data(), frame.size()).ok);
  AbortiveClose(fd);
  ExpectServerHealthy();
  server_->Stop();
}

}  // namespace
}  // namespace serve
}  // namespace dsig
