// Model-based torture test: a long random interleaving of graph updates,
// queries of every kind, and persistence round-trips, validated after every
// step against a brute-force oracle. This is the closest thing to running
// the whole system in production for a week.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "io/persistence.h"
#include "query/aggregate_query.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

uint64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<uint64_t>(size);
}

class Oracle {
 public:
  Oracle(const RoadNetwork* graph, const std::vector<NodeId>* objects)
      : graph_(graph), objects_(objects) {}

  void Refresh() {
    truth_ = testing_util::BruteForceDistances(*graph_, *objects_);
  }

  Weight Distance(NodeId n, uint32_t o) const { return truth_[o][n]; }

  std::vector<uint32_t> Range(NodeId n, Weight eps) const {
    std::vector<uint32_t> result;
    for (uint32_t o = 0; o < truth_.size(); ++o) {
      if (truth_[o][n] <= eps) result.push_back(o);
    }
    return result;
  }

  std::vector<Weight> KnnDistances(NodeId n, size_t k) const {
    std::vector<Weight> d;
    for (const auto& row : truth_) d.push_back(row[n]);
    std::sort(d.begin(), d.end());
    d.resize(std::min(k, d.size()));
    return d;
  }

 private:
  const RoadNetwork* graph_;
  const std::vector<NodeId>* objects_;
  std::vector<std::vector<Weight>> truth_;
};

class TortureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TortureTest, RandomOperationSoak) {
  const uint64_t seed = GetParam();
  RoadNetwork graph = MakeRandomPlanar({.num_nodes = 220, .seed = seed});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.06, seed);
  auto index = BuildSignatureIndex(graph, objects, {.t = 5, .c = 2});
  SignatureUpdater updater(&graph, index.get());
  Oracle oracle(&graph, &objects);
  oracle.Refresh();
  Random rng(seed * 1000 + 77);

  const std::string snapshot =
      std::string(::testing::TempDir()) + "/torture_" +
      std::to_string(seed) + ".idx";

  for (int step = 0; step < 120; ++step) {
    const int action = static_cast<int>(rng.NextUint64(10));
    const NodeId q = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
    switch (action) {
      case 0: {  // weight change
        const EdgeId e =
            static_cast<EdgeId>(rng.NextUint64(graph.num_edge_slots()));
        if (graph.edge_removed(e)) break;
        updater.SetEdgeWeight(e, rng.NextInt(1, 10));
        oracle.Refresh();
        break;
      }
      case 1: {  // local road insertion
        const NodeId u =
            static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
        NodeId v = static_cast<NodeId>(rng.NextUint64(graph.num_nodes()));
        if (u == v) break;
        updater.AddEdge(u, v, rng.NextInt(1, 10));
        oracle.Refresh();
        break;
      }
      case 2: {  // exact distance spot checks
        for (int i = 0; i < 5; ++i) {
          const auto o =
              static_cast<uint32_t>(rng.NextUint64(objects.size()));
          ASSERT_EQ(ExactDistance(*index, q, o), oracle.Distance(q, o))
              << "step " << step;
        }
        break;
      }
      case 3: {  // range query
        const Weight eps = static_cast<Weight>(rng.NextInt(0, 60));
        ASSERT_EQ(SignatureRangeQuery(*index, q, eps).objects,
                  oracle.Range(q, eps))
            << "step " << step << " eps " << eps;
        break;
      }
      case 4: {  // kNN type 1
        const size_t k = 1 + rng.NextUint64(8);
        ASSERT_EQ(
            SignatureKnnQuery(*index, q, k, KnnResultType::kType1).distances,
            oracle.KnnDistances(q, k))
            << "step " << step << " k " << k;
        break;
      }
      case 5: {  // kNN type 2 ordering
        const size_t k = 1 + rng.NextUint64(8);
        const KnnResult r =
            SignatureKnnQuery(*index, q, k, KnnResultType::kType2);
        std::vector<Weight> d;
        for (const uint32_t o : r.objects) d.push_back(oracle.Distance(q, o));
        ASSERT_TRUE(std::is_sorted(d.begin(), d.end())) << "step " << step;
        break;
      }
      case 6: {  // count aggregate
        const Weight eps = static_cast<Weight>(rng.NextInt(0, 50));
        ASSERT_EQ(SignatureCountQuery(*index, q, eps).count,
                  oracle.Range(q, eps).size())
            << "step " << step;
        break;
      }
      case 7: {  // persistence round trip mid-life
        ASSERT_TRUE(SaveSignatureIndex(*index, snapshot).ok());
        // Corruption drill first: flipping any single byte of the snapshot
        // must turn the load into a clean error, never an abort or a
        // silently-wrong index. (The original file on disk is untouched —
        // the flip rides in as a deterministic read fault.)
        const uint64_t file_bytes = FileSize(snapshot);
        ASSERT_GT(file_bytes, 0u);
        const auto corrupt = LoadSignatureIndex(
            graph, snapshot,
            {.faults = {.flip_byte = rng.NextUint64(file_bytes),
                        .flip_mask = static_cast<uint8_t>(
                            1u << rng.NextUint64(8))}});
        ASSERT_FALSE(corrupt.ok()) << "step " << step;
        const auto truncated = LoadSignatureIndex(
            graph, snapshot,
            {.faults = {.truncate_at = rng.NextUint64(file_bytes)}});
        ASSERT_FALSE(truncated.ok()) << "step " << step;
        auto loaded_or = LoadSignatureIndex(graph, snapshot);
        ASSERT_TRUE(loaded_or.ok())
            << "step " << step << ": " << loaded_or.status();
        auto loaded = std::move(loaded_or).value();
        loaded->RebuildForest();
        // The reloaded index answers identically; keep using it so the soak
        // also exercises the rebuilt forest.
        index = std::move(loaded);
        updater = SignatureUpdater(&graph, index.get());
        break;
      }
      case 8: {  // comparison coherence
        const auto a = static_cast<uint32_t>(rng.NextUint64(objects.size()));
        const auto b = static_cast<uint32_t>(rng.NextUint64(objects.size()));
        const SignatureRow row = index->ReadRow(q);
        const CompareResult r = ExactCompare(*index, q, a, b, row);
        const Weight da = oracle.Distance(q, a), db = oracle.Distance(q, b);
        if (da < db) {
          ASSERT_EQ(r, CompareResult::kLess) << "step " << step;
        } else if (da > db) {
          ASSERT_EQ(r, CompareResult::kGreater) << "step " << step;
        } else {
          ASSERT_EQ(r, CompareResult::kEqual) << "step " << step;
        }
        break;
      }
      default: {  // approximate retrieval containment
        const auto o = static_cast<uint32_t>(rng.NextUint64(objects.size()));
        const Weight eps = static_cast<Weight>(rng.NextInt(1, 50));
        const DistanceRange r = ApproximateDistance(*index, q, o, {eps, eps});
        ASSERT_LE(r.lb, oracle.Distance(q, o)) << "step " << step;
        if (r.lb != r.ub && r.ub != kInfiniteWeight) {
          ASSERT_GT(r.ub, oracle.Distance(q, o)) << "step " << step;
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dsig
