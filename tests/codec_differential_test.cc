// Differential fuzzing of the word-level codec kernels against a scalar
// bit-at-a-time reference. The reference reader re-implements the original
// one-bit-per-step semantics directly from the byte-format contract (bit i
// of the stream is bit (i & 7) of byte (i >> 3)); every word-level fast path
// — unaligned-load ReadBits/PeekBits, the unary zero-scan, and the
// table-driven Huffman decode — must agree with it bit for bit on randomized
// streams, including awkward buffer tails of 0-8 bytes and random seeks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/bitstream.h"
#include "util/huffman.h"
#include "util/random.h"

namespace dsig {
namespace {

// The original scalar reader: one bit per step, no wide loads, no tables.
class ReferenceBitReader {
 public:
  ReferenceBitReader(const uint8_t* data, size_t size_bits)
      : data_(data), size_bits_(size_bits) {}

  bool AtEnd() const { return position_ >= size_bits_; }
  size_t position() const { return position_; }
  void Seek(size_t position) { position_ = position; }

  bool ReadBit() {
    EXPECT_LT(position_, size_bits_);
    const bool bit = (data_[position_ >> 3] >> (position_ & 7)) & 1;
    ++position_;
    return bit;
  }

  uint64_t ReadBits(int width) {
    uint64_t value = 0;
    for (int i = 0; i < width; ++i) {
      if (ReadBit()) value |= uint64_t{1} << i;
    }
    return value;
  }

  uint64_t PeekBits(int width) const {
    uint64_t value = 0;
    for (int i = 0; i < width && position_ + static_cast<size_t>(i) <
                                     size_bits_; ++i) {
      const size_t p = position_ + static_cast<size_t>(i);
      if ((data_[p >> 3] >> (p & 7)) & 1) value |= uint64_t{1} << i;
    }
    return value;
  }

  // Reference unary: count zeros one bit at a time; false if the stream ends
  // before the terminating one, leaving the position unchanged.
  bool TryReadUnary(int* zeros) {
    const size_t saved = position_;
    int count = 0;
    while (!AtEnd()) {
      if (ReadBit()) {
        *zeros = count;
        return true;
      }
      ++count;
    }
    position_ = saved;
    return false;
  }

  // Reference prefix decode: walk the code bit by bit, comparing against
  // every symbol's code directly. False on truncation or a prefix-less run.
  bool TryDecode(const HuffmanCode& code, int* symbol) {
    uint64_t bits = 0;
    for (int len = 1; len <= 64; ++len) {
      if (AtEnd()) return false;
      if (ReadBit()) bits |= uint64_t{1} << (len - 1);
      for (int s = 0; s < code.num_symbols(); ++s) {
        if (code.length(s) == len && code.code(s) == bits) {
          *symbol = s;
          return true;
        }
      }
    }
    return false;
  }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t position_ = 0;
};

std::vector<uint8_t> RandomBytes(Random* rng, size_t n) {
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng->NextUint64(256));
  return bytes;
}

TEST(CodecDifferentialTest, ReadBitsAgreesOnRandomStreams) {
  Random rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    // Lengths biased toward tiny buffers: tails of 0-8 bytes are where the
    // partial-word load paths live.
    const size_t num_bytes = trial < 80 ? rng.NextUint64(9)
                                        : 1 + rng.NextUint64(256);
    const std::vector<uint8_t> bytes = RandomBytes(&rng, num_bytes);
    const size_t size_bits = num_bytes == 0 ? 0 : num_bytes * 8 - rng.NextUint64(8);
    BitReader fast(bytes.data(), size_bits);
    ReferenceBitReader slow(bytes.data(), size_bits);
    while (!slow.AtEnd()) {
      const size_t remaining = size_bits - slow.position();
      const int width = static_cast<int>(
          rng.NextUint64(std::min<size_t>(remaining, 64) + 1));
      ASSERT_EQ(fast.PeekBits(width), slow.PeekBits(width))
          << "peek at bit " << slow.position() << " width " << width;
      ASSERT_EQ(fast.ReadBits(width), slow.ReadBits(width))
          << "read at bit " << fast.position() << " width " << width;
    }
    EXPECT_TRUE(fast.AtEnd());
  }
}

TEST(CodecDifferentialTest, PeekBitsAgreesAcrossTheEndOfTheStream) {
  Random rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t num_bytes = rng.NextUint64(24);
    const std::vector<uint8_t> bytes = RandomBytes(&rng, num_bytes);
    const size_t size_bits =
        num_bytes == 0 ? 0 : num_bytes * 8 - rng.NextUint64(8);
    BitReader fast(bytes.data(), size_bits);
    ReferenceBitReader slow(bytes.data(), size_bits);
    for (int probe = 0; probe < 32; ++probe) {
      const size_t pos = rng.NextUint64(size_bits + 1);
      const int width = static_cast<int>(rng.NextUint64(65));
      fast.Seek(pos);
      slow.Seek(pos);
      // Peeks may extend arbitrarily far past the end; the reference pads
      // with zeros by construction, the word reader must match.
      ASSERT_EQ(fast.PeekBits(width), slow.PeekBits(width))
          << "pos " << pos << " width " << width;
    }
  }
}

TEST(CodecDifferentialTest, UnaryAgreesOnRandomAndAdversarialStreams) {
  Random rng(103);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes;
    if (trial % 3 == 0) {
      // Adversarial: long all-zero (or nearly) buffers so runs cross many
      // words and often end truncated.
      bytes.assign(1 + rng.NextUint64(64), 0);
      if (rng.NextUint64(2) == 0 && !bytes.empty()) {
        bytes[rng.NextUint64(bytes.size())] =
            static_cast<uint8_t>(1u << rng.NextUint64(8));
      }
    } else {
      bytes = RandomBytes(&rng, 1 + rng.NextUint64(64));
    }
    const size_t size_bits = bytes.size() * 8 - rng.NextUint64(8);
    BitReader fast(bytes.data(), size_bits);
    ReferenceBitReader slow(bytes.data(), size_bits);
    while (true) {
      int fast_zeros = -1;
      int slow_zeros = -2;
      const bool fast_ok = fast.TryReadUnary(&fast_zeros);
      const bool slow_ok = slow.TryReadUnary(&slow_zeros);
      ASSERT_EQ(fast_ok, slow_ok) << "at bit " << slow.position();
      ASSERT_EQ(fast.position(), slow.position());
      if (!fast_ok) break;
      ASSERT_EQ(fast_zeros, slow_zeros);
    }
  }
}

TEST(CodecDifferentialTest, HuffmanDecodeAgreesOnRandomStreams) {
  Random rng(104);
  std::vector<HuffmanCode> codes;
  codes.push_back(HuffmanCode::ReverseZeroPadding(8));
  codes.push_back(HuffmanCode::ReverseZeroPadding(40));  // past the table
  codes.push_back(HuffmanCode::FixedLength(11));
  {
    std::vector<uint64_t> freqs;  // skewed: mixes short and long codes
    uint64_t f = 1;
    for (int s = 0; s < 20; ++s) {
      freqs.push_back(f);
      f *= 2;
    }
    codes.push_back(HuffmanCode::FromFrequencies(freqs));
  }
  for (const HuffmanCode& code : codes) {
    for (int trial = 0; trial < 60; ++trial) {
      // Random bytes decoded as a code stream: most trials hit truncations
      // and (for non-complete tables) bad prefixes, not just valid symbols.
      const std::vector<uint8_t> bytes =
          RandomBytes(&rng, 1 + rng.NextUint64(48));
      const size_t size_bits = bytes.size() * 8 - rng.NextUint64(8);
      BitReader fast(bytes.data(), size_bits);
      ReferenceBitReader slow(bytes.data(), size_bits);
      while (true) {
        int fast_symbol = -1;
        int slow_symbol = -2;
        const bool fast_ok = code.TryDecode(&fast, &fast_symbol);
        const bool slow_ok = slow.TryDecode(code, &slow_symbol);
        ASSERT_EQ(fast_ok, slow_ok)
            << "at bit " << slow.position() << " of " << size_bits;
        if (!fast_ok) break;
        ASSERT_EQ(fast_symbol, slow_symbol);
        ASSERT_EQ(fast.position(), slow.position());
      }
    }
  }
}

TEST(CodecDifferentialTest, HuffmanDecodeAgreesOnValidStreams) {
  // Valid symbol streams with random seeks back to symbol boundaries: the
  // trusting Decode() must reproduce the reference on every resume point.
  Random rng(105);
  for (const int m : {3, 9, 14, 40}) {
    const HuffmanCode code = HuffmanCode::ReverseZeroPadding(m);
    BitWriter writer;
    std::vector<size_t> starts;
    std::vector<int> symbols;
    for (int i = 0; i < 300; ++i) {
      const int s = static_cast<int>(rng.NextUint64(m));
      starts.push_back(writer.size_bits());
      symbols.push_back(s);
      code.Encode(s, &writer);
    }
    BitReader fast(writer.bytes().data(), writer.size_bits());
    ReferenceBitReader slow(writer.bytes().data(), writer.size_bits());
    for (int probe = 0; probe < 200; ++probe) {
      const size_t i = rng.NextUint64(starts.size());
      fast.Seek(starts[i]);
      slow.Seek(starts[i]);
      EXPECT_EQ(code.Decode(&fast), symbols[i]);
      int slow_symbol = -1;
      ASSERT_TRUE(slow.TryDecode(code, &slow_symbol));
      EXPECT_EQ(slow_symbol, symbols[i]);
      EXPECT_EQ(fast.position(), slow.position());
    }
  }
}

}  // namespace
}  // namespace dsig
