#include "graph/ccam.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_generator.h"
#include "tests/test_util.h"

namespace dsig {
namespace {

TEST(CcamTest, OrderIsPermutation) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1000, .seed = 4});
  const std::vector<NodeId> order = ComputeCcamOrder(g, 16);
  ASSERT_EQ(order.size(), g.num_nodes());
  std::vector<NodeId> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId n = 0; n < g.num_nodes(); ++n) EXPECT_EQ(sorted[n], n);
}

TEST(CcamTest, SingleNodeClusters) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> order = ComputeCcamOrder(g, 1);
  EXPECT_EQ(order.size(), 7u);
}

TEST(CcamTest, BeatsRandomOrderOnLocality) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 4000, .seed = 9});
  const size_t per_page = 32;
  const std::vector<NodeId> ccam = ComputeCcamOrder(g, per_page);

  // Shuffled order as the strawman.
  std::vector<NodeId> shuffled(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) shuffled[n] = n;
  Random rng(1);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextUint64(i)]);
  }

  const double ccam_quality = IntraClusterEdgeFraction(g, ccam, per_page);
  const double random_quality =
      IntraClusterEdgeFraction(g, shuffled, per_page);
  EXPECT_GT(ccam_quality, 2 * random_quality);
  EXPECT_GT(ccam_quality, 0.3);
}

TEST(CcamTest, HandlesDisconnectedGraphs) {
  RoadNetwork g;
  for (int i = 0; i < 6; ++i) g.AddNode({static_cast<double>(i), 0});
  g.AddEdge(0, 1, 1);
  g.AddEdge(2, 3, 1);  // second component
  // nodes 4, 5 isolated
  const std::vector<NodeId> order = ComputeCcamOrder(g, 2);
  EXPECT_EQ(order.size(), 6u);
}

TEST(CcamTest, GridClustersAreCompact) {
  const RoadNetwork g = MakeGrid({.width = 20, .height = 20});
  const double quality = IntraClusterEdgeFraction(g, ComputeCcamOrder(g, 25),
                                                  25);
  // A 5x5 block keeps 40 of its 2*5*4 = 40... at least half the edges
  // internal under any sane clustering.
  EXPECT_GT(quality, 0.5);
}

}  // namespace
}  // namespace dsig
