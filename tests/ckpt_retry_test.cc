// Bounded retry for non-sticky checkpoint failures (DurableOptions::
// ckpt_retries). A checkpoint that fails before the MANIFEST rename leaves
// the old checkpoint + WAL fully authoritative, so retrying it is always
// safe; the checkpoint_faults_transient seam models an I/O error that
// clears on retry.
#include "io/durable_index.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "obs/metrics.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

uint64_t RetryCount() {
  return obs::MetricsRegistry::Global()
      .GetCounter("update.ckpt_retries")
      ->Value();
}

struct Deployment {
  std::string dir;
  DurableUpdater::Recovered live;
};

// Initialize a fresh durable dir fault-free, then reopen it under `options`
// — the options carrying the checkpoint faults must not poison the initial
// checkpoint pair Initialize writes.
Deployment MakeDeployment(const std::string& name,
                          const DurableOptions& options) {
  Deployment d;
  d.dir = TempDir(name);
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 11});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 11);
  auto index =
      BuildSignatureIndex(g, objects, {.t = 5, .c = 2, .keep_forest = true});
  auto initialized = DurableUpdater::Initialize(d.dir, &g, index.get(), {});
  EXPECT_TRUE(initialized.ok()) << initialized.status().ToString();
  if (initialized.ok()) (*initialized)->Close();

  auto recovered = DurableUpdater::Recover(d.dir, options);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  d.live = std::move(recovered).value();
  return d;
}

TEST(CkptRetryTest, TransientFaultRetriesToSuccess) {
  DurableOptions options;
  options.checkpoint_faults.fail_at = 0;  // first save attempt dies at byte 0
  options.checkpoint_faults_transient = true;
  options.ckpt_retries = 2;
  options.ckpt_retry_backoff_ms = 0.1;
  Deployment d = MakeDeployment("ckpt_retry_transient", options);
  DurableUpdater& updater = *d.live.updater;

  ASSERT_TRUE(updater.AddEdge(1, 7, 3.0).ok());
  ASSERT_TRUE(updater.AddEdge(2, 9, 4.0).ok());

  const uint64_t retries_before = RetryCount();
  const Status checkpointed = updater.Checkpoint();
  EXPECT_TRUE(checkpointed.ok()) << checkpointed.ToString();
  EXPECT_EQ(updater.checkpoint_seq(), 2u);
  EXPECT_GE(RetryCount(), retries_before + 1);

  // The retried checkpoint is a real one: recovery lands on it directly.
  updater.Close();
  RecoverOptions verify;
  verify.verify = true;
  auto recovered = DurableUpdater::Recover(d.dir, {}, verify);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->updater->checkpoint_seq(), 2u);
  EXPECT_EQ(recovered->replayed_records, 0u);
}

TEST(CkptRetryTest, PersistentFaultReportsAfterBoundedRetries) {
  DurableOptions options;
  options.checkpoint_faults.fail_at = 0;
  options.checkpoint_faults_transient = false;  // every attempt fails
  options.ckpt_retries = 1;
  options.ckpt_retry_backoff_ms = 0.1;
  Deployment d = MakeDeployment("ckpt_retry_persistent", options);
  DurableUpdater& updater = *d.live.updater;

  ASSERT_TRUE(updater.AddEdge(1, 7, 3.0).ok());

  const uint64_t retries_before = RetryCount();
  EXPECT_FALSE(updater.Checkpoint().ok());
  EXPECT_EQ(RetryCount(), retries_before + 1);  // bounded: exactly 1 retry

  // Non-sticky: the updater keeps accepting work, and the old checkpoint +
  // full WAL remain the authoritative deployment.
  EXPECT_TRUE(updater.status().ok());
  EXPECT_TRUE(updater.AddEdge(3, 12, 5.0).ok());
  EXPECT_EQ(updater.checkpoint_seq(), 0u);
  updater.Close();

  auto recovered = DurableUpdater::Recover(d.dir, {});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->updater->checkpoint_seq(), 0u);
  EXPECT_EQ(recovered->replayed_records, 2u);  // both updates replayed
}

TEST(CkptRetryTest, NoRetriesByDefault) {
  DurableOptions options;
  options.checkpoint_faults.fail_at = 0;
  Deployment d = MakeDeployment("ckpt_retry_default", options);
  DurableUpdater& updater = *d.live.updater;
  ASSERT_TRUE(updater.AddEdge(1, 7, 3.0).ok());

  const uint64_t retries_before = RetryCount();
  EXPECT_FALSE(updater.Checkpoint().ok());
  EXPECT_EQ(RetryCount(), retries_before);  // default: fail fast, no retry
  updater.Close();
}

}  // namespace
}  // namespace dsig
