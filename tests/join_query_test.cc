#include "query/join_query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::vector<std::pair<uint32_t, uint32_t>> Normalize(
    const std::vector<JoinPair>& pairs) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (const JoinPair& p : pairs) out.push_back({p.left, p.right});
  std::sort(out.begin(), out.end());
  return out;
}

TEST(JoinQueryTest, SmallNetworkHandChecked) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto left = BuildSignatureIndex(g, {0, 2}, {.t = 4, .c = 2});
  const auto right = BuildSignatureIndex(g, {3, 5}, {.t = 4, .c = 2});
  // Pair distances: d(0,3)=3, d(0,5)=12, d(2,3)=11, d(2,5)=2.
  const JoinResult r3 = SignatureEpsilonJoin(*left, *right, 1, 3);
  EXPECT_EQ(Normalize(r3.pairs),
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 0}, {1, 1}}));
  const JoinResult r11 = SignatureEpsilonJoin(*left, *right, 1, 11);
  EXPECT_EQ(Normalize(r11.pairs),
            (std::vector<std::pair<uint32_t, uint32_t>>{
                {0, 0}, {1, 0}, {1, 1}}));
}

TEST(JoinQueryTest, SharedNodesJoinAtZero) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto left = BuildSignatureIndex(g, {4}, {.t = 4, .c = 2});
  const auto right = BuildSignatureIndex(g, {4, 6}, {.t = 4, .c = 2});
  const JoinResult r = SignatureEpsilonJoin(*left, *right, 0, 0);
  EXPECT_EQ(Normalize(r.pairs),
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 0}}));
}

class JoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinPropertyTest, MatchesBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 250, .seed = GetParam()});
  const std::vector<NodeId> left_objects = UniformDataset(g, 0.04, GetParam());
  const std::vector<NodeId> right_objects =
      UniformDataset(g, 0.04, GetParam() + 100);
  const auto left = BuildSignatureIndex(g, left_objects, {.t = 5, .c = 2});
  const auto right = BuildSignatureIndex(g, right_objects, {.t = 5, .c = 2});
  const auto left_truth = testing_util::BruteForceDistances(g, left_objects);

  for (const NodeId n : testing_util::SampleNodes(g, 4, GetParam())) {
    for (const Weight eps : {5.0, 15.0, 40.0}) {
      std::vector<std::pair<uint32_t, uint32_t>> expected;
      for (uint32_t a = 0; a < left_objects.size(); ++a) {
        for (uint32_t b = 0; b < right_objects.size(); ++b) {
          if (left_truth[a][right_objects[b]] <= eps) {
            expected.push_back({a, b});
          }
        }
      }
      const JoinResult r = SignatureEpsilonJoin(*left, *right, n, eps);
      EXPECT_EQ(Normalize(r.pairs), expected)
          << "node " << n << " eps " << eps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinPropertyTest,
                         ::testing::Values(2, 12, 32));

TEST(JoinQueryTest, PruningActuallyPrunes) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 500, .seed = 7});
  const auto left =
      BuildSignatureIndex(g, UniformDataset(g, 0.04, 1), {.t = 5, .c = 2});
  const auto right =
      BuildSignatureIndex(g, UniformDataset(g, 0.04, 2), {.t = 5, .c = 2});
  const JoinResult r = SignatureEpsilonJoin(*left, *right, 9, 5);
  // Category bounds can only separate pairs whose ranges differ enough;
  // pairs both remote from the query node are undecidable from s(n) alone
  // and fall through to (cheap) exact node-distance refinement. The
  // expensive step — an exact d(a, b) evaluation — must stay rare.
  const size_t total = left->num_objects() * right->num_objects();
  EXPECT_GT(r.pruned_by_categories, 0u);
  EXPECT_LT(r.exact_evaluations, total / 4);
}

}  // namespace
}  // namespace dsig
