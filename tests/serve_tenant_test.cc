// Tenant isolation: the RETRY_AFTER pressure curve, deficit-weighted
// round-robin fairness, per-tenant token buckets, wire-tenant folding,
// single-flight coalescing, and the adversarial-tenant chaos test proving a
// 10x flooder cannot push a compliant tenant past its SLO.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/coalesce.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace serve {
namespace {

// --- RETRY_AFTER pressure curve ---------------------------------------------

TEST(RetryAfterHintTest, FullPressureCurve) {
  const double base = 25;
  // Empty queue sheds (the slot is busy) at exactly base: the server can
  // absorb a retry as soon as the slot frees.
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(base, 0, 10), base);
  // The hint scales linearly with fill...
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(base, 5, 10), 1.5 * base);
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(base, 10, 10), 2.0 * base);
  // ...and clamps rather than extrapolating past a transiently overfull
  // queue.
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(base, 25, 10), 2.0 * base);
  // A zero-capacity queue is permanently full: worst-case hint, not the
  // old collapse to plain base.
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(base, 0, 0), 2.0 * base);
  EXPECT_DOUBLE_EQ(RetryAfterHintMs(base, 7, 0), 2.0 * base);
  // Monotonic: more pressure never hints a sooner retry.
  double prev = 0;
  for (size_t queued = 0; queued <= 16; ++queued) {
    const double hint = RetryAfterHintMs(base, queued, 16);
    EXPECT_GE(hint, prev) << "hint regressed at queued=" << queued;
    prev = hint;
  }
}

// --- DWRR fairness ----------------------------------------------------------

// Helper: park `count` waiters for `tenant`, each recording its tenant into
// `order` (mutex-guarded) the moment it is granted, releasing immediately.
struct GrantRecorder {
  std::mutex mu;
  std::vector<uint32_t> order;
  void Record(uint32_t tenant) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tenant);
  }
};

TEST(TenantAdmissionTest, FairnessAcrossTenantsUnderBacklog) {
  // One execution slot; the "flood" tenant has 4 waiters parked before the
  // "good" tenant's single request arrives. FIFO would serve good 5th; DWRR
  // must serve it within the first two grants.
  AdmissionController::Options options;
  options.query = {/*max_inflight=*/1, /*max_queue=*/8};
  options.tenants = {{"flood", 1.0, 0, 0}, {"good", 1.0, 0, 0}};
  AdmissionController admission(options);

  auto holder = admission.Admit(WorkClass::kQuery, 0, Deadline::Infinite());
  ASSERT_EQ(holder.outcome, AdmitOutcome::kAdmitted);

  GrantRecorder recorder;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      auto r = admission.Admit(WorkClass::kQuery, 0, Deadline::Infinite());
      if (r.outcome == AdmitOutcome::kAdmitted) recorder.Record(0);
    });
  }
  while (admission.queue_depth(WorkClass::kQuery, 0) < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  waiters.emplace_back([&] {
    auto r = admission.Admit(WorkClass::kQuery, 1, Deadline::Infinite());
    if (r.outcome == AdmitOutcome::kAdmitted) recorder.Record(1);
  });
  while (admission.queue_depth(WorkClass::kQuery, 1) < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  holder.ticket.Release();
  for (std::thread& w : waiters) w.join();

  ASSERT_EQ(recorder.order.size(), 5u);
  const auto good_at = std::find(recorder.order.begin(), recorder.order.end(),
                                 1u) -
                       recorder.order.begin();
  EXPECT_LE(good_at, 1) << "good tenant served behind the flood backlog";
}

TEST(TenantAdmissionTest, WeightsSetLongRunSlotShares) {
  // Weight 3 vs weight 1 with both queues saturated: per DWRR cycle tenant B
  // drains 3 requests to tenant A's 1, so the first 8 grants split 2/6.
  AdmissionController::Options options;
  options.query = {/*max_inflight=*/1, /*max_queue=*/16};
  options.tenants = {{"a", 1.0, 0, 0}, {"b", 3.0, 0, 0}};
  AdmissionController admission(options);

  auto holder = admission.Admit(WorkClass::kQuery, 0, Deadline::Infinite());
  ASSERT_EQ(holder.outcome, AdmitOutcome::kAdmitted);

  GrantRecorder recorder;
  std::vector<std::thread> waiters;
  for (uint32_t tenant = 0; tenant < 2; ++tenant) {
    for (int i = 0; i < 6; ++i) {
      waiters.emplace_back([&, tenant] {
        auto r =
            admission.Admit(WorkClass::kQuery, tenant, Deadline::Infinite());
        if (r.outcome == AdmitOutcome::kAdmitted) recorder.Record(tenant);
      });
    }
  }
  while (admission.queue_depth(WorkClass::kQuery) < 12) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  holder.ticket.Release();
  for (std::thread& w : waiters) w.join();

  ASSERT_EQ(recorder.order.size(), 12u);
  const auto first8_b =
      std::count(recorder.order.begin(), recorder.order.begin() + 8, 1u);
  EXPECT_GE(first8_b, 5) << "weight-3 tenant did not get ~3x the early slots";
  EXPECT_LE(first8_b, 7) << "weight-1 tenant starved outright";
}

// --- Token buckets ----------------------------------------------------------

TEST(TenantAdmissionTest, TokenBucketShedsBeyondBurst) {
  AdmissionController::Options options;
  options.query = {/*max_inflight=*/8, /*max_queue=*/8};
  options.tenants = {{"default", 1.0, 0, 0},
                     {"limited", 1.0, /*rate_qps=*/5, /*burst=*/2}};
  AdmissionController admission(options);

  // The burst admits; the request past it sheds from the bucket with a
  // positive "when your next token lands" hint — before ever queueing.
  auto a = admission.Admit(WorkClass::kQuery, 1, Deadline::Infinite());
  auto b = admission.Admit(WorkClass::kQuery, 1, Deadline::Infinite());
  EXPECT_EQ(a.outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(b.outcome, AdmitOutcome::kAdmitted);
  auto third = admission.Admit(WorkClass::kQuery, 1, Deadline::Infinite());
  EXPECT_EQ(third.outcome, AdmitOutcome::kShed);
  EXPECT_TRUE(third.rate_limited);
  EXPECT_GT(third.retry_after_ms, 0);
  EXPECT_EQ(admission.queue_depth(WorkClass::kQuery, 1), 0u);

  // The unlimited tenant is untouched by its neighbor's bucket.
  auto other = admission.Admit(WorkClass::kQuery, 0, Deadline::Infinite());
  EXPECT_EQ(other.outcome, AdmitOutcome::kAdmitted);
  EXPECT_FALSE(other.rate_limited);
}

// --- Wire-tenant folding ----------------------------------------------------

TEST(TenantAdmissionTest, UnknownTenantIdsFoldIntoDefault) {
  AdmissionController::Options options;
  options.tenants = {{"default", 1.0, 0, 0}, {"other", 1.0, 0, 0}};
  AdmissionController admission(options);
  EXPECT_EQ(admission.num_tenants(), 2u);
  EXPECT_EQ(admission.ResolveTenant(0), 0u);
  EXPECT_EQ(admission.ResolveTenant(1), 1u);
  // A hostile or misconfigured client cannot mint per-tenant state.
  EXPECT_EQ(admission.ResolveTenant(2), 0u);
  EXPECT_EQ(admission.ResolveTenant(0xffffffffu), 0u);
  auto r = admission.Admit(WorkClass::kQuery, 999, Deadline::Infinite());
  EXPECT_EQ(r.outcome, AdmitOutcome::kAdmitted);
  EXPECT_EQ(r.tenant, 0u);
  EXPECT_EQ(admission.TenantName(999), "default");
}

// --- Single-flight (unit) ---------------------------------------------------

TEST(SingleFlightTest, CoalesceKeyIgnoresIdentityFields) {
  Request a;
  a.type = RequestType::kKnn;
  a.node = 17;
  a.k = 5;
  a.knn_type = 1;
  Request b = a;
  b.id = 99;
  b.trace_id = 0xbeef;
  b.deadline_ms = 123;
  b.tenant_id = 4;
  EXPECT_EQ(CoalesceKey(a), CoalesceKey(b));
  Request c = a;
  c.node = 18;
  EXPECT_NE(CoalesceKey(a), CoalesceKey(c));

  EXPECT_TRUE(Coalescible(a));
  Request update;
  update.type = RequestType::kUpdate;
  EXPECT_FALSE(Coalescible(update));
  Request ping;
  ping.type = RequestType::kPing;
  EXPECT_FALSE(Coalescible(ping));
}

TEST(SingleFlightTest, FollowersShareTheLeadersAnswer) {
  SingleFlight flights;
  auto lead = flights.Join("k", Deadline::Infinite());
  ASSERT_TRUE(lead.leader);
  EXPECT_EQ(flights.OpenFlights(), 1u);

  std::atomic<int> ready_count{0};
  std::vector<std::thread> followers;
  for (int i = 0; i < 3; ++i) {
    followers.emplace_back([&] {
      auto f = flights.Join("k", Deadline::AfterMillis(5000));
      if (!f.leader && f.ready && f.response.update_seq == 42) {
        ready_count.fetch_add(1);
      }
    });
  }
  // Give the followers a moment to park, then publish.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Response answer;
  answer.status = ResponseStatus::kOk;
  answer.update_seq = 42;
  flights.Publish("k", answer);
  for (std::thread& f : followers) f.join();
  EXPECT_EQ(ready_count.load(), 3);
  EXPECT_EQ(flights.OpenFlights(), 0u);
}

TEST(SingleFlightTest, AbandonWakesFollowersEmptyHanded) {
  SingleFlight flights;
  auto lead = flights.Join("k", Deadline::Infinite());
  ASSERT_TRUE(lead.leader);
  std::atomic<bool> follower_ready{true};
  std::thread follower([&] {
    auto f = flights.Join("k", Deadline::AfterMillis(5000));
    follower_ready.store(!f.leader && f.ready);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  flights.Abandon("k");
  follower.join();
  EXPECT_FALSE(follower_ready.load());
  EXPECT_EQ(flights.OpenFlights(), 0u);
}

TEST(SingleFlightTest, FollowerDeadlineIsNotExtendedByTheLeader) {
  SingleFlight flights;
  auto lead = flights.Join("k", Deadline::Infinite());
  ASSERT_TRUE(lead.leader);
  const uint64_t before = Deadline::NowNanos();
  auto f = flights.Join("k", Deadline::AfterMillis(40));
  EXPECT_FALSE(f.leader);
  EXPECT_FALSE(f.ready);
  const double waited_ms =
      static_cast<double>(Deadline::NowNanos() - before) / 1e6;
  EXPECT_GE(waited_ms, 30.0);
  EXPECT_LT(waited_ms, 2000.0);
  flights.Abandon("k");
}

TEST(SingleFlightTest, LeaderGuardAbandonsOnEarlyExit) {
  SingleFlight flights;
  auto lead = flights.Join("k", Deadline::Infinite());
  ASSERT_TRUE(lead.leader);
  { LeaderGuard guard(&flights, "k"); }  // leader dies without publishing
  EXPECT_EQ(flights.OpenFlights(), 0u);
  // The next arrival starts a fresh flight instead of parking forever.
  EXPECT_TRUE(flights.Join("k", Deadline::Infinite()).leader);
  flights.Abandon("k");
}

// --- Live server: coalescing + isolation ------------------------------------

std::string TempDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class TenantServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = 500, .seed = 21}));
    objects_ = UniformDataset(*graph_, 0.05, 21);
    index_ = BuildSignatureIndex(*graph_, objects_,
                                 {.t = 5, .c = 2, .keep_forest = true});
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = TempDir(std::string("serve_tenant_") + info->name() + "_" +
                   std::to_string(static_cast<unsigned>(::getpid())));
    auto updater =
        DurableUpdater::Initialize(dir_, graph_.get(), index_.get(), {});
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    updater_ = std::move(updater).value();
  }

  void StartServer(const ServerOptions& options) {
    DsigServer::Deployment deployment;
    deployment.graph = graph_.get();
    deployment.index = index_.get();
    deployment.updater = updater_.get();
    auto server = DsigServer::Start(deployment, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  std::unique_ptr<RoadNetwork> graph_;
  std::vector<NodeId> objects_;
  std::unique_ptr<SignatureIndex> index_;
  std::string dir_;
  std::unique_ptr<DurableUpdater> updater_;
  std::unique_ptr<DsigServer> server_;
};

TEST_F(TenantServerFixture, IdenticalConcurrentQueriesExecuteOnce) {
  ServerOptions options;
  // The leader holds its flight open long enough for the followers to pile
  // on deterministically.
  options.coalesce_hold_for_test_ms = 500;
  StartServer(options);

  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t leaders0 =
      registry.GetCounter("serve.coalesce.leaders")->Value();
  const uint64_t followers0 =
      registry.GetCounter("serve.coalesce.followers")->Value();
  const uint64_t admitted0 =
      registry.GetCounter("serve.query.admitted")->Value();

  constexpr int kClients = 4;
  std::mutex mu;
  std::vector<Response> answers;
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // Stagger: client 0 opens the flight, the rest join mid-hold.
      std::this_thread::sleep_for(std::chrono::milliseconds(i == 0 ? 0 : 100));
      ServeClient client;
      if (!client.Connect(server_->port(), 10000).ok()) return;
      Request knn;
      knn.type = RequestType::kKnn;
      knn.id = 1000 + static_cast<uint64_t>(i);
      knn.node = 17;
      knn.k = 5;
      knn.knn_type = 1;
      auto response = client.Call(knn);
      if (response.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        answers.push_back(*response);
      }
    });
  }
  for (std::thread& c : clients) c.join();

  ASSERT_EQ(answers.size(), static_cast<size_t>(kClients));
  // One leader executed, everyone else followed; the query loop ran once.
  EXPECT_EQ(registry.GetCounter("serve.coalesce.leaders")->Value() - leaders0,
            1u);
  EXPECT_EQ(
      registry.GetCounter("serve.coalesce.followers")->Value() - followers0,
      static_cast<uint64_t>(kClients - 1));
  EXPECT_EQ(registry.GetCounter("serve.query.admitted")->Value() - admitted0,
            1u);
  // All answers are bit-identical and each carries its own request id.
  std::vector<uint64_t> seen_ids;
  for (const Response& r : answers) {
    EXPECT_EQ(r.status, ResponseStatus::kOk);
    EXPECT_EQ(r.objects, answers[0].objects);
    ASSERT_EQ(r.distances.size(), answers[0].distances.size());
    for (size_t i = 0; i < r.distances.size(); ++i) {
      EXPECT_EQ(r.distances[i], answers[0].distances[i]) << "distance " << i;
    }
    seen_ids.push_back(r.id);
  }
  std::sort(seen_ids.begin(), seen_ids.end());
  EXPECT_EQ(std::unique(seen_ids.begin(), seen_ids.end()), seen_ids.end())
      << "followers did not get their own ids re-stamped";
}

TEST_F(TenantServerFixture, LegacyFramesLandOnTheDefaultTenant) {
  ServerOptions options;
  options.admission.tenants = {{"default", 1.0, 0, 0}, {"other", 1.0, 0, 0}};
  StartServer(options);
  ServeClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 5000).ok());

  // A pre-tenant client never sets tenant_id; the wire default (0) must map
  // to the default tenant and be echoed back.
  Request knn;
  knn.type = RequestType::kKnn;
  knn.id = 7;
  knn.node = 17;
  knn.k = 3;
  knn.knn_type = 1;
  auto response = client.Call(knn);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, ResponseStatus::kOk);
  EXPECT_EQ(response->tenant_id, 0u);

  // A known tenant is echoed; an unknown one folds to the default.
  knn.id = 8;
  knn.tenant_id = 1;
  response = client.Call(knn);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->tenant_id, 1u);
  knn.id = 9;
  knn.tenant_id = 0xdeadbeef;
  response = client.Call(knn);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->tenant_id, 0u);
}

TEST_F(TenantServerFixture, FloodingTenantCannotBreakCompliantTenantsSlo) {
  // The headline isolation property: an adversarial tenant at 10x the
  // compliant tenant's rate is shed (RETRY_AFTER) at its token bucket and
  // its own queue, while the compliant tenant keeps completing within its
  // latency objective.
  ServerOptions options;
  options.admission.query = {/*max_inflight=*/2, /*max_queue=*/8};
  options.admission.tenants = {
      {"compliant", /*weight=*/1.0, /*rate_qps=*/0, /*burst=*/0},
      {"flood", /*weight=*/1.0, /*rate_qps=*/100, /*burst=*/20}};
  options.tenant_slo = {{"tenant_compliant", /*latency_budget_ms=*/150, 0.99},
                        {"tenant_flood", 150, 0.50}};
  StartServer(options);

  LoadgenOptions load;
  load.port = server_->port();
  load.duration_s = 2.0;
  load.threads = 2;
  load.update_fraction = 0;   // pure query traffic
  load.join_fraction = 0;     // keep individual queries cheap and uniform
  load.deadline_ms = 250;
  load.max_retries = 1;
  load.seed = 11;
  load.tenants = {{"compliant", 0, /*rate=*/40},
                  {"flood", 1, /*rate=*/400}};  // 10x the compliant rate
  auto report = RunLoadgen(load);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->tenants.size(), 2u);
  const TenantLoadReport* compliant = nullptr;
  const TenantLoadReport* flood = nullptr;
  for (const auto& t : report->tenants) {
    if (t.name == "compliant") compliant = &t;
    if (t.name == "flood") flood = &t;
  }
  ASSERT_NE(compliant, nullptr);
  ASSERT_NE(flood, nullptr);

  // The flooder was shed, hard: its bucket admits 100 qps of its 400.
  EXPECT_GT(flood->shed, flood->arrivals / 4)
      << FormatLoadgenSummary(*report);
  // The compliant tenant rode through: nearly everything completed, nothing
  // was shed, and its p99 stayed inside the 150 ms objective.
  EXPECT_GT(compliant->arrivals, 0u);
  EXPECT_GE(static_cast<double>(compliant->completed),
            0.95 * static_cast<double>(compliant->arrivals))
      << FormatLoadgenSummary(*report);
  EXPECT_LT(compliant->shed, compliant->arrivals / 20 + 1);
  EXPECT_LT(compliant->p99_ms, 150.0) << FormatLoadgenSummary(*report);

  // The server's own per-tenant ledger agrees: TENANT_HEALTH lines exist
  // for both tenants and the compliant one is not in breach.
  ServeClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 5000).ok());
  Request slo;
  slo.type = RequestType::kSlo;
  slo.id = 1;
  auto health = client.Call(slo);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_NE(health->text.find("TENANT_HEALTH class=tenant_compliant"),
            std::string::npos)
      << health->text;
  EXPECT_NE(health->text.find("TENANT_HEALTH class=tenant_flood"),
            std::string::npos);
  EXPECT_NE(health->text.find("TENANT_HEALTH class=tenant_compliant state=ok"),
            std::string::npos)
      << health->text;
}

TEST_F(TenantServerFixture, PerTenantMetricsAndStatsAreExported) {
  ServerOptions options;
  options.admission.tenants = {{"default", 1.0, 0, 0}, {"gold", 2.0, 0, 0}};
  StartServer(options);
  ServeClient client;
  ASSERT_TRUE(client.Connect(server_->port(), 5000).ok());
  for (int i = 0; i < 5; ++i) {
    Request knn;
    knn.type = RequestType::kKnn;
    knn.id = 100 + static_cast<uint64_t>(i);
    knn.node = 17;
    knn.k = 3;
    knn.knn_type = 1;
    knn.tenant_id = 1;
    auto response = client.Call(knn);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status, ResponseStatus::kOk);
  }

  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_GE(registry.GetCounter("serve.tenant.gold.admitted")->Value(), 5u);

  Request stats;
  stats.type = RequestType::kStats;
  stats.id = 1;
  auto stat = client.Call(stats);
  ASSERT_TRUE(stat.ok());
  EXPECT_NE(stat->text.find("\"tenant_slo\""), std::string::npos)
      << stat->text;
  EXPECT_NE(stat->text.find("tenant_gold"), std::string::npos) << stat->text;
}

}  // namespace
}  // namespace serve
}  // namespace dsig
