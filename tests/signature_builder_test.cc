#include "core/signature_builder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(SignatureBuilderTest, CategoriesMatchTrueDistances) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {1, 5, 6};
  const auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const SignatureRow row = index->ReadRow(n);
    ASSERT_EQ(row.size(), objects.size());
    for (uint32_t o = 0; o < objects.size(); ++o) {
      EXPECT_EQ(row[o].category,
                index->partition().CategoryOf(truth[o][n]))
          << "node " << n << " object " << o;
    }
  }
}

TEST(SignatureBuilderTest, LinksPointAlongShortestPaths) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {1, 5, 6};
  const auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const SignatureRow row = index->ReadRow(n);
    for (uint32_t o = 0; o < objects.size(); ++o) {
      if (objects[o] == n) continue;
      // Following the link must decrease the true distance by exactly the
      // edge weight (the definition of a shortest-path next hop).
      const AdjacencyEntry& hop = g.adjacency(n)[row[o].link];
      EXPECT_FALSE(hop.removed);
      EXPECT_EQ(truth[o][hop.to] + hop.weight, truth[o][n])
          << "node " << n << " object " << o;
    }
  }
}

TEST(SignatureBuilderTest, ObjectTableMatchesTruth) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 8});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 1);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  const int last = index->partition().num_categories() - 1;
  for (uint32_t u = 0; u < objects.size(); ++u) {
    for (uint32_t v = 0; v < objects.size(); ++v) {
      const Weight d = truth[u][objects[v]];
      if (u == v) {
        EXPECT_EQ(index->object_table().Get(u, v), 0);
      } else if (index->partition().CategoryOf(d) == last) {
        EXPECT_TRUE(index->object_table().IsFar(u, v));
      } else {
        EXPECT_EQ(index->object_table().Get(u, v), d);
      }
    }
  }
}

TEST(SignatureBuilderTest, SizeStatsAreConsistent) {
  // Dataset large enough that within-row compression beats its flag
  // overhead (tiny datasets can legitimately inflate; see bench_encoding).
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.08, 9);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const SignatureSizeStats& stats = index->size_stats();
  EXPECT_EQ(stats.entries, g.num_nodes() * objects.size());
  // Entropy coding must not expand, and compression must not expand either.
  EXPECT_LT(stats.encoded_bits, stats.raw_bits);
  EXPECT_LT(stats.compressed_bits, stats.encoded_bits);
  EXPECT_GT(stats.compressed_entries, 0u);
  EXPECT_EQ(index->IndexBytes(), (stats.compressed_bits + 7) / 8);
}

TEST(SignatureBuilderTest, ObjectsAtTheirOwnNodes) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {2, 4}, {.t = 4, .c = 2});
  EXPECT_EQ(index->object_at(2), 0u);
  EXPECT_EQ(index->object_at(4), 1u);
  EXPECT_EQ(index->object_at(0), kInvalidObject);
  EXPECT_EQ(index->object_node(0), 2u);
  EXPECT_EQ(index->object_node(1), 4u);
  // The object's own entry is category 0.
  EXPECT_EQ(index->ReadRow(2)[0].category, 0);
  EXPECT_EQ(index->ReadRow(4)[1].category, 0);
}

TEST(SignatureBuilderTest, KeepForestFlag) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto with =
      BuildSignatureIndex(g, {1}, {.t = 4, .c = 2, .keep_forest = true});
  EXPECT_NE(with->forest(), nullptr);
  const auto without =
      BuildSignatureIndex(g, {1}, {.t = 4, .c = 2, .keep_forest = false});
  EXPECT_EQ(without->forest(), nullptr);
}

TEST(SignatureBuilderTest, OptimalPartitionDerivesFromSpreading) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 4});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 4);
  const auto index = BuildSignatureIndex(
      g, objects,
      {.optimal_partition = true, .spreading_bound = 400});
  EXPECT_NEAR(index->partition().c(), 2.718281828459045, 1e-9);
  EXPECT_NEAR(index->partition().t(), std::sqrt(400 / 2.718281828459045),
              1e-6);
}

TEST(SignatureBuilderTest, HuffmanCodeKindBuilds) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 6});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 6);
  const auto rzp = BuildSignatureIndex(
      g, objects,
      {.t = 5, .c = 2, .code_kind = CategoryCodeKind::kReverseZeroPadding});
  const auto huffman = BuildSignatureIndex(
      g, objects, {.t = 5, .c = 2, .code_kind = CategoryCodeKind::kHuffman});
  // Huffman is optimal, so it cannot be worse than RZP.
  EXPECT_LE(huffman->size_stats().encoded_bits,
            rzp->size_stats().encoded_bits);
  // Both must decode identically.
  for (const NodeId n : testing_util::SampleNodes(g, 10, 1)) {
    EXPECT_EQ(rzp->ReadRow(n), huffman->ReadRow(n));
  }
}

}  // namespace
}  // namespace dsig
