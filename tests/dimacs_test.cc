#include "io/dimacs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"

namespace dsig {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const char* contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(contents, f);
  std::fclose(f);
}

TEST(DimacsTest, ParsesHandWrittenGraph) {
  const std::string gr = TempPath("tiny.gr");
  const std::string co = TempPath("tiny.co");
  WriteFile(gr,
            "c tiny test graph\n"
            "p sp 3 4\n"
            "a 1 2 5\n"
            "a 2 1 5\n"
            "a 2 3 7\n"
            "a 3 2 7\n");
  WriteFile(co,
            "c coordinates\n"
            "p aux sp co 3\n"
            "v 1 100 200\n"
            "v 2 300 400\n"
            "v 3 500 600\n");
  const auto graph = LoadDimacsGraph(gr, co);
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->num_nodes(), 3u);
  EXPECT_EQ(graph->num_edges(), 2u);  // arc pairs folded
  EXPECT_EQ(DijkstraDistance(*graph, 0, 2), 12);
  EXPECT_EQ(graph->position(1).x, 300);
  EXPECT_EQ(graph->position(2).y, 600);
}

TEST(DimacsTest, AsymmetricArcPairKeepsSmallerWeight) {
  const std::string gr = TempPath("asym.gr");
  WriteFile(gr,
            "p sp 2 2\n"
            "a 1 2 9\n"
            "a 2 1 4\n");
  const auto graph = LoadDimacsGraph(gr, "");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->num_edges(), 1u);
  EXPECT_EQ(graph->edge_weight(0), 4);
}

TEST(DimacsTest, SelfLoopsDropped) {
  const std::string gr = TempPath("loop.gr");
  WriteFile(gr,
            "p sp 2 3\n"
            "a 1 1 2\n"
            "a 1 2 3\n"
            "a 2 1 3\n");
  const auto graph = LoadDimacsGraph(gr, "");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(DimacsTest, MissingFileAndBadHeader) {
  EXPECT_EQ(LoadDimacsGraph("/nonexistent.gr", ""), nullptr);
  const std::string gr = TempPath("bad.gr");
  WriteFile(gr, "p nonsense here\n");
  EXPECT_EQ(LoadDimacsGraph(gr, ""), nullptr);
}

TEST(DimacsTest, RoundTripPreservesDistances) {
  const RoadNetwork original =
      MakeRandomPlanar({.num_nodes = 200, .seed = 6});
  const std::string gr = TempPath("round.gr");
  const std::string co = TempPath("round.co");
  ASSERT_TRUE(SaveDimacsGraph(original, gr, co));
  const auto loaded = LoadDimacsGraph(gr, co);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->num_nodes(), original.num_nodes());
  ASSERT_EQ(loaded->num_edges(), original.num_edges());
  // Distances survive the round trip (spot check).
  for (const NodeId s : testing_util::SampleNodes(original, 5, 1)) {
    const ShortestPathTree a = RunDijkstra(original, s);
    const ShortestPathTree b = RunDijkstra(*loaded, s);
    for (NodeId n = 0; n < original.num_nodes(); ++n) {
      ASSERT_EQ(a.dist[n], b.dist[n]);
    }
  }
  // Positions too.
  for (NodeId n = 0; n < original.num_nodes(); ++n) {
    EXPECT_EQ(loaded->position(n).x, original.position(n).x);
    EXPECT_EQ(loaded->position(n).y, original.position(n).y);
  }
}

TEST(DimacsTest, CommentsAndBlankLinesIgnored) {
  const std::string gr = TempPath("comments.gr");
  WriteFile(gr,
            "c leading comment\n"
            "\n"
            "p sp 2 2\n"
            "c interior comment\n"
            "a 1 2 1\n"
            "a 2 1 1\n"
            "c trailing comment\n");
  const auto graph = LoadDimacsGraph(gr, "");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->num_edges(), 1u);
}

}  // namespace
}  // namespace dsig
