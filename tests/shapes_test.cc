// Reproduction-shape tests: the paper's qualitative claims, pinned as
// assertions on deterministic metrics (sizes and logical page counts — no
// wall-clock flakiness). These are miniature versions of the benches; if a
// refactor silently destroys a headline result, this file fails.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/full_index.h"
#include "baselines/nvd/vn3.h"
#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace {

class ShapeFixture : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 4000;
  void SetUp() override {
    graph_ = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = kNodes, .seed = 42}));
    order_ = ComputeCcamOrder(*graph_, 64);
  }
  std::unique_ptr<RoadNetwork> graph_;
  std::vector<NodeId> order_;
};

TEST_F(ShapeFixture, SignatureIsFractionOfFullIndex) {
  // Paper §6.1: "the signature index is about 1/6 ~ 1/7 the size of the
  // full index". Allow a generous band around that at reduced scale.
  for (const double p : {0.01, 0.05}) {
    const std::vector<NodeId> objects = UniformDataset(*graph_, p, 1);
    const auto signature = BuildSignatureIndex(
        *graph_, objects, {.t = 10, .c = 2.7, .keep_forest = false});
    const auto full = FullIndex::Build(*graph_, objects);
    const double ratio = static_cast<double>(signature->IndexBytes()) /
                         static_cast<double>(full->IndexBytes());
    EXPECT_GT(ratio, 0.05) << "p=" << p;
    EXPECT_LT(ratio, 0.35) << "p=" << p;
  }
}

TEST_F(ShapeFixture, FullAndSignatureScaleWithDensityNvdDoesNot) {
  // Paper Fig 6.4(a): full/signature sizes proportional to p; NVD size
  // grows as p *decreases*.
  const std::vector<NodeId> sparse = UniformDataset(*graph_, 0.005, 2);
  const std::vector<NodeId> dense = UniformDataset(*graph_, 0.05, 2);
  const auto sig_sparse = BuildSignatureIndex(
      *graph_, sparse, {.t = 10, .c = 2.7, .keep_forest = false});
  const auto sig_dense = BuildSignatureIndex(
      *graph_, dense, {.t = 10, .c = 2.7, .keep_forest = false});
  // 10x the objects => roughly 10x the bytes (within 2x slack: codes adapt).
  const double growth = static_cast<double>(sig_dense->IndexBytes()) /
                        static_cast<double>(sig_sparse->IndexBytes());
  EXPECT_GT(growth, 5.0);
  EXPECT_LT(growth, 20.0);

  const Vn3Index nvd_sparse(*graph_, sparse);
  const Vn3Index nvd_dense(*graph_, dense);
  // Total NVD bytes need not grow with density; per-object bytes must be
  // far larger for the sparse dataset.
  const double sparse_per_cell =
      static_cast<double>(nvd_sparse.IndexBytes()) / sparse.size();
  const double dense_per_cell =
      static_cast<double>(nvd_dense.IndexBytes()) / dense.size();
  EXPECT_GT(sparse_per_cell, 3 * dense_per_cell);
}

TEST_F(ShapeFixture, EncodingRatioStableCompressionImprovesWithDensity) {
  // Paper Table 1: encoding ratio ~constant across datasets; compression
  // ratio (compressed/encoded) smaller for denser datasets.
  std::vector<double> encoded_ratios;
  double ratio_sparse = 0, ratio_dense = 0;
  for (const double p : {0.005, 0.02, 0.05}) {
    const std::vector<NodeId> objects = UniformDataset(*graph_, p, 3);
    const auto index = BuildSignatureIndex(
        *graph_, objects, {.t = 10, .c = 2.7, .keep_forest = false});
    encoded_ratios.push_back(index->size_stats().EncodedRatio());
    if (p == 0.005) ratio_sparse = index->size_stats().CompressedRatio();
    if (p == 0.05) ratio_dense = index->size_stats().CompressedRatio();
  }
  const auto [min_it, max_it] =
      std::minmax_element(encoded_ratios.begin(), encoded_ratios.end());
  EXPECT_LT(*max_it - *min_it, 0.2) << "encoding ratio should be stable";
  EXPECT_LT(ratio_dense, ratio_sparse)
      << "compression should improve with density";
}

TEST_F(ShapeFixture, SignatureRangePagesSublinearInRadius) {
  // Paper Fig 6.5: signature page accesses grow sublinearly in R. Logical
  // accesses are deterministic, so assert on them: growing R by 100x must
  // grow pages by far less than 100x.
  const std::vector<NodeId> objects = UniformDataset(*graph_, 0.01, 4);
  const auto index = BuildSignatureIndex(
      *graph_, objects, {.t = 10, .c = 2.7, .keep_forest = false});
  BufferManager buffer(0);
  const NetworkStore network(*graph_, order_, &buffer);
  index->AttachStorage(&buffer, &network, order_);
  const std::vector<NodeId> queries = RandomQueryNodes(*graph_, 20, 5);
  const auto pages_at = [&](Weight r) {
    buffer.Clear();
    for (const NodeId q : queries) SignatureRangeQuery(*index, q, r);
    return buffer.stats().logical_accesses;
  };
  const uint64_t small = pages_at(10);
  const uint64_t mid = pages_at(1000);
  const uint64_t large = pages_at(10000);
  // Sublinearity shows at the top of the range: growing R another 10x past
  // the network diameter costs almost nothing (categories confirm
  // everything), unlike an expansion whose cost tracks the covered area.
  EXPECT_LT(large, mid + mid / 2) << mid << " -> " << large;
  // And the middle of the range stays far below the 10,000x area growth
  // R = 10 -> 1000 implies for area-proportional methods.
  EXPECT_LT(mid, small * 1000) << small << " -> " << mid;
  EXPECT_GE(mid, small);
}

TEST_F(ShapeFixture, ParameterSurfaceIsFlat) {
  // Paper Fig 6.7: all (c, T) combinations within ~2x of each other in
  // clock time. Logical page counts are a harsher metric (the paper's
  // 512 MB buffer absorbed refinement I/O — see bench_buffer), so the band
  // here is wider; the point pinned is that even corner-case parameters
  // degrade boundedly rather than catastrophically.
  const std::vector<NodeId> objects = UniformDataset(*graph_, 0.01, 6);
  const std::vector<NodeId> queries = RandomQueryNodes(*graph_, 15, 7);
  uint64_t best = ~0ull, worst = 0;
  for (const double t : {5.0, 25.0}) {
    for (const double c : {2.0, 6.0}) {
      const auto index = BuildSignatureIndex(
          *graph_, objects, {.t = t, .c = c, .keep_forest = false});
      BufferManager buffer(0);
      const NetworkStore network(*graph_, order_, &buffer);
      index->AttachStorage(&buffer, &network, order_);
      for (const NodeId q : queries) {
        SignatureKnnQuery(*index, q, 5, KnnResultType::kType3);
      }
      best = std::min(best, buffer.stats().logical_accesses);
      worst = std::max(worst, buffer.stats().logical_accesses);
    }
  }
  EXPECT_LT(worst, best * 15) << best << " vs " << worst;
}

}  // namespace
}  // namespace dsig
