#include "baselines/ine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(IneTest, RangeOnSmallNetwork) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const IneSearch ine(&g, {1, 5, 6}, nullptr);
  const IneResult r = ine.Range(0, 11);
  ASSERT_EQ(r.objects.size(), 2u);
  EXPECT_EQ(r.objects[0].first, 4);   // object at node 1
  EXPECT_EQ(r.objects[1].first, 11);  // object at node 6
}

TEST(IneTest, KnnOnSmallNetwork) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const IneSearch ine(&g, {1, 5, 6}, nullptr);
  const IneResult r = ine.Knn(0, 2);
  ASSERT_EQ(r.objects.size(), 2u);
  EXPECT_EQ(r.objects[0].first, 4);
  EXPECT_EQ(r.objects[1].first, 11);
}

TEST(IneTest, ExpansionStopsEarlyForSmallRanges) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 2000, .seed = 1});
  const IneSearch ine(&g, UniformDataset(g, 0.01, 1), nullptr);
  const size_t small = ine.Range(9, 5).nodes_expanded;
  const size_t large = ine.Range(9, 100).nodes_expanded;
  EXPECT_LT(small, large);
  EXPECT_LT(small, g.num_nodes() / 10);
}

class InePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InePropertyTest, MatchesBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 400, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, GetParam());
  const IneSearch ine(&g, objects, nullptr);
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 10, GetParam())) {
    // Range.
    for (const Weight eps : {5.0, 25.0, 80.0}) {
      std::vector<Weight> expected;
      for (uint32_t o = 0; o < objects.size(); ++o) {
        if (truth[o][n] <= eps) expected.push_back(truth[o][n]);
      }
      std::sort(expected.begin(), expected.end());
      const IneResult r = ine.Range(n, eps);
      std::vector<Weight> got;
      for (const auto& [d, o] : r.objects) {
        got.push_back(d);
        EXPECT_EQ(truth[o][n], d);
      }
      EXPECT_EQ(got, expected) << "eps " << eps;
    }
    // kNN.
    for (const size_t k : {1u, 4u, 9u}) {
      std::vector<Weight> expected;
      for (const auto& row : truth) expected.push_back(row[n]);
      std::sort(expected.begin(), expected.end());
      expected.resize(std::min(k, expected.size()));
      const IneResult r = ine.Knn(n, k);
      std::vector<Weight> got;
      for (const auto& [d, o] : r.objects) got.push_back(d);
      EXPECT_EQ(got, expected) << "k " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InePropertyTest,
                         ::testing::Values(3, 13, 23));

}  // namespace
}  // namespace dsig
