#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace dsig {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  Flags flags;
  flags.Parse(static_cast<int>(args.size()),
              const_cast<char**>(args.data()));
  return flags;
}

TEST(FlagsTest, EqualsForm) {
  const Flags flags = ParseArgs({"--nodes=2000", "--density=0.01"});
  EXPECT_EQ(flags.GetInt("nodes", 0), 2000);
  EXPECT_DOUBLE_EQ(flags.GetDouble("density", 0), 0.01);
}

TEST(FlagsTest, SpaceForm) {
  const Flags flags = ParseArgs({"--nodes", "300", "--name", "grid"});
  EXPECT_EQ(flags.GetInt("nodes", 0), 300);
  EXPECT_EQ(flags.GetString("name", ""), "grid");
}

TEST(FlagsTest, BareBooleanFlag) {
  const Flags flags = ParseArgs({"--verbose", "--quick=false"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("quick", true));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const Flags flags = ParseArgs({});
  EXPECT_EQ(flags.GetInt("nodes", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(flags.GetString("s", "d"), "d");
  EXPECT_FALSE(flags.Has("nodes"));
}

TEST(FlagsTest, LaterOccurrenceWins) {
  const Flags flags = ParseArgs({"--n=1", "--n=2"});
  EXPECT_EQ(flags.GetInt("n", 0), 2);
}

TEST(FlagsTest, BareFlagFollowedByFlag) {
  const Flags flags = ParseArgs({"--a", "--b=3"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_EQ(flags.GetInt("b", 0), 3);
}

}  // namespace
}  // namespace dsig
