// End-to-end integration: every index (signature, full, NVD/VN3, INE) built
// over one shared storage stack must return identical query answers, and the
// cost model must order them the way the paper's evaluation does.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "baselines/full_index.h"
#include "baselines/ine.h"
#include "baselines/nvd/vn3.h"
#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = 1500, .seed = 42}));
    objects_ = UniformDataset(*graph_, 0.02, 42);
    order_ = ComputeCcamOrder(*graph_, 64);
    buffer_ = std::make_unique<BufferManager>(256);
    network_ = std::make_unique<NetworkStore>(*graph_, order_, buffer_.get());

    signature_ = BuildSignatureIndex(*graph_, objects_, {.t = 10, .c = 2.7});
    signature_->AttachStorage(buffer_.get(), network_.get(), order_);
    full_ = FullIndex::Build(*graph_, objects_);
    full_->AttachStorage(buffer_.get(), order_);
    vn3_ = std::make_unique<Vn3Index>(*graph_, objects_);
    vn3_->AttachStorage(buffer_.get());
    ine_ = std::make_unique<IneSearch>(graph_.get(), objects_,
                                       network_.get());
  }

  std::unique_ptr<RoadNetwork> graph_;
  std::vector<NodeId> objects_;
  std::vector<NodeId> order_;
  std::unique_ptr<BufferManager> buffer_;
  std::unique_ptr<NetworkStore> network_;
  std::unique_ptr<SignatureIndex> signature_;
  std::unique_ptr<FullIndex> full_;
  std::unique_ptr<Vn3Index> vn3_;
  std::unique_ptr<IneSearch> ine_;
};

TEST_F(IntegrationTest, AllIndexesAgreeOnRangeQueries) {
  for (const NodeId q : RandomQueryNodes(*graph_, 30, 7)) {
    for (const Weight eps : {10.0, 50.0, 200.0}) {
      const std::vector<uint32_t> sig =
          SignatureRangeQuery(*signature_, q, eps).objects;
      const std::vector<uint32_t> full = full_->RangeQuery(q, eps);
      EXPECT_EQ(sig, full) << "q=" << q << " eps=" << eps;

      std::vector<uint32_t> vn3;
      for (const auto& [d, o] : vn3_->Range(q, eps)) vn3.push_back(o);
      std::sort(vn3.begin(), vn3.end());
      EXPECT_EQ(vn3, full) << "q=" << q << " eps=" << eps;

      std::vector<uint32_t> ine;
      for (const auto& [d, o] : ine_->Range(q, eps).objects) {
        ine.push_back(o);
      }
      std::sort(ine.begin(), ine.end());
      EXPECT_EQ(ine, full) << "q=" << q << " eps=" << eps;
    }
  }
}

TEST_F(IntegrationTest, AllIndexesAgreeOnKnnDistances) {
  for (const NodeId q : RandomQueryNodes(*graph_, 20, 8)) {
    for (const size_t k : {1u, 5u, 10u}) {
      const auto full = full_->KnnQuery(q, k);
      std::vector<Weight> full_d;
      for (const auto& [d, o] : full) full_d.push_back(d);

      const KnnResult sig =
          SignatureKnnQuery(*signature_, q, k, KnnResultType::kType1);
      EXPECT_EQ(sig.distances, full_d) << "q=" << q << " k=" << k;

      std::vector<Weight> vn3_d;
      for (const auto& [d, o] : vn3_->Knn(q, k)) vn3_d.push_back(d);
      EXPECT_EQ(vn3_d, full_d) << "q=" << q << " k=" << k;

      std::vector<Weight> ine_d;
      for (const auto& [d, o] : ine_->Knn(q, k).objects) ine_d.push_back(d);
      EXPECT_EQ(ine_d, full_d) << "q=" << q << " k=" << k;
    }
  }
}

TEST_F(IntegrationTest, SignatureIndexIsSmallerThanFullIndex) {
  // Fig 6.4(a): signature ~ 1/6 the size of the full index.
  EXPECT_LT(signature_->IndexBytes(), full_->IndexBytes() / 3);
}

TEST_F(IntegrationTest, SignatureBeatsIneOnLongRangePageAccesses) {
  // Fig 6.5: INE expands the network (many adjacency pages) while the
  // signature reads mostly one row + guided backtracking.
  buffer_->Clear();
  uint64_t sig_pages = 0, ine_pages = 0;
  for (const NodeId q : RandomQueryNodes(*graph_, 20, 9)) {
    BufferStats before = buffer_->stats();
    SignatureRangeQuery(*signature_, q, 300);
    sig_pages += (buffer_->stats() - before).logical_accesses;
    before = buffer_->stats();
    ine_->Range(q, 300);
    ine_pages += (buffer_->stats() - before).logical_accesses;
  }
  EXPECT_LT(sig_pages, ine_pages);
}

TEST_F(IntegrationTest, BufferCachingReducesPhysicalReads) {
  buffer_->Clear();
  for (int round = 0; round < 3; ++round) {
    SignatureRangeQuery(*signature_, 77, 100);
  }
  const BufferStats stats = buffer_->stats();
  EXPECT_LT(stats.physical_accesses, stats.logical_accesses);
}

}  // namespace
}  // namespace dsig
