// Contract (death) tests and coverage for rarely-hit paths: truncated
// persistence files, degenerate NVD shapes, codec part round-trips, and
// bit-stream bounds.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "baselines/nvd/vn3.h"
#include "core/signature_builder.h"
#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "io/persistence.h"
#include "tests/test_util.h"
#include "util/bitstream.h"
#include "util/huffman.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(BitstreamContractTest, ReadingPastEndDies) {
  BitWriter writer;
  writer.WriteBits(0xFF, 8);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  reader.ReadBits(8);
  EXPECT_DEATH(reader.ReadBits(1), "Check failed");
}

TEST(BitstreamContractTest, SeekPastEndDies) {
  BitWriter writer;
  writer.WriteBits(0, 4);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_DEATH(reader.Seek(5), "Check failed");
}

TEST(HuffmanContractTest, FromPartsRoundTripsAllFactories) {
  for (int m : {1, 2, 5, 17}) {
    for (int variant = 0; variant < 3; ++variant) {
      const HuffmanCode original =
          variant == 0   ? HuffmanCode::FixedLength(m)
          : variant == 1 ? HuffmanCode::ReverseZeroPadding(m)
                         : HuffmanCode::FromFrequencies(std::vector<uint64_t>(
                               static_cast<size_t>(m), 7));
      std::vector<int> lengths;
      std::vector<uint64_t> codes;
      for (int s = 0; s < m; ++s) {
        lengths.push_back(original.length(s));
        codes.push_back(original.code(s));
      }
      const HuffmanCode restored = HuffmanCode::FromParts(lengths, codes);
      BitWriter writer;
      for (int s = 0; s < m; ++s) original.Encode(s, &writer);
      BitReader reader(writer.bytes().data(), writer.size_bits());
      for (int s = 0; s < m; ++s) {
        EXPECT_EQ(restored.Decode(&reader), s) << "m=" << m << " v=" << variant;
      }
    }
  }
}

TEST(HuffmanContractTest, NonPrefixPartsDie) {
  // "0" is a prefix of "01": FromParts must reject it.
  EXPECT_DEATH(HuffmanCode::FromParts({1, 2}, {0, 0b10}), "Check failed");
}

TEST(PersistenceContractTest, TruncatedIndexFileIsARecoverableError) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1, 5}, {.t = 4, .c = 2});
  const std::string path = TempPath("trunc.idx");
  ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());
  // Truncate to half: the header validates, but the damage must surface as a
  // kCorruption status — never an abort, never a silently-corrupt index.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  const auto loaded = LoadSignatureIndex(g, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(Vn3ContractTest, SingleObjectDataset) {
  // One generator: no borders, no cross edges — queries still work.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 4});
  const Vn3Index vn3(g, {17});
  const ShortestPathTree truth = RunDijkstra(g, 17);
  for (const NodeId q : testing_util::SampleNodes(g, 10, 1)) {
    const auto knn = vn3.Knn(q, 3);  // k clamps to 1
    ASSERT_EQ(knn.size(), 1u);
    EXPECT_EQ(knn[0].first, truth.dist[q]);
    EXPECT_EQ(knn[0].second, 0u);
  }
}

TEST(Vn3ContractTest, TwoAdjacentObjects) {
  RoadNetwork g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddNode({2, 0});
  g.AddEdge(0, 1, 3);
  g.AddEdge(1, 2, 4);
  const Vn3Index vn3(g, {0, 2});
  const auto knn = vn3.Knn(1, 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].first, 3);
  EXPECT_EQ(knn[1].first, 4);
}

TEST(DijkstraContractTest, AllNodesAsMultiSource) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) all[n] = n;
  const ShortestPathTree tree = RunDijkstraMultiSource(g, all);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(tree.dist[n], 0);
    EXPECT_EQ(tree.owner[n], n);
  }
}

TEST(BuilderContractTest, DuplicateObjectsDie) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  EXPECT_DEATH(BuildSignatureIndex(g, {1, 1}, {.t = 4, .c = 2}),
               "duplicate object");
}

TEST(BuilderContractTest, DisconnectedNetworkDies) {
  RoadNetwork g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddNode({5, 0});
  g.AddEdge(0, 1, 1);  // node 2 unreachable
  EXPECT_DEATH(BuildSignatureIndex(g, {0}, {.t = 2, .c = 2}),
               "disconnected|connected");
}

TEST(PartitionContractTest, InvalidParametersDie) {
  EXPECT_DEATH(CategoryPartition::Exponential(0, 2, 100), "Check failed");
  EXPECT_DEATH(CategoryPartition::Exponential(5, 1, 100), "Check failed");
  EXPECT_DEATH(CategoryPartition::FromBoundaries({5, 3}), "Check failed");
}

}  // namespace
}  // namespace dsig
