// Differential tests of the exact-distance hub-label tier (core/hub_labels):
// every pairwise label distance must equal the Dijkstra ground truth — bit
// for bit, since the generators produce integer edge weights — on all three
// generator families, with serialization round-trips, the sticky stale
// latch, and structural verification catching tampering.
#include "core/hub_labels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace dsig {
namespace {

void ExpectMatchesDijkstra(const RoadNetwork& g, const HubLabels& labels,
                           const std::vector<NodeId>& roots) {
  for (const NodeId u : roots) {
    const ShortestPathTree tree = RunDijkstra(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(labels.Distance(u, v), tree.dist[v])
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(HubLabelsTest, MatchesDijkstraOnSevenNodeNetwork) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto labels = HubLabels::Build(g, {}, nullptr);
  ASSERT_NE(labels, nullptr);
  ASSERT_TRUE(labels->ready());
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) all[n] = n;
  ExpectMatchesDijkstra(g, *labels, all);
}

TEST(HubLabelsTest, MatchesDijkstraOnRandomPlanar) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 600, .seed = 7});
  const auto labels = HubLabels::Build(g, {}, &ThreadPool::Global());
  ASSERT_TRUE(labels->ready());
  ExpectMatchesDijkstra(g, *labels, testing_util::SampleNodes(g, 12, 7));
}

TEST(HubLabelsTest, MatchesDijkstraOnGrid) {
  const RoadNetwork g = MakeGrid({.width = 24, .height = 17});
  const auto labels = HubLabels::Build(g, {}, &ThreadPool::Global());
  ASSERT_TRUE(labels->ready());
  ExpectMatchesDijkstra(g, *labels, testing_util::SampleNodes(g, 10, 3));
}

TEST(HubLabelsTest, MatchesDijkstraOnClusteredContinental) {
  const RoadNetwork g =
      MakeClusteredContinental({.num_clusters = 4, .nodes_per_cluster = 120,
                                .seed = 19});
  const auto labels = HubLabels::Build(g, {}, &ThreadPool::Global());
  ASSERT_TRUE(labels->ready());
  ExpectMatchesDijkstra(g, *labels, testing_util::SampleNodes(g, 10, 19));
}

TEST(HubLabelsTest, DegreeOrderIsAlsoExact) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 31});
  HubLabels::BuildOptions options;
  options.order = HubLabels::BuildOptions::Order::kDegree;
  const auto labels = HubLabels::Build(g, options, nullptr);
  ASSERT_TRUE(labels->ready());
  ExpectMatchesDijkstra(g, *labels, testing_util::SampleNodes(g, 8, 31));
}

TEST(HubLabelsTest, LabelsAreCanonical) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 5});
  const auto labels = HubLabels::Build(g, {}, &ThreadPool::Global());
  ASSERT_TRUE(labels->ready());
  ASSERT_EQ(labels->num_nodes(), g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const uint32_t* hubs = labels->hubs(n);
    const double* dists = labels->dists(n);
    const size_t len = labels->label_size(n);
    ASSERT_GT(len, 0u);
    // Strictly ascending hub ranks, non-negative finite distances, and the
    // node's own rank at distance 0 somewhere in the label.
    bool self_seen = false;
    for (size_t i = 0; i < len; ++i) {
      if (i > 0) ASSERT_LT(hubs[i - 1], hubs[i]) << "node " << n;
      ASSERT_GE(dists[i], 0.0);
      if (dists[i] == 0.0) self_seen = true;
    }
    ASSERT_TRUE(self_seen) << "node " << n;
    ASSERT_EQ(labels->Distance(n, n), 0.0);
  }
  EXPECT_TRUE(labels->VerifyStructure(g).ok());
  const HubLabelStats stats = labels->stats();
  EXPECT_EQ(stats.entries, [&] {
    uint64_t total = 0;
    for (NodeId n = 0; n < g.num_nodes(); ++n) total += labels->label_size(n);
    return total;
  }());
  EXPECT_GT(stats.avg_label_entries, 0.0);
  EXPECT_GT(stats.bytes, 0u);
  // Pruning is the whole point: far fewer entries than the quadratic
  // all-pairs labeling would store.
  EXPECT_LT(stats.entries, uint64_t{g.num_nodes()} * g.num_nodes() / 4);
}

TEST(HubLabelsTest, SerializeRoundTripsAndDecodesLazily) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 250, .seed = 13});
  const auto built = HubLabels::Build(g, {}, &ThreadPool::Global());
  ASSERT_TRUE(built->ready());
  const auto loaded = HubLabels::FromSerialized(built->Serialize());
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(loaded->stale());
  // First use triggers the decode; thereafter the two instances agree
  // everywhere, including the persisted planner seed.
  ASSERT_TRUE(loaded->ready());
  EXPECT_EQ(loaded->mean_edge_weight(), built->mean_edge_weight());
  EXPECT_EQ(loaded->stats().entries, built->stats().entries);
  for (const NodeId u : testing_util::SampleNodes(g, 6, 13)) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(loaded->Distance(u, v), built->Distance(u, v));
    }
  }
  EXPECT_TRUE(loaded->VerifyStructure(g).ok());
}

TEST(HubLabelsTest, CorruptBlobDegradesToNotReady) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto built = HubLabels::Build(g, {}, nullptr);
  std::vector<uint8_t> blob = built->Serialize();

  // Truncation, garbage magic, and bit flips in the payload must all yield
  // an unusable-but-safe instance, never a crash.
  std::vector<uint8_t> truncated(blob.begin(), blob.begin() + blob.size() / 2);
  EXPECT_FALSE(HubLabels::FromSerialized(std::move(truncated))->ready());

  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(HubLabels::FromSerialized(std::move(bad_magic))->ready());

  EXPECT_FALSE(HubLabels::FromSerialized({})->ready());

  // An unusable instance answers every query with "unreachable".
  const auto broken = HubLabels::FromSerialized({1, 2, 3});
  EXPECT_EQ(broken->Distance(0, 1), kInfiniteWeight);
}

TEST(HubLabelsTest, VerifyStructureCatchesTampering) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 120, .seed = 17});
  const auto built = HubLabels::Build(g, {}, nullptr);
  ASSERT_TRUE(built->VerifyStructure(g).ok());

  // Wrong graph: node-count mismatch is structural, not sampled.
  const RoadNetwork small = testing_util::MakeSevenNodeNetwork();
  EXPECT_FALSE(built->VerifyStructure(small).ok());

  // A distance perturbation that keeps the blob well-formed (finite,
  // non-negative, still ascending hubs) must be caught by the structural
  // pass. Corrupt node 0's self-entry distance: blob layout is a 32-byte
  // header, 4n bytes of ranks, 8(n+1) of offsets, 4·entries of hubs, then
  // the distance pool, where node 0's label starts at offset 0.
  std::vector<uint8_t> blob = built->Serialize();
  const size_t n = built->num_nodes();
  const uint64_t entries = built->stats().entries;
  size_t p = 0;
  while (built->dists(0)[p] != 0) ++p;
  const size_t off = 32 + 4 * n + 8 * (n + 1) + 4 * entries + 8 * p;
  blob[off + 6] ^= 0x10;  // 0.0 -> 2^-1022: finite, positive, wrong
  const auto loaded = HubLabels::FromSerialized(std::move(blob));
  ASSERT_TRUE(loaded->ready());  // decode-time checks cannot see this
  EXPECT_FALSE(loaded->VerifyStructure(g).ok());
}

TEST(HubLabelsTest, StaleLatchIsSticky) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto labels = HubLabels::Build(g, {}, nullptr);
  EXPECT_FALSE(labels->stale());
  labels->MarkStale();
  EXPECT_TRUE(labels->stale());
  labels->MarkStale();  // idempotent
  EXPECT_TRUE(labels->stale());
  // Staleness does not damage the data — it only gates routing.
  EXPECT_TRUE(labels->ready());
  EXPECT_EQ(labels->Distance(0, 1), 4.0);
}

TEST(HubLabelsTest, BuildIsDeterministicAcrossPools) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 200, .seed = 29});
  const auto serial = HubLabels::Build(g, {}, nullptr);
  const auto parallel = HubLabels::Build(g, {}, &ThreadPool::Global());
  ASSERT_TRUE(serial->ready());
  ASSERT_TRUE(parallel->ready());
  EXPECT_EQ(serial->Serialize(), parallel->Serialize());
}

}  // namespace
}  // namespace dsig
