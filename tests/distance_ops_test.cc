#include "core/distance_ops.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

struct OpsFixture {
  // Heap-allocated: the index and forest keep pointers into the graph, so
  // its address must survive the fixture being moved around.
  std::unique_ptr<RoadNetwork> graph_holder;
  const RoadNetwork& graph() const { return *graph_holder; }
  std::vector<NodeId> objects;
  std::unique_ptr<SignatureIndex> index;
  std::vector<std::vector<Weight>> truth;  // truth[o][n]

  static OpsFixture MakeRandom(uint64_t seed, size_t nodes = 400,
                               double density = 0.05) {
    OpsFixture f;
    f.graph_holder = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = nodes, .seed = seed}));
    f.objects = UniformDataset(f.graph(), density, seed + 1);
    f.index = BuildSignatureIndex(f.graph(), f.objects, {.t = 5, .c = 2});
    f.truth = testing_util::BruteForceDistances(f.graph(), f.objects);
    return f;
  }
};

TEST(ExactDistanceTest, MatchesDijkstraOnSmallNetwork) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {1, 5, 6};
  const auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      EXPECT_EQ(ExactDistance(*index, n, o), truth[o][n])
          << "node " << n << " object " << o;
    }
  }
}

class ExactDistancePropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ExactDistancePropertyTest, MatchesDijkstraEverywhere) {
  const OpsFixture f = OpsFixture::MakeRandom(GetParam());
  for (NodeId n = 0; n < f.graph().num_nodes(); ++n) {
    for (uint32_t o = 0; o < f.objects.size(); ++o) {
      ASSERT_EQ(ExactDistance(*f.index, n, o), f.truth[o][n])
          << "node " << n << " object " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDistancePropertyTest,
                         ::testing::Values(1, 13, 77));

TEST(ApproximateDistanceTest, RangeAlwaysContainsTruth) {
  const OpsFixture f = OpsFixture::MakeRandom(5);
  for (const NodeId n : testing_util::SampleNodes(f.graph(), 30, 2)) {
    for (uint32_t o = 0; o < f.objects.size(); ++o) {
      for (const Weight eps : {5.0, 20.0, 60.0}) {
        const DistanceRange r =
            ApproximateDistance(*f.index, n, o, {eps, eps});
        EXPECT_LE(r.lb, f.truth[o][n]);
        if (r.ub != kInfiniteWeight && r.lb != r.ub) {
          EXPECT_LT(f.truth[o][n], r.ub);
        } else if (r.lb == r.ub) {
          EXPECT_EQ(r.lb, f.truth[o][n]);  // collapsed to exact
        }
        // The contract: no partial intersection with delta remains.
        EXPECT_FALSE(r.PartiallyIntersects({eps, eps}));
      }
    }
  }
}

TEST(RetrievalCursorTest, StepwiseRefinementTightens) {
  const OpsFixture f = OpsFixture::MakeRandom(6);
  const NodeId n = testing_util::SampleNodes(f.graph(), 1, 9)[0];
  const SignatureRow row = f.index->ReadRow(n);
  for (uint32_t o = 0; o < std::min<size_t>(f.objects.size(), 10); ++o) {
    RetrievalCursor cursor(f.index.get(), n, o, &row[o]);
    // Invariant at every step: the range contains the true distance. (Lower
    // bounds are not monotone step-to-step — a hop can land on a node whose
    // category is coarser — but containment never breaks.)
    while (!cursor.exact()) {
      const DistanceRange r = cursor.range();
      EXPECT_LE(r.lb, f.truth[o][n]);
      if (r.ub != kInfiniteWeight) {
        EXPECT_GT(r.ub, f.truth[o][n]);
      }
      cursor.Step();
    }
    EXPECT_EQ(cursor.exact_distance(), f.truth[o][n]);
  }
}

TEST(RetrievalCursorTest, ObjectAtQueryNodeIsImmediatelyExact) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {3}, {.t = 4, .c = 2});
  RetrievalCursor cursor(index.get(), 3, 0, nullptr);
  EXPECT_TRUE(cursor.exact());
  EXPECT_EQ(cursor.exact_distance(), 0);
  EXPECT_FALSE(cursor.Step());
}

class ExactComparePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactComparePropertyTest, AgreesWithTruth) {
  const OpsFixture f = OpsFixture::MakeRandom(GetParam(), 300, 0.06);
  for (const NodeId n : testing_util::SampleNodes(f.graph(), 15, GetParam())) {
    const SignatureRow row = f.index->ReadRow(n);
    for (uint32_t a = 0; a < f.objects.size(); ++a) {
      for (uint32_t b = a + 1; b < f.objects.size(); ++b) {
        const CompareResult r = ExactCompare(*f.index, n, a, b, row);
        const Weight da = f.truth[a][n], db = f.truth[b][n];
        if (da < db) {
          EXPECT_EQ(r, CompareResult::kLess) << "n=" << n << " a=" << a
                                             << " b=" << b;
        } else if (da > db) {
          EXPECT_EQ(r, CompareResult::kGreater)
              << "n=" << n << " a=" << a << " b=" << b;
        } else {
          EXPECT_EQ(r, CompareResult::kEqual)
              << "n=" << n << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactComparePropertyTest,
                         ::testing::Values(2, 21, 55));

TEST(ApproximateCompareTest, DifferentCategoriesDecideImmediately) {
  const OpsFixture f = OpsFixture::MakeRandom(3);
  size_t checked = 0;
  for (const NodeId n : testing_util::SampleNodes(f.graph(), 20, 1)) {
    const SignatureRow row = f.index->ReadRow(n);
    for (uint32_t a = 0; a < f.objects.size() && checked < 500; ++a) {
      for (uint32_t b = a + 1; b < f.objects.size(); ++b) {
        if (row[a].category == row[b].category) continue;
        const CompareResult r = ApproximateCompare(*f.index, n, a, b, row);
        // Cross-category comparisons are exact by category ordering.
        const Weight da = f.truth[a][n], db = f.truth[b][n];
        EXPECT_EQ(r, da < db ? CompareResult::kLess : CompareResult::kGreater);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(ApproximateCompareTest, VotingIsMostlyRightWithinCategory) {
  // The observer heuristic is approximate; measure that decided votes are
  // mostly correct rather than demanding perfection.
  const OpsFixture f = OpsFixture::MakeRandom(4, 600, 0.05);
  size_t decided = 0, correct = 0;
  for (const NodeId n : testing_util::SampleNodes(f.graph(), 40, 8)) {
    const SignatureRow row = f.index->ReadRow(n);
    for (uint32_t a = 0; a < f.objects.size(); ++a) {
      for (uint32_t b = a + 1; b < f.objects.size(); ++b) {
        if (row[a].category != row[b].category) continue;
        const CompareResult r = ApproximateCompare(*f.index, n, a, b, row);
        if (r == CompareResult::kEqual) continue;  // abstained
        ++decided;
        const bool truth_less = f.truth[a][n] < f.truth[b][n];
        if ((r == CompareResult::kLess) == truth_less) ++correct;
      }
    }
  }
  if (decided > 20) {
    EXPECT_GT(static_cast<double>(correct) / decided, 0.6)
        << correct << "/" << decided;
  }
}

class SortPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SortPropertyTest, SortedOrderMatchesTrueDistances) {
  const OpsFixture f = OpsFixture::MakeRandom(GetParam(), 350, 0.06);
  for (const NodeId n : testing_util::SampleNodes(f.graph(), 10, GetParam())) {
    const SignatureRow row = f.index->ReadRow(n);
    std::vector<uint32_t> objs(f.objects.size());
    for (uint32_t i = 0; i < objs.size(); ++i) objs[i] = i;
    SortByDistance(*f.index, n, row, &objs);
    for (size_t i = 1; i < objs.size(); ++i) {
      EXPECT_LE(f.truth[objs[i - 1]][n], f.truth[objs[i]][n])
          << "position " << i << " at node " << n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortPropertyTest,
                         ::testing::Values(3, 31, 99));

}  // namespace
}  // namespace dsig
