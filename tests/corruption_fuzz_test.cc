// Exhaustive corruption fuzzing of the persistence layer: every single-byte
// truncation and every single-byte flip of a saved network/index file must
// come back as a clean Status error — never an abort, hang, sanitizer
// report, or silently-loaded index. Fault plans ride in through the reader,
// so the files on disk stay pristine and each trial is independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/signature_builder.h"
#include "core/update_log.h"
#include "obs/op_counters.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "io/persistence.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

uint64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return static_cast<uint64_t>(size);
}

// Small on purpose: the files stay a few KB, so trying *every* byte offset
// is feasible within a test budget.
struct Corpus {
  RoadNetwork graph;
  std::unique_ptr<SignatureIndex> index;
  std::string network_path;
  std::string index_path;
};

// `tag` keeps file names unique per test case: ctest runs the cases of this
// binary as parallel processes sharing one temp directory.
Corpus MakeCorpus(const char* tag) {
  Corpus c;
  c.graph = MakeRandomPlanar({.num_nodes = 90, .seed = 77});
  const std::vector<NodeId> objects = UniformDataset(c.graph, 0.08, 77);
  c.index = BuildSignatureIndex(c.graph, objects, {.t = 5, .c = 2});
  c.network_path = TempPath((std::string("fuzz_") + tag + ".net").c_str());
  c.index_path = TempPath((std::string("fuzz_") + tag + ".idx").c_str());
  EXPECT_TRUE(SaveRoadNetwork(c.graph, c.network_path).ok());
  EXPECT_TRUE(SaveSignatureIndex(*c.index, c.index_path).ok());
  return c;
}

TEST(CorruptionFuzzTest, EveryTruncationOfTheNetworkFileFails) {
  const Corpus c = MakeCorpus("net_trunc");
  const uint64_t size = FileSize(c.network_path);
  for (uint64_t cut = 0; cut < size; ++cut) {
    const auto loaded =
        LoadRoadNetwork(c.network_path, {.faults = {.truncate_at = cut}});
    ASSERT_FALSE(loaded.ok()) << "survived truncation at byte " << cut;
  }
  EXPECT_TRUE(LoadRoadNetwork(c.network_path).ok());
}

TEST(CorruptionFuzzTest, EveryTruncationOfTheIndexFileFails) {
  const Corpus c = MakeCorpus("idx_trunc");
  const uint64_t size = FileSize(c.index_path);
  for (uint64_t cut = 0; cut < size; ++cut) {
    const auto loaded = LoadSignatureIndex(c.graph, c.index_path,
                                           {.faults = {.truncate_at = cut}});
    ASSERT_FALSE(loaded.ok()) << "survived truncation at byte " << cut;
  }
  EXPECT_TRUE(LoadSignatureIndex(c.graph, c.index_path).ok());
}

TEST(CorruptionFuzzTest, EveryByteFlipOfTheNetworkFileFails) {
  const Corpus c = MakeCorpus("net_flip");
  const uint64_t size = FileSize(c.network_path);
  Random rng(1);
  for (uint64_t offset = 0; offset < size; ++offset) {
    const uint8_t mask = static_cast<uint8_t>(1u << rng.NextUint64(8));
    const auto loaded = LoadRoadNetwork(
        c.network_path,
        {.faults = {.flip_byte = offset, .flip_mask = mask}});
    ASSERT_FALSE(loaded.ok()) << "survived bit flip at byte " << offset
                              << " mask " << static_cast<int>(mask);
  }
}

TEST(CorruptionFuzzTest, EveryByteFlipOfTheIndexFileFails) {
  const Corpus c = MakeCorpus("idx_flip");
  const uint64_t size = FileSize(c.index_path);
  Random rng(2);
  for (uint64_t offset = 0; offset < size; ++offset) {
    const uint8_t mask = static_cast<uint8_t>(1u << rng.NextUint64(8));
    const auto loaded = LoadSignatureIndex(
        c.graph, c.index_path,
        {.faults = {.flip_byte = offset, .flip_mask = mask}});
    ASSERT_FALSE(loaded.ok()) << "survived bit flip at byte " << offset
                              << " mask " << static_cast<int>(mask);
  }
}

TEST(CorruptionFuzzTest, MultiBitByteSmashesFail) {
  // Whole-byte garbage (not just single bits) at seeded random offsets.
  const Corpus c = MakeCorpus("smash");
  const uint64_t size = FileSize(c.index_path);
  Random rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t offset = rng.NextUint64(size);
    const uint8_t mask = static_cast<uint8_t>(1 + rng.NextUint64(255));
    const auto loaded = LoadSignatureIndex(
        c.graph, c.index_path,
        {.faults = {.flip_byte = offset, .flip_mask = mask}});
    ASSERT_FALSE(loaded.ok()) << "survived smash at byte " << offset
                              << " mask " << static_cast<int>(mask);
  }
}

TEST(CorruptionFuzzTest, RandomGarbageFilesFail) {
  const Corpus c = MakeCorpus("garbage");
  Random rng(4);
  const std::string path = TempPath("fuzz_garbage.bin");
  for (int trial = 0; trial < 50; ++trial) {
    const size_t bytes = 1 + rng.NextUint64(4096);
    std::vector<uint8_t> blob(bytes);
    for (auto& b : blob) b = static_cast<uint8_t>(rng.NextUint64(256));
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(blob.data(), 1, blob.size(), f), blob.size());
    std::fclose(f);
    EXPECT_FALSE(LoadRoadNetwork(path).ok()) << "trial " << trial;
    EXPECT_FALSE(LoadSignatureIndex(c.graph, path).ok()) << "trial " << trial;
  }
}

TEST(CorruptionFuzzTest, AllZeroRowsDegradeToDijkstraFallback) {
  // A row smashed to all-zero bytes is the nastiest corruption for the
  // word-level decoder: with a reverse-zero-padding code, zeros look like an
  // endless run of category-0 codes (and the unary scan must stay bounded
  // instead of walking off the stream). Every node's read must degrade to
  // the bounded-Dijkstra fallback — never crash, hang, or return garbage.
  Corpus c = MakeCorpus("zero_row");
  const size_t num_objects = c.index->num_objects();
  std::vector<SignatureRow> expected;
  expected.reserve(c.graph.num_nodes());
  for (NodeId n = 0; n < c.graph.num_nodes(); ++n) {
    expected.push_back(c.index->ReadRow(n));
  }
  uint64_t fallbacks = 0;
  for (NodeId n = 0; n < c.graph.num_nodes(); ++n) {
    EncodedRow& encoded = c.index->mutable_encoded_row(n);
    const std::vector<uint8_t> pristine = encoded.bytes;
    std::fill(encoded.bytes.begin(), encoded.bytes.end(), uint8_t{0});
    SignatureRow direct;
    ASSERT_FALSE(c.index->codec().TryDecodeRow(encoded, num_objects, &direct))
        << "all-zero row parsed as a valid signature for node " << n;
    const OpCounters before = GlobalOpCounters();
    const SignatureRow recovered = c.index->ReadRow(n);
    const OpCounters delta = GlobalOpCounters() - before;
    EXPECT_GE(delta.decode_fallbacks, 1u) << "node " << n;
    ++fallbacks;
    // The fallback recomputes the row from the graph, so categories must
    // match the pristine signature exactly; links may differ when shortest
    // paths tie, but each one must name a live adjacency slot.
    ASSERT_EQ(recovered.size(), expected[n].size());
    for (size_t o = 0; o < recovered.size(); ++o) {
      EXPECT_FALSE(recovered[o].compressed);
      EXPECT_EQ(recovered[o].category, expected[n][o].category)
          << "node " << n << " object " << o;
      EXPECT_LT(recovered[o].link, c.graph.adjacency(n).size() + 1)
          << "node " << n << " object " << o;
    }
    // Restore the row so each node's trial is independent.
    c.index->mutable_encoded_row(n).bytes = pristine;
  }
  EXPECT_EQ(fallbacks, c.graph.num_nodes());
}

TEST(CorruptionFuzzTest, WriteFailuresNeverLeaveAFile) {
  const Corpus c = MakeCorpus("partial");
  const uint64_t size = FileSize(c.index_path);
  const std::string path = TempPath("fuzz_partial.idx");
  // A failed save must leave an existing file alone — so start from a clean
  // slate to assert the stronger claim that nothing appears at all.
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  Random rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const uint64_t fail_at = rng.NextUint64(size);
    const Status status =
        SaveSignatureIndex(*c.index, path, {.faults = {.fail_at = fail_at}});
    ASSERT_FALSE(status.ok()) << "save survived fail_at " << fail_at;
    EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
    EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);
  }
  // And with no fault the very same path works.
  ASSERT_TRUE(SaveSignatureIndex(*c.index, path).ok());
  EXPECT_TRUE(LoadSignatureIndex(c.graph, path).ok());
}

// --- WAL / MANIFEST sweeps -------------------------------------------------
//
// The update log has a weaker contract than the snapshot files: a damaged
// tail is EXPECTED after a crash, so replay may legitimately succeed with a
// prefix of the records. What it must never do is crash, hang, or hand back
// records that were never appended.

std::string WriteWalCorpus(const char* tag,
                           std::vector<UpdateRecord>* script) {
  const std::string path =
      TempPath((std::string("fuzz_") + tag + ".wal").c_str());
  std::remove(path.c_str());
  EXPECT_TRUE(UpdateLog::Create(path, /*base_seq=*/7).ok());
  auto log = UpdateLog::Open(path);
  EXPECT_TRUE(log.ok());
  Random rng(6);
  for (int i = 0; i < 12; ++i) {
    UpdateRecord r;
    if (i % 3 == 0) {
      r = UpdateRecord::Add(static_cast<NodeId>(rng.NextUint64(50)),
                            static_cast<NodeId>(50 + rng.NextUint64(50)),
                            rng.NextInt(1, 9));
    } else {
      r = UpdateRecord::SetWeight(static_cast<EdgeId>(rng.NextUint64(40)),
                                  rng.NextInt(1, 9));
    }
    script->push_back(r);
    EXPECT_TRUE((*log)->Append(r).ok());
  }
  EXPECT_TRUE((*log)->Sync().ok());
  EXPECT_TRUE((*log)->Close().ok());
  return path;
}

void ExpectPrefixOf(const std::vector<UpdateRecord>& got,
                    const std::vector<UpdateRecord>& script,
                    uint64_t offset) {
  ASSERT_LE(got.size(), script.size()) << "offset " << offset;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].op, script[i].op) << "offset " << offset << " rec " << i;
    ASSERT_EQ(got[i].a, script[i].a) << "offset " << offset << " rec " << i;
    ASSERT_EQ(got[i].b, script[i].b) << "offset " << offset << " rec " << i;
    ASSERT_EQ(got[i].weight, script[i].weight)
        << "offset " << offset << " rec " << i;
  }
}

TEST(CorruptionFuzzTest, EveryByteFlipOfTheWalReplaysAPrefixOrFailsTyped) {
  std::vector<UpdateRecord> script;
  const std::string path = WriteWalCorpus("wal_flip", &script);
  const uint64_t size = FileSize(path);
  Random rng(7);
  for (uint64_t offset = 0; offset < size; ++offset) {
    const uint8_t mask = static_cast<uint8_t>(1u << rng.NextUint64(8));
    const auto replay = UpdateLog::Replay(
        path, {.flip_byte = offset, .flip_mask = mask});
    if (replay.ok()) {
      // A flip the framing tolerates may only ever shorten the log: the
      // tail record is dropped as torn, never altered or reordered.
      EXPECT_EQ(replay->base_seq, 7u) << "offset " << offset;
      ExpectPrefixOf(replay->records, script, offset);
      EXPECT_LT(replay->records.size(), script.size())
          << "offset " << offset << ": a flipped log replayed in full";
    } else {
      EXPECT_EQ(replay.status().code(), StatusCode::kCorruption)
          << "offset " << offset << ": " << replay.status().ToString();
    }
  }
  // The pristine file still replays everything.
  const auto clean = UpdateLog::Replay(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->records.size(), script.size());
}

TEST(CorruptionFuzzTest, EveryTruncationOfTheWalReplaysTheCommittedPrefix) {
  std::vector<UpdateRecord> script;
  const std::string path = WriteWalCorpus("wal_trunc", &script);
  const uint64_t size = FileSize(path);
  for (uint64_t cut = 0; cut < size; ++cut) {
    const auto replay = UpdateLog::Replay(path, {.truncate_at = cut});
    if (cut < UpdateLog::kHeaderBytes) {
      // No complete header — that is corruption, not a torn tail.
      ASSERT_FALSE(replay.ok()) << "cut " << cut;
      EXPECT_EQ(replay.status().code(), StatusCode::kCorruption);
      continue;
    }
    ASSERT_TRUE(replay.ok()) << "cut " << cut << ": "
                             << replay.status().ToString();
    const size_t committed = static_cast<size_t>(
        (cut - UpdateLog::kHeaderBytes) / UpdateLog::kFrameBytes);
    EXPECT_EQ(replay->records.size(), committed) << "cut " << cut;
    ExpectPrefixOf(replay->records, script, cut);
  }
}

TEST(CorruptionFuzzTest, EveryByteFlipOfTheManifestFailsRecovery) {
  // The MANIFEST is the commit point of a checkpoint, so unlike the WAL it
  // gets the strict treatment: any damaged byte must refuse recovery with a
  // typed error rather than load from a wrong (or imaginary) checkpoint.
  const std::string dir = TempPath("fuzz_manifest");
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  RoadNetwork graph = MakeRandomPlanar({.num_nodes = 40, .seed = 9});
  const std::vector<NodeId> objects = UniformDataset(graph, 0.1, 9);
  auto index = BuildSignatureIndex(graph, objects,
                                   {.t = 5, .c = 2, .keep_forest = true});
  auto live = DurableUpdater::Initialize(dir, &graph, index.get(), {});
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE((*live)->Close().ok());

  const std::string manifest = DurableUpdater::ManifestPath(dir);
  std::FILE* f = std::fopen(manifest.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::vector<uint8_t> pristine(64);
  const size_t bytes = std::fread(pristine.data(), 1, pristine.size(), f);
  std::fclose(f);
  pristine.resize(bytes);
  ASSERT_GT(bytes, 0u);

  Random rng(8);
  for (size_t offset = 0; offset < pristine.size(); ++offset) {
    std::vector<uint8_t> smashed = pristine;
    smashed[offset] ^= static_cast<uint8_t>(1u << rng.NextUint64(8));
    f = std::fopen(manifest.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(smashed.data(), 1, smashed.size(), f),
              smashed.size());
    std::fclose(f);
    const auto recovered = DurableUpdater::Recover(dir, {}, {});
    ASSERT_FALSE(recovered.ok()) << "recovery survived manifest flip at byte "
                                 << offset;
    EXPECT_EQ(recovered.status().code(), StatusCode::kCorruption)
        << "offset " << offset << ": " << recovered.status().ToString();
  }

  // Restore and prove the setup itself was sound.
  f = std::fopen(manifest.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(pristine.data(), 1, pristine.size(), f),
            pristine.size());
  std::fclose(f);
  auto recovered = DurableUpdater::Recover(dir, {}, {});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dsig
