#include "obs/window.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace dsig {
namespace obs {
namespace {

constexpr uint64_t kSec = 1000ull * 1000 * 1000;

WindowOptions SmallRing() {
  WindowOptions options;
  options.slot_ns = kSec;  // 1 s shards
  options.num_slots = 8;
  return options;
}

TEST(WindowedHistogramTest, SnapshotCoversOnlyTheWindow) {
  WindowedHistogram w(SmallRing());
  // One sample per second for 6 seconds, values 10, 20, ..., 60.
  for (int s = 0; s < 6; ++s) {
    w.RecordAt(10.0 * (s + 1), static_cast<uint64_t>(s) * kSec + kSec / 2);
  }
  const uint64_t now = 5 * kSec + kSec / 2;  // inside second 5

  Histogram last2;
  w.SnapshotWindowAt(2 * kSec, now, &last2);
  EXPECT_EQ(last2.Count(), 2u);  // seconds 4 and 5 -> values 50 and 60
  EXPECT_GE(last2.Min(), 50.0 * 0.95);
  EXPECT_LE(last2.Max(), 60.0 * 1.05);

  Histogram all;
  w.SnapshotWindowAt(6 * kSec, now, &all);
  EXPECT_EQ(all.Count(), 6u);
}

TEST(WindowedHistogramTest, OldSlotsAgeOut) {
  WindowedHistogram w(SmallRing());
  w.RecordAt(100.0, 0 * kSec);
  w.RecordAt(100.0, 1 * kSec);

  // 20 seconds later the ring has wrapped far past those ticks: even the
  // widest window must not resurrect them.
  Histogram snap;
  w.SnapshotWindowAt(7 * kSec, 20 * kSec, &snap);
  EXPECT_EQ(snap.Count(), 0u);
}

TEST(WindowedHistogramTest, RecyclingResetsTheSlot) {
  WindowedHistogram w(SmallRing());
  // Tick 0 and tick 8 share slot index 0 in an 8-slot ring.
  w.RecordAt(5.0, 0);
  w.RecordAt(7.0, 8 * kSec);

  Histogram snap;
  w.SnapshotWindowAt(kSec, 8 * kSec, &snap);
  EXPECT_EQ(snap.Count(), 1u);  // the tick-0 sample was dropped on recycle
  EXPECT_GE(snap.Min(), 7.0 * 0.95);
}

TEST(WindowedHistogramTest, WindowIsCappedBelowRingSize) {
  WindowedHistogram w(SmallRing());
  for (int s = 0; s < 8; ++s) {
    w.RecordAt(1.0, static_cast<uint64_t>(s) * kSec);
  }
  // Asking for more than the ring can hold silently caps at num_slots - 1
  // shards (the recycling candidate is excluded).
  Histogram snap;
  w.SnapshotWindowAt(100 * kSec, 7 * kSec + kSec / 2, &snap);
  EXPECT_EQ(snap.Count(), 7u);
  EXPECT_EQ(w.max_window_ns(), 7 * kSec);
}

TEST(WindowedHistogramTest, ResetClearsEverything) {
  WindowedHistogram w(SmallRing());
  w.RecordAt(3.0, kSec);
  w.Reset();
  Histogram snap;
  w.SnapshotWindowAt(4 * kSec, kSec, &snap);
  EXPECT_EQ(snap.Count(), 0u);
}

TEST(WindowedHistogramTest, PercentilesComeFromTheMergedShards) {
  WindowOptions options;
  options.slot_ns = kSec;
  options.num_slots = 64;
  WindowedHistogram w(options);
  // 1000 samples spread over 10 seconds: values 1..1000.
  for (int i = 0; i < 1000; ++i) {
    w.RecordAt(static_cast<double>(i + 1),
               static_cast<uint64_t>(i) * (10 * kSec / 1000));
  }
  Histogram snap;
  w.SnapshotWindowAt(20 * kSec, 10 * kSec, &snap);
  EXPECT_EQ(snap.Count(), 1000u);
  // Log-bucketed percentile: within one bucket (~9%) of the exact value.
  EXPECT_NEAR(snap.Percentile(50), 500.0, 500.0 * 0.10);
  EXPECT_NEAR(snap.Percentile(99), 990.0, 990.0 * 0.10);
}

TEST(WindowedCounterTest, SumTracksTheWindow) {
  WindowedCounter c(SmallRing());
  for (int s = 0; s < 6; ++s) {
    c.AddAt(10, static_cast<uint64_t>(s) * kSec + 1);
  }
  EXPECT_EQ(c.SumWindowAt(2 * kSec, 5 * kSec + 2), 20u);
  EXPECT_EQ(c.SumWindowAt(6 * kSec, 5 * kSec + 2), 60u);
  // An hour later everything has aged out.
  EXPECT_EQ(c.SumWindowAt(6 * kSec, 3600 * kSec), 0u);
}

TEST(WindowedCounterTest, ResetZeroesTheRing) {
  WindowedCounter c(SmallRing());
  c.AddAt(5, kSec);
  c.Reset();
  EXPECT_EQ(c.SumWindowAt(4 * kSec, kSec), 0u);
}

TEST(WindowedHistogramTest, ConcurrentRecordersDontLoseSamples) {
  // 4 threads x 10k records into the same live slot; rotation and the
  // lock-free record path must not drop or double-count. (TSan builds of
  // this test are the data-race oracle.)
  WindowOptions options;
  options.slot_ns = 3600ull * kSec;  // one giant slot: no rotation mid-test
  options.num_slots = 4;
  WindowedHistogram w(options);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&w, t] {
      for (int i = 0; i < kPerThread; ++i) {
        w.Record(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Histogram snap;
  w.SnapshotWindow(3600ull * kSec, &snap);
  EXPECT_EQ(snap.Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace obs
}  // namespace dsig
