#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "graph/graph_generator.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace {

TEST(UniformDatasetTest, CardinalityMatchesDensity) {
  const RoadNetwork g = MakeGrid({.width = 50, .height = 40});  // 2000 nodes
  EXPECT_EQ(UniformDataset(g, 0.01, 1).size(), 20u);
  EXPECT_EQ(UniformDataset(g, 0.05, 1).size(), 100u);
  EXPECT_EQ(UniformDataset(g, 0.0001, 1).size(), 1u);  // at least one
}

TEST(UniformDatasetTest, ObjectsAreDistinctAndValid) {
  const RoadNetwork g = MakeGrid({.width = 40, .height = 40});
  const std::vector<NodeId> objects = UniformDataset(g, 0.1, 7);
  std::set<NodeId> unique(objects.begin(), objects.end());
  EXPECT_EQ(unique.size(), objects.size());
  for (const NodeId n : objects) EXPECT_LT(n, g.num_nodes());
  EXPECT_TRUE(std::is_sorted(objects.begin(), objects.end()));
}

TEST(UniformDatasetTest, DeterministicBySeed) {
  const RoadNetwork g = MakeGrid({.width = 30, .height = 30});
  EXPECT_EQ(UniformDataset(g, 0.05, 3), UniformDataset(g, 0.05, 3));
  EXPECT_NE(UniformDataset(g, 0.05, 3), UniformDataset(g, 0.05, 4));
}

TEST(ClusteredDatasetTest, SameCardinalityAsUniform) {
  const RoadNetwork g = MakeGrid({.width = 50, .height = 50});
  EXPECT_EQ(ClusteredDataset(g, 0.02, 5, 1).size(),
            UniformDataset(g, 0.02, 1).size());
}

TEST(ClusteredDatasetTest, ObjectsAreClumped) {
  const RoadNetwork g = MakeGrid({.width = 60, .height = 60});
  const std::vector<NodeId> clustered = ClusteredDataset(g, 0.02, 4, 9);
  const std::vector<NodeId> uniform = UniformDataset(g, 0.02, 9);
  // Clumping metric: mean Euclidean nearest-neighbour distance within the
  // dataset — clustered placements sit much closer together.
  const auto mean_nn = [&](const std::vector<NodeId>& objs) {
    double total = 0;
    for (const NodeId a : objs) {
      double best = 1e18;
      for (const NodeId b : objs) {
        if (a == b) continue;
        const auto& pa = g.position(a);
        const auto& pb = g.position(b);
        best = std::min(best, std::hypot(pa.x - pb.x, pa.y - pb.y));
      }
      total += best;
    }
    return total / static_cast<double>(objs.size());
  };
  EXPECT_LT(mean_nn(clustered), mean_nn(uniform) * 0.7);
}

TEST(QueryGeneratorTest, CountAndValidity) {
  const RoadNetwork g = MakeGrid({.width = 20, .height = 20});
  const std::vector<NodeId> queries = RandomQueryNodes(g, 500, 5);
  EXPECT_EQ(queries.size(), 500u);
  for (const NodeId q : queries) EXPECT_LT(q, g.num_nodes());
  EXPECT_EQ(queries, RandomQueryNodes(g, 500, 5));
}

}  // namespace
}  // namespace dsig
