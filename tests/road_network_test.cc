#include "graph/road_network.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace dsig {
namespace {

TEST(RoadNetworkTest, AddNodesAndEdges) {
  RoadNetwork g;
  const NodeId a = g.AddNode({0, 0});
  const NodeId b = g.AddNode({1, 0});
  const NodeId c = g.AddNode({0, 1});
  EXPECT_EQ(g.num_nodes(), 3u);
  const EdgeId ab = g.AddEdge(a, b, 2.0);
  const EdgeId bc = g.AddEdge(b, c, 3.0);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge_weight(ab), 2.0);
  EXPECT_EQ(g.edge_weight(bc), 3.0);
  EXPECT_EQ(g.degree(b), 2u);
  EXPECT_EQ(g.degree(a), 1u);
}

TEST(RoadNetworkTest, EdgesAreUndirected) {
  RoadNetwork g;
  const NodeId a = g.AddNode({0, 0});
  const NodeId b = g.AddNode({1, 0});
  g.AddEdge(a, b, 5);
  ASSERT_EQ(g.adjacency(a).size(), 1u);
  ASSERT_EQ(g.adjacency(b).size(), 1u);
  EXPECT_EQ(g.adjacency(a)[0].to, b);
  EXPECT_EQ(g.adjacency(b)[0].to, a);
  EXPECT_EQ(g.adjacency(a)[0].edge_id, g.adjacency(b)[0].edge_id);
}

TEST(RoadNetworkTest, RemoveEdgeTombstonesButKeepsSlots) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const size_t degree_before = g.degree(4);
  const EdgeId e = g.FindEdge(4, 5);
  ASSERT_NE(e, kInvalidEdge);
  g.RemoveEdge(e);
  // Slots stay (backtracking links must not shift), but the edge is dead.
  EXPECT_EQ(g.degree(4), degree_before);
  EXPECT_TRUE(g.edge_removed(e));
  EXPECT_EQ(g.FindEdge(4, 5), kInvalidEdge);
  EXPECT_EQ(g.num_edges(), 7u);
}

TEST(RoadNetworkTest, SetEdgeWeightUpdatesBothDirections) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const EdgeId e = g.FindEdge(0, 1);
  g.SetEdgeWeight(e, 9);
  EXPECT_EQ(g.edge_weight(e), 9);
  EXPECT_EQ(g.adjacency(0)[g.AdjacencyIndexOf(0, e)].weight, 9);
  EXPECT_EQ(g.adjacency(1)[g.AdjacencyIndexOf(1, e)].weight, 9);
}

TEST(RoadNetworkTest, AdjacencyIndexOfFindsSlot) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const EdgeId e = g.FindEdge(4, 6);
  const uint32_t slot = g.AdjacencyIndexOf(4, e);
  EXPECT_EQ(g.adjacency(4)[slot].to, 6u);
}

TEST(RoadNetworkTest, ParallelEdgesAllowed) {
  RoadNetwork g;
  const NodeId a = g.AddNode({0, 0});
  const NodeId b = g.AddNode({1, 0});
  const EdgeId e1 = g.AddEdge(a, b, 5);
  const EdgeId e2 = g.AddEdge(a, b, 7);
  EXPECT_NE(e1, e2);
  EXPECT_EQ(g.degree(a), 2u);
  EXPECT_EQ(g.AdjacencyIndexOf(a, e1), 0u);
  EXPECT_EQ(g.AdjacencyIndexOf(a, e2), 1u);
}

TEST(RoadNetworkTest, ConnectivityDetection) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  EXPECT_TRUE(g.IsConnected());
  const EdgeId e = g.FindEdge(4, 6);
  g.RemoveEdge(e);  // node 6 becomes isolated
  EXPECT_FALSE(g.IsConnected());
}

TEST(RoadNetworkTest, MaxDegree) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  EXPECT_EQ(g.max_degree(), 4u);  // node 4: edges to 1, 3, 5, 6
}

TEST(RoadNetworkTest, EmptyGraphIsConnected) {
  RoadNetwork g;
  EXPECT_TRUE(g.IsConnected());
  EXPECT_EQ(g.max_degree(), 0u);
}

}  // namespace
}  // namespace dsig
