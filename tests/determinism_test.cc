// Determinism: building the same index twice — with the multi-threaded
// forest construction in play — must produce bit-identical results, and the
// whole pipeline must be reproducible from seeds alone.
#include <gtest/gtest.h>

#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace {

TEST(DeterminismTest, ParallelBuildIsBitIdentical) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 2000, .seed = 9});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 9);
  const auto a = BuildSignatureIndex(g, objects, {.t = 10, .c = 2.7});
  const auto b = BuildSignatureIndex(g, objects, {.t = 10, .c = 2.7});
  ASSERT_EQ(a->size_stats().compressed_bits, b->size_stats().compressed_bits);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    ASSERT_EQ(a->encoded_row(n).bytes, b->encoded_row(n).bytes)
        << "node " << n;
  }
}

TEST(DeterminismTest, ForestMatchesSequentialSemantics) {
  // Threaded and single-object (inherently sequential) builds agree.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 4});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, 4);
  SpanningForest forest(&g, objects);
  forest.Build();
  for (uint32_t o = 0; o < objects.size(); ++o) {
    SpanningForest single(&g, {objects[o]});
    single.Build();
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      ASSERT_EQ(forest.dist(o, n), single.dist(0, n));
      ASSERT_EQ(forest.parent(o, n), single.parent(0, n));
    }
  }
}

TEST(DeterminismTest, WholePipelineReproducibleFromSeeds) {
  const auto run = [] {
    const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1000, .seed = 7});
    const std::vector<NodeId> objects = ClusteredDataset(g, 0.02, 5, 7);
    const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
    const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
    uint64_t digest = index->size_stats().compressed_bits;
    for (const NodeId q : RandomQueryNodes(g, 10, 7)) {
      digest = digest * 1315423911u + q + order[q % order.size()];
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dsig
