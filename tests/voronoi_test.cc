#include "baselines/nvd/voronoi.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(VoronoiTest, CellsCoverAllNodes) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 500, .seed = 2});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 2);
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, objects);
  ASSERT_EQ(nvd.cell_of_node.size(), g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LT(nvd.cell_of_node[n], nvd.num_cells());
  }
}

TEST(VoronoiTest, EachNodeAssignedToNearestGenerator) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 5});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 5);
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, objects);
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    Weight best = kInfiniteWeight;
    for (uint32_t o = 0; o < objects.size(); ++o) {
      best = std::min(best, truth[o][n]);
    }
    EXPECT_EQ(nvd.dist_to_generator[n], best) << "node " << n;
    EXPECT_EQ(truth[nvd.cell_of_node[n]][n], best) << "node " << n;
  }
}

TEST(VoronoiTest, GeneratorsOwnTheirNodes) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, {0, 5});
  EXPECT_EQ(nvd.cell_of_node[0], 0u);
  EXPECT_EQ(nvd.cell_of_node[5], 1u);
  EXPECT_EQ(nvd.dist_to_generator[0], 0);
  EXPECT_EQ(nvd.dist_to_generator[5], 0);
}

TEST(VoronoiTest, BordersAreOnCellBoundaries) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 600, .seed = 7});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 7);
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, objects);
  for (uint32_t c = 0; c < nvd.num_cells(); ++c) {
    for (const NodeId b : nvd.borders[c]) {
      EXPECT_EQ(nvd.cell_of_node[b], c);
      bool touches_other_cell = false;
      for (const AdjacencyEntry& entry : g.adjacency(b)) {
        if (!entry.removed && nvd.cell_of_node[entry.to] != c) {
          touches_other_cell = true;
        }
      }
      EXPECT_TRUE(touches_other_cell) << "border " << b;
    }
  }
}

TEST(VoronoiTest, AdjacencyIsSymmetric) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 500, .seed = 9});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 9);
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, objects);
  for (uint32_t c = 0; c < nvd.num_cells(); ++c) {
    for (const uint32_t d : nvd.adjacent_cells[c]) {
      EXPECT_TRUE(std::binary_search(nvd.adjacent_cells[d].begin(),
                                     nvd.adjacent_cells[d].end(), c));
    }
  }
}

TEST(VoronoiTest, CellBoundsContainCellNodes) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 4});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 4);
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_TRUE(nvd.cell_bounds[nvd.cell_of_node[n]].Contains(g.position(n)));
  }
}

TEST(VoronoiTest, SingleObjectOwnsEverything) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const VoronoiDiagram nvd = BuildVoronoiDiagram(g, {3});
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(nvd.cell_of_node[n], 0u);
  }
  EXPECT_TRUE(nvd.borders[0].empty());
  EXPECT_TRUE(nvd.adjacent_cells[0].empty());
}

}  // namespace
}  // namespace dsig
