#include "core/compression.h"

#include <gtest/gtest.h>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(AddUpTest, Definition51) {
  // Unequal categories: the larger dominates.
  EXPECT_EQ(AddUpCategories(2, 5, 8), 5);
  EXPECT_EQ(AddUpCategories(5, 2, 8), 5);
  EXPECT_EQ(AddUpCategories(0, 7, 8), 7);
  // Equal categories: spill into the next one.
  EXPECT_EQ(AddUpCategories(3, 3, 8), 4);
  EXPECT_EQ(AddUpCategories(0, 0, 8), 1);
  // Clamped at the last category.
  EXPECT_EQ(AddUpCategories(7, 7, 8), 7);
}

TEST(CompressionTest, CategoryZeroEntriesNeverCompress) {
  // Category-0 results are impossible for the add-up (always >= 1), so no
  // category-0 entry may ever be flagged regardless of the data.
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(
      g, {0, 1, 4}, {.t = 2, .c = 2, .compress = true});
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const SignatureRow unresolved = index->ReadRowUnresolved(n);
    const SignatureRow resolved = index->ReadRow(n);
    for (size_t i = 0; i < resolved.size(); ++i) {
      if (resolved[i].category == 0) {
        EXPECT_FALSE(unresolved[i].compressed);
      }
    }
  }
}

// The core lossless-compression property: compress + resolve is identity.
class CompressionRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressionRoundTripTest, CompressResolveIsIdentity) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 400, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, GetParam());
  // Build WITHOUT compression to get ground-truth rows, then compress and
  // resolve row by row against the same partition/table.
  const auto index = BuildSignatureIndex(
      g, objects, {.t = 5, .c = 2, .compress = false});
  const RowCompressor compressor(&index->partition(), &index->object_table());
  size_t total_flagged = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const SignatureRow truth = index->ReadRow(n);
    SignatureRow work = truth;
    total_flagged += compressor.Compress(&work);
    // Every flagged entry must resolve to its original category AND link.
    SignatureRow restored = work;
    for (SignatureEntry& e : restored) {
      if (e.compressed) {
        e.category = kUnresolvedCategory;
        e.link = kUnresolvedLink;
      }
    }
    compressor.ResolveRow(&restored);
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(restored[i].category, truth[i].category)
          << "node " << n << " object " << i;
      EXPECT_EQ(restored[i].link, truth[i].link)
          << "node " << n << " object " << i;
    }
  }
  // The whole point of §5.3: a large share of entries compress away.
  const size_t total_entries = g.num_nodes() * objects.size();
  EXPECT_GT(total_flagged, total_entries / 4)
      << "compression should flag a substantial fraction of entries";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionRoundTripTest,
                         ::testing::Values(1, 7, 42));

TEST(CompressionTest, SingleResolveMatchesResolveRow) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 200, .seed = 5});
  const std::vector<NodeId> objects = UniformDataset(g, 0.08, 5);
  const auto index =
      BuildSignatureIndex(g, objects, {.t = 5, .c = 2, .compress = true});
  for (const NodeId n : testing_util::SampleNodes(g, 20, 3)) {
    const SignatureRow unresolved = index->ReadRowUnresolved(n);
    SignatureRow full = unresolved;
    index->compressor().ResolveRow(&full);
    for (uint32_t i = 0; i < unresolved.size(); ++i) {
      const SignatureEntry single =
          index->compressor().Resolve(unresolved, i);
      EXPECT_EQ(single.category, full[i].category);
      EXPECT_EQ(single.link, full[i].link);
    }
  }
}

TEST(CompressionTest, ObjectPairCategoryUsesFarMarker) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 500, .seed = 2});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 2);
  const auto index =
      BuildSignatureIndex(g, objects, {.t = 3, .c = 2, .compress = true});
  const RowCompressor compressor(&index->partition(), &index->object_table());
  const int last = index->partition().num_categories() - 1;
  for (uint32_t u = 0; u < objects.size(); ++u) {
    for (uint32_t v = 0; v < objects.size(); ++v) {
      if (u == v) continue;
      if (index->object_table().IsFar(u, v)) {
        EXPECT_EQ(compressor.ObjectPairCategory(u, v), last);
      } else {
        EXPECT_LT(compressor.ObjectPairCategory(u, v), last);
      }
    }
  }
}

}  // namespace
}  // namespace dsig
