#include "core/cross_node.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(CrossNodeTest, StatsAreInternallyConsistent) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.04, 3);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  const CrossNodeStats stats = AnalyzeCrossNodeCompression(*index, order, 8);
  EXPECT_EQ(stats.within_row_bits, index->size_stats().compressed_bits);
  // Every row pays at most 1 extra header bit; the total can never exceed
  // the within-row form by more than V bits.
  EXPECT_LE(stats.cross_node_bits,
            stats.within_row_bits + g.num_nodes());
  EXPECT_LE(stats.delta_rows, g.num_nodes());
  EXPECT_LE(stats.same_category_entries, stats.delta_entries);
}

TEST(CrossNodeTest, NeighboringRowsShareCategories) {
  // The premise of the paper's future-work idea: in CCAM order, consecutive
  // rows agree on most categories.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1500, .seed = 7});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 7);
  const auto index = BuildSignatureIndex(g, objects, {.t = 10, .c = 2.7});
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  const CrossNodeStats stats = AnalyzeCrossNodeCompression(*index, order, 8);
  if (stats.delta_entries > 0) {
    EXPECT_GT(stats.SameCategoryFraction(), 0.5);
  }
}

TEST(CrossNodeTest, ChainDepthOneLimitsDeltaRows) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 600, .seed = 4});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 4);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  const CrossNodeStats shallow = AnalyzeCrossNodeCompression(*index, order, 1);
  const CrossNodeStats deep = AnalyzeCrossNodeCompression(*index, order, 16);
  // With chains of depth 1, at most every other row can be a delta.
  EXPECT_LE(shallow.delta_rows, (g.num_nodes() + 1) / 2);
  EXPECT_GE(deep.delta_rows, shallow.delta_rows);
  EXPECT_LE(deep.cross_node_bits, shallow.cross_node_bits);
}

TEST(CrossNodeTest, RandomOrderDefeatsDeltas) {
  // Shuffled storage order destroys row similarity; cross-node deltas should
  // then win rarely, and never beat the CCAM order's total.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 9});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 9);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> ccam = ComputeCcamOrder(g, 64);
  std::vector<NodeId> shuffled(g.num_nodes());
  std::iota(shuffled.begin(), shuffled.end(), 0);
  Random rng(1);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextUint64(i)]);
  }
  const CrossNodeStats with_ccam = AnalyzeCrossNodeCompression(*index, ccam, 8);
  const CrossNodeStats with_random =
      AnalyzeCrossNodeCompression(*index, shuffled, 8);
  EXPECT_LE(with_ccam.cross_node_bits, with_random.cross_node_bits);
}

}  // namespace
}  // namespace dsig
