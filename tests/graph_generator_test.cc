#include "graph/graph_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/dijkstra.h"

namespace dsig {
namespace {

TEST(GridGeneratorTest, DimensionsAndDegrees) {
  const RoadNetwork g = MakeGrid({.width = 5, .height = 4, .edge_weight = 1});
  EXPECT_EQ(g.num_nodes(), 20u);
  // Edges: horizontal 4*4 + vertical 5*3 = 31.
  EXPECT_EQ(g.num_edges(), 31u);
  // Interior node degree 4, corner degree 2.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(6), 4u);
}

TEST(GridGeneratorTest, ManhattanDistancesOnUnitGrid) {
  const RoadNetwork g = MakeGrid({.width = 6, .height = 6, .edge_weight = 1});
  const ShortestPathTree tree = RunDijkstra(g, 0);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) {
      EXPECT_EQ(tree.dist[static_cast<NodeId>(y * 6 + x)], x + y);
    }
  }
}

TEST(RandomPlanarTest, ConnectedAndSized) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 3000, .seed = 5});
  EXPECT_EQ(g.num_nodes(), 3000u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(RandomPlanarTest, DeterministicForSeed) {
  const RoadNetwork a = MakeRandomPlanar({.num_nodes = 500, .seed = 7});
  const RoadNetwork b = MakeRandomPlanar({.num_nodes = 500, .seed = 7});
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edge_slots(); ++e) {
    EXPECT_EQ(a.edge_endpoints(e), b.edge_endpoints(e));
    EXPECT_EQ(a.edge_weight(e), b.edge_weight(e));
  }
}

TEST(RandomPlanarTest, AverageDegreeNearFour) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 5000, .seed = 1});
  const double avg_degree =
      2.0 * static_cast<double>(g.num_edges()) /
      static_cast<double>(g.num_nodes());
  EXPECT_GT(avg_degree, 2.5);
  EXPECT_LT(avg_degree, 6.5);
}

TEST(RandomPlanarTest, IntegerWeightsInRange) {
  const RoadNetwork g = MakeRandomPlanar(
      {.num_nodes = 500, .seed = 9, .min_weight = 1, .max_weight = 10});
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    const Weight w = g.edge_weight(e);
    EXPECT_GE(w, 1);
    EXPECT_LE(w, 10);
    EXPECT_EQ(w, std::floor(w)) << "weights must be integer-valued";
  }
}

TEST(ClusteredContinentalTest, ConnectedWithClusters) {
  const RoadNetwork g = MakeClusteredContinental(
      {.num_clusters = 6, .nodes_per_cluster = 300, .seed = 3});
  EXPECT_EQ(g.num_nodes(), 1800u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(ClusteredContinentalTest, HighwaysAreLong) {
  const RoadNetwork g = MakeClusteredContinental(
      {.num_clusters = 5, .nodes_per_cluster = 200, .seed = 8});
  // Some edge should be much heavier than local streets (a highway).
  Weight max_weight = 0;
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    max_weight = std::max(max_weight, g.edge_weight(e));
  }
  EXPECT_GT(max_weight, 50);
}

TEST(ClusteredContinentalTest, NonUniformDensity) {
  // Nodes concentrate around cluster centres: the bounding box is far
  // larger than what uniform density would need for this node count.
  const RoadNetwork g = MakeClusteredContinental(
      {.num_clusters = 4, .nodes_per_cluster = 250, .seed = 2});
  double min_x = 1e18, max_x = -1e18, min_y = 1e18, max_y = -1e18;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    min_x = std::min(min_x, g.position(n).x);
    max_x = std::max(max_x, g.position(n).x);
    min_y = std::min(min_y, g.position(n).y);
    max_y = std::max(max_y, g.position(n).y);
  }
  const double area = (max_x - min_x) * (max_y - min_y);
  EXPECT_GT(area, 4.0 * static_cast<double>(g.num_nodes()));
}

}  // namespace
}  // namespace dsig
