#include "util/logging.h"

#include <gtest/gtest.h>

namespace dsig {
namespace {

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  DSIG_CHECK(true);
  DSIG_CHECK_EQ(1, 1);
  DSIG_CHECK_NE(1, 2);
  DSIG_CHECK_LT(1, 2);
  DSIG_CHECK_LE(2, 2);
  DSIG_CHECK_GT(3, 2);
  DSIG_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(DSIG_CHECK(1 == 2) << "extra context", "Check failed");
}

TEST(LoggingDeathTest, CheckOpPrintsOperands) {
  EXPECT_DEATH(DSIG_CHECK_EQ(3, 4), "3 vs 4");
}

TEST(LoggingDeathTest, StreamedContextIsEmitted) {
  EXPECT_DEATH(DSIG_CHECK(false) << "the-unique-context-string",
               "the-unique-context-string");
}

TEST(LoggingTest, SeverityFilterSuppressesBelowThreshold) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  // Not crashing (and not printing) is the observable behaviour here.
  DSIG_LOG(Info) << "should be suppressed";
  DSIG_LOG(Warning) << "should be suppressed";
  SetMinLogSeverity(original);
  SUCCEED();
}

TEST(LoggingTest, ChecksWorkInsideExpressions) {
  // The macros must be usable where a void expression is expected (e.g.,
  // the branches of a ternary) — this is a compile-time contract.
  const int x = 3;
  (x > 0) ? DSIG_CHECK(true) : DSIG_CHECK(false);
  SUCCEED();
}

}  // namespace
}  // namespace dsig
