// The serving front-end: wire protocol round-trips and hostile bytes,
// admission control, and a live loopback server exercising deadlines,
// degradation, updates, and graceful shutdown end to end.
#include "serve/server.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "io/durable_index.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "serve/loadgen.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace serve {
namespace {

// --- Protocol ---------------------------------------------------------------

TEST(ProtocolTest, RequestRoundTrip) {
  Request request;
  request.type = RequestType::kKnn;
  request.id = 0x1122334455667788ull;
  request.deadline_ms = 12.5;
  request.node = 42;
  request.k = 7;
  request.knn_type = 2;
  request.epsilon = 99.25;
  request.update_op = 1;
  request.a = 3;
  request.b = 9;
  request.weight = 2.75;
  request.tenant_id = 5;

  std::vector<uint8_t> frame;
  EncodeRequest(request, &frame);
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  uint32_t payload_len = 0;
  ASSERT_TRUE(CheckFrameHeader(frame.data(), &payload_len).ok());
  ASSERT_EQ(payload_len, frame.size() - kFrameHeaderBytes);

  auto decoded = DecodeRequest(frame.data() + kFrameHeaderBytes, payload_len);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, request.type);
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded->node, request.node);
  EXPECT_EQ(decoded->k, request.k);
  EXPECT_EQ(decoded->knn_type, request.knn_type);
  EXPECT_DOUBLE_EQ(decoded->epsilon, request.epsilon);
  EXPECT_EQ(decoded->a, request.a);
  EXPECT_EQ(decoded->b, request.b);
  EXPECT_DOUBLE_EQ(decoded->weight, request.weight);
  EXPECT_EQ(decoded->tenant_id, request.tenant_id);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  Response response;
  response.id = 77;
  response.status = ResponseStatus::kDeadlineExceeded;
  response.degradation = Degradation::kOverload;
  response.retry_after_ms = 12.5;
  response.objects = {1, 2, 3};
  response.distances = {0.5, 1.5, 2.5};
  response.pair_left = {4, 5};
  response.pair_right = {6, 7};
  response.update_seq = 31;
  response.rows_rewritten = 9;
  response.num_nodes = 1000;
  response.num_objects = 50;
  response.suggested_epsilon = 123.5;
  response.text = "hello {json}";

  std::vector<uint8_t> frame;
  EncodeResponse(response, &frame);
  uint32_t payload_len = 0;
  ASSERT_TRUE(CheckFrameHeader(frame.data(), &payload_len).ok());
  auto decoded = DecodeResponse(frame.data() + kFrameHeaderBytes, payload_len);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->id, response.id);
  EXPECT_EQ(decoded->status, response.status);
  EXPECT_EQ(decoded->degradation, response.degradation);
  EXPECT_EQ(decoded->objects, response.objects);
  EXPECT_EQ(decoded->distances, response.distances);
  EXPECT_EQ(decoded->pair_left, response.pair_left);
  EXPECT_EQ(decoded->pair_right, response.pair_right);
  EXPECT_EQ(decoded->update_seq, response.update_seq);
  EXPECT_EQ(decoded->rows_rewritten, response.rows_rewritten);
  EXPECT_EQ(decoded->num_nodes, response.num_nodes);
  EXPECT_EQ(decoded->num_objects, response.num_objects);
  EXPECT_DOUBLE_EQ(decoded->suggested_epsilon, response.suggested_epsilon);
  EXPECT_EQ(decoded->text, response.text);
}

TEST(ProtocolTest, HostileBytesFailCleanly) {
  // Wrong magic.
  uint8_t bad_header[kFrameHeaderBytes] = {0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0};
  uint32_t payload_len = 0;
  EXPECT_FALSE(CheckFrameHeader(bad_header, &payload_len).ok());

  // Oversized length.
  Request ping;
  std::vector<uint8_t> frame;
  EncodeRequest(ping, &frame);
  frame[4] = 0xff;
  frame[5] = 0xff;
  frame[6] = 0xff;
  frame[7] = 0x7f;
  EXPECT_FALSE(CheckFrameHeader(frame.data(), &payload_len).ok());

  // Every truncation of a valid payload must decode to an error, not a
  // crash or a silently short request — with TWO exceptions: the tail is
  // append-only, so cutting exactly the 4-byte tenant tail reproduces a
  // valid pre-tenant frame (tenant_id = 0), and cutting the 12-byte
  // trace+tenant tail reproduces a valid pre-trace frame (trace_id = 0
  // too). Any partial tail is still corruption.
  frame.clear();
  Request full;
  full.type = RequestType::kUpdate;
  full.a = 1;
  full.b = 2;
  full.weight = 1.5;
  full.trace_id = 0xabcdef01;
  full.tenant_id = 7;
  EncodeRequest(full, &frame);
  ASSERT_TRUE(CheckFrameHeader(frame.data(), &payload_len).ok());
  const uint32_t legacy_len = payload_len - 12;     // pre-trace cut
  const uint32_t pre_tenant_len = payload_len - 4;  // pre-tenant cut
  for (uint32_t cut = 0; cut < payload_len; ++cut) {
    const auto decoded = DecodeRequest(frame.data() + kFrameHeaderBytes, cut);
    if (cut == legacy_len) {
      ASSERT_TRUE(decoded.ok()) << "legacy-length frame rejected";
      EXPECT_EQ(decoded->trace_id, 0u);
      EXPECT_EQ(decoded->tenant_id, 0u);
      EXPECT_EQ(decoded->a, full.a);
      continue;
    }
    if (cut == pre_tenant_len) {
      ASSERT_TRUE(decoded.ok()) << "pre-tenant-length frame rejected";
      EXPECT_EQ(decoded->trace_id, full.trace_id);
      EXPECT_EQ(decoded->tenant_id, 0u);
      continue;
    }
    EXPECT_FALSE(decoded.ok()) << "truncation at " << cut << " decoded";
  }
  // Garbage request type.
  std::vector<uint8_t> payload(frame.begin() + kFrameHeaderBytes, frame.end());
  payload[0] = 0xee;
  EXPECT_FALSE(DecodeRequest(payload.data(), payload.size()).ok());
}

TEST(ProtocolTest, ResponseObservabilityTailRoundTrip) {
  Response response;
  response.id = 88;
  response.status = ResponseStatus::kOk;
  response.text = "body";
  response.trace_id = 0x1234567890abcdefull;
  response.window.p50_ms = 1.5;
  response.window.p99_ms = 42.25;
  response.window.count = 777;
  response.window.queued_p99_ms = 3.125;
  response.window.lifetime_p99_ms = 55.5;
  response.slo.resize(2);
  response.slo[0].name = "knn";
  response.slo[0].state = obs::SloState::kCritical;
  response.slo[0].latency_budget_ms = 50;
  response.slo[0].availability = 0.99;
  response.slo[0].fast_burn = 21.5;
  response.slo[0].slow_burn = 16.25;
  response.slo[0].fast_total = 100;
  response.slo[0].fast_bad = 30;
  response.slo[0].slow_total = 600;
  response.slo[0].slow_bad = 90;
  response.slo[0].window_p50_ms = 4.5;
  response.slo[0].window_p99_ms = 80.0;
  response.slo[0].window_count = 590;
  response.slo[0].lifetime_p99_ms = 65.0;
  response.slo[0].lifetime_count = 4000;
  response.slo[1].name = "update";
  response.slo[1].state = obs::SloState::kOk;

  std::vector<uint8_t> frame;
  EncodeResponse(response, &frame);
  uint32_t payload_len = 0;
  ASSERT_TRUE(CheckFrameHeader(frame.data(), &payload_len).ok());
  auto decoded = DecodeResponse(frame.data() + kFrameHeaderBytes, payload_len);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->trace_id, response.trace_id);
  EXPECT_DOUBLE_EQ(decoded->window.p50_ms, 1.5);
  EXPECT_DOUBLE_EQ(decoded->window.p99_ms, 42.25);
  EXPECT_EQ(decoded->window.count, 777u);
  EXPECT_DOUBLE_EQ(decoded->window.queued_p99_ms, 3.125);
  EXPECT_DOUBLE_EQ(decoded->window.lifetime_p99_ms, 55.5);
  ASSERT_EQ(decoded->slo.size(), 2u);
  EXPECT_EQ(decoded->slo[0].name, "knn");
  EXPECT_EQ(decoded->slo[0].state, obs::SloState::kCritical);
  EXPECT_DOUBLE_EQ(decoded->slo[0].latency_budget_ms, 50.0);
  EXPECT_DOUBLE_EQ(decoded->slo[0].fast_burn, 21.5);
  EXPECT_DOUBLE_EQ(decoded->slo[0].slow_burn, 16.25);
  EXPECT_EQ(decoded->slo[0].fast_total, 100u);
  EXPECT_EQ(decoded->slo[0].fast_bad, 30u);
  EXPECT_EQ(decoded->slo[0].slow_total, 600u);
  EXPECT_EQ(decoded->slo[0].slow_bad, 90u);
  EXPECT_DOUBLE_EQ(decoded->slo[0].window_p99_ms, 80.0);
  EXPECT_EQ(decoded->slo[0].window_count, 590u);
  EXPECT_DOUBLE_EQ(decoded->slo[0].lifetime_p99_ms, 65.0);
  EXPECT_EQ(decoded->slo[0].lifetime_count, 4000u);
  EXPECT_EQ(decoded->slo[1].name, "update");
  EXPECT_EQ(decoded->slo[1].state, obs::SloState::kOk);
}

TEST(ProtocolTest, ResponseTailTruncationFuzz) {
  // Backward compatibility contract: the tail is append-only, so chopping
  // the 4-byte tenant tail reproduces a valid pre-tenant frame (tenant_id
  // 0), and chopping the ENTIRE observability tail reproduces a valid
  // pre-observability frame (zeroed window stats, no slo classes, trace_id
  // 0). Any partial tail is corruption, and any truncation inside the core
  // payload stays an error.
  Response response;
  response.id = 31;
  response.status = ResponseStatus::kOk;
  response.objects = {1, 2};
  response.distances = {0.5, 1.5};
  response.text = "t";
  response.trace_id = 0xfeedull;
  response.tenant_id = 3;
  response.window.p99_ms = 9.5;
  response.window.count = 3;
  response.slo.resize(2);
  response.slo[0].name = "knn";
  response.slo[1].name = "update";

  std::vector<uint8_t> frame;
  EncodeResponse(response, &frame);
  uint32_t payload_len = 0;
  ASSERT_TRUE(CheckFrameHeader(frame.data(), &payload_len).ok());
  // Tail layout: 52 fixed bytes + per class (109 fixed + name bytes),
  // then the 4-byte tenant id.
  uint32_t tail_len = 52;
  for (const auto& cls : response.slo) {
    tail_len += 109 + static_cast<uint32_t>(cls.name.size());
  }
  tail_len += 4;
  ASSERT_GT(payload_len, tail_len);
  const uint32_t legacy_len = payload_len - tail_len;
  const uint32_t pre_tenant_len = payload_len - 4;

  for (uint32_t cut = 0; cut < payload_len; ++cut) {
    const auto decoded = DecodeResponse(frame.data() + kFrameHeaderBytes, cut);
    if (cut == legacy_len) {
      ASSERT_TRUE(decoded.ok()) << "legacy-length response rejected";
      EXPECT_EQ(decoded->id, response.id);
      EXPECT_EQ(decoded->objects, response.objects);
      EXPECT_EQ(decoded->trace_id, 0u);
      EXPECT_EQ(decoded->window.count, 0u);
      EXPECT_TRUE(decoded->slo.empty());
      EXPECT_EQ(decoded->tenant_id, 0u);
      continue;
    }
    if (cut == pre_tenant_len) {
      ASSERT_TRUE(decoded.ok()) << "pre-tenant-length response rejected";
      EXPECT_EQ(decoded->trace_id, response.trace_id);
      ASSERT_EQ(decoded->slo.size(), 2u);
      EXPECT_EQ(decoded->tenant_id, 0u);
      continue;
    }
    EXPECT_FALSE(decoded.ok()) << "truncation at " << cut << " decoded";
  }

  // A hostile class count must fail the size pre-check, not allocate.
  std::vector<uint8_t> hostile(frame.begin() + kFrameHeaderBytes, frame.end());
  const size_t count_at = legacy_len + 52 - 4;  // num_classes field
  hostile[count_at + 0] = 0xff;
  hostile[count_at + 1] = 0xff;
  hostile[count_at + 2] = 0xff;
  hostile[count_at + 3] = 0x7f;
  EXPECT_FALSE(DecodeResponse(hostile.data(), hostile.size()).ok());
}

// --- Admission --------------------------------------------------------------

TEST(AdmissionTest, FullQueueShedsWithScaledHint) {
  AdmissionController::Options options;
  options.query = {/*max_inflight=*/1, /*max_queue=*/0};
  options.retry_after_base_ms = 10;
  AdmissionController admission(options);

  auto first = admission.Admit(WorkClass::kQuery, Deadline::Infinite());
  ASSERT_EQ(first.outcome, AdmitOutcome::kAdmitted);
  ASSERT_TRUE(first.ticket.held());

  // Slot taken, zero queue: instant shed with a positive hint.
  auto second = admission.Admit(WorkClass::kQuery, Deadline::Infinite());
  EXPECT_EQ(second.outcome, AdmitOutcome::kShed);
  EXPECT_GE(second.retry_after_ms, options.retry_after_base_ms);

  first.ticket.Release();
  auto third = admission.Admit(WorkClass::kQuery, Deadline::Infinite());
  EXPECT_EQ(third.outcome, AdmitOutcome::kAdmitted);
}

TEST(AdmissionTest, QueuedRequestTimesOutAtItsDeadline) {
  AdmissionController::Options options;
  options.query = {/*max_inflight=*/1, /*max_queue=*/4};
  AdmissionController admission(options);
  auto holder = admission.Admit(WorkClass::kQuery, Deadline::Infinite());
  ASSERT_EQ(holder.outcome, AdmitOutcome::kAdmitted);

  const uint64_t before = Deadline::NowNanos();
  auto queued = admission.Admit(WorkClass::kQuery, Deadline::AfterMillis(30));
  EXPECT_EQ(queued.outcome, AdmitOutcome::kQueueTimeout);
  EXPECT_GE(Deadline::NowNanos() - before, 25ull * 1000 * 1000);
  EXPECT_EQ(admission.queue_depth(WorkClass::kQuery), 0u);
}

TEST(AdmissionTest, UpdateClassIsIndependentOfQueryClass) {
  AdmissionController::Options options;
  options.query = {/*max_inflight=*/1, /*max_queue=*/0};
  AdmissionController admission(options);
  auto query = admission.Admit(WorkClass::kQuery, Deadline::Infinite());
  ASSERT_EQ(query.outcome, AdmitOutcome::kAdmitted);
  // Query class saturated; updates still flow.
  auto update = admission.Admit(WorkClass::kUpdate, Deadline::Infinite());
  EXPECT_EQ(update.outcome, AdmitOutcome::kAdmitted);
}

TEST(AdmissionTest, CloseWakesQueuedWaitersWithShuttingDown) {
  AdmissionController::Options options;
  options.query = {/*max_inflight=*/1, /*max_queue=*/4};
  AdmissionController admission(options);
  auto holder = admission.Admit(WorkClass::kQuery, Deadline::Infinite());
  ASSERT_EQ(holder.outcome, AdmitOutcome::kAdmitted);

  AdmitOutcome waiter_outcome = AdmitOutcome::kAdmitted;
  std::thread waiter([&] {
    waiter_outcome =
        admission.Admit(WorkClass::kQuery, Deadline::Infinite()).outcome;
  });
  while (admission.queue_depth(WorkClass::kQuery) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  admission.Close();
  waiter.join();
  EXPECT_EQ(waiter_outcome, AdmitOutcome::kShuttingDown);
  EXPECT_EQ(admission.Admit(WorkClass::kQuery, Deadline::Infinite()).outcome,
            AdmitOutcome::kShuttingDown);
}

// --- Live server ------------------------------------------------------------

std::string TempDir(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<RoadNetwork>(
        MakeRandomPlanar({.num_nodes = 500, .seed = 21}));
    objects_ = UniformDataset(*graph_, 0.05, 21);
    index_ = BuildSignatureIndex(*graph_, objects_,
                                 {.t = 5, .c = 2, .keep_forest = true});
    // Per-test directory: ctest runs each ServerFixture case as its own
    // process in parallel, and a shared dir makes SetUp race with itself.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = TempDir(std::string("serve_fixture_") + info->name() + "_" +
                   std::to_string(static_cast<unsigned>(::getpid())));
    auto updater =
        DurableUpdater::Initialize(dir_, graph_.get(), index_.get(), {});
    ASSERT_TRUE(updater.ok()) << updater.status().ToString();
    updater_ = std::move(updater).value();
  }

  void StartServer(const ServerOptions& options) {
    DsigServer::Deployment deployment;
    deployment.graph = graph_.get();
    deployment.index = index_.get();
    deployment.updater = updater_.get();
    auto server = DsigServer::Start(deployment, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
    ASSERT_TRUE(client_.Connect(server_->port(), /*timeout_ms=*/5000).ok());
  }

  Response MustCall(const Request& request) {
    auto response = client_.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : Response{};
  }

  std::unique_ptr<RoadNetwork> graph_;
  std::vector<NodeId> objects_;
  std::unique_ptr<SignatureIndex> index_;
  std::string dir_;
  std::unique_ptr<DurableUpdater> updater_;
  std::unique_ptr<DsigServer> server_;
  ServeClient client_;
};

TEST_F(ServerFixture, AnswersMatchDirectQueries) {
  StartServer({});

  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 1;
  const Response pong = MustCall(ping);
  EXPECT_EQ(pong.status, ResponseStatus::kOk);
  EXPECT_EQ(pong.num_nodes, graph_->num_nodes());
  EXPECT_EQ(pong.num_objects, index_->num_objects());
  EXPECT_GT(pong.suggested_epsilon, 0);

  Request knn;
  knn.type = RequestType::kKnn;
  knn.id = 2;
  knn.node = 17;
  knn.k = 5;
  knn.knn_type = 1;
  const Response served = MustCall(knn);
  EXPECT_EQ(served.status, ResponseStatus::kOk);
  EXPECT_EQ(served.degradation, Degradation::kNone);
  const KnnResult direct =
      SignatureKnnQuery(*index_, 17, 5, KnnResultType::kType1);
  ASSERT_EQ(served.objects.size(), direct.objects.size());
  for (size_t i = 0; i < direct.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(served.distances[i], direct.distances[i]);
  }

  Request range;
  range.type = RequestType::kRange;
  range.id = 3;
  range.node = 17;
  range.epsilon = pong.suggested_epsilon;
  const Response ranged = MustCall(range);
  EXPECT_EQ(ranged.status, ResponseStatus::kOk);
  const RangeQueryResult direct_range =
      SignatureRangeQuery(*index_, 17, range.epsilon);
  EXPECT_EQ(ranged.objects, direct_range.objects);

  Request stats;
  stats.type = RequestType::kStats;
  stats.id = 4;
  const Response stat = MustCall(stats);
  EXPECT_EQ(stat.status, ResponseStatus::kOk);
  EXPECT_NE(stat.text.find("serve.requests"), std::string::npos);
}

TEST_F(ServerFixture, UpdatesAreDurablyAckedWithWalSeq) {
  StartServer({});
  Request update;
  update.type = RequestType::kUpdate;
  update.id = 9;
  update.update_op = UpdateRecord::kAddEdge;
  update.a = 3;
  update.b = 250;
  update.weight = 2.5;
  const Response first = MustCall(update);
  EXPECT_EQ(first.status, ResponseStatus::kOk);
  EXPECT_EQ(first.update_seq, 1u);
  EXPECT_GT(first.rows_rewritten, 0u);

  update.id = 10;
  update.a = 5;
  update.b = 300;
  const Response second = MustCall(update);
  EXPECT_EQ(second.update_seq, 2u);

  // A malformed update (self-loop) is refused without poisoning the WAL.
  update.id = 11;
  update.a = 7;
  update.b = 7;
  const Response refused = MustCall(update);
  EXPECT_EQ(refused.status, ResponseStatus::kError);
  EXPECT_EQ(updater_->next_seq(), 3u);
}

TEST_F(ServerFixture, ExpiredDeadlineAnswersWithoutExecuting) {
  StartServer({});
  Request knn;
  knn.type = RequestType::kKnn;
  knn.id = 5;
  knn.node = 17;
  knn.k = 5;
  knn.knn_type = 1;
  knn.deadline_ms = 1e-9;  // expired before the server can look at it
  const Response response = MustCall(knn);
  EXPECT_EQ(response.status, ResponseStatus::kDeadlineExceeded);
  EXPECT_TRUE(response.objects.empty());
}

TEST_F(ServerFixture, OverloadDegradesToCategoryAnswers) {
  ServerOptions options;
  options.degrade_queue_fraction = -1;  // brown-out hook: degrade everything
  StartServer(options);

  Request knn;
  knn.type = RequestType::kKnn;
  knn.id = 6;
  knn.node = 17;
  knn.k = 5;
  knn.knn_type = 1;
  const Response response = MustCall(knn);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.degradation, Degradation::kOverload);
  EXPECT_EQ(response.objects.size(), 5u);
  // Degraded distances are category midpoints: positive, finite estimates.
  for (const double d : response.distances) {
    EXPECT_GT(d, 0);
  }

  Request range;
  range.type = RequestType::kRange;
  range.id = 7;
  range.node = 17;
  range.epsilon = 50;
  EXPECT_EQ(MustCall(range).degradation, Degradation::kOverload);
}

TEST_F(ServerFixture, DecodeFaultTagsTheResponse) {
  StartServer({});
  const NodeId n = 23;
  // Smash node 23's row to zeros: reads must fall back to bounded Dijkstra
  // (still exact) and the response must say so.
  EncodedRow& row = index_->mutable_encoded_row(n);
  std::fill(row.bytes.begin(), row.bytes.end(), uint8_t{0});

  Request knn;
  knn.type = RequestType::kKnn;
  knn.id = 8;
  knn.node = n;
  knn.k = 3;
  knn.knn_type = 1;
  const Response response = MustCall(knn);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.degradation, Degradation::kDecodeFault);
  EXPECT_EQ(response.objects.size(), 3u);
}

TEST_F(ServerFixture, ShedRepliesRetryAfterUnderSaturation) {
  ServerOptions options;
  options.admission.query = {/*max_inflight=*/1, /*max_queue=*/0};
  StartServer(options);

  // Keep the single slot saturated from two other connections hammering the
  // most expensive request we have, then observe the shed on the fixture
  // connection.
  std::atomic<bool> stop{false};
  std::vector<std::thread> blockers;
  for (int t = 0; t < 2; ++t) {
    blockers.emplace_back([&, t] {
      ServeClient heavy;
      if (!heavy.Connect(server_->port(), 5000).ok()) return;
      Request join;
      join.type = RequestType::kJoin;
      join.id = 100 + static_cast<uint64_t>(t);
      join.node = 3;
      join.epsilon = 1e9;  // every pair straddles
      while (!stop.load(std::memory_order_relaxed)) {
        if (!heavy.Call(join).ok()) break;
      }
    });
  }

  bool saw_shed = false;
  for (int i = 0; i < 2000 && !saw_shed; ++i) {
    Request knn;
    knn.type = RequestType::kKnn;
    knn.id = 200;
    knn.node = 17;
    knn.k = 3;
    knn.knn_type = 3;
    auto response = client_.Call(knn);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->status == ResponseStatus::kRetryAfter) {
      EXPECT_GT(response->retry_after_ms, 0);
      saw_shed = true;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& b : blockers) b.join();
  EXPECT_TRUE(saw_shed) << "single-slot server never shed";
}

TEST_F(ServerFixture, GracefulStopDrainsAndRefuses) {
  StartServer({});
  Request ping;
  ping.type = RequestType::kPing;
  ping.id = 12;
  EXPECT_EQ(MustCall(ping).status, ResponseStatus::kOk);

  server_->Stop();
  // The listener is gone: new connections are refused.
  ServeClient late;
  EXPECT_FALSE(late.Connect(server_->port(), 500).ok());
  // Stop() is idempotent.
  server_->Stop();

  // The durable tail survives the drain: a final checkpoint + recovery
  // round-trips.
  ASSERT_TRUE(updater_->Checkpoint().ok());
  ASSERT_TRUE(updater_->Close().ok());
  auto recovered = DurableUpdater::Recover(dir_, {});
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
}

TEST_F(ServerFixture, TraceIdIsEchoedOrMinted) {
  StartServer({});
  Request knn;
  knn.type = RequestType::kKnn;
  knn.id = 40;
  knn.node = 17;
  knn.k = 3;
  knn.knn_type = 1;
  knn.trace_id = 0xc0ffee01ull;
  const Response echoed = MustCall(knn);
  EXPECT_EQ(echoed.status, ResponseStatus::kOk);
  EXPECT_EQ(echoed.trace_id, knn.trace_id);

  // A legacy client (trace_id 0) gets a server-minted id so its request is
  // still traceable in the slow-query log.
  knn.id = 41;
  knn.trace_id = 0;
  const Response minted = MustCall(knn);
  EXPECT_NE(minted.trace_id, 0u);
}

TEST_F(ServerFixture, SloEndpointReportsHealthAndStats) {
  StartServer({});
  // Put some traffic through so the windows have samples.
  for (int i = 0; i < 20; ++i) {
    Request knn;
    knn.type = RequestType::kKnn;
    knn.id = 50 + static_cast<uint64_t>(i);
    knn.node = 17;
    knn.k = 3;
    knn.knn_type = 1;
    ASSERT_EQ(MustCall(knn).status, ResponseStatus::kOk);
  }

  Request slo;
  slo.type = RequestType::kSlo;
  slo.id = 90;
  const Response health = MustCall(slo);
  EXPECT_EQ(health.status, ResponseStatus::kOk);
  EXPECT_NE(health.text.find("SLO_HEALTH class=knn"), std::string::npos)
      << health.text;
  EXPECT_NE(health.text.find("SLO_OVERALL state="), std::string::npos);
  // The wire tail carries the same machine-readable report.
  EXPECT_FALSE(health.slo.empty());
  EXPECT_GT(health.window.count, 0u);
  bool found_knn = false;
  for (const auto& cls : health.slo) {
    if (cls.name == "knn") {
      found_knn = true;
      EXPECT_EQ(cls.state, obs::SloState::kOk);
      EXPECT_GT(cls.window_count, 0u);
    }
  }
  EXPECT_TRUE(found_knn);

  Request stats;
  stats.type = RequestType::kStats;
  stats.id = 91;
  const Response stat = MustCall(stats);
  EXPECT_NE(stat.text.find("\"metrics\""), std::string::npos);
  EXPECT_NE(stat.text.find("\"slo\""), std::string::npos);
  EXPECT_NE(stat.text.find("\"overall\""), std::string::npos);
}

TEST_F(ServerFixture, BreachingRequestsLandInTheSlowQueryLog) {
  ServerOptions options;
  // A zero-latency budget makes every executed request an SLO breach, so
  // the tail sampler fires deterministically.
  options.slo = {{"knn", 0.0, 0.99},
                 {"range", 0.0, 0.99},
                 {"join", 0.0, 0.99},
                 {"update", 0.0, 0.999}};
  std::FILE* log = std::tmpfile();
  ASSERT_NE(log, nullptr);
  options.slow_trace_sink = log;
  StartServer(options);

  Request knn;
  knn.type = RequestType::kKnn;
  knn.id = 60;
  knn.node = 17;
  knn.k = 3;
  knn.knn_type = 1;
  knn.trace_id = 0xabc123ull;
  ASSERT_EQ(MustCall(knn).status, ResponseStatus::kOk);

  std::fflush(log);
  std::fseek(log, 0, SEEK_END);
  const long size = std::ftell(log);
  ASSERT_GT(size, 0) << "no slow-query trace emitted";
  std::string line(static_cast<size_t>(size), '\0');
  std::rewind(log);
  line.resize(std::fread(line.data(), 1, line.size(), log));
  EXPECT_NE(line.find("\"trace_id\": \"0000000000abc123\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"class\": \"knn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"queue_wait_ms\""), std::string::npos) << line;
  // The first request on a fresh server is always phase-sampled.
  EXPECT_NE(line.find("\"sampled_phases\": true"), std::string::npos) << line;
  EXPECT_NE(line.find("\"phases_ms\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"slo_budget_ms\""), std::string::npos) << line;

  server_->Stop();
  server_.reset();  // the sink must outlive the server
  std::fclose(log);
}

TEST_F(ServerFixture, LoadgenDrivesTrafficEndToEnd) {
  StartServer({});
  LoadgenOptions options;
  options.port = server_->port();
  options.rate = 400;
  options.duration_s = 1.0;
  options.threads = 2;
  options.deadline_ms = 200;
  options.seed = 5;
  auto report = RunLoadgen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->arrivals, 0u);
  EXPECT_GT(report->completed, 0u);
  EXPECT_EQ(report->protocol_errors, 0u);
  EXPECT_GT(report->updates_acked, 0u);
  // Every acked seq was really committed: the WAL is at least that far.
  EXPECT_GT(report->max_acked_seq, 0u);
  EXPECT_LE(report->max_acked_seq, updater_->next_seq() - 1);
  EXPECT_GT(report->p99_ms, 0);
  const std::string summary = FormatLoadgenSummary(*report);
  EXPECT_NE(summary.find("LOADGEN_SUMMARY"), std::string::npos);
  EXPECT_NE(summary.find("protocol_errors=0"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace dsig
