#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "obs/window.h"
#include "util/thread_pool.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace dsig {
namespace obs {
namespace {

TEST(CounterTest, AddSetResetValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.Value(), 7u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddResetValue) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Add(-5.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketGeometryIsMonotonic) {
  // Bucket bounds must be strictly increasing, and every tracked value must
  // land in a bucket whose [lower, upper) range contains it (up to rounding).
  double prev = 0;
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    const double lo = Histogram::BucketLowerBound(b);
    EXPECT_GE(lo, prev) << "bucket " << b;
    EXPECT_LT(lo, Histogram::BucketUpperBound(b)) << "bucket " << b;
    prev = lo;
  }
  for (double v = Histogram::kMinTracked; v < 1e8; v *= 3.7) {
    const int b = Histogram::BucketOf(v);
    EXPECT_GE(b, 1) << "value " << v;
    EXPECT_LT(b, Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v * (1 + 1e-9)) << "value " << v;
    EXPECT_GE(Histogram::BucketUpperBound(b), v * (1 - 1e-9)) << "value " << v;
  }
  // Underflow and overflow.
  EXPECT_EQ(Histogram::BucketOf(0.0), 0);
  EXPECT_EQ(Histogram::BucketOf(Histogram::kMinTracked / 2), 0);
  EXPECT_EQ(Histogram::BucketOf(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, ExactStatsOnSmallSample) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(4.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 4.0);
  // Min/max clamp the bucket interpolation, so the extreme percentiles stay
  // within one bucket (~9%) of the true extremes.
  EXPECT_NEAR(h.Percentile(0), 1.0, 0.1);
  EXPECT_NEAR(h.Percentile(100), 4.0, 0.4);
}

TEST(HistogramTest, PercentilesWithinBucketError) {
  // 1..1000 uniformly: percentile p should come out near p * 10 with at most
  // one bucket (~9%) of relative error.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  for (const double p : {50.0, 90.0, 99.0}) {
    const double want = p * 10.0;
    const double got = h.Percentile(p);
    EXPECT_NEAR(got, want, want * 0.10) << "p" << p;
  }
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
}

TEST(HistogramTest, PercentilesAreMonotonicInP) {
  Histogram h;
  for (int i = 1; i <= 97; ++i) h.Record(std::pow(1.3, i % 13));
  double prev = 0;
  for (double p = 0; p <= 100; p += 5) {
    const double cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p" << p;
    prev = cur;
  }
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    a.Record(i * 0.5);
    combined.Record(i * 0.5);
  }
  for (int i = 1; i <= 50; ++i) {
    b.Record(i * 20.0);
    combined.Record(i * 20.0);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_DOUBLE_EQ(a.Sum(), combined.Sum());
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(3.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  // Recording after a reset starts a fresh min/max window.
  h.Record(9.0);
  EXPECT_DOUBLE_EQ(h.Min(), 9.0);
  EXPECT_DOUBLE_EQ(h.Max(), 9.0);
}

TEST(ScopedTimerTest, RecordsOneSample) {
  Histogram h;
  { const ScopedTimer timer(&h); }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Max(), 0.0);
}

TEST(MetricsRegistryTest, LookupsReturnStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("test.counter");
  Counter* c2 = registry.GetCounter("test.counter");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("test.gauge");
  EXPECT_EQ(g1, registry.GetGauge("test.gauge"));
  Histogram* h1 = registry.GetHistogram("test.histogram");
  EXPECT_EQ(h1, registry.GetHistogram("test.histogram"));
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsNames) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  Histogram* h = registry.GetHistogram("test.histogram");
  c->Add(5);
  h->Record(1.0);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  // Same pointer after reset: names stay registered.
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
}

TEST(MetricsRegistryTest, ToJsonHasAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("reads")->Add(3);
  registry.GetGauge("pages")->Set(1.5);
  Histogram* h = registry.GetHistogram("latency_ms");
  h->Record(2.0);
  h->Record(8.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"reads\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"pages\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("buffer.hits")->Add(12);
  registry.GetGauge("buffer.cached_pages")->Set(4);
  registry.GetHistogram("query.knn.latency_ms")->Record(1.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP dsig_buffer_hits"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dsig_buffer_hits counter"), std::string::npos);
  EXPECT_NE(text.find("dsig_buffer_hits 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dsig_buffer_cached_pages gauge"),
            std::string::npos);
  // Histograms export as real Prometheus histograms: cumulative le buckets
  // ending at +Inf, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE dsig_query_knn_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("dsig_query_knn_latency_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dsig_query_knn_latency_ms_count 1"),
            std::string::npos);
  EXPECT_EQ(text.find("quantile="), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExportsWindowedHistograms) {
  MetricsRegistry registry;
  WindowedHistogram* w = registry.GetWindowedHistogram("serve.latency_ms");
  for (int i = 0; i < 100; ++i) w->Record(5.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE dsig_serve_latency_ms_window gauge"),
            std::string::npos);
  EXPECT_NE(text.find("window=\"10s\""), std::string::npos);
  EXPECT_NE(text.find("stat=\"p99\""), std::string::npos);
  EXPECT_NE(text.find("dsig_serve_latency_ms_window_count{window=\"10s\"}"),
            std::string::npos);
}

// The percentile-accuracy contract: bucket-interpolated percentiles stay
// within one log bucket (~9% relative error) of the EXACT sample quantiles,
// on distributions with very different shapes — and merging per-shard
// histograms must not cost any additional error.
class HistogramAccuracyTest : public ::testing::Test {
 protected:
  static double ExactQuantile(std::vector<double> values, double p) {
    std::sort(values.begin(), values.end());
    const size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
  }

  static void CheckAgainstExact(const Histogram& h,
                                const std::vector<double>& values,
                                const char* label) {
    for (const double p : {50.0, 90.0, 99.0}) {
      const double exact = ExactQuantile(values, p);
      const double approx = h.Percentile(p);
      // One 8-per-octave bucket is a factor of 2^(1/8) ~ 1.0905 wide; allow
      // one bucket of relative error plus interpolation slack.
      EXPECT_NEAR(approx, exact, exact * 0.095)
          << label << " p" << p;
    }
    EXPECT_EQ(h.Count(), values.size()) << label;
  }
};

TEST_F(HistogramAccuracyTest, UniformDistribution) {
  // Deterministic LCG; values uniform in [1, 1001).
  uint64_t state = 12345;
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double v = 1.0 + static_cast<double>(state >> 11) * 0x1.0p-53 * 1000;
    values.push_back(v);
    h.Record(v);
  }
  CheckAgainstExact(h, values, "uniform");
}

TEST_F(HistogramAccuracyTest, LognormalDistribution) {
  // exp(N(0, 1.5)) via Box-Muller on a deterministic LCG: a heavy right
  // tail, the shape real latency distributions take.
  uint64_t state = 99991;
  auto next_u = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  std::vector<double> values;
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const double u1 = std::max(next_u(), 1e-12);
    const double u2 = next_u();
    const double n =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    const double v = std::exp(1.5 * n);
    values.push_back(v);
    h.Record(v);
  }
  CheckAgainstExact(h, values, "lognormal");
}

TEST_F(HistogramAccuracyTest, BimodalDistributionMergedAcrossShards) {
  // Fast path ~1ms, slow path ~100ms — recorded into 8 shards and merged,
  // the way a windowed snapshot assembles its answer. Accuracy must match a
  // single histogram's.
  uint64_t state = 777;
  auto next_u = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  std::vector<double> values;
  Histogram shards[8];
  for (int i = 0; i < 20000; ++i) {
    const double v = next_u() < 0.9 ? 1.0 + next_u() * 0.2
                                    : 100.0 + next_u() * 20.0;
    values.push_back(v);
    shards[i % 8].Record(v);
  }
  Histogram merged;
  for (const Histogram& s : shards) merged.Merge(s);
  CheckAgainstExact(merged, values, "bimodal-merged");

  // The merged histogram is bucket-for-bucket the sum of its shards.
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    uint64_t sum = 0;
    for (const Histogram& s : shards) sum += s.BucketCount(b);
    ASSERT_EQ(merged.BucketCount(b), sum) << "bucket " << b;
  }
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(BufferPoolMetricsTest, WiredToRegistry) {
  BufferPoolMetrics& m = GlobalBufferPoolMetrics();
  ASSERT_NE(m.hits, nullptr);
  EXPECT_EQ(m.hits, MetricsRegistry::Global().GetCounter("buffer.hits"));
  EXPECT_EQ(m.cached_pages,
            MetricsRegistry::Global().GetGauge("buffer.cached_pages"));
}

TEST(BufferPoolMetricsTest, PublishCopiesTotalsIntoRegistry) {
  BufferPoolTotals& totals = GlobalBufferPoolTotals();
  totals.hits.fetch_add(5, std::memory_order_relaxed);
  totals.misses.fetch_add(3, std::memory_order_relaxed);
  totals.evictions.fetch_add(2, std::memory_order_relaxed);
  PublishBufferPoolMetrics();
  const BufferPoolTotalsSnapshot snap = totals.Snapshot();
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("buffer.hits")->Value(), snap.hits);
  EXPECT_EQ(registry.GetCounter("buffer.misses")->Value(), snap.misses);
  EXPECT_EQ(registry.GetCounter("buffer.evictions")->Value(), snap.evictions);
  EXPECT_EQ(registry.GetCounter("buffer.failed_reads")->Value(),
            snap.failed_reads);
}

TEST(ThreadPoolMetricsTest, PublishCopiesPoolTotalsIntoRegistry) {
  ThreadPoolTotals& totals = GlobalThreadPoolTotals();
  totals.tasks_run.fetch_add(4, std::memory_order_relaxed);
  totals.parallel_fors.fetch_add(1, std::memory_order_relaxed);
  PublishThreadPoolMetrics();
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("pool.tasks_run")->Value(),
            totals.tasks_run.load(std::memory_order_relaxed));
  EXPECT_EQ(registry.GetCounter("pool.steals")->Value(),
            totals.steals.load(std::memory_order_relaxed));
  EXPECT_EQ(registry.GetCounter("pool.parallel_fors")->Value(),
            totals.parallel_fors.load(std::memory_order_relaxed));
  EXPECT_EQ(registry.GetCounter("pool.chunks_run")->Value(),
            totals.chunks_run.load(std::memory_order_relaxed));
}

}  // namespace
}  // namespace obs
}  // namespace dsig
