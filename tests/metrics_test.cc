#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

#include <cmath>
#include <string>
#include <vector>

namespace dsig {
namespace obs {
namespace {

TEST(CounterTest, AddSetResetValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Set(7);
  EXPECT_EQ(c.Value(), 7u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAddResetValue) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
  g.Add(-5.0);
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketGeometryIsMonotonic) {
  // Bucket bounds must be strictly increasing, and every tracked value must
  // land in a bucket whose [lower, upper) range contains it (up to rounding).
  double prev = 0;
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    const double lo = Histogram::BucketLowerBound(b);
    EXPECT_GE(lo, prev) << "bucket " << b;
    EXPECT_LT(lo, Histogram::BucketUpperBound(b)) << "bucket " << b;
    prev = lo;
  }
  for (double v = Histogram::kMinTracked; v < 1e8; v *= 3.7) {
    const int b = Histogram::BucketOf(v);
    EXPECT_GE(b, 1) << "value " << v;
    EXPECT_LT(b, Histogram::kNumBuckets) << "value " << v;
    EXPECT_LE(Histogram::BucketLowerBound(b), v * (1 + 1e-9)) << "value " << v;
    EXPECT_GE(Histogram::BucketUpperBound(b), v * (1 - 1e-9)) << "value " << v;
  }
  // Underflow and overflow.
  EXPECT_EQ(Histogram::BucketOf(0.0), 0);
  EXPECT_EQ(Histogram::BucketOf(Histogram::kMinTracked / 2), 0);
  EXPECT_EQ(Histogram::BucketOf(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(HistogramTest, ExactStatsOnSmallSample) {
  Histogram h;
  h.Record(1.0);
  h.Record(2.0);
  h.Record(4.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 4.0);
  // Min/max clamp the bucket interpolation, so the extreme percentiles stay
  // within one bucket (~9%) of the true extremes.
  EXPECT_NEAR(h.Percentile(0), 1.0, 0.1);
  EXPECT_NEAR(h.Percentile(100), 4.0, 0.4);
}

TEST(HistogramTest, PercentilesWithinBucketError) {
  // 1..1000 uniformly: percentile p should come out near p * 10 with at most
  // one bucket (~9%) of relative error.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  for (const double p : {50.0, 90.0, 99.0}) {
    const double want = p * 10.0;
    const double got = h.Percentile(p);
    EXPECT_NEAR(got, want, want * 0.10) << "p" << p;
  }
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
}

TEST(HistogramTest, PercentilesAreMonotonicInP) {
  Histogram h;
  for (int i = 1; i <= 97; ++i) h.Record(std::pow(1.3, i % 13));
  double prev = 0;
  for (double p = 0; p <= 100; p += 5) {
    const double cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "p" << p;
    prev = cur;
  }
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    a.Record(i * 0.5);
    combined.Record(i * 0.5);
  }
  for (int i = 1; i <= 50; ++i) {
    b.Record(i * 20.0);
    combined.Record(i * 20.0);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_DOUBLE_EQ(a.Sum(), combined.Sum());
  EXPECT_DOUBLE_EQ(a.Min(), combined.Min());
  EXPECT_DOUBLE_EQ(a.Max(), combined.Max());
  for (const double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(3.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  // Recording after a reset starts a fresh min/max window.
  h.Record(9.0);
  EXPECT_DOUBLE_EQ(h.Min(), 9.0);
  EXPECT_DOUBLE_EQ(h.Max(), 9.0);
}

TEST(ScopedTimerTest, RecordsOneSample) {
  Histogram h;
  { const ScopedTimer timer(&h); }
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Max(), 0.0);
}

TEST(MetricsRegistryTest, LookupsReturnStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("test.counter");
  Counter* c2 = registry.GetCounter("test.counter");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("test.gauge");
  EXPECT_EQ(g1, registry.GetGauge("test.gauge"));
  Histogram* h1 = registry.GetHistogram("test.histogram");
  EXPECT_EQ(h1, registry.GetHistogram("test.histogram"));
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsNames) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  Histogram* h = registry.GetHistogram("test.histogram");
  c->Add(5);
  h->Record(1.0);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  // Same pointer after reset: names stay registered.
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
}

TEST(MetricsRegistryTest, ToJsonHasAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("reads")->Add(3);
  registry.GetGauge("pages")->Set(1.5);
  Histogram* h = registry.GetHistogram("latency_ms");
  h->Record(2.0);
  h->Record(8.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"reads\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"pages\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("buffer.hits")->Add(12);
  registry.GetGauge("buffer.cached_pages")->Set(4);
  registry.GetHistogram("query.knn.latency_ms")->Record(1.0);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE dsig_buffer_hits counter"), std::string::npos);
  EXPECT_NE(text.find("dsig_buffer_hits 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dsig_buffer_cached_pages gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dsig_query_knn_latency_ms summary"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("dsig_query_knn_latency_ms_count 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(BufferPoolMetricsTest, WiredToRegistry) {
  BufferPoolMetrics& m = GlobalBufferPoolMetrics();
  ASSERT_NE(m.hits, nullptr);
  EXPECT_EQ(m.hits, MetricsRegistry::Global().GetCounter("buffer.hits"));
  EXPECT_EQ(m.cached_pages,
            MetricsRegistry::Global().GetGauge("buffer.cached_pages"));
}

TEST(BufferPoolMetricsTest, PublishCopiesTotalsIntoRegistry) {
  BufferPoolTotals& totals = GlobalBufferPoolTotals();
  totals.hits.fetch_add(5, std::memory_order_relaxed);
  totals.misses.fetch_add(3, std::memory_order_relaxed);
  totals.evictions.fetch_add(2, std::memory_order_relaxed);
  PublishBufferPoolMetrics();
  const BufferPoolTotalsSnapshot snap = totals.Snapshot();
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("buffer.hits")->Value(), snap.hits);
  EXPECT_EQ(registry.GetCounter("buffer.misses")->Value(), snap.misses);
  EXPECT_EQ(registry.GetCounter("buffer.evictions")->Value(), snap.evictions);
  EXPECT_EQ(registry.GetCounter("buffer.failed_reads")->Value(),
            snap.failed_reads);
}

TEST(ThreadPoolMetricsTest, PublishCopiesPoolTotalsIntoRegistry) {
  ThreadPoolTotals& totals = GlobalThreadPoolTotals();
  totals.tasks_run.fetch_add(4, std::memory_order_relaxed);
  totals.parallel_fors.fetch_add(1, std::memory_order_relaxed);
  PublishThreadPoolMetrics();
  auto& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("pool.tasks_run")->Value(),
            totals.tasks_run.load(std::memory_order_relaxed));
  EXPECT_EQ(registry.GetCounter("pool.steals")->Value(),
            totals.steals.load(std::memory_order_relaxed));
  EXPECT_EQ(registry.GetCounter("pool.parallel_fors")->Value(),
            totals.parallel_fors.load(std::memory_order_relaxed));
  EXPECT_EQ(registry.GetCounter("pool.chunks_run")->Value(),
            totals.chunks_run.load(std::memory_order_relaxed));
}

}  // namespace
}  // namespace obs
}  // namespace dsig
