// The determinism contract of the parallel construction pipeline
// (signature_builder.h): chunk boundaries are a pure function of the input
// and merges are commutative, so the built index is BYTE-identical at every
// thread count — in memory (encoded rows, stats) and on disk (persisted
// files compare equal byte for byte).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "io/persistence.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

void ExpectIndexesBitIdentical(const SignatureIndex& a,
                               const SignatureIndex& b) {
  const SignatureSizeStats& sa = a.size_stats();
  const SignatureSizeStats& sb = b.size_stats();
  EXPECT_EQ(sa.raw_bits, sb.raw_bits);
  EXPECT_EQ(sa.encoded_bits, sb.encoded_bits);
  EXPECT_EQ(sa.compressed_bits, sb.compressed_bits);
  EXPECT_EQ(sa.entries, sb.entries);
  EXPECT_EQ(sa.compressed_entries, sb.compressed_entries);
  ASSERT_EQ(a.graph().num_nodes(), b.graph().num_nodes());
  for (NodeId n = 0; n < a.graph().num_nodes(); ++n) {
    const EncodedRow& ra = a.encoded_row(n);
    const EncodedRow& rb = b.encoded_row(n);
    ASSERT_EQ(ra.size_bits, rb.size_bits) << "node " << n;
    ASSERT_EQ(ra.bytes, rb.bytes) << "node " << n;
  }
}

TEST(ParallelBuildTest, ThreadCountsProduceBitIdenticalIndexes) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1500, .seed = 21});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 21);
  const auto build = [&](size_t threads) {
    return BuildSignatureIndex(g, objects,
                               {.t = 10,
                                .c = 2.718281828,
                                .keep_forest = false,
                                .num_threads = threads});
  };
  const auto serial = build(1);
  ExpectIndexesBitIdentical(*serial, *build(2));
  ExpectIndexesBitIdentical(*serial, *build(8));
  // 0 = the shared process-wide pool, whatever size the hardware gave it.
  ExpectIndexesBitIdentical(*serial, *build(0));
}

TEST(ParallelBuildTest, ClusteredDatasetAlsoBitIdentical) {
  // Clustered objects make Dijkstra costs very uneven across chunks, which
  // is exactly when work stealing reorders execution the most.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1200, .seed = 22});
  const std::vector<NodeId> objects = ClusteredDataset(g, 0.04, 6, 22);
  const auto build = [&](size_t threads) {
    return BuildSignatureIndex(
        g, objects, {.t = 5, .c = 2.0, .num_threads = threads});
  };
  ExpectIndexesBitIdentical(*build(1), *build(8));
}

TEST(ParallelBuildTest, PersistedFilesAreByteIdentical) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1000, .seed = 23});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 23);
  const std::string path1 = TempPath("parallel_build_t1.idx");
  const std::string path8 = TempPath("parallel_build_t8.idx");
  for (const auto& [threads, path] :
       {std::pair<size_t, std::string>{1, path1}, {8, path8}}) {
    const auto index = BuildSignatureIndex(g, objects,
                                           {.t = 10,
                                            .c = 2.718281828,
                                            .keep_forest = false,
                                            .num_threads = threads});
    ASSERT_TRUE(SaveSignatureIndex(*index, path).ok());
  }
  const std::string bytes1 = ReadFileBytes(path1);
  const std::string bytes8 = ReadFileBytes(path8);
  ASSERT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, bytes8);
  std::remove(path1.c_str());
  std::remove(path8.c_str());
}

TEST(ParallelBuildTest, ParallelBuildRoundTripsThroughPersistence) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 24});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 24);
  const auto built = BuildSignatureIndex(
      g, objects,
      {.t = 10, .c = 2.718281828, .keep_forest = false, .num_threads = 4});
  const std::string path = TempPath("parallel_build_roundtrip.idx");
  ASSERT_TRUE(SaveSignatureIndex(*built, path).ok());
  auto loaded = LoadSignatureIndex(g, path);
  ASSERT_TRUE(loaded.ok());
  ExpectIndexesBitIdentical(*built, **loaded);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dsig
