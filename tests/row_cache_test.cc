// RowCache behavior: LRU eviction order, the byte budget, the keep-one rule,
// the disabled (budget 0) bypass — plus the regression the cache exists for:
// a working set one row over the old wholesale-wipe threshold must degrade by
// exactly one eviction, not lose everything. The index-level tests at the
// bottom check that updates invalidate cached resolved rows.
#include "core/row_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::shared_ptr<const SignatureRow> MakeRow(size_t entries) {
  SignatureRow row(entries);
  return std::make_shared<const SignatureRow>(std::move(row));
}

// One shard makes LRU order across keys observable.
RowCache::Options SingleShard(size_t byte_budget) {
  return {.byte_budget = byte_budget, .num_shards = 1};
}

TEST(RowCacheTest, MissThenHit) {
  RowCache cache(SingleShard(1 << 20));
  EXPECT_EQ(cache.Get(7), nullptr);
  auto row = MakeRow(4);
  cache.Put(7, row);
  const auto got = cache.Get(7);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got.get(), row.get());
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(RowCacheTest, EvictsColdestFirst) {
  // Budget fits exactly 3 of these rows; inserting a 4th evicts the LRU one.
  const size_t row_bytes = 4 * sizeof(SignatureEntry) + 96;
  RowCache cache(SingleShard(3 * row_bytes));
  cache.Put(1, MakeRow(4));
  cache.Put(2, MakeRow(4));
  cache.Put(3, MakeRow(4));
  EXPECT_EQ(cache.entries(), 3u);
  // Touch 1 so 2 becomes the coldest.
  EXPECT_NE(cache.Get(1), nullptr);
  cache.Put(4, MakeRow(4));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.Get(2), nullptr);  // evicted
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_NE(cache.Get(4), nullptr);
}

TEST(RowCacheTest, WorkingSetOneOverBudgetLosesExactlyOneRow) {
  // Regression: the pre-cache memo wiped EVERYTHING when full, so a working
  // set one row over the cap got a 0% hit rate. Now exactly one row goes.
  const size_t row_bytes = 8 * sizeof(SignatureEntry) + 96;
  const size_t w = 16;
  RowCache cache(SingleShard(w * row_bytes));
  for (NodeId n = 0; n < w; ++n) cache.Put(n, MakeRow(8));
  EXPECT_EQ(cache.entries(), w);
  // Touch the whole set (0 is now coldest again after the sweep).
  for (NodeId n = 0; n < w; ++n) EXPECT_NE(cache.Get(n), nullptr);
  cache.Put(w, MakeRow(8));  // one over budget
  EXPECT_EQ(cache.entries(), w);  // exactly one eviction...
  EXPECT_EQ(cache.Get(0), nullptr);  // ...of the coldest row
  for (NodeId n = 1; n <= w; ++n) {
    EXPECT_NE(cache.Get(n), nullptr) << "node " << n;
  }
}

TEST(RowCacheTest, StaysWithinByteBudget) {
  const size_t budget = 4096;
  RowCache cache(SingleShard(budget));
  for (NodeId n = 0; n < 200; ++n) cache.Put(n, MakeRow(16));
  EXPECT_LE(cache.bytes(), budget);
  EXPECT_GT(cache.entries(), 0u);
}

TEST(RowCacheTest, KeepsMostRecentRowEvenWhenOversized) {
  RowCache cache(SingleShard(64));  // smaller than any row
  cache.Put(1, MakeRow(1000));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_NE(cache.Get(1), nullptr);
  cache.Put(2, MakeRow(1000));  // replaces 1 as the single survivor
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
}

TEST(RowCacheTest, ReplacingAKeyUpdatesBytes) {
  RowCache cache(SingleShard(1 << 20));
  cache.Put(5, MakeRow(10));
  const size_t small = cache.bytes();
  cache.Put(5, MakeRow(100));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), small);
  cache.Put(5, MakeRow(10));
  EXPECT_EQ(cache.bytes(), small);
}

TEST(RowCacheTest, EraseAndClear) {
  RowCache cache(SingleShard(1 << 20));
  cache.Put(1, MakeRow(4));
  cache.Put(2, MakeRow(4));
  cache.Erase(1);
  cache.Erase(99);  // absent: no-op
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(2), nullptr);
  EXPECT_EQ(cache.entries(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(RowCacheTest, ZeroBudgetDisablesCaching) {
  RowCache cache(SingleShard(0));
  cache.Put(1, MakeRow(4));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(RowCacheTest, ShardsPartitionTheBudget) {
  const size_t row_bytes = 4 * sizeof(SignatureEntry) + 96;
  RowCache cache({.byte_budget = 4 * row_bytes, .num_shards = 4});
  // All keys land in shard 0 (multiples of 4): only that shard's quarter of
  // the budget is available, so one row fits (plus the keep-one rule).
  cache.Put(0, MakeRow(4));
  cache.Put(4, MakeRow(4));
  cache.Put(8, MakeRow(4));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_NE(cache.Get(8), nullptr);
}

// --- Index integration: updates invalidate cached resolved rows ------------

TEST(RowCacheIndexTest, EdgeUpdateInvalidatesCachedRows) {
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 11});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 11);
  auto index = BuildSignatureIndex(
      g, objects, {.t = 10, .c = 2.7, .keep_forest = true});
  ASSERT_GT(index->size_stats().compressed_entries, 0u)
      << "test needs compressed entries for the cache to be on the read path";

  // Warm the resolved-row cache by reading every (node, object) entry.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      ExactDistance(*index, n, o);
    }
  }
  ASSERT_GT(index->row_cache().entries(), 0u)
      << "warmup never populated the cache";

  // Mutate the graph through the updater; the rewritten rows must not be
  // served from stale cached copies.
  SignatureUpdater updater(&g, index.get());
  ASSERT_FALSE(g.adjacency(objects[0]).empty());
  const EdgeId edge = g.adjacency(objects[0])[0].edge_id;
  ASSERT_NE(edge, kInvalidEdge);
  updater.SetEdgeWeight(edge, 1);

  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      ASSERT_EQ(ExactDistance(*index, n, o), truth[o][n])
          << "stale distance at node " << n << " object " << o;
    }
  }
}

TEST(RowCacheIndexTest, ConfigureRowCacheZeroBudgetStillAnswersCorrectly) {
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 12});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, 12);
  auto index = BuildSignatureIndex(g, objects, {.t = 10, .c = 2.7});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  index->ConfigureRowCache({.byte_budget = 0});
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      ASSERT_EQ(ExactDistance(*index, n, o), truth[o][n]);
    }
  }
  EXPECT_EQ(index->row_cache().entries(), 0u);
}

}  // namespace
}  // namespace dsig
