#include "util/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace dsig {
namespace {

TEST(RandomTest, DeterministicForFixedSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, BoundedValuesStayInRange) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextIntCoversWholeRange) {
  Random rng(4);
  std::vector<bool> seen(11, false);
  for (int i = 0; i < 1000; ++i) {
    seen[static_cast<size_t>(rng.NextInt(0, 10))] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RandomTest, UniformityOfBoundedDraws) {
  Random rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextUint64(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RandomTest, BernoulliRatio) {
  Random rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 3000, 300);
}

}  // namespace
}  // namespace dsig
