#include "graph/spanning_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

// Checks every forest entry against fresh Dijkstra runs.
void ExpectForestMatchesDijkstra(const RoadNetwork& g,
                                 const SpanningForest& forest) {
  for (uint32_t o = 0; o < forest.num_objects(); ++o) {
    const ShortestPathTree tree = RunDijkstra(g, forest.objects()[o]);
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      EXPECT_EQ(forest.dist(o, n), tree.dist[n])
          << "object " << o << " node " << n;
      // The parent need not be identical (equal-length paths), but it must
      // be distance-consistent: dist(parent) + w(parent_edge) == dist(n).
      if (forest.parent(o, n) != kInvalidNode) {
        const EdgeId e = forest.parent_edge(o, n);
        ASSERT_NE(e, kInvalidEdge);
        EXPECT_FALSE(g.edge_removed(e));
        EXPECT_EQ(forest.dist(o, forest.parent(o, n)) + g.edge_weight(e),
                  forest.dist(o, n))
            << "object " << o << " node " << n;
      } else {
        EXPECT_TRUE(forest.objects()[o] == n ||
                    tree.dist[n] == kInfiniteWeight);
      }
    }
  }
}

TEST(SpanningForestTest, BuildMatchesDijkstra) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  SpanningForest forest(&g, {1, 5});
  forest.Build();
  ExpectForestMatchesDijkstra(g, forest);
}

TEST(SpanningForestTest, ReverseIndexCoversTreeEdges) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  SpanningForest forest(&g, {0});
  forest.Build();
  // Every non-root node's parent edge must list object 0.
  for (NodeId n = 1; n < g.num_nodes(); ++n) {
    const EdgeId e = forest.parent_edge(0, n);
    ASSERT_NE(e, kInvalidEdge);
    const std::vector<uint32_t> users = forest.ObjectsUsingEdge(e);
    EXPECT_TRUE(std::find(users.begin(), users.end(), 0u) != users.end());
  }
}

TEST(SpanningForestTest, WeightDecreasePropagates) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  SpanningForest forest(&g, {0});
  forest.Build();
  EXPECT_EQ(forest.dist(0, 5), 12);
  // Shorten edge 4-5 from 8 to 1: d(0,5) becomes 0-3-4-5 = 5.
  const EdgeId e = g.FindEdge(4, 5);
  g.SetEdgeWeight(e, 1);
  const std::vector<TreeChange> changes = forest.OnEdgeAddedOrDecreased(e);
  EXPECT_FALSE(changes.empty());
  EXPECT_EQ(forest.dist(0, 5), 5);
  ExpectForestMatchesDijkstra(g, forest);
}

TEST(SpanningForestTest, EdgeAdditionPropagates) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  SpanningForest forest(&g, {0, 6});
  forest.Build();
  EXPECT_EQ(forest.dist(0, 6), 11);
  // New shortcut 0-6 of weight 2.
  const EdgeId e = g.AddEdge(0, 6, 2);
  forest.OnEdgeAddedOrDecreased(e);
  EXPECT_EQ(forest.dist(0, 6), 2);
  ExpectForestMatchesDijkstra(g, forest);
}

TEST(SpanningForestTest, WeightIncreaseRepairsSubtree) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  SpanningForest forest(&g, {0});
  forest.Build();
  // 0-3 carries nodes 3, 4, 6 (and possibly 5). Increase it drastically.
  const EdgeId e = g.FindEdge(0, 3);
  g.SetEdgeWeight(e, 50);
  const std::vector<TreeChange> changes =
      forest.OnEdgeIncreasedOrRemoved(e);
  EXPECT_FALSE(changes.empty());
  EXPECT_EQ(forest.dist(0, 3), 10);  // now 0-1-4-3
  EXPECT_EQ(forest.dist(0, 4), 9);   // 0-1-4
  ExpectForestMatchesDijkstra(g, forest);
}

TEST(SpanningForestTest, EdgeRemovalRepairsSubtree) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  SpanningForest forest(&g, {2});
  forest.Build();
  const EdgeId e = g.FindEdge(2, 5);
  g.RemoveEdge(e);
  forest.OnEdgeIncreasedOrRemoved(e);
  ExpectForestMatchesDijkstra(g, forest);
  EXPECT_EQ(forest.dist(0, 5), 6 + 5 + 8);  // object index 0 (node 2): 2-1-4-5
}

TEST(SpanningForestTest, IncreaseOfUnusedEdgeChangesNothing) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  SpanningForest forest(&g, {0});
  forest.Build();
  // Find an edge no tree uses: 4-5 is not on any shortest path from 0
  // (d(0,5) = 12 via 0-1-2-5 = 12, tie with 0-3-4-5 = 12 — depends on the
  // tie; use 1-4 instead if used). Pick an edge with empty reverse index.
  EdgeId unused = kInvalidEdge;
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    if (forest.ObjectsUsingEdge(e).empty()) {
      unused = e;
      break;
    }
  }
  ASSERT_NE(unused, kInvalidEdge);
  g.SetEdgeWeight(unused, g.edge_weight(unused) + 5);
  EXPECT_TRUE(forest.OnEdgeIncreasedOrRemoved(unused).empty());
  ExpectForestMatchesDijkstra(g, forest);
}

// Property: a random sequence of updates leaves the forest identical to a
// freshly built one.
class SpanningForestUpdateTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpanningForestUpdateTest, RandomUpdateSequenceMatchesRebuild) {
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.03, GetParam());
  SpanningForest forest(&g, objects);
  forest.Build();

  Random rng(GetParam() * 31 + 1);
  for (int step = 0; step < 40; ++step) {
    const int action = static_cast<int>(rng.NextUint64(3));
    if (action == 0) {
      // Random new edge.
      const NodeId u = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.NextUint64(g.num_nodes()));
      if (v == u) v = (v + 1) % static_cast<NodeId>(g.num_nodes());
      const EdgeId e = g.AddEdge(u, v, rng.NextInt(1, 10));
      forest.OnEdgeAddedOrDecreased(e);
    } else {
      const EdgeId e =
          static_cast<EdgeId>(rng.NextUint64(g.num_edge_slots()));
      if (g.edge_removed(e)) continue;
      const Weight old_w = g.edge_weight(e);
      const Weight new_w = rng.NextInt(1, 10);
      if (new_w == old_w) continue;
      g.SetEdgeWeight(e, new_w);
      if (new_w < old_w) {
        forest.OnEdgeAddedOrDecreased(e);
      } else {
        forest.OnEdgeIncreasedOrRemoved(e);
      }
    }
  }
  ExpectForestMatchesDijkstra(g, forest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanningForestUpdateTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace dsig
