// Strict Prometheus text-exposition-format conformance check for
// MetricsRegistry::ToPrometheusText(). A scraper is an unforgiving parser:
// a family without HELP/TYPE, a non-monotone histogram bucket, or an
// unescaped label value silently corrupts dashboards. This test implements
// the relevant subset of the format spec as a checker and runs a registry
// with every metric kind through it.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"

namespace dsig {
namespace obs {
namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto first_ok = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!first_ok(name[0])) return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      return false;
    }
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty() || name.rfind("__", 0) == 0) return false;
  auto first_ok = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!first_ok(name[0])) return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

struct Sample {
  std::string name;    // full sample name (may carry _bucket/_sum/_count)
  std::string labels;  // raw text between { }, empty when absent
  double value = 0;
  std::map<std::string, std::string> label_map;  // unescaped values
};

struct Family {
  std::string type;  // counter | gauge | histogram | ...
  bool has_help = false;
  std::vector<Sample> samples;
};

// Parses and validates one exposition-format payload; collects per-family
// samples. Uses ADD_FAILURE (not assertions) so every violation in the
// payload is reported at once.
class ExpositionChecker {
 public:
  std::map<std::string, Family> families;

  void Check(const std::string& text) {
    ASSERT_FALSE(text.empty());
    ASSERT_EQ(text.back(), '\n') << "payload must end in a newline";
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (line.empty()) continue;
      if (line.rfind("# HELP ", 0) == 0) {
        HandleHelp(line, line_no);
      } else if (line.rfind("# TYPE ", 0) == 0) {
        HandleType(line, line_no);
      } else if (line[0] == '#') {
        // Other comments are legal and ignored.
      } else {
        HandleSample(line, line_no);
      }
    }
    PostChecks();
  }

 private:
  // The family a sample belongs to: strip the histogram suffixes.
  std::string FamilyOf(const std::string& sample_name) const {
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::string(suffix).size();
      if (sample_name.size() > len &&
          sample_name.compare(sample_name.size() - len, len, suffix) == 0) {
        const std::string base = sample_name.substr(0, sample_name.size() - len);
        if (families.count(base) != 0 &&
            families.at(base).type == "histogram") {
          return base;
        }
      }
    }
    return sample_name;
  }

  void HandleHelp(const std::string& line, int line_no) {
    std::istringstream fields(line.substr(7));
    std::string name;
    fields >> name;
    EXPECT_TRUE(ValidMetricName(name)) << "line " << line_no << ": " << line;
    Family& family = families[name];
    EXPECT_FALSE(family.has_help)
        << "line " << line_no << ": duplicate HELP for " << name;
    EXPECT_TRUE(family.samples.empty())
        << "line " << line_no << ": HELP after samples of " << name;
    family.has_help = true;
    // HELP text must not contain a raw newline (getline guarantees) nor an
    // unescaped backslash.
    const std::string text = line.substr(7 + name.size());
    for (size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\\') {
        EXPECT_TRUE(i + 1 < text.size() &&
                    (text[i + 1] == '\\' || text[i + 1] == 'n'))
            << "line " << line_no << ": bad escape in HELP";
        ++i;
      }
    }
  }

  void HandleType(const std::string& line, int line_no) {
    std::istringstream fields(line.substr(7));
    std::string name, type;
    fields >> name >> type;
    EXPECT_TRUE(ValidMetricName(name)) << "line " << line_no << ": " << line;
    EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram" ||
                type == "summary" || type == "untyped")
        << "line " << line_no << ": unknown TYPE " << type;
    Family& family = families[name];
    EXPECT_TRUE(family.type.empty())
        << "line " << line_no << ": duplicate TYPE for " << name;
    EXPECT_TRUE(family.samples.empty())
        << "line " << line_no << ": TYPE after samples of " << name;
    family.type = type;
  }

  void HandleSample(const std::string& line, int line_no) {
    Sample sample;
    size_t value_start;
    const size_t brace = line.find('{');
    if (brace != std::string::npos) {
      sample.name = line.substr(0, brace);
      const size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << "line " << line_no;
      sample.labels = line.substr(brace + 1, close - brace - 1);
      ParseLabels(sample.labels, line_no, &sample.label_map);
      value_start = close + 1;
    } else {
      const size_t space = line.find(' ');
      ASSERT_NE(space, std::string::npos) << "line " << line_no;
      sample.name = line.substr(0, space);
      value_start = space;
    }
    EXPECT_TRUE(ValidMetricName(sample.name))
        << "line " << line_no << ": " << sample.name;

    const std::string value_text = line.substr(value_start);
    char* end = nullptr;
    sample.value = std::strtod(value_text.c_str(), &end);
    EXPECT_NE(end, value_text.c_str())
        << "line " << line_no << ": unparseable value " << value_text;

    const std::string family_name = FamilyOf(sample.name);
    Family& family = families[family_name];
    EXPECT_TRUE(family.has_help && !family.type.empty())
        << "line " << line_no << ": sample " << sample.name
        << " before HELP/TYPE of " << family_name;
    family.samples.push_back(std::move(sample));
  }

  // label_name="escaped value" pairs, comma-separated. Validates escaping:
  // inside the quotes only \\, \", and \n escapes are legal, and raw quote
  // or backslash characters must not appear.
  void ParseLabels(const std::string& labels, int line_no,
                   std::map<std::string, std::string>* out) {
    size_t pos = 0;
    while (pos < labels.size()) {
      const size_t eq = labels.find('=', pos);
      ASSERT_NE(eq, std::string::npos) << "line " << line_no;
      const std::string name = labels.substr(pos, eq - pos);
      EXPECT_TRUE(ValidLabelName(name))
          << "line " << line_no << ": label " << name;
      ASSERT_LT(eq + 1, labels.size()) << "line " << line_no;
      ASSERT_EQ(labels[eq + 1], '"') << "line " << line_no;
      std::string value;
      size_t i = eq + 2;
      bool closed = false;
      for (; i < labels.size(); ++i) {
        const char c = labels[i];
        if (c == '\\') {
          ASSERT_LT(i + 1, labels.size()) << "line " << line_no;
          const char esc = labels[i + 1];
          EXPECT_TRUE(esc == '\\' || esc == '"' || esc == 'n')
              << "line " << line_no << ": bad escape \\" << esc;
          value += esc == 'n' ? '\n' : esc;
          ++i;
        } else if (c == '"') {
          closed = true;
          break;
        } else {
          value += c;
        }
      }
      ASSERT_TRUE(closed) << "line " << line_no << ": unterminated label";
      EXPECT_TRUE((*out).emplace(name, value).second)
          << "line " << line_no << ": duplicate label " << name;
      pos = i + 1;
      if (pos < labels.size()) {
        ASSERT_EQ(labels[pos], ',') << "line " << line_no;
        ++pos;
      }
    }
  }

  void PostChecks() {
    for (const auto& [name, family] : families) {
      EXPECT_TRUE(family.has_help) << name << " has no HELP";
      EXPECT_FALSE(family.type.empty()) << name << " has no TYPE";
      if (family.type == "histogram") CheckHistogram(name, family);
    }
  }

  // Histogram families: le buckets strictly increasing in le, counts
  // monotone nondecreasing, +Inf present and equal to _count.
  void CheckHistogram(const std::string& name, const Family& family) {
    double prev_le = -1e300;
    uint64_t prev_count = 0;
    bool saw_inf = false;
    double inf_value = -1, sum_value = -1, count_value = -1;
    for (const Sample& s : family.samples) {
      if (s.name == name + "_bucket") {
        const auto le = s.label_map.find("le");
        ASSERT_NE(le, s.label_map.end()) << name << ": bucket without le";
        double le_value;
        if (le->second == "+Inf") {
          le_value = 1e308;
          saw_inf = true;
          inf_value = s.value;
        } else {
          char* end = nullptr;
          le_value = std::strtod(le->second.c_str(), &end);
          EXPECT_NE(end, le->second.c_str())
              << name << ": unparseable le " << le->second;
        }
        EXPECT_GT(le_value, prev_le) << name << ": le not increasing";
        prev_le = le_value;
        const uint64_t count = static_cast<uint64_t>(s.value);
        EXPECT_GE(count, prev_count) << name << ": bucket counts decreased";
        prev_count = count;
      } else if (s.name == name + "_sum") {
        sum_value = s.value;
      } else if (s.name == name + "_count") {
        count_value = s.value;
      }
    }
    EXPECT_TRUE(saw_inf) << name << ": no +Inf bucket";
    EXPECT_GE(sum_value, 0) << name << ": no _sum";
    EXPECT_GE(count_value, 0) << name << ": no _count";
    EXPECT_DOUBLE_EQ(inf_value, count_value)
        << name << ": +Inf bucket != _count";
  }
};

TEST(PrometheusConformanceTest, FullRegistryExportConforms) {
  MetricsRegistry registry;
  registry.GetCounter("serve.requests")->Add(123);
  registry.GetCounter("buffer.hits")->Add(7);
  registry.GetGauge("epoch.current")->Set(41.5);
  registry.GetGauge("slo.knn.burn_fast")->Set(0.25);
  Histogram* latency = registry.GetHistogram("query.knn.latency_ms");
  // Spread across octaves, including underflow and the far tail.
  for (const double v : {0.0, 1e-7, 0.004, 0.25, 1.0, 3.0, 17.0, 250.0,
                         8000.0, 1e12}) {
    latency->Record(v);
  }
  WindowedHistogram* window = registry.GetWindowedHistogram("serve.latency_ms");
  for (int i = 0; i < 50; ++i) window->Record(2.0 + i * 0.1);

  ExpositionChecker checker;
  checker.Check(registry.ToPrometheusText());

  // The families we registered all made it out, with the right types.
  EXPECT_EQ(checker.families.at("dsig_serve_requests").type, "counter");
  EXPECT_EQ(checker.families.at("dsig_epoch_current").type, "gauge");
  EXPECT_EQ(checker.families.at("dsig_query_knn_latency_ms").type,
            "histogram");
  EXPECT_EQ(checker.families.at("dsig_serve_latency_ms_window").type, "gauge");
  EXPECT_EQ(checker.families.at("dsig_serve_latency_ms_window_count").type,
            "gauge");

  // Counter value survives the round trip.
  const Family& requests = checker.families.at("dsig_serve_requests");
  ASSERT_EQ(requests.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(requests.samples[0].value, 123.0);

  // The windowed family carries the three windows x three stats.
  const Family& windowed = checker.families.at("dsig_serve_latency_ms_window");
  EXPECT_EQ(windowed.samples.size(), 9u);
  for (const Sample& s : windowed.samples) {
    EXPECT_EQ(s.label_map.count("window"), 1u);
    EXPECT_EQ(s.label_map.count("stat"), 1u);
  }
}

TEST(PrometheusConformanceTest, EmptyHistogramStillConforms) {
  MetricsRegistry registry;
  registry.GetHistogram("query.range.latency_ms");
  ExpositionChecker checker;
  checker.Check(registry.ToPrometheusText());
  const Family& family = checker.families.at("dsig_query_range_latency_ms");
  EXPECT_EQ(family.type, "histogram");
  // _count and the +Inf bucket agree on zero (CheckHistogram enforced it).
}

TEST(PrometheusConformanceTest, LabelEscapingRoundTrips) {
  // The escaping helpers are exercised through the checker's unescape: a
  // value with backslash, quote, and newline must survive one round trip.
  // (Label values in the current exporter are fixed window/stat strings;
  // this pins the escaping contract the exporter promises for future
  // label sources.)
  const std::string hostile = "a\\b\"c\nd";
  std::string escaped;
  for (const char c : hostile) {
    switch (c) {
      case '\\': escaped += "\\\\"; break;
      case '"': escaped += "\\\""; break;
      case '\n': escaped += "\\n"; break;
      default: escaped += c;
    }
  }
  const std::string line =
      "dsig_test_metric{path=\"" + escaped + "\"} 1\n";
  const std::string payload =
      "# HELP dsig_test_metric test\n# TYPE dsig_test_metric gauge\n" + line;
  ExpositionChecker checker;
  checker.Check(payload);
  const Family& family = checker.families.at("dsig_test_metric");
  ASSERT_EQ(family.samples.size(), 1u);
  EXPECT_EQ(family.samples[0].label_map.at("path"), hostile);
}

}  // namespace
}  // namespace obs
}  // namespace dsig
