#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/aggregate_query.h"
#include "query/knn_query.h"
#include "workload/dataset_generator.h"
#include "workload/query_generator.h"

namespace dsig {
namespace obs {
namespace {

// Redirects trace output to a tmpfile for the test's lifetime and restores
// the defaults (tracing off, stderr sink) afterwards.
class TraceCapture {
 public:
  TraceCapture() : file_(std::tmpfile()) {
    SetTraceSink(file_);
    SetTracingEnabled(true);
  }
  ~TraceCapture() {
    SetTracingEnabled(false);
    SetTraceSink(stderr);
    std::fclose(file_);
  }

  std::string Contents() {
    std::fflush(file_);
    std::fseek(file_, 0, SEEK_END);
    const long size = std::ftell(file_);
    std::string out(static_cast<size_t>(size), '\0');
    std::rewind(file_);
    const size_t got = std::fread(out.data(), 1, out.size(), file_);
    out.resize(got);
    return out;
  }

  std::vector<std::string> Lines() {
    std::vector<std::string> lines;
    std::string buf;
    for (const char c : Contents()) {
      if (c == '\n') {
        lines.push_back(buf);
        buf.clear();
      } else {
        buf += c;
      }
    }
    return lines;
  }

 private:
  std::FILE* file_;
};

// Pulls the number following `"key": ` out of a JSON trace line.
double ExtractNumber(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing " << key << " in " << line;
  if (pos == std::string::npos) return -1;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

struct SmallWorld {
  RoadNetwork graph;
  std::unique_ptr<SignatureIndex> index;
  std::vector<NodeId> queries;
};

SmallWorld MakeSmallWorld() {
  SmallWorld world;
  world.graph = MakeRandomPlanar({.num_nodes = 400, .seed = 7});
  const std::vector<NodeId> objects = UniformDataset(world.graph, 0.05, 7);
  world.index = BuildSignatureIndex(world.graph, objects, {.t = 5, .c = 2});
  world.queries = RandomQueryNodes(world.graph, 3, 8);
  return world;
}

TEST(TraceTest, DisabledEmitsNothingButRecordsLatency) {
  const SmallWorld world = MakeSmallWorld();
  Histogram* latency =
      MetricsRegistry::Global().GetHistogram("query.knn.latency_ms");
  const uint64_t before = latency->Count();

  std::FILE* sink = std::tmpfile();
  SetTraceSink(sink);
  SetTracingEnabled(false);
  SignatureKnnQuery(*world.index, world.queries[0], 3, KnnResultType::kType1);
  SetTraceSink(stderr);

  std::fseek(sink, 0, SEEK_END);
  EXPECT_EQ(std::ftell(sink), 0) << "trace output while disabled";
  std::fclose(sink);
  EXPECT_EQ(latency->Count(), before + 1)
      << "latency histogram must record even when tracing is off";
}

TEST(TraceTest, EnabledEmitsOneLinePerQueryWithShape) {
  const SmallWorld world = MakeSmallWorld();
  TraceCapture capture;
  for (const NodeId q : world.queries) {
    SignatureKnnQuery(*world.index, q, 3, KnnResultType::kType1);
  }
  const std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), world.queries.size());
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"query\": \"knn\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"total_ms\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"phases_ms\""), std::string::npos) << line;
    for (int p = 0; p < kNumPhases; ++p) {
      EXPECT_NE(line.find(std::string("\"") +
                          PhaseName(static_cast<Phase>(p)) + "\""),
                std::string::npos)
          << line;
    }
    EXPECT_NE(line.find("\"ops\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"buffer\""), std::string::npos) << line;
    // Each kNN query reads exactly one signature row.
    EXPECT_GE(ExtractNumber(line, "row_reads"), 1.0) << line;
  }
}

TEST(TraceTest, PhasesSumToTotal) {
  const SmallWorld world = MakeSmallWorld();
  TraceCapture capture;
  for (const NodeId q : world.queries) {
    SignatureKnnQuery(*world.index, q, 5, KnnResultType::kType1);
  }
  for (const std::string& line : capture.Lines()) {
    const double total = ExtractNumber(line, "total_ms");
    double sum = 0;
    for (int p = 0; p < kNumPhases; ++p) {
      sum += ExtractNumber(line, PhaseName(static_cast<Phase>(p)));
    }
    // Self-time attribution partitions the query's wall time exactly; only
    // print rounding separates the sum from the total.
    EXPECT_NEAR(sum, total, total * 0.01 + 1e-4) << line;
    EXPECT_GT(total, 0.0) << line;
  }
}

TEST(TraceTest, NestedCompositeQueryEmitsOneLine) {
  const SmallWorld world = MakeSmallWorld();
  Histogram* range_latency =
      MetricsRegistry::Global().GetHistogram("query.range.latency_ms");
  const uint64_t range_before = range_latency->Count();

  TraceCapture capture;
  // A count query runs a range query internally; only the outer query may
  // emit a trace line.
  SignatureCountQuery(*world.index, world.queries[0], 30.0);
  const std::vector<std::string> lines = capture.Lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"query\": \"count\""), std::string::npos)
      << lines[0];
  // The inner range query still feeds its own latency histogram.
  EXPECT_EQ(range_latency->Count(), range_before + 1);
}

TEST(TraceTest, CollectRootHarvestsPhasesWithoutEmitting) {
  const SmallWorld world = MakeSmallWorld();
  // Tracing stays OFF: collect mode must root the thread regardless.
  SetTracingEnabled(false);
  std::FILE* sink = std::tmpfile();
  SetTraceSink(sink);

  QueryTrace trace(nullptr, QueryTrace::Mode::kCollectRoot);
  SignatureKnnQuery(*world.index, world.queries[0], 3, KnnResultType::kType1);
  const TraceSummary summary = trace.Finish();

  SetTraceSink(stderr);
  EXPECT_TRUE(summary.collected);
  EXPECT_TRUE(summary.has_phases);
  EXPECT_GT(summary.total_ms, 0.0);
  // Self-time attribution partitions wall time: phases (incl. kOther) sum
  // to the total, and the query's spans landed somewhere other than kOther.
  double sum = 0;
  for (int p = 0; p < kNumPhases; ++p) sum += summary.phases_ms[p];
  EXPECT_NEAR(sum, summary.total_ms, summary.total_ms * 0.01 + 1e-4);
  double span_ms = 0;
  for (int p = 0; p < kNumPhases - 1; ++p) span_ms += summary.phases_ms[p];
  EXPECT_GT(span_ms, 0.0);
  EXPECT_GE(summary.ops.row_reads, 1u);

  std::fseek(sink, 0, SEEK_END);
  EXPECT_EQ(std::ftell(sink), 0) << "collect-mode trace emitted a line";
  std::fclose(sink);
}

TEST(TraceTest, CollectRootStillFeedsInnerLatencyHistograms) {
  const SmallWorld world = MakeSmallWorld();
  Histogram* latency =
      MetricsRegistry::Global().GetHistogram("query.knn.latency_ms");
  const uint64_t before = latency->Count();

  QueryTrace trace(nullptr, QueryTrace::Mode::kCollectRoot);
  SignatureKnnQuery(*world.index, world.queries[0], 3, KnnResultType::kType1);
  const TraceSummary summary = trace.Finish();

  EXPECT_TRUE(summary.collected);
  EXPECT_EQ(latency->Count(), before + 1);
}

TEST(TraceTest, CollectLightSkipsSpansButKeepsDeltas) {
  const SmallWorld world = MakeSmallWorld();
  QueryTrace trace(nullptr, QueryTrace::Mode::kCollectLight);
  // Spans must stay on their disabled fast path: no root is installed.
  EXPECT_EQ(ActiveTrace(), nullptr);
  SignatureKnnQuery(*world.index, world.queries[0], 3, KnnResultType::kType1);
  const TraceSummary summary = trace.Finish();

  EXPECT_TRUE(summary.collected);
  EXPECT_FALSE(summary.has_phases);
  EXPECT_GT(summary.total_ms, 0.0);
  // Everything is unattributed, but the partition invariant still holds.
  EXPECT_DOUBLE_EQ(summary.phases_ms[static_cast<int>(Phase::kOther)],
                   summary.total_ms);
  for (int p = 0; p < kNumPhases - 1; ++p) {
    EXPECT_DOUBLE_EQ(summary.phases_ms[p], 0.0);
  }
  EXPECT_GE(summary.ops.row_reads, 1u);
}

TEST(TraceTest, NestedCollectRootYieldsUncollectedSummary) {
  const SmallWorld world = MakeSmallWorld();
  QueryTrace outer(nullptr, QueryTrace::Mode::kCollectRoot);
  {
    // The thread already has a root: the inner trace must stand down and
    // say so, rather than stealing the outer trace's spans.
    QueryTrace inner(nullptr, QueryTrace::Mode::kCollectRoot);
    SignatureKnnQuery(*world.index, world.queries[0], 3,
                      KnnResultType::kType1);
    const TraceSummary inner_summary = inner.Finish();
    EXPECT_FALSE(inner_summary.collected);
  }
  const TraceSummary outer_summary = outer.Finish();
  EXPECT_TRUE(outer_summary.collected);
  EXPECT_GE(outer_summary.ops.row_reads, 1u);
}

}  // namespace
}  // namespace obs
}  // namespace dsig
