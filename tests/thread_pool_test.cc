// ThreadPool contract tests: loops cover every index exactly once, the
// caller participates (so nested loops cannot deadlock), exceptions cancel
// and propagate without wedging the pool, and chunk geometry is the pure
// function of (n, min_grain, num_threads) the determinism contract promises.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace dsig {
namespace {

TEST(ThreadPoolTest, RunExecutesAllTasksBeforeWaitReturns) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Run([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not block
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  pool.ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsANoop) {
  ThreadPool pool(3);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.ParallelForChunks(0, 8, [&](size_t, size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSingleItemRuns) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPoolTest, ChunksAreDisjointOrderedAndRespectGrain) {
  ThreadPool pool(4);
  const size_t n = 103;
  const size_t grain = 10;
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelForChunks(n, grain, [&](size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, n);
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].second, chunks[i + 1].first);  // no gaps, no overlap
  }
  // No more chunks than the grain allows.
  EXPECT_LE(chunks.size(), (n + grain - 1) / grain);
}

TEST(ThreadPoolTest, ChunkBoundariesAreIdenticalAcrossRuns) {
  // The determinism contract: same (n, grain, threads) => same chunks.
  const auto chunk_set = [](ThreadPool& pool, size_t n, size_t grain) {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    pool.ParallelForChunks(n, grain, [&](size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  ThreadPool pool(4);
  EXPECT_EQ(chunk_set(pool, 777, 16), chunk_set(pool, 777, 16));
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must survive: a fresh loop still completes fully.
  std::atomic<int> done{0};
  pool.ParallelFor(64, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ExceptionCancelsUnclaimedChunks) {
  ThreadPool pool(2);
  std::atomic<int> chunks_run{0};
  try {
    pool.ParallelForChunks(1000, 1, [&](size_t, size_t) {
      chunks_run.fetch_add(1);
      throw std::runtime_error("first chunk dies");
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  // Cancellation is best-effort (chunks already claimed still finish), but
  // nowhere near all 1000 single-item chunks may run after the first throw.
  EXPECT_LT(chunks_run.load(), 1000);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // An inner loop issued from inside an outer loop body must make progress
  // even when every worker is occupied by the outer loop (the caller of the
  // inner loop drives chunks itself).
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsEverything) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  pool.ParallelFor(100, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 100);
  pool.Run([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 101);
}

TEST(ThreadPoolTest, TotalsAccumulate) {
  auto& totals = GlobalThreadPoolTotals();
  const uint64_t tasks0 = totals.tasks_run.load();
  const uint64_t fors0 = totals.parallel_fors.load();
  const uint64_t chunks0 = totals.chunks_run.load();
  ThreadPool pool(2);
  pool.Run([] {});
  pool.Wait();
  pool.ParallelFor(32, [](size_t) {});
  EXPECT_GT(totals.tasks_run.load(), tasks0);
  EXPECT_GT(totals.parallel_fors.load(), fors0);
  EXPECT_GT(totals.chunks_run.load(), chunks0);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> done{0};
  ThreadPool::Global().ParallelFor(10, [&](size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 10);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

}  // namespace
}  // namespace dsig
