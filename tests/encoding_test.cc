#include "core/encoding.h"

#include <gtest/gtest.h>

namespace dsig {
namespace {

TEST(EncodingTest, KindNames) {
  EXPECT_STREQ(CategoryCodeKindName(CategoryCodeKind::kFixed), "fixed");
  EXPECT_STREQ(CategoryCodeKindName(CategoryCodeKind::kReverseZeroPadding),
               "reverse-zero-padding");
  EXPECT_STREQ(CategoryCodeKindName(CategoryCodeKind::kHuffman), "huffman");
}

TEST(EncodingTest, BuildFixed) {
  const HuffmanCode code =
      BuildCategoryCode(CategoryCodeKind::kFixed, 6, {});
  for (int s = 0; s < 6; ++s) EXPECT_EQ(code.length(s), 3);
}

TEST(EncodingTest, BuildRzp) {
  const HuffmanCode code =
      BuildCategoryCode(CategoryCodeKind::kReverseZeroPadding, 6, {});
  EXPECT_EQ(code.length(5), 1);
  EXPECT_EQ(code.length(0), 5);
}

TEST(EncodingTest, BuildHuffmanUsesFrequencies) {
  const HuffmanCode code = BuildCategoryCode(CategoryCodeKind::kHuffman, 3,
                                             {1, 1, 1000});
  EXPECT_EQ(code.length(2), 1);
}

TEST(EncodingTest, AccumulateSkipsCompressedEntries) {
  SignatureRow row(4);
  row[0].category = 1;
  row[1].category = 1;
  row[2].category = 2;
  row[3].category = 2;
  row[3].compressed = true;
  std::vector<uint64_t> freqs(3, 0);
  AccumulateCategoryFrequencies(row, &freqs);
  EXPECT_EQ(freqs, (std::vector<uint64_t>{0, 2, 1}));
}

}  // namespace
}  // namespace dsig
