#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>

namespace dsig {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::Corruption("node section checksum mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "node section checksum mismatch");
  EXPECT_EQ(s.ToString(), "CORRUPTION: node section checksum mismatch");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StatusTest, StreamsViaToString) {
  std::ostringstream os;
  os << Status::IoError("disk full");
  EXPECT_EQ(os.str(), "IO_ERROR: disk full");
}

TEST(StatusTest, ReturnIfErrorPropagatesOnlyFailures) {
  const auto pipeline = [](Status first, Status second) -> Status {
    DSIG_RETURN_IF_ERROR(first);
    DSIG_RETURN_IF_ERROR(second);
    return Status::Ok();
  };
  EXPECT_TRUE(pipeline(Status::Ok(), Status::Ok()).ok());
  EXPECT_EQ(pipeline(Status::Corruption("a"), Status::IoError("b")).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(pipeline(Status::Ok(), Status::IoError("b")).code(),
            StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good = 41;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 41);
  *good += 1;
  EXPECT_EQ(*good, 42);

  const StatusOr<int> bad = Status::NotFound("missing");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValuesWork) {
  StatusOr<std::unique_ptr<int>> holder = std::make_unique<int>(7);
  ASSERT_TRUE(holder.ok());
  EXPECT_EQ(**holder, 7);
  std::unique_ptr<int> taken = std::move(holder).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrDeathTest, ValueOnFailureIsFatal) {
  const StatusOr<int> bad = Status::Corruption("nope");
  EXPECT_DEATH(bad.value(), "failed StatusOr");
}

}  // namespace
}  // namespace dsig
