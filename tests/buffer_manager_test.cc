#include "storage/buffer_manager.h"

#include <gtest/gtest.h>

namespace dsig {
namespace {

TEST(BufferManagerTest, ColdAccessesMiss) {
  BufferManager buffer(4);
  const FileId f = buffer.RegisterFile();
  EXPECT_FALSE(buffer.Access(f, 0));
  EXPECT_FALSE(buffer.Access(f, 1));
  EXPECT_EQ(buffer.stats().logical_accesses, 2u);
  EXPECT_EQ(buffer.stats().physical_accesses, 2u);
}

TEST(BufferManagerTest, RepeatAccessHits) {
  BufferManager buffer(4);
  const FileId f = buffer.RegisterFile();
  buffer.Access(f, 7);
  EXPECT_TRUE(buffer.Access(f, 7));
  EXPECT_EQ(buffer.stats().logical_accesses, 2u);
  EXPECT_EQ(buffer.stats().physical_accesses, 1u);
}

TEST(BufferManagerTest, LruEviction) {
  BufferManager buffer(2);
  const FileId f = buffer.RegisterFile();
  buffer.Access(f, 1);
  buffer.Access(f, 2);
  buffer.Access(f, 3);  // evicts 1, cache = {2, 3}
  EXPECT_TRUE(buffer.Access(f, 2));
  EXPECT_TRUE(buffer.Access(f, 3));
  EXPECT_FALSE(buffer.Access(f, 1));  // was evicted; re-admitting evicts 2
  EXPECT_FALSE(buffer.Access(f, 2));
}

TEST(BufferManagerTest, TouchRefreshesRecency) {
  BufferManager buffer(2);
  const FileId f = buffer.RegisterFile();
  buffer.Access(f, 1);
  buffer.Access(f, 2);
  buffer.Access(f, 1);  // 1 becomes most recent
  buffer.Access(f, 3);  // evicts 2, not 1
  EXPECT_TRUE(buffer.Access(f, 1));
}

TEST(BufferManagerTest, FilesAreIndependentNamespaces) {
  BufferManager buffer(10);
  const FileId a = buffer.RegisterFile();
  const FileId b = buffer.RegisterFile();
  buffer.Access(a, 5);
  EXPECT_FALSE(buffer.Access(b, 5));  // same page id, different file
  EXPECT_TRUE(buffer.Access(a, 5));
}

TEST(BufferManagerTest, ZeroCapacityDisablesCaching) {
  BufferManager buffer(0);
  const FileId f = buffer.RegisterFile();
  buffer.Access(f, 1);
  EXPECT_FALSE(buffer.Access(f, 1));
  EXPECT_EQ(buffer.stats().physical_accesses, 2u);
}

TEST(BufferManagerTest, ResetStatsKeepsContents) {
  BufferManager buffer(4);
  const FileId f = buffer.RegisterFile();
  buffer.Access(f, 1);
  buffer.ResetStats();
  EXPECT_EQ(buffer.stats().logical_accesses, 0u);
  EXPECT_TRUE(buffer.Access(f, 1));  // still cached
}

TEST(BufferManagerTest, ClearDropsContents) {
  BufferManager buffer(4);
  const FileId f = buffer.RegisterFile();
  buffer.Access(f, 1);
  buffer.Clear();
  EXPECT_FALSE(buffer.Access(f, 1));
}

TEST(BufferManagerTest, EvictionsAreCounted) {
  BufferManager buffer(2);
  const FileId f = buffer.RegisterFile();
  buffer.Access(f, 1);
  buffer.Access(f, 2);
  EXPECT_EQ(buffer.stats().evictions, 0u);
  buffer.Access(f, 3);  // capacity 2: admitting 3 evicts 1
  EXPECT_EQ(buffer.stats().evictions, 1u);
  buffer.Access(f, 3);  // hit, no eviction
  EXPECT_EQ(buffer.stats().evictions, 1u);
}

TEST(BufferManagerTest, StatsForEachVisitsEveryField) {
  BufferStats s{10, 6, 3, 2};
  uint64_t sum = 0;
  size_t count = 0;
  s.ForEach([&](const char* name, uint64_t value) {
    (void)name;
    sum += value;
    ++count;
  });
  EXPECT_EQ(count, sizeof(BufferStats) / sizeof(uint64_t));
  EXPECT_EQ(sum, 21u);
}

TEST(BufferManagerTest, StatsSubtraction) {
  BufferStats a{10, 6, 3};
  BufferStats b{4, 2, 1};
  const BufferStats d = a - b;
  EXPECT_EQ(d.logical_accesses, 6u);
  EXPECT_EQ(d.physical_accesses, 4u);
  EXPECT_EQ(d.failed_reads, 2u);
}

TEST(BufferManagerTest, InjectedReadFaultsAreCountedAndNotCached) {
  BufferManager buffer(4);
  const FileId f = buffer.RegisterFile();
  // Fail every physical read of page 3; other pages behave normally.
  buffer.SetReadFaultInjector(
      [](FileId, PageId page) { return page == 3; });

  EXPECT_FALSE(buffer.Access(f, 3));
  EXPECT_FALSE(buffer.Access(f, 3));  // still not cached: each retry re-reads
  EXPECT_EQ(buffer.stats().failed_reads, 2u);
  EXPECT_EQ(buffer.stats().physical_accesses, 2u);

  EXPECT_FALSE(buffer.Access(f, 1));  // healthy page: normal miss…
  EXPECT_TRUE(buffer.Access(f, 1));   // …then hit
  EXPECT_EQ(buffer.stats().failed_reads, 2u);

  // Disarmed: page 3 reads recover and cache again.
  buffer.SetReadFaultInjector(nullptr);
  EXPECT_FALSE(buffer.Access(f, 3));
  EXPECT_TRUE(buffer.Access(f, 3));
  EXPECT_EQ(buffer.stats().failed_reads, 2u);
}

TEST(BufferManagerTest, InjectedFaultsWithZeroCapacityStillCount) {
  BufferManager buffer(0);
  const FileId f = buffer.RegisterFile();
  buffer.SetReadFaultInjector([](FileId, PageId) { return true; });
  EXPECT_FALSE(buffer.Access(f, 0));
  EXPECT_FALSE(buffer.Access(f, 1));
  EXPECT_EQ(buffer.stats().failed_reads, 2u);
  EXPECT_EQ(buffer.stats().physical_accesses, 2u);
}

}  // namespace
}  // namespace dsig
