#include "graph/dijkstra.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_generator.h"
#include "tests/test_util.h"

namespace dsig {
namespace {

TEST(DijkstraTest, SevenNodeNetworkDistances) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const ShortestPathTree tree = RunDijkstra(g, 0);
  EXPECT_EQ(tree.dist[0], 0);
  EXPECT_EQ(tree.dist[1], 4);
  EXPECT_EQ(tree.dist[3], 3);
  EXPECT_EQ(tree.dist[4], 4);   // 0-3-4
  EXPECT_EQ(tree.dist[2], 10);  // 0-1-2
  EXPECT_EQ(tree.dist[5], 12);  // 0-1-2-5 = 4+6+2 beats 0-3-4-5 = 12: tie
  EXPECT_EQ(tree.dist[6], 11);  // 0-3-4-6
}

TEST(DijkstraTest, ParentsFormShortestPaths) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const ShortestPathTree tree = RunDijkstra(g, 0);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    Weight along_parents = 0;
    NodeId v = n;
    while (tree.parent[v] != kInvalidNode) {
      const EdgeId e = tree.parent_edge[v];
      along_parents += g.edge_weight(e);
      v = tree.parent[v];
    }
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(along_parents, tree.dist[n]) << "node " << n;
  }
}

TEST(DijkstraTest, SettleOrderIsNondecreasing) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 500, .seed = 3});
  const ShortestPathTree tree = RunDijkstra(g, 0);
  for (size_t i = 1; i < tree.settle_order.size(); ++i) {
    EXPECT_LE(tree.dist[tree.settle_order[i - 1]],
              tree.dist[tree.settle_order[i]]);
  }
  EXPECT_EQ(tree.settle_order.size(), g.num_nodes());
}

TEST(DijkstraTest, BoundedRunStopsAtRadius) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const ShortestPathTree tree = RunDijkstraBounded(g, 0, 4);
  EXPECT_EQ(tree.dist[0], 0);
  EXPECT_EQ(tree.dist[1], 4);
  EXPECT_EQ(tree.dist[3], 3);
  EXPECT_EQ(tree.dist[4], 4);
  EXPECT_EQ(tree.dist[2], kInfiniteWeight);
  EXPECT_EQ(tree.dist[6], kInfiniteWeight);
}

TEST(DijkstraTest, BoundedMatchesFullWithinRadius) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 11});
  const ShortestPathTree full = RunDijkstra(g, 7);
  const Weight radius = 25;
  const ShortestPathTree bounded = RunDijkstraBounded(g, 7, radius);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (full.dist[n] <= radius) {
      EXPECT_EQ(bounded.dist[n], full.dist[n]) << "node " << n;
    } else {
      EXPECT_EQ(bounded.dist[n], kInfiniteWeight) << "node " << n;
    }
  }
}

TEST(DijkstraTest, MultiSourceOwnership) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const ShortestPathTree tree = RunDijkstraMultiSource(g, {0, 5});
  // Every node owned by its nearest source.
  const ShortestPathTree from0 = RunDijkstra(g, 0);
  const ShortestPathTree from5 = RunDijkstra(g, 5);
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_EQ(tree.dist[n], std::min(from0.dist[n], from5.dist[n]));
    if (from0.dist[n] < from5.dist[n]) {
      EXPECT_EQ(tree.owner[n], 0u);
    } else if (from5.dist[n] < from0.dist[n]) {
      EXPECT_EQ(tree.owner[n], 5u);
    }
  }
}

TEST(DijkstraTest, PointToPointDistance) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  EXPECT_EQ(DijkstraDistance(g, 0, 6), 11);
  EXPECT_EQ(DijkstraDistance(g, 2, 3), 11);  // 2-5-4-3 = 2+8+1
}

TEST(DijkstraTest, DisconnectedNodesReportInfinity) {
  RoadNetwork g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  g.AddNode({2, 0});
  g.AddEdge(0, 1, 1);
  const ShortestPathTree tree = RunDijkstra(g, 0);
  EXPECT_EQ(tree.dist[2], kInfiniteWeight);
  EXPECT_EQ(DijkstraDistance(g, 0, 2), kInfiniteWeight);
}

TEST(DijkstraTest, RemovedEdgesAreIgnored) {
  RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  EXPECT_EQ(DijkstraDistance(g, 0, 4), 4);
  g.RemoveEdge(g.FindEdge(3, 4));
  EXPECT_EQ(DijkstraDistance(g, 0, 4), 9);  // forced through node 1
}

TEST(DijkstraTest, ReconstructPath) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const ShortestPathTree tree = RunDijkstra(g, 0);
  const std::vector<NodeId> path = ReconstructPath(tree, 0, 6);
  EXPECT_EQ(path, std::vector<NodeId>({0, 3, 4, 6}));
}

// Property: Dijkstra distances satisfy the triangle inequality over edges
// (local optimality certificate) on random networks.
class DijkstraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraPropertyTest, EdgeRelaxationCertificate) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 600,
                                          .seed = GetParam()});
  const ShortestPathTree tree = RunDijkstra(g, GetParam() % 600);
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    const auto [u, v] = g.edge_endpoints(e);
    const Weight w = g.edge_weight(e);
    EXPECT_LE(tree.dist[v], tree.dist[u] + w);
    EXPECT_LE(tree.dist[u], tree.dist[v] + w);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Values(1, 5, 23, 77));

}  // namespace
}  // namespace dsig
