// The planner's identity contract (query/planner.h): routing exact-distance
// work through the hub-label tier must not perturb a single result bit
// relative to the signature-only path, at every SIMD dispatch level; the
// route only shows up in the op counters. Plus: the sticky stale latch
// demotes labels after any applied update, and NoLabelsOverride pins the
// planner off.
#include "query/planner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/hub_labels.h"
#include "core/row_stage.h"
#include "core/signature_builder.h"
#include "core/update.h"
#include "graph/graph_generator.h"
#include "obs/op_counters.h"
#include "query/closest_pair.h"
#include "query/join_query.h"
#include "query/knn_query.h"
#include "tests/test_util.h"
#include "util/simd/simd.h"
#include "util/thread_pool.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::unique_ptr<SignatureIndex> BuildWithLabels(const RoadNetwork& g,
                                                const std::vector<NodeId>& o) {
  auto index = BuildSignatureIndex(g, o, {.t = 5, .c = 2});
  index->set_hub_labels(HubLabels::Build(g, {}, &ThreadPool::Global()));
  return index;
}

// The forced-no-labels CI leg (DSIG_FORCE_NO_LABELS=1) pins every planner
// decision off the tier for the whole process. Tests that assert the label
// route is *taken* are vacuous under the pin and skip; the identity tests
// run everywhere (that is the pin's whole point).
bool LabelRoutePinnedOff() {
  const char* v = std::getenv("DSIG_FORCE_NO_LABELS");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

#define SKIP_IF_LABELS_PINNED_OFF()                                       \
  if (LabelRoutePinnedOff()) {                                            \
    GTEST_SKIP() << "DSIG_FORCE_NO_LABELS pins the label route off";      \
  }

TEST(PlannerTest, LabelsUsableRespectsAttachmentStaleAndOverride) {
  SKIP_IF_LABELS_PINNED_OFF();
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto bare = BuildSignatureIndex(g, {1, 5}, {.t = 4, .c = 2});
  EXPECT_FALSE(LabelsUsable(*bare));

  const auto index = BuildWithLabels(g, {1, 5});
  EXPECT_TRUE(LabelsUsable(*index));
  {
    NoLabelsOverride off;
    EXPECT_FALSE(LabelsUsable(*index));
    {
      NoLabelsOverride nested;
      EXPECT_FALSE(LabelsUsable(*index));
    }
    EXPECT_FALSE(LabelsUsable(*index));
  }
  EXPECT_TRUE(LabelsUsable(*index));

  index->InvalidateHubLabels();
  EXPECT_FALSE(LabelsUsable(*index));  // sticky: no way back but a rebuild
  index->set_hub_labels(HubLabels::Build(g, {}, nullptr));
  EXPECT_TRUE(LabelsUsable(*index));
}

TEST(PlannerTest, RoutedDistancesMatchBothRoutesExactly) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 91});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, 91);
  const auto index = BuildWithLabels(g, objects);
  const auto truth = testing_util::BruteForceDistances(g, objects);

  for (const NodeId n : testing_util::SampleNodes(g, 20, 91)) {
    for (uint32_t o = 0; o < objects.size(); ++o) {
      const Weight labeled = RoutedObjectDistance(*index, n, o, nullptr);
      Weight chased;
      {
        NoLabelsOverride off;
        chased = RoutedObjectDistance(*index, n, o, nullptr);
      }
      ASSERT_EQ(labeled, chased) << "n=" << n << " o=" << o;
      ASSERT_EQ(labeled, truth[o][n]) << "n=" << n << " o=" << o;
    }
  }
  // Node-to-node: labels vs the bounded-Dijkstra fallback.
  const auto nodes = testing_util::SampleNodes(g, 8, 17);
  for (const NodeId u : nodes) {
    for (const NodeId v : nodes) {
      const Weight labeled = RoutedNodeDistance(*index, u, v);
      NoLabelsOverride off;
      ASSERT_EQ(labeled, RoutedNodeDistance(*index, u, v));
    }
  }
}

TEST(PlannerTest, RouteCountersChargeTheRouteTaken) {
  SKIP_IF_LABELS_PINNED_OFF();
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 37});
  const std::vector<NodeId> objects = UniformDataset(g, 0.08, 37);
  const auto index = BuildWithLabels(g, objects);

  ResetOpCounters();
  (void)RoutedObjectDistance(*index, 7, 0, nullptr);
  EXPECT_EQ(GlobalOpCounters().label_distances, 1u);
  EXPECT_EQ(GlobalOpCounters().label_demotions, 0u);

  ResetOpCounters();
  {
    NoLabelsOverride off;
    (void)RoutedObjectDistance(*index, 7, 0, nullptr);
  }
  EXPECT_EQ(GlobalOpCounters().label_distances, 0u);
  EXPECT_EQ(GlobalOpCounters().label_demotions, 1u);

  // A near object with a read row hint: the cost model may legitimately
  // prefer the chase, but some route always answers.
  ResetOpCounters();
  static thread_local RowStage stage;
  index->ReadRowStaged(index->object_node(0), &stage);
  const SignatureEntry initial = stage.entry(0);
  const Weight d =
      RoutedObjectDistance(*index, index->object_node(0), 0, &initial);
  EXPECT_EQ(d, 0);
  EXPECT_EQ(GlobalOpCounters().label_distances +
                GlobalOpCounters().label_demotions,
            1u);
}

// The headline acceptance check: every query family's results are
// bit-identical between the label route and the signature-only route, at
// every compiled SIMD dispatch level.
TEST(PlannerTest, QueriesAreIdenticalWithAndWithoutLabelsAtEveryLevel) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 23});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, 23);
  const auto index = BuildWithLabels(g, objects);
  const std::vector<NodeId> nodes = testing_util::SampleNodes(g, 10, 23);

  for (const simd::SimdLevel level : simd::AvailableLevels()) {
    SCOPED_TRACE(simd::SimdLevelName(level));
    simd::SimdOverride pin(level);
    ASSERT_TRUE(pin.applied());
    for (const NodeId n : nodes) {
      KnnResult knn1_off, knn2_off;
      JoinResult join_off;
      {
        NoLabelsOverride off;
        knn1_off = SignatureKnnQuery(*index, n, 7, KnnResultType::kType1);
        knn2_off = SignatureKnnQuery(*index, n, 7, KnnResultType::kType2);
        join_off = SignatureEpsilonJoin(*index, *index, n, 18.0);
      }
      const KnnResult knn1 =
          SignatureKnnQuery(*index, n, 7, KnnResultType::kType1);
      const KnnResult knn2 =
          SignatureKnnQuery(*index, n, 7, KnnResultType::kType2);
      const JoinResult join = SignatureEpsilonJoin(*index, *index, n, 18.0);

      EXPECT_EQ(knn1.objects, knn1_off.objects) << "node " << n;
      EXPECT_EQ(knn1.distances, knn1_off.distances) << "node " << n;
      EXPECT_EQ(knn2.objects, knn2_off.objects) << "node " << n;
      ASSERT_EQ(join.pairs.size(), join_off.pairs.size()) << "node " << n;
      for (size_t i = 0; i < join.pairs.size(); ++i) {
        EXPECT_EQ(join.pairs[i].left, join_off.pairs[i].left);
        EXPECT_EQ(join.pairs[i].right, join_off.pairs[i].right);
      }
      EXPECT_EQ(join.pruned_by_categories, join_off.pruned_by_categories);
    }
    ClosestPairResult cp_off;
    {
      NoLabelsOverride off;
      cp_off = SignatureClosestPair(*index, *index);
    }
    const ClosestPairResult cp = SignatureClosestPair(*index, *index);
    EXPECT_EQ(cp.left, cp_off.left);
    EXPECT_EQ(cp.right, cp_off.right);
    EXPECT_EQ(cp.distance, cp_off.distance);
    EXPECT_EQ(cp.refined, cp_off.refined);
  }
}

TEST(PlannerTest, AppliedUpdateDemotesLabelsUntilRebuild) {
  SKIP_IF_LABELS_PINNED_OFF();
  RoadNetwork g = MakeRandomPlanar({.num_nodes = 250, .seed = 53});
  const std::vector<NodeId> objects = UniformDataset(g, 0.08, 53);
  auto index = BuildWithLabels(g, objects);
  ASSERT_TRUE(LabelsUsable(*index));

  // Reference results before the update (signature path, which stays
  // correct through updates).
  SignatureUpdater updater(&g, index.get());
  updater.AddEdge(3, 90, 2.0);
  EXPECT_TRUE(index->hub_labels()->stale());
  EXPECT_FALSE(LabelsUsable(*index));

  // Queries still run (demoted to the maintained signature path) and agree
  // with fresh ground truth on the mutated network.
  ResetOpCounters();
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 6, 53)) {
    const KnnResult r = SignatureKnnQuery(*index, n, 5, KnnResultType::kType1);
    for (size_t i = 0; i < r.objects.size(); ++i) {
      ASSERT_EQ(r.distances[i], truth[r.objects[i]][n]) << "node " << n;
    }
  }
  EXPECT_EQ(GlobalOpCounters().label_distances, 0u);
  EXPECT_GT(GlobalOpCounters().label_demotions, 0u);

  // A rebuild on the mutated graph re-enables the tier, and its distances
  // match the new network.
  index->set_hub_labels(HubLabels::Build(g, {}, &ThreadPool::Global()));
  ASSERT_TRUE(LabelsUsable(*index));
  for (uint32_t o = 0; o < objects.size(); ++o) {
    ASSERT_EQ(RoutedObjectDistance(*index, 11, o, nullptr), truth[o][11]);
  }
}

TEST(PlannerTest, PlannerSeedReflectsBuiltLabels) {
  SKIP_IF_LABELS_PINNED_OFF();
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 71});
  const auto index = BuildWithLabels(g, UniformDataset(g, 0.08, 71));
  const ExactRouteCostModel model = PlannerSeed(*index);
  EXPECT_GT(model.avg_label_entries, 0.0);
  EXPECT_GT(model.mean_edge_weight, 0.0);
  // The decision must be exactly what the seed's cost comparison says: a
  // zero-lower-bound hint is a one-hop chase estimate, a huge one is not.
  const DistanceRange near{0, 1};
  EXPECT_EQ(PlanObjectRoute(*index, &near) == ExactRoute::kLabels,
            model.ChaseCost(0) >= model.LabelCost());
  EXPECT_EQ(PlanObjectRoute(*index, nullptr), ExactRoute::kLabels);
  const DistanceRange far{1e7, kInfiniteWeight};
  EXPECT_EQ(PlanObjectRoute(*index, &far), ExactRoute::kLabels);
}

}  // namespace
}  // namespace dsig
