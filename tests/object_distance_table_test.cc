#include "core/object_distance_table.h"

#include <gtest/gtest.h>

namespace dsig {
namespace {

TEST(ObjectDistanceTableTest, DiagonalIsZero) {
  const ObjectDistanceTable table(4);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(table.IsFar(i, i));
    EXPECT_EQ(table.Get(i, i), 0);
  }
}

TEST(ObjectDistanceTableTest, UnsetPairsAreFar) {
  const ObjectDistanceTable table(3);
  EXPECT_TRUE(table.IsFar(0, 1));
  EXPECT_TRUE(table.IsFar(2, 1));
}

TEST(ObjectDistanceTableTest, SetIsSymmetric) {
  ObjectDistanceTable table(3);
  table.Set(0, 2, 7.5);
  EXPECT_FALSE(table.IsFar(0, 2));
  EXPECT_FALSE(table.IsFar(2, 0));
  EXPECT_EQ(table.Get(0, 2), 7.5);
  EXPECT_EQ(table.Get(2, 0), 7.5);
}

TEST(ObjectDistanceTableTest, MarkFarDropsPair) {
  ObjectDistanceTable table(3);
  table.Set(0, 1, 3);
  table.MarkFar(0, 1);
  EXPECT_TRUE(table.IsFar(0, 1));
  EXPECT_TRUE(table.IsFar(1, 0));
}

TEST(ObjectDistanceTableTest, MemoryCountsStoredPairsOnly) {
  ObjectDistanceTable table(5);
  EXPECT_EQ(table.MemoryBytes(), 0u);
  table.Set(0, 1, 2);
  table.Set(0, 2, 3);
  EXPECT_EQ(table.MemoryBytes(), 2 * sizeof(Weight));
  table.MarkFar(0, 1);
  EXPECT_EQ(table.MemoryBytes(), sizeof(Weight));
  // Overwriting does not double count.
  table.Set(0, 2, 4);
  EXPECT_EQ(table.MemoryBytes(), sizeof(Weight));
}

}  // namespace
}  // namespace dsig
