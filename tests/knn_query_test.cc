#include "query/knn_query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

// The k smallest true distances (the distance multiset is what all result
// types must agree on; object identity can differ under distance ties).
std::vector<Weight> BruteForceKnnDistances(
    const std::vector<std::vector<Weight>>& truth, NodeId n, size_t k) {
  std::vector<Weight> d;
  for (const auto& row : truth) d.push_back(row[n]);
  std::sort(d.begin(), d.end());
  d.resize(std::min(k, d.size()));
  return d;
}

TEST(KnnQueryTest, SmallNetworkType1) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {1, 5, 6};
  const auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  // From node 0: d=4 (obj 0), 12 (obj 1), 11 (obj 2).
  const KnnResult r = SignatureKnnQuery(*index, 0, 2, KnnResultType::kType1);
  ASSERT_EQ(r.objects.size(), 2u);
  EXPECT_EQ(r.objects[0], 0u);
  EXPECT_EQ(r.objects[1], 2u);
  EXPECT_EQ(r.distances, std::vector<Weight>({4, 11}));
}

TEST(KnnQueryTest, KZeroAndKBeyondDataset) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1, 5}, {.t = 4, .c = 2});
  EXPECT_TRUE(
      SignatureKnnQuery(*index, 0, 0, KnnResultType::kType3).objects.empty());
  const KnnResult all =
      SignatureKnnQuery(*index, 0, 10, KnnResultType::kType3);
  EXPECT_EQ(all.objects.size(), 2u);
}

TEST(KnnQueryTest, QueryAtObjectNodeReturnsItFirst) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {2, 4}, {.t = 4, .c = 2});
  const KnnResult r = SignatureKnnQuery(*index, 4, 1, KnnResultType::kType1);
  ASSERT_EQ(r.objects.size(), 1u);
  EXPECT_EQ(r.objects[0], 1u);
  EXPECT_EQ(r.distances[0], 0);
}

class KnnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnnPropertyTest, AllTypesMatchBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 400, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, GetParam());
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 12, GetParam() + 2)) {
    for (const size_t k : {1u, 3u, 5u, 10u}) {
      const std::vector<Weight> expected =
          BruteForceKnnDistances(truth, n, k);

      // Type 3: membership — the distance multiset must match.
      const KnnResult t3 =
          SignatureKnnQuery(*index, n, k, KnnResultType::kType3);
      std::vector<Weight> d3;
      for (const uint32_t o : t3.objects) d3.push_back(truth[o][n]);
      std::sort(d3.begin(), d3.end());
      EXPECT_EQ(d3, expected) << "type3 n=" << n << " k=" << k;

      // Type 2: ordering preserved.
      const KnnResult t2 =
          SignatureKnnQuery(*index, n, k, KnnResultType::kType2);
      std::vector<Weight> d2;
      for (const uint32_t o : t2.objects) d2.push_back(truth[o][n]);
      EXPECT_TRUE(std::is_sorted(d2.begin(), d2.end()))
          << "type2 order n=" << n << " k=" << k;
      std::vector<Weight> d2_sorted = d2;
      std::sort(d2_sorted.begin(), d2_sorted.end());
      EXPECT_EQ(d2_sorted, expected);

      // Type 1: exact distances returned, ascending, correct.
      const KnnResult t1 =
          SignatureKnnQuery(*index, n, k, KnnResultType::kType1);
      EXPECT_EQ(t1.distances, expected) << "type1 n=" << n << " k=" << k;
      ASSERT_EQ(t1.objects.size(), t1.distances.size());
      for (size_t i = 0; i < t1.objects.size(); ++i) {
        EXPECT_EQ(truth[t1.objects[i]][n], t1.distances[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnPropertyTest,
                         ::testing::Values(1, 11, 31));

TEST(KnnQueryTest, LargeKSortsEverything) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 6});
  const std::vector<NodeId> objects = UniformDataset(g, 0.1, 6);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  const NodeId n = 17;
  const KnnResult r = SignatureKnnQuery(*index, n, objects.size(),
                                        KnnResultType::kType2);
  ASSERT_EQ(r.objects.size(), objects.size());
  for (size_t i = 1; i < r.objects.size(); ++i) {
    EXPECT_LE(truth[r.objects[i - 1]][n], truth[r.objects[i]][n]);
  }
}

}  // namespace
}  // namespace dsig
