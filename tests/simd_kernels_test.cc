// Differential fuzzing of the SIMD query kernels against the scalar
// reference (util/simd). The scalar table is normative: every compiled
// variant (SSE4.2 / AVX2 / NEON) must reproduce its results bit for bit —
// extraction order, the fixed blocked-summation tree, NaN handling in the
// finite-compaction — on randomized inputs including empty rows, unaligned
// lengths straddling every vector-width boundary, and degenerate all-same
// lanes. A second tier pins each available dispatch level with SimdOverride
// and replays whole queries, proving the level is unobservable end to end.
#include "util/simd/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/row_stage.h"
#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "query/aggregate_query.h"
#include "query/closest_pair.h"
#include "query/join_query.h"
#include "query/knn_query.h"
#include "query/range_query.h"
#include "query/reverse_knn.h"
#include "tests/test_util.h"
#include "util/random.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

using simd::KernelTable;
using simd::SimdLevel;

std::vector<const KernelTable*> CompiledVariants() {
  std::vector<const KernelTable*> tables;
  for (const SimdLevel level : simd::AvailableLevels()) {
    switch (level) {
      case SimdLevel::kScalar:
        tables.push_back(simd::ScalarKernels());
        break;
      case SimdLevel::kSse42:
        tables.push_back(simd::Sse42Kernels());
        break;
      case SimdLevel::kAvx2:
        tables.push_back(simd::Avx2Kernels());
        break;
      case SimdLevel::kNeon:
        tables.push_back(simd::NeonKernels());
        break;
    }
  }
  return tables;
}

// Lengths that straddle every vector-width boundary (16 for SSE/NEON, 32
// for AVX2) plus awkward tails.
const size_t kLengths[] = {0,  1,  2,  3,  7,  15,  16,  17,  31,
                           32, 33, 47, 63, 64, 65,  100, 127, 128,
                           129, 255, 256, 257, 1000};

TEST(SimdKernelsTest, AtLeastScalarIsAvailable) {
  const std::vector<SimdLevel> levels = simd::AvailableLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  EXPECT_TRUE(std::is_sorted(levels.begin(), levels.end()));
  for (const KernelTable* table : CompiledVariants()) {
    ASSERT_NE(table, nullptr);
  }
}

TEST(SimdKernelsTest, ByteKernelsMatchScalarOnRandomLanes) {
  const KernelTable* scalar = simd::ScalarKernels();
  const std::vector<const KernelTable*> variants = CompiledVariants();
  Random rng(1234);
  std::vector<uint8_t> lanes;
  std::vector<uint32_t> want, got;
  for (const size_t n : kLengths) {
    for (int round = 0; round < 8; ++round) {
      lanes.resize(n);
      // Mix narrow and full-range alphabets so runs of in-range lanes (the
      // dense-extraction path) and empty matches both occur.
      const int alphabet = round % 2 == 0 ? 8 : 256;
      for (size_t i = 0; i < n; ++i) {
        lanes[i] = static_cast<uint8_t>(rng.NextUint64(alphabet));
      }
      // Bounds include empty (lo >= hi), unbounded-above (hi = 256), and
      // narrow windows.
      const int lo = static_cast<int>(rng.NextUint64(300)) - 20;
      const int hi = lo + static_cast<int>(rng.NextUint64(300)) - 20;
      want.assign(n + 1, 0xDEAD);
      const size_t want_count =
          scalar->extract_in_range(lanes.data(), n, lo, hi, want.data());
      for (const KernelTable* table : variants) {
        SCOPED_TRACE(table->name);
        got.assign(n + 1, 0xBEEF);
        const size_t got_count =
            table->extract_in_range(lanes.data(), n, lo, hi, got.data());
        ASSERT_EQ(got_count, want_count) << "n=" << n << " lo=" << lo
                                         << " hi=" << hi;
        for (size_t i = 0; i < want_count; ++i) {
          ASSERT_EQ(got[i], want[i]) << "n=" << n << " lo=" << lo
                                     << " hi=" << hi << " at " << i;
        }
        EXPECT_EQ(table->count_in_range(lanes.data(), n, lo, hi), want_count);
        EXPECT_EQ(table->max_u8(lanes.data(), n),
                  scalar->max_u8(lanes.data(), n));
        EXPECT_EQ(table->min_u8(lanes.data(), n),
                  scalar->min_u8(lanes.data(), n));
      }
    }
  }
}

TEST(SimdKernelsTest, ByteKernelsOnDegenerateLanes) {
  const KernelTable* scalar = simd::ScalarKernels();
  std::vector<uint32_t> want(2000), got(2000);
  for (const KernelTable* table : CompiledVariants()) {
    SCOPED_TRACE(table->name);
    // Empty input: extraction finds nothing, extrema take their identities.
    EXPECT_EQ(table->extract_in_range(nullptr, 0, 0, 256, got.data()), 0u);
    EXPECT_EQ(table->count_in_range(nullptr, 0, 0, 256), 0u);
    EXPECT_EQ(table->max_u8(nullptr, 0), 0);
    EXPECT_EQ(table->min_u8(nullptr, 0), 0xFF);
    for (const size_t n : kLengths) {
      // All-same lanes: the all-match and no-match extraction extremes.
      for (const uint8_t value : {uint8_t{0}, uint8_t{7}, uint8_t{0xFF}}) {
        const std::vector<uint8_t> lanes(n, value);
        for (const auto& [lo, hi] : {std::pair<int, int>{value, value + 1},
                                    {value + 1, 256},
                                    {0, value},
                                    {0, 256}}) {
          const size_t want_count =
              scalar->extract_in_range(lanes.data(), n, lo, hi, want.data());
          const size_t got_count =
              table->extract_in_range(lanes.data(), n, lo, hi, got.data());
          ASSERT_EQ(got_count, want_count)
              << "n=" << n << " v=" << int{value} << " lo=" << lo;
          for (size_t i = 0; i < want_count; ++i) {
            ASSERT_EQ(got[i], want[i]);
          }
        }
      }
    }
  }
}

TEST(SimdKernelsTest, AggregateMatchesScalarBitForBit) {
  const KernelTable* scalar = simd::ScalarKernels();
  const std::vector<const KernelTable*> variants = CompiledVariants();
  Random rng(77);
  std::vector<double> values;
  for (const size_t n : kLengths) {
    for (int round = 0; round < 6; ++round) {
      values.resize(n);
      for (size_t i = 0; i < n; ++i) {
        // Wildly mixed magnitudes: with a naive re-association the sum
        // would drift, so this is what actually exercises the fixed
        // blocked-summation tree.
        const double magnitude = std::pow(10.0, rng.NextInt(-6, 6));
        values[i] = (rng.NextDouble() - 0.5) * magnitude;
      }
      double want_sum = 0, want_min = 0, want_max = 0;
      scalar->aggregate_f64(values.data(), n, &want_sum, &want_min, &want_max);
      for (const KernelTable* table : variants) {
        SCOPED_TRACE(table->name);
        double sum = 0, min = 0, max = 0;
        table->aggregate_f64(values.data(), n, &sum, &min, &max);
        // EXPECT_EQ, not NEAR: the summation tree is part of the contract.
        EXPECT_EQ(sum, want_sum) << "n=" << n;
        EXPECT_EQ(min, want_min) << "n=" << n;
        EXPECT_EQ(max, want_max) << "n=" << n;
      }
    }
  }
}

TEST(SimdKernelsTest, CompactFiniteMatchesScalarIncludingNaN) {
  const KernelTable* scalar = simd::ScalarKernels();
  const std::vector<const KernelTable*> variants = CompiledVariants();
  Random rng(99);
  std::vector<double> values, want, got;
  for (const size_t n : kLengths) {
    for (int round = 0; round < 6; ++round) {
      values.resize(n);
      for (size_t i = 0; i < n; ++i) {
        const uint64_t kind = rng.NextUint64(10);
        if (kind < 3) {
          values[i] = kInfiniteWeight;  // the table's "far" marker
        } else if (kind == 3) {
          values[i] = -kInfiniteWeight;  // finite per the != +inf contract
        } else if (kind == 4) {
          // NaN must survive compaction (scalar keeps v != +inf, and NaN
          // != +inf is true) — the unordered-compare regression check.
          values[i] = std::numeric_limits<double>::quiet_NaN();
        } else {
          values[i] = rng.NextDouble() * 1e3;
        }
      }
      want.assign(n + 1, -1);
      const size_t want_count =
          scalar->compact_finite_f64(values.data(), n, want.data());
      for (const KernelTable* table : variants) {
        SCOPED_TRACE(table->name);
        got.assign(n + 1, -2);
        const size_t got_count =
            table->compact_finite_f64(values.data(), n, got.data());
        ASSERT_EQ(got_count, want_count) << "n=" << n;
        for (size_t i = 0; i < want_count; ++i) {
          // Bit comparison so NaN == NaN and -0.0 != 0.0 distinctions hold.
          uint64_t want_bits, got_bits;
          static_assert(sizeof want_bits == sizeof want[i]);
          std::memcpy(&want_bits, &want[i], sizeof want_bits);
          std::memcpy(&got_bits, &got[i], sizeof got_bits);
          ASSERT_EQ(got_bits, want_bits) << "n=" << n << " at " << i;
        }
      }
    }
  }
}

TEST(SimdKernelsTest, LabelMergeMatchesScalarOnRandomLabels) {
  const KernelTable* scalar = simd::ScalarKernels();
  const std::vector<const KernelTable*> variants = CompiledVariants();
  Random rng(4242);
  std::vector<uint32_t> ah, bh;
  std::vector<double> ad, bd;
  // Strictly-ascending hub arrays of every awkward length pairing, with a
  // controllable intersection density (share = 0 exercises the no-common-hub
  // +inf path, share = 1 the all-common fast advance).
  const auto fill = [&](std::vector<uint32_t>* hubs, std::vector<double>* dist,
                        size_t n, uint32_t universe) {
    hubs->clear();
    dist->clear();
    uint32_t next = 0;
    while (hubs->size() < n && next < universe) {
      next += 1 + static_cast<uint32_t>(rng.NextUint64(universe / (n + 1) + 1));
      hubs->push_back(next);
      dist->push_back(static_cast<double>(rng.NextUint64(1000)));
    }
  };
  for (const size_t an : kLengths) {
    for (const size_t bn : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                            size_t{129}, size_t{1000}}) {
      for (int round = 0; round < 4; ++round) {
        const uint32_t universe =
            static_cast<uint32_t>(4 * (an + bn) + 16);
        fill(&ah, &ad, an, universe);
        fill(&bh, &bd, bn, universe);
        const double want = scalar->label_merge(ah.data(), ad.data(),
                                                ah.size(), bh.data(),
                                                bd.data(), bh.size());
        for (const KernelTable* table : variants) {
          SCOPED_TRACE(table->name);
          const double got = table->label_merge(ah.data(), ad.data(),
                                                ah.size(), bh.data(),
                                                bd.data(), bh.size());
          // Bit comparison: +inf (disjoint) must match exactly too.
          uint64_t want_bits, got_bits;
          std::memcpy(&want_bits, &want, sizeof want_bits);
          std::memcpy(&got_bits, &got, sizeof got_bits);
          ASSERT_EQ(got_bits, want_bits)
              << "an=" << ah.size() << " bn=" << bh.size();
        }
      }
    }
  }
  // Identical arrays: the min over every self-pair, and ranks near the
  // signed-compare boundary (contract caps ranks below 2^31).
  ah = {0u, 5u, 0x7FFFFFFEu};
  ad = {3.0, 1.0, 2.0};
  const double want =
      scalar->label_merge(ah.data(), ad.data(), 3, ah.data(), ad.data(), 3);
  EXPECT_EQ(want, 2.0);
  for (const KernelTable* table : variants) {
    SCOPED_TRACE(table->name);
    EXPECT_EQ(table->label_merge(ah.data(), ad.data(), 3, ah.data(),
                                 ad.data(), 3),
              want);
  }
}

TEST(SimdKernelsTest, OverridePinsAndRestores) {
  const SimdLevel before = simd::ActiveLevel();
  {
    simd::SimdOverride pin(SimdLevel::kScalar);
    ASSERT_TRUE(pin.applied());
    EXPECT_EQ(simd::ActiveLevel(), SimdLevel::kScalar);
    EXPECT_EQ(std::string(simd::Kernels().name), "scalar");
  }
  EXPECT_EQ(simd::ActiveLevel(), before);
  // Detection is independent of the pin.
  EXPECT_EQ(simd::DetectedLevel(), before == simd::DetectedLevel()
                                       ? before
                                       : simd::DetectedLevel());
}

// --- Staged rows and whole queries across dispatch levels -----------------

TEST(SimdStagedRowTest, StagedReadMatchesAosReadAtEveryLevel) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 11});
  const std::vector<NodeId> objects = UniformDataset(g, 0.08, 11);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  RowStage stage;
  for (const SimdLevel level : simd::AvailableLevels()) {
    SCOPED_TRACE(simd::SimdLevelName(level));
    simd::SimdOverride pin(level);
    ASSERT_TRUE(pin.applied());
    for (const NodeId n : testing_util::SampleNodes(g, 40, 11)) {
      const SignatureRow row = index->ReadRow(n);
      index->ReadRowStaged(n, &stage);
      ASSERT_EQ(stage.size(), row.size());
      EXPECT_FALSE(stage.any_compressed());
      for (uint32_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(stage.categories()[i], row[i].category) << "node " << n;
        EXPECT_EQ(stage.links()[i], row[i].link) << "node " << n;
        EXPECT_EQ(stage.flags()[i], 0) << "node " << n;
      }
    }
  }
}

struct QueryEcho {
  KnnResult knn;
  RangeQueryResult range;
  DistanceAggregateResult aggregate;
  ReverseKnnResult rknn;
  JoinResult join;
};

QueryEcho RunQueries(const SignatureIndex& index, NodeId n) {
  QueryEcho echo;
  echo.knn = SignatureKnnQuery(index, n, 5, KnnResultType::kType1);
  echo.range = SignatureRangeQuery(index, n, 25.0);
  echo.aggregate = SignatureDistanceAggregateQuery(index, n, 25.0);
  echo.rknn = SignatureReverseKnn(index, n, 3);
  echo.join = SignatureEpsilonJoin(index, index, n, 18.0);
  return echo;
}

TEST(SimdQueryIdentityTest, QueriesAreIdenticalAtEveryDispatchLevel) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 23});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, 23);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> nodes = testing_util::SampleNodes(g, 12, 23);

  // Scalar is the reference.
  std::vector<QueryEcho> want;
  {
    simd::SimdOverride pin(SimdLevel::kScalar);
    ASSERT_TRUE(pin.applied());
    for (const NodeId n : nodes) want.push_back(RunQueries(*index, n));
  }
  ClosestPairResult want_cp;
  {
    simd::SimdOverride pin(SimdLevel::kScalar);
    want_cp = SignatureClosestPair(*index, *index);
  }

  for (const SimdLevel level : simd::AvailableLevels()) {
    SCOPED_TRACE(simd::SimdLevelName(level));
    simd::SimdOverride pin(level);
    ASSERT_TRUE(pin.applied());
    for (size_t i = 0; i < nodes.size(); ++i) {
      const QueryEcho got = RunQueries(*index, nodes[i]);
      const QueryEcho& ref = want[i];
      EXPECT_EQ(got.knn.objects, ref.knn.objects) << "node " << nodes[i];
      EXPECT_EQ(got.knn.distances, ref.knn.distances) << "node " << nodes[i];
      EXPECT_EQ(got.range.objects, ref.range.objects) << "node " << nodes[i];
      EXPECT_EQ(got.range.refined, ref.range.refined) << "node " << nodes[i];
      EXPECT_EQ(got.aggregate.count, ref.aggregate.count);
      EXPECT_EQ(got.aggregate.sum, ref.aggregate.sum) << "node " << nodes[i];
      EXPECT_EQ(got.aggregate.min, ref.aggregate.min);
      EXPECT_EQ(got.aggregate.max, ref.aggregate.max);
      EXPECT_EQ(got.rknn.objects, ref.rknn.objects) << "node " << nodes[i];
      EXPECT_EQ(got.rknn.refined, ref.rknn.refined) << "node " << nodes[i];
      ASSERT_EQ(got.join.pairs.size(), ref.join.pairs.size());
      for (size_t p = 0; p < ref.join.pairs.size(); ++p) {
        EXPECT_EQ(got.join.pairs[p].left, ref.join.pairs[p].left);
        EXPECT_EQ(got.join.pairs[p].right, ref.join.pairs[p].right);
      }
      EXPECT_EQ(got.join.pruned_by_categories, ref.join.pruned_by_categories)
          << "node " << nodes[i];
      EXPECT_EQ(got.join.exact_evaluations, ref.join.exact_evaluations)
          << "node " << nodes[i];
    }
    const ClosestPairResult got_cp = SignatureClosestPair(*index, *index);
    EXPECT_EQ(got_cp.left, want_cp.left);
    EXPECT_EQ(got_cp.right, want_cp.right);
    EXPECT_EQ(got_cp.distance, want_cp.distance);
    EXPECT_EQ(got_cp.refined, want_cp.refined);
  }
}

}  // namespace
}  // namespace dsig
