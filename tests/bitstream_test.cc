#include "util/bitstream.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace dsig {
namespace {

TEST(BitstreamTest, EmptyWriter) {
  BitWriter writer;
  EXPECT_EQ(writer.size_bits(), 0u);
  EXPECT_TRUE(writer.bytes().empty());
}

TEST(BitstreamTest, SingleBitRoundTrip) {
  BitWriter writer;
  writer.WriteBit(true);
  writer.WriteBit(false);
  writer.WriteBit(true);
  EXPECT_EQ(writer.size_bits(), 3u);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_FALSE(reader.ReadBit());
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitstreamTest, MultiBitRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0b1011, 4);
  writer.WriteBits(0xDEADBEEF, 32);
  writer.WriteBits(0, 0);  // zero-width write is a no-op
  writer.WriteBits(0x1FFFFFFFFFFFFFFFULL, 61);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadBits(4), 0b1011u);
  EXPECT_EQ(reader.ReadBits(32), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadBits(0), 0u);
  EXPECT_EQ(reader.ReadBits(61), 0x1FFFFFFFFFFFFFFFULL);
}

TEST(BitstreamTest, WidthMasksHighBits) {
  BitWriter writer;
  writer.WriteBits(0xFF, 3);  // only the low 3 bits should land
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadBits(3), 0b111u);
  EXPECT_EQ(writer.size_bits(), 3u);
}

TEST(BitstreamTest, UnaryRoundTrip) {
  BitWriter writer;
  for (int count : {0, 1, 5, 17}) writer.WriteUnary(count);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadUnary(), 0);
  EXPECT_EQ(reader.ReadUnary(), 1);
  EXPECT_EQ(reader.ReadUnary(), 5);
  EXPECT_EQ(reader.ReadUnary(), 17);
}

TEST(BitstreamTest, SeekRepositionsReads) {
  BitWriter writer;
  writer.WriteBits(0xAB, 8);
  writer.WriteBits(0xCD, 8);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  reader.Seek(8);
  EXPECT_EQ(reader.ReadBits(8), 0xCDu);
  reader.Seek(0);
  EXPECT_EQ(reader.ReadBits(8), 0xABu);
  EXPECT_EQ(reader.position(), 8u);
}

TEST(BitstreamTest, TakeBytesResetsWriter) {
  BitWriter writer;
  writer.WriteBits(0x7, 3);
  const std::vector<uint8_t> bytes = writer.TakeBytes();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(writer.size_bits(), 0u);
  writer.WriteBit(true);
  EXPECT_EQ(writer.size_bits(), 1u);
}

TEST(BitstreamTest, PeekBitsDoesNotAdvance) {
  BitWriter writer;
  writer.WriteBits(0xABCD, 16);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.PeekBits(8), 0xCDu);
  EXPECT_EQ(reader.position(), 0u);
  EXPECT_EQ(reader.PeekBits(16), 0xABCDu);
  reader.Skip(8);
  EXPECT_EQ(reader.PeekBits(8), 0xABu);
  EXPECT_EQ(reader.ReadBits(8), 0xABu);
}

TEST(BitstreamTest, PeekBitsZeroPadsPastTheEnd) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  // Only 3 bits exist; the rest of the peeked window must read as zero.
  EXPECT_EQ(reader.PeekBits(64), 0b101u);
  reader.Skip(3);
  EXPECT_EQ(reader.PeekBits(64), 0u);  // at the end: all padding
}

TEST(BitstreamTest, PeekBitsMasksStrayBitsBeyondSizeBits) {
  // An untrusted buffer can carry garbage in the final byte beyond
  // size_bits; those bits must never leak into a peeked window.
  const uint8_t bytes[] = {0xFF};
  BitReader reader(bytes, 3);
  EXPECT_EQ(reader.PeekBits(8), 0b111u);
  reader.Skip(2);
  EXPECT_EQ(reader.PeekBits(8), 0b1u);
}

TEST(BitstreamTest, ReadZerosStopsAtOneCapOrEnd) {
  BitWriter writer;
  writer.WriteUnary(5);   // 5 zeros then a one
  writer.WriteBits(0, 4);  // trailing zeros with no terminator
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadZeros(3), 3);  // capped
  EXPECT_EQ(reader.ReadZeros(100), 2);  // stops at the one, leaves it
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_EQ(reader.ReadZeros(100), 4);  // stops at the end of the stream
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitstreamTest, ReadZerosIgnoresStrayBitsBeyondSizeBits) {
  const uint8_t bytes[] = {0b11110000};
  BitReader reader(bytes, 5);  // stream: 0 0 0 0 1
  EXPECT_EQ(reader.ReadZeros(100), 4);
  EXPECT_TRUE(reader.ReadBit());
  // Stray high bits of the byte must not be readable as more stream.
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitstreamTest, LongUnaryRunsCrossWordBoundaries) {
  BitWriter writer;
  for (int count : {63, 64, 65, 200}) writer.WriteUnary(count);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadUnary(), 63);
  EXPECT_EQ(reader.ReadUnary(), 64);
  EXPECT_EQ(reader.ReadUnary(), 65);
  EXPECT_EQ(reader.ReadUnary(), 200);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitstreamTest, TryReadUnaryFailsCleanlyOnAllZeros) {
  BitWriter writer;
  writer.WriteBits(0, 40);  // a truncated-to-zeros (corrupt) unary run
  BitReader reader(writer.bytes().data(), writer.size_bits());
  int zeros = -1;
  EXPECT_FALSE(reader.TryReadUnary(&zeros));
  EXPECT_EQ(reader.position(), 0u);  // position restored on failure
  // And an in-bounds run still succeeds afterwards.
  BitWriter ok;
  ok.WriteUnary(7);
  BitReader ok_reader(ok.bytes().data(), ok.size_bits());
  ASSERT_TRUE(ok_reader.TryReadUnary(&zeros));
  EXPECT_EQ(zeros, 7);
  EXPECT_TRUE(ok_reader.AtEnd());
}

TEST(BitstreamTest, TryReadUnaryFailsOnEmptyStream) {
  BitReader reader(nullptr, 0);
  int zeros = -1;
  EXPECT_FALSE(reader.TryReadUnary(&zeros));
  EXPECT_EQ(reader.position(), 0u);
}

TEST(BitstreamTest, BytesMidStreamThenKeepWriting) {
  // bytes() may be observed at any point; later writes must keep the stream
  // consistent (the writer un-materializes its partial tail).
  BitWriter writer;
  writer.WriteBits(0x3, 2);
  EXPECT_EQ(writer.bytes().size(), 1u);
  writer.WriteBits(0x55, 8);
  writer.WriteBits(0xFFFFFFFFFFFFFFFFULL, 64);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadBits(2), 0x3u);
  EXPECT_EQ(reader.ReadBits(8), 0x55u);
  EXPECT_EQ(reader.ReadBits(64), 0xFFFFFFFFFFFFFFFFULL);
}

// Property: any random sequence of (value, width) writes reads back intact.
class BitstreamRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitstreamRoundTripTest, RandomSequencesRoundTrip) {
  Random rng(GetParam());
  std::vector<std::pair<uint64_t, int>> writes;
  BitWriter writer;
  for (int i = 0; i < 500; ++i) {
    const int width = static_cast<int>(rng.NextUint64(65));
    uint64_t value = rng.NextUint64();
    if (width < 64) value &= (uint64_t{1} << width) - 1;
    writes.push_back({value, width});
    writer.WriteBits(value, width);
  }
  BitReader reader(writer.bytes().data(), writer.size_bits());
  for (const auto& [value, width] : writes) {
    EXPECT_EQ(reader.ReadBits(width), value);
  }
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamRoundTripTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace dsig
