#include "util/bitstream.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace dsig {
namespace {

TEST(BitstreamTest, EmptyWriter) {
  BitWriter writer;
  EXPECT_EQ(writer.size_bits(), 0u);
  EXPECT_TRUE(writer.bytes().empty());
}

TEST(BitstreamTest, SingleBitRoundTrip) {
  BitWriter writer;
  writer.WriteBit(true);
  writer.WriteBit(false);
  writer.WriteBit(true);
  EXPECT_EQ(writer.size_bits(), 3u);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_FALSE(reader.ReadBit());
  EXPECT_TRUE(reader.ReadBit());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitstreamTest, MultiBitRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0b1011, 4);
  writer.WriteBits(0xDEADBEEF, 32);
  writer.WriteBits(0, 0);  // zero-width write is a no-op
  writer.WriteBits(0x1FFFFFFFFFFFFFFFULL, 61);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadBits(4), 0b1011u);
  EXPECT_EQ(reader.ReadBits(32), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadBits(0), 0u);
  EXPECT_EQ(reader.ReadBits(61), 0x1FFFFFFFFFFFFFFFULL);
}

TEST(BitstreamTest, WidthMasksHighBits) {
  BitWriter writer;
  writer.WriteBits(0xFF, 3);  // only the low 3 bits should land
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadBits(3), 0b111u);
  EXPECT_EQ(writer.size_bits(), 3u);
}

TEST(BitstreamTest, UnaryRoundTrip) {
  BitWriter writer;
  for (int count : {0, 1, 5, 17}) writer.WriteUnary(count);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  EXPECT_EQ(reader.ReadUnary(), 0);
  EXPECT_EQ(reader.ReadUnary(), 1);
  EXPECT_EQ(reader.ReadUnary(), 5);
  EXPECT_EQ(reader.ReadUnary(), 17);
}

TEST(BitstreamTest, SeekRepositionsReads) {
  BitWriter writer;
  writer.WriteBits(0xAB, 8);
  writer.WriteBits(0xCD, 8);
  BitReader reader(writer.bytes().data(), writer.size_bits());
  reader.Seek(8);
  EXPECT_EQ(reader.ReadBits(8), 0xCDu);
  reader.Seek(0);
  EXPECT_EQ(reader.ReadBits(8), 0xABu);
  EXPECT_EQ(reader.position(), 8u);
}

TEST(BitstreamTest, TakeBytesResetsWriter) {
  BitWriter writer;
  writer.WriteBits(0x7, 3);
  const std::vector<uint8_t> bytes = writer.TakeBytes();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(writer.size_bits(), 0u);
  writer.WriteBit(true);
  EXPECT_EQ(writer.size_bits(), 1u);
}

// Property: any random sequence of (value, width) writes reads back intact.
class BitstreamRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitstreamRoundTripTest, RandomSequencesRoundTrip) {
  Random rng(GetParam());
  std::vector<std::pair<uint64_t, int>> writes;
  BitWriter writer;
  for (int i = 0; i < 500; ++i) {
    const int width = static_cast<int>(rng.NextUint64(65));
    uint64_t value = rng.NextUint64();
    if (width < 64) value &= (uint64_t{1} << width) - 1;
    writes.push_back({value, width});
    writer.WriteBits(value, width);
  }
  BitReader reader(writer.bytes().data(), writer.size_bits());
  for (const auto& [value, width] : writes) {
    EXPECT_EQ(reader.ReadBits(width), value);
  }
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamRoundTripTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace dsig
