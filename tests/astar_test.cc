#include "graph/astar.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"

namespace dsig {
namespace {

TEST(AStarTest, ZeroHeuristicMatchesDijkstra) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      const AStarResult r = RunAStar(g, s, t, ZeroHeuristic());
      EXPECT_EQ(r.distance, DijkstraDistance(g, s, t));
    }
  }
}

TEST(AStarTest, PathEndpointsAndLength) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const AStarResult r = RunAStar(g, 0, 6, ZeroHeuristic());
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front(), 0u);
  EXPECT_EQ(r.path.back(), 6u);
  Weight total = 0;
  for (size_t i = 1; i < r.path.size(); ++i) {
    const EdgeId e = g.FindEdge(r.path[i - 1], r.path[i]);
    ASSERT_NE(e, kInvalidEdge);
    total += g.edge_weight(e);
  }
  EXPECT_EQ(total, r.distance);
}

TEST(AStarTest, AdmissibleEuclideanHeuristicStaysExact) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 21});
  const double scale = MaxAdmissibleEuclideanScale(g);
  ASSERT_GT(scale, 0);
  for (const NodeId t : testing_util::SampleNodes(g, 5, 99)) {
    const AStarHeuristic h = EuclideanHeuristic(g, t, scale);
    for (const NodeId s : testing_util::SampleNodes(g, 5, 7)) {
      const AStarResult astar = RunAStar(g, s, t, h);
      EXPECT_EQ(astar.distance, DijkstraDistance(g, s, t));
    }
  }
}

TEST(AStarTest, GuidedSearchExpandsNoMoreThanDijkstra) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 2000, .seed = 5});
  const double scale = MaxAdmissibleEuclideanScale(g);
  size_t guided = 0, unguided = 0;
  for (const NodeId s : testing_util::SampleNodes(g, 8, 1)) {
    const NodeId t = (s + 1000) % static_cast<NodeId>(g.num_nodes());
    guided += RunAStar(g, s, t, EuclideanHeuristic(g, t, scale))
                  .nodes_expanded;
    unguided += RunAStar(g, s, t, ZeroHeuristic()).nodes_expanded;
  }
  EXPECT_LE(guided, unguided);
}

TEST(AStarTest, UnreachableTarget) {
  RoadNetwork g;
  g.AddNode({0, 0});
  g.AddNode({1, 0});
  const AStarResult r = RunAStar(g, 0, 1, ZeroHeuristic());
  EXPECT_EQ(r.distance, kInfiniteWeight);
  EXPECT_TRUE(r.path.empty());
}

TEST(AStarTest, SourceEqualsTarget) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const AStarResult r = RunAStar(g, 3, 3, ZeroHeuristic());
  EXPECT_EQ(r.distance, 0);
  EXPECT_EQ(r.path, std::vector<NodeId>({3}));
}

TEST(AStarTest, MaxAdmissibleScaleIsAdmissible) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 2});
  const double scale = MaxAdmissibleEuclideanScale(g);
  for (EdgeId e = 0; e < g.num_edge_slots(); ++e) {
    const auto [u, v] = g.edge_endpoints(e);
    const auto& pu = g.position(u);
    const auto& pv = g.position(v);
    const double euclid = std::hypot(pu.x - pv.x, pu.y - pv.y);
    EXPECT_LE(scale * euclid, g.edge_weight(e) + 1e-9);
  }
}

}  // namespace
}  // namespace dsig
