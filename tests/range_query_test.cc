#include "query/range_query.h"

#include <gtest/gtest.h>

#include "core/signature_builder.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::vector<uint32_t> BruteForceRange(
    const std::vector<std::vector<Weight>>& truth, NodeId n, Weight eps) {
  std::vector<uint32_t> result;
  for (uint32_t o = 0; o < truth.size(); ++o) {
    if (truth[o][n] <= eps) result.push_back(o);
  }
  return result;
}

TEST(RangeQueryTest, SmallNetworkHandChecked) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {1, 5, 6};
  const auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  // From node 0: d(0,1)=4, d(0,5)=12, d(0,6)=11.
  EXPECT_EQ(SignatureRangeQuery(*index, 0, 4).objects,
            std::vector<uint32_t>({0}));
  EXPECT_EQ(SignatureRangeQuery(*index, 0, 11).objects,
            std::vector<uint32_t>({0, 2}));
  EXPECT_EQ(SignatureRangeQuery(*index, 0, 12).objects,
            std::vector<uint32_t>({0, 1, 2}));
  EXPECT_TRUE(SignatureRangeQuery(*index, 0, 3).objects.empty());
}

TEST(RangeQueryTest, ZeroEpsilonFindsCoLocatedObjectOnly) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {2, 4}, {.t = 4, .c = 2});
  EXPECT_EQ(SignatureRangeQuery(*index, 4, 0).objects,
            std::vector<uint32_t>({1}));
  EXPECT_TRUE(SignatureRangeQuery(*index, 0, 0).objects.empty());
}

class RangeQueryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeQueryPropertyTest, MatchesBruteForce) {
  const RoadNetwork g =
      MakeRandomPlanar({.num_nodes = 400, .seed = GetParam()});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, GetParam());
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  for (const NodeId n : testing_util::SampleNodes(g, 25, GetParam() + 1)) {
    for (const Weight eps : {0.0, 3.0, 10.0, 25.0, 60.0, 1e9}) {
      EXPECT_EQ(SignatureRangeQuery(*index, n, eps).objects,
                BruteForceRange(truth, n, eps))
          << "node " << n << " eps " << eps;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeQueryPropertyTest,
                         ::testing::Values(1, 9, 27));

TEST(RangeQueryTest, BoundaryEpsilonIncludesExactMatches) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {5}, {.t = 4, .c = 2});
  // d(0, 5) = 12 exactly; eps = 12 must include it, eps just below not.
  EXPECT_EQ(SignatureRangeQuery(*index, 0, 12).objects.size(), 1u);
  EXPECT_TRUE(SignatureRangeQuery(*index, 0, 11.999).objects.empty());
}

TEST(RangeQueryTest, CategoryPruningAvoidsMostRefinement) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 800, .seed = 2});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 3);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  size_t refined = 0, total = 0;
  for (const NodeId n : testing_util::SampleNodes(g, 20, 4)) {
    const RangeQueryResult r = SignatureRangeQuery(*index, n, 20);
    refined += r.refined;
    total += objects.size();
  }
  // Most objects resolve from their category alone.
  EXPECT_LT(refined, total / 2);
}

}  // namespace
}  // namespace dsig
