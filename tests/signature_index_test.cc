#include "core/signature_index.h"

#include <gtest/gtest.h>

#include "core/distance_ops.h"
#include "core/signature_builder.h"
#include "graph/ccam.h"
#include "graph/graph_generator.h"
#include "query/range_query.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

TEST(SignatureIndexTest, ReadEntryMatchesReadRow) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, 3);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  for (const NodeId n : testing_util::SampleNodes(g, 15, 1)) {
    const SignatureRow row = index->ReadRow(n);
    for (uint32_t o = 0; o < objects.size(); ++o) {
      const SignatureEntry entry = index->ReadEntry(n, o);
      EXPECT_EQ(entry.category, row[o].category);
      EXPECT_EQ(entry.link, row[o].link);
      EXPECT_FALSE(entry.compressed);
    }
  }
}

TEST(SignatureIndexTest, StorageChargesRowPages) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 2000, .seed = 6});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 6);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  BufferManager buffer(0);
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  const NetworkStore network(g, order, &buffer);
  index->AttachStorage(&buffer, &network, order);

  index->ReadRow(77);
  const uint64_t after_row = buffer.stats().logical_accesses;
  EXPECT_GE(after_row, 1u);
  index->ReadEntry(77, 0);
  // A single component costs exactly one page.
  EXPECT_EQ(buffer.stats().logical_accesses, after_row + 1);
}

TEST(SignatureIndexTest, BacktrackingChargesAdjacencyAndSignaturePages) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 1000, .seed = 7});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 7);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  BufferManager buffer(0);
  const std::vector<NodeId> order = ComputeCcamOrder(g, 64);
  const NetworkStore network(g, order, &buffer);
  index->AttachStorage(&buffer, &network, order);

  buffer.ResetStats();
  // Find a node far from some object and retrieve the exact distance; every
  // backtracking hop charges pages.
  const NodeId n = order.back();
  uint32_t far_object = 0;
  const SignatureRow row = index->ReadRow(n);
  for (uint32_t o = 0; o < row.size(); ++o) {
    if (row[o].category > row[far_object].category) far_object = o;
  }
  buffer.ResetStats();
  ExactDistance(*index, n, far_object);
  EXPECT_GT(buffer.stats().logical_accesses, 2u);
}

TEST(SignatureIndexTest, CcamOrderReducesPhysicalReads) {
  // The same workload under CCAM order vs node-id order: clustering should
  // not lose (and normally wins) on physical page reads with a small buffer.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 3000, .seed = 4});
  const std::vector<NodeId> objects = UniformDataset(g, 0.02, 4);
  const auto run = [&](const std::vector<NodeId>& order) {
    const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
    BufferManager buffer(16);
    const NetworkStore network(g, order, &buffer);
    index->AttachStorage(&buffer, &network, order);
    for (const NodeId q : testing_util::SampleNodes(g, 60, 2)) {
      SignatureRangeQuery(*index, q, 30);
    }
    return buffer.stats().physical_accesses;
  };
  std::vector<NodeId> identity(g.num_nodes());
  for (NodeId n = 0; n < g.num_nodes(); ++n) identity[n] = n;
  const uint64_t ccam = run(ComputeCcamOrder(g, 64));
  const uint64_t naive = run(identity);
  EXPECT_LE(ccam, naive + naive / 10);
}

TEST(SignatureIndexTest, ReplaceRowCountsChanges) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const std::vector<NodeId> objects = {1, 5};
  auto index = BuildSignatureIndex(g, objects, {.t = 4, .c = 2});
  const SignatureRow row = index->ReadRow(0);
  // Writing the identical row back changes nothing.
  SignatureRow same = row;
  index->compressor().Compress(&same);
  EXPECT_EQ(index->ReplaceRow(0, same), 0u);
  // Bump one category: exactly one change.
  SignatureRow tweaked = row;
  tweaked[0].category = static_cast<uint8_t>(tweaked[0].category + 1);
  EXPECT_EQ(index->ReplaceRow(0, tweaked), 1u);
}

TEST(SignatureIndexTest, SizeStatsTrackReplaceRow) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  auto index = BuildSignatureIndex(g, {1, 5}, {.t = 4, .c = 2});
  SignatureRow row = index->ReadRow(0);
  index->ReplaceRow(0, row);  // resolved rewrite may change the stored size
  // Invariant: the running total always equals the sum over encoded rows.
  uint64_t total = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    total += index->encoded_row(n).size_bits;
  }
  EXPECT_EQ(index->size_stats().compressed_bits, total);
}

}  // namespace
}  // namespace dsig
