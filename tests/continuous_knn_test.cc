#include "query/continuous_knn.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/signature_builder.h"
#include "graph/dijkstra.h"
#include "graph/graph_generator.h"
#include "tests/test_util.h"
#include "workload/dataset_generator.h"

namespace dsig {
namespace {

std::vector<NodeId> RandomWalkPath(const RoadNetwork& g, NodeId start,
                                   size_t length, uint64_t seed) {
  Random rng(seed);
  std::vector<NodeId> path = {start};
  NodeId at = start;
  while (path.size() < length) {
    const auto& adjacency = g.adjacency(at);
    std::vector<NodeId> live;
    for (const AdjacencyEntry& e : adjacency) {
      if (!e.removed) live.push_back(e.to);
    }
    if (live.empty()) break;
    at = live[rng.NextUint64(live.size())];
    path.push_back(at);
  }
  return path;
}

TEST(ContinuousKnnTest, SingleNodePath) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1, 5, 6}, {.t = 4, .c = 2});
  const CnnResult r = SignatureContinuousKnn(*index, {0}, 2);
  ASSERT_EQ(r.intervals.size(), 1u);
  EXPECT_EQ(r.intervals[0].first_index, 0u);
  EXPECT_EQ(r.intervals[0].last_index, 0u);
  EXPECT_EQ(r.intervals[0].objects.size(), 2u);
}

TEST(ContinuousKnnTest, IntervalsCoverPathExactly) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 400, .seed = 3});
  const std::vector<NodeId> objects = UniformDataset(g, 0.05, 3);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const std::vector<NodeId> path = RandomWalkPath(g, 7, 30, 1);
  const CnnResult r = SignatureContinuousKnn(*index, path, 3);
  ASSERT_FALSE(r.intervals.empty());
  EXPECT_EQ(r.intervals.front().first_index, 0u);
  EXPECT_EQ(r.intervals.back().last_index, path.size() - 1);
  for (size_t i = 1; i < r.intervals.size(); ++i) {
    EXPECT_EQ(r.intervals[i].first_index,
              r.intervals[i - 1].last_index + 1);
  }
}

TEST(ContinuousKnnTest, ResultsMatchPerNodeBruteForce) {
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 300, .seed = 8});
  const std::vector<NodeId> objects = UniformDataset(g, 0.06, 8);
  const auto index = BuildSignatureIndex(g, objects, {.t = 5, .c = 2});
  const auto truth = testing_util::BruteForceDistances(g, objects);
  const std::vector<NodeId> path = RandomWalkPath(g, 11, 20, 2);
  const size_t k = 4;
  const CnnResult r = SignatureContinuousKnn(*index, path, k);
  for (const CnnInterval& interval : r.intervals) {
    for (size_t i = interval.first_index; i <= interval.last_index; ++i) {
      // The interval's result must be a correct kNN set (by distance
      // multiset) at EVERY position it claims validity for.
      std::vector<Weight> expected;
      for (const auto& row : truth) expected.push_back(row[path[i]]);
      std::sort(expected.begin(), expected.end());
      expected.resize(k);
      std::vector<Weight> got;
      for (const uint32_t o : interval.objects) {
        got.push_back(truth[o][path[i]]);
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "position " << i;
    }
  }
}

TEST(ContinuousKnnTest, StableNeighborhoodsMergeIntervals) {
  // A path that stays inside one neighbourhood should produce far fewer
  // intervals than path nodes.
  const RoadNetwork g = MakeRandomPlanar({.num_nodes = 2000, .seed = 5});
  const std::vector<NodeId> objects = UniformDataset(g, 0.005, 5);
  const auto index = BuildSignatureIndex(g, objects, {.t = 10, .c = 2.7});
  const std::vector<NodeId> path = RandomWalkPath(g, 42, 60, 3);
  const CnnResult r = SignatureContinuousKnn(*index, path, 2);
  EXPECT_LT(r.intervals.size(), path.size() / 2);
}

TEST(ContinuousKnnTest, RejectsNonWalkPaths) {
  const RoadNetwork g = testing_util::MakeSevenNodeNetwork();
  const auto index = BuildSignatureIndex(g, {1}, {.t = 4, .c = 2});
  EXPECT_DEATH(SignatureContinuousKnn(*index, {0, 6}, 1), "walk");
}

}  // namespace
}  // namespace dsig
