#include "core/signature.h"

#include <gtest/gtest.h>

#include "core/encoding.h"
#include "util/random.h"

namespace dsig {
namespace {

SignatureRow RandomRow(Random* rng, size_t size, int categories, int max_link,
                       bool allow_compressed) {
  SignatureRow row(size);
  for (SignatureEntry& entry : row) {
    entry.category = static_cast<uint8_t>(rng->NextUint64(categories));
    entry.link = static_cast<uint8_t>(rng->NextUint64(max_link + 1));
    entry.compressed = allow_compressed && rng->NextBool(0.4);
  }
  return row;
}

TEST(SignatureCodecTest, RoundTripWithoutFlags) {
  Random rng(3);
  const SignatureCodec codec(HuffmanCode::ReverseZeroPadding(8), 3, false);
  const SignatureRow row = RandomRow(&rng, 100, 8, 7, false);
  const EncodedRow encoded = codec.EncodeRow(row);
  EXPECT_EQ(codec.DecodeRow(encoded), row);
}

TEST(SignatureCodecTest, RoundTripWithFlags) {
  Random rng(4);
  const SignatureCodec codec(HuffmanCode::ReverseZeroPadding(8), 3, true);
  SignatureRow row = RandomRow(&rng, 100, 8, 7, true);
  const EncodedRow encoded = codec.EncodeRow(row);
  const SignatureRow decoded = codec.DecodeRow(encoded);
  ASSERT_EQ(decoded.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(decoded[i].compressed, row[i].compressed);
    if (!row[i].compressed) {
      EXPECT_EQ(decoded[i].category, row[i].category);
      EXPECT_EQ(decoded[i].link, row[i].link);
    } else {
      EXPECT_EQ(decoded[i].category, kUnresolvedCategory);
      EXPECT_EQ(decoded[i].link, kUnresolvedLink);
    }
  }
}

TEST(SignatureCodecTest, CompressedEntriesCostOneBit) {
  const SignatureCodec codec(HuffmanCode::ReverseZeroPadding(4), 3, true);
  SignatureRow all_compressed(64);
  for (SignatureEntry& e : all_compressed) e.compressed = true;
  const EncodedRow encoded = codec.EncodeRow(all_compressed);
  EXPECT_EQ(encoded.size_bits, 64u);
}

TEST(SignatureCodecTest, EmptyRow) {
  const SignatureCodec codec(HuffmanCode::ReverseZeroPadding(4), 3, false);
  const EncodedRow encoded = codec.EncodeRow({});
  EXPECT_EQ(encoded.size_bits, 0u);
  EXPECT_TRUE(codec.DecodeRow(encoded).empty());
}

TEST(SignatureCodecTest, DecodeEntryMatchesDecodeRow) {
  Random rng(9);
  const SignatureCodec codec(HuffmanCode::ReverseZeroPadding(12), 4, true);
  const SignatureRow row = RandomRow(&rng, 200, 12, 15, true);
  const EncodedRow encoded = codec.EncodeRow(row);
  const SignatureRow decoded = codec.DecodeRow(encoded);
  for (uint32_t i = 0; i < row.size(); ++i) {
    uint64_t offset = 0;
    const SignatureEntry entry = codec.DecodeEntry(encoded, i, &offset);
    EXPECT_EQ(entry, decoded[i]) << "entry " << i;
    EXPECT_LT(offset, encoded.size_bits);
  }
}

TEST(SignatureCodecTest, EntryOffsetsAreMonotone) {
  Random rng(10);
  const SignatureCodec codec(HuffmanCode::ReverseZeroPadding(6), 3, false);
  const SignatureRow row = RandomRow(&rng, 150, 6, 7, false);
  const EncodedRow encoded = codec.EncodeRow(row);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < row.size(); ++i) {
    uint64_t offset = 0;
    codec.DecodeEntry(encoded, i, &offset);
    if (i > 0) {
      EXPECT_GT(offset, prev);
    }
    prev = offset;
  }
}

TEST(SignatureCodecTest, CheckpointsEveryInterval) {
  Random rng(11);
  const SignatureCodec codec(HuffmanCode::ReverseZeroPadding(6), 3, false);
  const SignatureRow row = RandomRow(&rng, 100, 6, 7, false);
  const EncodedRow encoded = codec.EncodeRow(row);
  EXPECT_EQ(encoded.checkpoints.size(),
            (row.size() + SignatureCodec::kCheckpointInterval - 1) /
                SignatureCodec::kCheckpointInterval);
  EXPECT_EQ(encoded.checkpoints[0], 0u);
}

TEST(SignatureCodecTest, FixedCodecRoundTrip) {
  Random rng(12);
  const SignatureCodec codec(
      BuildCategoryCode(CategoryCodeKind::kFixed, 10, {}), 3, false);
  const SignatureRow row = RandomRow(&rng, 64, 10, 7, false);
  EXPECT_EQ(codec.DecodeRow(codec.EncodeRow(row)), row);
}

}  // namespace
}  // namespace dsig
