#include "core/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/dijkstra.h"
#include "graph/graph_generator.h"

namespace dsig {
namespace {

TEST(GridCostModelTest, NodesWithinRadiusFormula) {
  EXPECT_EQ(GridNodesWithinRadius(0), 0);
  EXPECT_EQ(GridNodesWithinRadius(1), 3);   // paper counts 2i^2 + i
  EXPECT_EQ(GridNodesWithinRadius(2), 10);
  EXPECT_EQ(GridNodesWithinRadius(3), 21);
}

TEST(GridCostModelTest, FormulaApproximatesActualGrid) {
  // The exact diamond count within network radius i on a unit grid is
  // 2i^2 + 2i + 1 (including the centre); the paper's 2i^2 + i is a slight
  // undercount that converges in ratio as i grows. Verify against a real
  // grid that the paper's closed form is asymptotically right.
  const int side = 41;
  const RoadNetwork g = MakeGrid({.width = side, .height = side});
  const NodeId center = static_cast<NodeId>((side / 2) * side + side / 2);
  const ShortestPathTree tree = RunDijkstra(g, center);
  for (int radius = 4; radius <= 10; ++radius) {
    size_t count = 0;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (tree.dist[n] <= radius) ++count;
    }
    const double relative_error =
        std::abs(GridNodesWithinRadius(radius) - static_cast<double>(count)) /
        static_cast<double>(count);
    EXPECT_LT(relative_error, 0.15) << "radius " << radius;
  }
}

TEST(GridCostModelTest, CostIsPositiveAndScalesWithDensity) {
  const GridCostModel sparse{.density = 0.001, .spreading = 500};
  const GridCostModel dense{.density = 0.01, .spreading = 500};
  const double cs = sparse.AverageCost(15, 2.7);
  const double cd = dense.AverageCost(15, 2.7);
  EXPECT_GT(cs, 0);
  EXPECT_NEAR(cd / cs, 10.0, 0.5);  // cost linear in p
}

TEST(GridCostModelTest, ExtremePartitionsAreWorse) {
  const GridCostModel model{.density = 0.01, .spreading = 1000};
  const GridCostModel::Optimum opt = model.FindOptimum();
  // A single giant first category loses badly to the optimum, and the
  // paper's closed-form parameters are never better than the numeric argmin.
  EXPECT_LT(opt.cost, model.AverageCost(1000, 2.7));
  EXPECT_LE(opt.cost, model.PaperOptimum().cost);
}

TEST(GridCostModelTest, OptimumIsDensityIndependent) {
  // The paper's "interesting observation" in §5.1: the optimal c and T do
  // not depend on the dataset density p. In the direct model this is exact —
  // cost is linear in p, so the argmin cannot move.
  const GridCostModel a{.density = 0.001, .spreading = 1000};
  const GridCostModel b{.density = 0.05, .spreading = 1000};
  const auto oa = a.FindOptimum();
  const auto ob = b.FindOptimum();
  EXPECT_EQ(oa.c, ob.c);
  EXPECT_EQ(oa.t, ob.t);
  EXPECT_NEAR(ob.cost / oa.cost, 50.0, 1.0);  // = density ratio
}

TEST(GridCostModelTest, ClosedFormDivergesFromDirectEvaluation) {
  // Reproduction finding (documented in EXPERIMENTS.md): the paper's
  // closed-form optimum T* = sqrt(SP/e), c* = e does NOT minimize the
  // directly-evaluated sums of Equations 1-2 — the numeric argmin uses a
  // smaller growth factor. This test pins the divergence so a future change
  // to the model that silently "fixes" it will be noticed.
  const GridCostModel model{.density = 0.01, .spreading = 1000};
  const auto numeric = model.FindOptimum();
  const auto paper = model.PaperOptimum();
  EXPECT_LT(numeric.c, 2.0);
  EXPECT_GT(paper.cost, 1.5 * numeric.cost);
}

}  // namespace
}  // namespace dsig
