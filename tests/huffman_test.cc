#include "util/huffman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/bitstream.h"
#include "util/random.h"

namespace dsig {
namespace {

std::vector<int> EncodeDecodeAll(const HuffmanCode& code, int repeats) {
  BitWriter writer;
  std::vector<int> symbols;
  for (int r = 0; r < repeats; ++r) {
    for (int s = 0; s < code.num_symbols(); ++s) {
      symbols.push_back(s);
      code.Encode(s, &writer);
    }
  }
  BitReader reader(writer.bytes().data(), writer.size_bits());
  std::vector<int> decoded;
  for (size_t i = 0; i < symbols.size(); ++i) {
    decoded.push_back(code.Decode(&reader));
  }
  EXPECT_TRUE(reader.AtEnd());
  return decoded;
}

TEST(HuffmanTest, SingleSymbolAlphabet) {
  const HuffmanCode code = HuffmanCode::FromFrequencies({42});
  EXPECT_EQ(code.num_symbols(), 1);
  EXPECT_EQ(code.length(0), 1);
  EXPECT_EQ(EncodeDecodeAll(code, 3), std::vector<int>({0, 0, 0}));
}

TEST(HuffmanTest, TwoSymbolsGetOneBitEach) {
  const HuffmanCode code = HuffmanCode::FromFrequencies({10, 90});
  EXPECT_EQ(code.length(0), 1);
  EXPECT_EQ(code.length(1), 1);
}

TEST(HuffmanTest, SkewedFrequenciesGiveShortCodesToCommonSymbols) {
  const HuffmanCode code = HuffmanCode::FromFrequencies({1, 2, 4, 8, 100});
  EXPECT_EQ(code.length(4), 1);
  EXPECT_GT(code.length(0), code.length(4));
  EXPECT_GE(code.length(0), code.length(3));
}

TEST(HuffmanTest, RoundTripRandomFrequencies) {
  Random rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextUint64(24));
    std::vector<uint64_t> freqs;
    for (int i = 0; i < n; ++i) freqs.push_back(rng.NextUint64(1000));
    const HuffmanCode code = HuffmanCode::FromFrequencies(freqs);
    std::vector<int> expected;
    for (int r = 0; r < 3; ++r) {
      for (int s = 0; s < n; ++s) expected.push_back(s);
    }
    EXPECT_EQ(EncodeDecodeAll(code, 3), expected);
  }
}

TEST(HuffmanTest, KraftEqualityHolds) {
  // Huffman codes are complete: sum 2^-len == 1.
  const HuffmanCode code = HuffmanCode::FromFrequencies({3, 1, 4, 1, 5, 9, 2});
  double kraft = 0;
  for (int s = 0; s < code.num_symbols(); ++s) {
    kraft += std::pow(2.0, -code.length(s));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-12);
}

TEST(HuffmanTest, FixedLengthCode) {
  const HuffmanCode code = HuffmanCode::FixedLength(5);
  for (int s = 0; s < 5; ++s) EXPECT_EQ(code.length(s), 3);
  EXPECT_EQ(EncodeDecodeAll(code, 2),
            std::vector<int>({0, 1, 2, 3, 4, 0, 1, 2, 3, 4}));
}

TEST(HuffmanTest, FixedLengthPowerOfTwo) {
  const HuffmanCode code = HuffmanCode::FixedLength(8);
  for (int s = 0; s < 8; ++s) EXPECT_EQ(code.length(s), 3);
}

TEST(HuffmanTest, ReverseZeroPaddingShape) {
  // Paper §5.2: last category = "1", each earlier category one bit longer;
  // category 0 completes the code space (same length as category 1).
  const HuffmanCode code = HuffmanCode::ReverseZeroPadding(5);
  EXPECT_EQ(code.length(4), 1);
  EXPECT_EQ(code.length(3), 2);
  EXPECT_EQ(code.length(2), 3);
  EXPECT_EQ(code.length(1), 4);
  EXPECT_EQ(code.length(0), 4);
}

TEST(HuffmanTest, ReverseZeroPaddingRoundTrip) {
  for (int m : {1, 2, 3, 8, 31}) {
    const HuffmanCode code = HuffmanCode::ReverseZeroPadding(m);
    std::vector<int> expected;
    for (int s = 0; s < m; ++s) expected.push_back(s);
    EXPECT_EQ(EncodeDecodeAll(code, 1), expected) << "m=" << m;
  }
}

TEST(HuffmanTest, CodesLongerThanTheDecodeTableRoundTrip) {
  // A large skewed alphabet forces codes past kDecodeTableBits, exercising
  // the trie fallback behind the table fast path.
  std::vector<uint64_t> freqs;
  uint64_t f = 1;
  for (int s = 0; s < 24; ++s) {
    freqs.push_back(f);
    if (f < (uint64_t{1} << 40)) f *= 2;
  }
  const HuffmanCode code = HuffmanCode::FromFrequencies(freqs);
  EXPECT_GT(code.length(0), HuffmanCode::kDecodeTableBits);
  std::vector<int> expected;
  for (int r = 0; r < 2; ++r) {
    for (int s = 0; s < code.num_symbols(); ++s) expected.push_back(s);
  }
  EXPECT_EQ(EncodeDecodeAll(code, 2), expected);
}

TEST(HuffmanTest, LargeRzpAlphabetUsesTheUnaryFallback) {
  // m = 40 puts most categories past the decode table; those decode through
  // the bounded zero-scan. Category 0 (m-1 zeros, no terminator) included.
  const HuffmanCode code = HuffmanCode::ReverseZeroPadding(40);
  std::vector<int> expected;
  for (int s = 0; s < 40; ++s) expected.push_back(s);
  EXPECT_EQ(EncodeDecodeAll(code, 1), expected);
}

TEST(HuffmanTest, TryDecodeReportsTruncationMidLongCode) {
  const HuffmanCode code = HuffmanCode::ReverseZeroPadding(40);
  BitWriter writer;
  code.Encode(5, &writer);  // 34 zeros then a one
  // Truncate inside the zero run: every prefix must fail cleanly.
  for (size_t bits = 0; bits < 34; ++bits) {
    BitReader reader(writer.bytes().data(), bits);
    int symbol = -1;
    EXPECT_FALSE(code.TryDecode(&reader, &symbol)) << bits << " bits";
  }
  BitReader reader(writer.bytes().data(), writer.size_bits());
  int symbol = -1;
  ASSERT_TRUE(code.TryDecode(&reader, &symbol));
  EXPECT_EQ(symbol, 5);
}

TEST(HuffmanTest, TryDecodeReportsTruncationMidShortCode) {
  // Truncation inside a table-resolved code must be caught too: the table
  // matches against a zero-padded window, so the explicit bounds check is
  // what rejects it.
  const HuffmanCode code = HuffmanCode::FixedLength(8);  // 3-bit codes
  BitWriter writer;
  code.Encode(7, &writer);
  for (size_t bits = 0; bits < 3; ++bits) {
    BitReader reader(writer.bytes().data(), bits);
    int symbol = -1;
    EXPECT_FALSE(code.TryDecode(&reader, &symbol)) << bits << " bits";
  }
}

TEST(HuffmanTest, DecodeWindowMatchesDecode) {
  Random rng(21);
  for (const int m : {2, 5, 12, 17}) {
    const HuffmanCode code = HuffmanCode::ReverseZeroPadding(m);
    for (int s = 0; s < m; ++s) {
      // Embed the code in random following bits; a window decode must see
      // exactly the same symbol and length as the streaming decoder.
      BitWriter writer;
      code.Encode(s, &writer);
      writer.WriteBits(rng.NextUint64(), 36);
      BitReader reader(writer.bytes().data(), writer.size_bits());
      const uint64_t window = reader.PeekBits(57);
      int symbol = -1;
      const int len = code.DecodeWindow(window, &symbol);
      if (code.length(s) <= HuffmanCode::kDecodeTableBits) {
        EXPECT_EQ(len, code.length(s)) << "m=" << m << " s=" << s;
        EXPECT_EQ(symbol, s) << "m=" << m << " s=" << s;
      } else {
        EXPECT_EQ(len, 0) << "m=" << m << " s=" << s;  // fallback signal
      }
      EXPECT_EQ(code.Decode(&reader), s);
    }
  }
}

// Theorem 5.1: under exponential partition with c > 3/2 (category k holding
// more objects than all earlier categories combined), reverse zero padding
// achieves the Huffman-optimal average code length.
class RzpOptimalityTest : public ::testing::TestWithParam<double> {};

TEST_P(RzpOptimalityTest, MatchesHuffmanWhenEachCategoryDominates) {
  const double c = GetParam();
  const int m = 10;
  // Object counts grow like the grid analysis: O(ub^2) per category, so
  // |B_k| ~ c^{2k} (1 - c^-2): each category dwarfs the earlier ones when
  // c > 3/2... approximate with the category mass used in the paper's proof.
  std::vector<uint64_t> freqs;
  double bound = 10;
  double prev_area = 0;
  for (int k = 0; k < m; ++k) {
    const double area = 2 * bound * bound + bound;
    freqs.push_back(static_cast<uint64_t>(area - prev_area));
    prev_area = area;
    bound *= c;
  }
  const HuffmanCode rzp = HuffmanCode::ReverseZeroPadding(m);
  const HuffmanCode optimal = HuffmanCode::FromFrequencies(freqs);
  EXPECT_NEAR(rzp.AverageLength(freqs), optimal.AverageLength(freqs), 1e-9)
      << "c=" << c;
}

INSTANTIATE_TEST_SUITE_P(GrowthFactors, RzpOptimalityTest,
                         ::testing::Values(1.6, 2.0, 2.718281828, 4.0, 6.0));

TEST(HuffmanTest, RzpSuboptimalWhenDistributionInverts) {
  // With mass concentrated in the FIRST category the RZP premise fails and
  // Huffman must win.
  const std::vector<uint64_t> freqs = {1000, 10, 10, 10, 10};
  const HuffmanCode rzp = HuffmanCode::ReverseZeroPadding(5);
  const HuffmanCode optimal = HuffmanCode::FromFrequencies(freqs);
  EXPECT_GT(rzp.AverageLength(freqs), optimal.AverageLength(freqs));
}

TEST(HuffmanTest, RzpAverageLengthNearOneForLargeC) {
  // Paper §5.2: average code length approaches c^2/(c^2-1); about 1.2 bits
  // at c = e.
  const double c = std::exp(1.0);
  const int m = 12;
  std::vector<uint64_t> freqs;
  double bound = 10;
  double prev = 0;
  for (int k = 0; k < m; ++k) {
    const double area = 2 * bound * bound + bound;
    freqs.push_back(static_cast<uint64_t>(area - prev));
    prev = area;
    bound *= c;
  }
  const double avg = HuffmanCode::ReverseZeroPadding(m).AverageLength(freqs);
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, 1.35);
}

}  // namespace
}  // namespace dsig
