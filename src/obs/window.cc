#include "obs/window.h"

#include <algorithm>

namespace dsig {
namespace obs {

WindowedHistogram::WindowedHistogram(const WindowOptions& options)
    : options_(options) {
  if (options_.slot_ns == 0) options_.slot_ns = 1;
  // Two slots minimum: one live, one the snapshot cap excludes.
  options_.num_slots = std::max(options_.num_slots, 2);
  slots_ = std::make_unique<Slot[]>(static_cast<size_t>(options_.num_slots));
}

WindowedHistogram::Slot* WindowedHistogram::SlotFor(uint64_t tick,
                                                    bool* fresh) {
  Slot& slot =
      slots_[tick % static_cast<uint64_t>(options_.num_slots)];
  // Fast path: the slot already belongs to this interval. Acquire pairs with
  // the release in the rotation below, so a recorder that sees the new tick
  // also sees the Reset() that preceded it.
  if (slot.tick.load(std::memory_order_acquire) != tick) {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    if (slot.tick.load(std::memory_order_relaxed) != tick) {
      slot.hist.Reset();
      slot.tick.store(tick, std::memory_order_release);
      if (fresh != nullptr) *fresh = true;
    }
  }
  return &slot;
}

void WindowedHistogram::RecordAt(double value, uint64_t now_ns) {
  SlotFor(now_ns / options_.slot_ns, nullptr)->hist.Record(value);
}

void WindowedHistogram::SnapshotWindowAt(uint64_t window_ns, uint64_t now_ns,
                                         Histogram* out) const {
  const uint64_t now_tick = now_ns / options_.slot_ns;
  uint64_t span = (window_ns + options_.slot_ns - 1) / options_.slot_ns;
  span = std::clamp<uint64_t>(
      span, 1, static_cast<uint64_t>(options_.num_slots) - 1);
  for (uint64_t back = 0; back < span && back <= now_tick; ++back) {
    const uint64_t tick = now_tick - back;
    const Slot& slot =
        slots_[tick % static_cast<uint64_t>(options_.num_slots)];
    if (slot.tick.load(std::memory_order_acquire) == tick) {
      out->Merge(slot.hist);
    }
  }
}

void WindowedHistogram::Reset() {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  for (int i = 0; i < options_.num_slots; ++i) {
    slots_[i].hist.Reset();
    slots_[i].tick.store(kNeverTick, std::memory_order_release);
  }
}

WindowedCounter::WindowedCounter(const WindowOptions& options)
    : options_(options) {
  if (options_.slot_ns == 0) options_.slot_ns = 1;
  options_.num_slots = std::max(options_.num_slots, 2);
  slots_ = std::make_unique<Slot[]>(static_cast<size_t>(options_.num_slots));
}

void WindowedCounter::AddAt(uint64_t delta, uint64_t now_ns) {
  const uint64_t tick = now_ns / options_.slot_ns;
  Slot& slot =
      slots_[tick % static_cast<uint64_t>(options_.num_slots)];
  if (slot.tick.load(std::memory_order_acquire) != tick) {
    std::lock_guard<std::mutex> lock(rotate_mu_);
    if (slot.tick.load(std::memory_order_relaxed) != tick) {
      slot.value.store(0, std::memory_order_relaxed);
      slot.tick.store(tick, std::memory_order_release);
    }
  }
  slot.value.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t WindowedCounter::SumWindowAt(uint64_t window_ns,
                                      uint64_t now_ns) const {
  const uint64_t now_tick = now_ns / options_.slot_ns;
  uint64_t span = (window_ns + options_.slot_ns - 1) / options_.slot_ns;
  span = std::clamp<uint64_t>(
      span, 1, static_cast<uint64_t>(options_.num_slots) - 1);
  uint64_t sum = 0;
  for (uint64_t back = 0; back < span && back <= now_tick; ++back) {
    const uint64_t tick = now_tick - back;
    const Slot& slot =
        slots_[tick % static_cast<uint64_t>(options_.num_slots)];
    if (slot.tick.load(std::memory_order_acquire) == tick) {
      sum += slot.value.load(std::memory_order_relaxed);
    }
  }
  return sum;
}

void WindowedCounter::Reset() {
  std::lock_guard<std::mutex> lock(rotate_mu_);
  for (int i = 0; i < options_.num_slots; ++i) {
    slots_[i].value.store(0, std::memory_order_relaxed);
    slots_[i].tick.store(kNeverTick, std::memory_order_release);
  }
}

}  // namespace obs
}  // namespace dsig
