#include "obs/bench_report.h"

#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "util/logging.h"

namespace dsig {
namespace obs {

BenchReport::BenchReport(std::string bench_name)
    : bench_(std::move(bench_name)) {}

void BenchReport::SetParam(const std::string& key, const std::string& value) {
  params_.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void BenchReport::SetParam(const std::string& key, double value) {
  params_.emplace_back(key, JsonNumber(value));
}

BenchReport::Point* BenchReport::AddPoint(const std::string& exhibit,
                                          const std::string& series,
                                          const std::string& x) {
  Exhibit* e = nullptr;
  for (Exhibit& candidate : exhibits_) {
    if (candidate.name == exhibit) {
      e = &candidate;
      break;
    }
  }
  if (e == nullptr) {
    exhibits_.push_back({exhibit, {}});
    e = &exhibits_.back();
  }
  Series* s = nullptr;
  for (Series& candidate : e->series) {
    if (candidate.name == series) {
      s = &candidate;
      break;
    }
  }
  if (s == nullptr) {
    e->series.push_back({series, {}});
    s = &e->series.back();
  }
  s->points.emplace_back();
  s->points.back().x = x;
  return &s->points.back();
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("bench", bench_);
  w.Field("schema_version", static_cast<uint64_t>(kBenchReportSchemaVersion));
  w.Key("params").BeginObject();
  for (const auto& [key, rendered] : params_) {
    // Values were pre-rendered as JSON by SetParam.
    w.Key(key);
    w.Raw(rendered);
  }
  w.EndObject();
  w.Key("exhibits").BeginArray();
  for (const Exhibit& exhibit : exhibits_) {
    w.BeginObject();
    w.Field("name", exhibit.name);
    w.Key("series").BeginArray();
    for (const Series& series : exhibit.series) {
      w.BeginObject();
      w.Field("name", series.name);
      w.Key("points").BeginArray();
      for (const Point& point : series.points) {
        w.BeginObject();
        w.Field("x", point.x);
        w.Field("queries", point.queries);
        w.Key("metrics").BeginObject();
        for (const auto& [name, value] : point.metrics) {
          w.Field(name, value);
        }
        w.EndObject();
        if (point.has_latency) {
          const HistogramSnapshot& s = point.latency;
          w.Key("latency_ms").BeginObject();
          w.Field("count", s.count);
          w.Field("mean", s.Mean());
          w.Field("min", s.min);
          w.Field("max", s.max);
          w.Field("p50", s.p50);
          w.Field("p90", s.p90);
          w.Field("p99", s.p99);
          w.EndObject();
        }
        if (!point.ops.empty()) {
          w.Key("ops").BeginObject();
          for (const auto& [name, value] : point.ops) {
            w.Field(name, value);
          }
          w.EndObject();
        }
        if (!point.buffer.empty()) {
          w.Key("buffer").BeginObject();
          for (const auto& [name, value] : point.buffer) {
            w.Field(name, value);
          }
          w.EndObject();
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool BenchReport::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    DSIG_LOG(Error) << "cannot open bench report " << path;
    return false;
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool newline_ok = std::fputc('\n', file) != EOF;
  const bool close_ok = std::fclose(file) == 0;
  if (written != json.size() || !newline_ok || !close_ok) {
    DSIG_LOG(Error) << "short write on bench report " << path;
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace dsig
