// Minimal JSON emission for the observability layer.
//
// Everything the repo emits as JSON (registry dumps, trace lines, bench
// reports) goes through this writer so escaping and number formatting are
// uniform and the output is always syntactically valid. It is append-only:
// callers drive Begin/End/Key in document order and the writer inserts the
// commas. No parsing — consumers are external (CI scripts, notebooks).
#ifndef DSIG_OBS_JSON_H_
#define DSIG_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsig {
namespace obs {

// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

// Formats a double as a JSON number. Non-finite values become null (JSON has
// no NaN/Inf). Integral values print without a fraction part.
std::string JsonNumber(double value);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view name);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  // Appends pre-rendered JSON verbatim (caller guarantees validity).
  JsonWriter& Raw(std::string_view json);

  // Shorthand: Key(name) + the value.
  JsonWriter& Field(std::string_view name, std::string_view value);
  JsonWriter& Field(std::string_view name, double value);
  JsonWriter& Field(std::string_view name, uint64_t value);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void MaybeComma();

  std::string out_;
  // One entry per open object/array: true once the first element is written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace obs
}  // namespace dsig

#endif  // DSIG_OBS_JSON_H_
