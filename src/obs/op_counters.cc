#include "obs/op_counters.h"

#include <string>

#include "obs/metrics.h"

namespace dsig {
namespace {

thread_local OpCounters g_counters;

}  // namespace

OpCounters& GlobalOpCounters() { return g_counters; }

void ResetOpCounters() { g_counters = OpCounters{}; }

void PublishOpCounters() {
  auto& registry = obs::MetricsRegistry::Global();
  g_counters.ForEach([&registry](const char* name, uint64_t value) {
    registry.GetCounter(std::string("ops.") + name)->Set(value);
  });
}

}  // namespace dsig
