// SLO engine: per-request-class objectives evaluated with fast/slow
// multi-window burn rates over the rolling-window metrics (obs/window.h).
//
// An objective declares, per request class ("knn", "join", ...), a latency
// budget and an availability target. A request is GOOD when it succeeded
// AND finished inside its budget; everything else (shed, deadline blown,
// error, over-budget success) burns error budget. The burn rate is
//
//   burn = (bad / total) / (1 - availability)
//
// i.e. 1.0 means "exactly consuming the allowed error budget"; 14.4 on a
// 99% objective means 14.4x the sustainable failure rate. Following the
// multi-window multi-burn-rate recipe (Google SRE workbook, scaled down to
// a single process), state is derived from TWO windows so alerts are both
// fast and non-flappy:
//
//   critical  fast AND slow windows both burn >= critical threshold
//   warning   fast AND slow windows both burn >= warn threshold
//   ok        otherwise (an empty fast window burns 0 -> recovery is
//             automatic once the bad traffic ages out)
//
// Record() additionally answers "did THIS request breach its objective" —
// the tail-sampling trigger the serve path uses for its slow-query log.
//
// Thread safety: Record/burn computation are lock-free (windowed shards);
// registry gauge publication takes only the registry name-lookup mutex at
// construction. All time-taking calls have *At twins for deterministic
// tests.
#ifndef DSIG_OBS_SLO_H_
#define DSIG_OBS_SLO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/window.h"

namespace dsig {
namespace obs {

enum class SloState : uint8_t { kOk = 0, kWarning = 1, kCritical = 2 };
const char* SloStateName(SloState state);

struct SloObjective {
  std::string name;               // request class, e.g. "knn"
  double latency_budget_ms = 100;
  double availability = 0.99;     // good-request target; budget = 1 - this
};

struct SloWindows {
  uint64_t fast_ns = 10ull * 1000 * 1000 * 1000;  // 10 s
  uint64_t slow_ns = 60ull * 1000 * 1000 * 1000;  // 60 s
  uint64_t slot_ns = 1ull * 1000 * 1000 * 1000;   // 1 s ring shards
  double critical_burn = 14.4;  // SRE workbook's fast-page threshold
  double warn_burn = 6.0;
};

// Point-in-time health of one class; plain data, wire- and JSON-friendly
// (serve/protocol.h ships a vector of these in the kStats tail).
struct SloClassHealth {
  std::string name;
  SloState state = SloState::kOk;
  double latency_budget_ms = 0;
  double availability = 0;
  double fast_burn = 0;
  double slow_burn = 0;
  uint64_t fast_total = 0;
  uint64_t fast_bad = 0;
  uint64_t slow_total = 0;
  uint64_t slow_bad = 0;
  // Latency over the slow window vs the process lifetime — the pair that
  // shows windows moving on while the lifetime histogram never forgets.
  double window_p50_ms = 0;
  double window_p99_ms = 0;
  uint64_t window_count = 0;
  double lifetime_p99_ms = 0;
  uint64_t lifetime_count = 0;
};

class SloEngine {
 public:
  SloEngine(std::vector<SloObjective> objectives, const SloWindows& windows);

  size_t num_classes() const { return classes_.size(); }
  // -1 when no objective covers `name`.
  int ClassIndex(const std::string& name) const;
  const SloObjective& objective(int class_index) const {
    return classes_[static_cast<size_t>(class_index)]->objective;
  }
  const SloWindows& windows() const { return windows_; }

  // Records one finished request. `ok` means the server produced the
  // intended answer (not shed / not errored / deadline not blown).
  // `executed` gates the latency shards: a shed request burns availability
  // but must not pollute the latency distribution with its ~0ms turnaround.
  // Returns true when the request breached its class objective — the
  // caller's tail-sampling trigger. Out-of-range class indexes are ignored
  // (returns false).
  bool Record(int class_index, double latency_ms, bool ok, bool executed) {
    return RecordAt(class_index, latency_ms, ok, executed, MonotonicNanos());
  }
  bool RecordAt(int class_index, double latency_ms, bool ok, bool executed,
                uint64_t now_ns);

  SloClassHealth HealthAt(int class_index, uint64_t now_ns) const;
  std::vector<SloClassHealth> ReportAll() const {
    return ReportAllAt(MonotonicNanos());
  }
  std::vector<SloClassHealth> ReportAllAt(uint64_t now_ns) const;

  // Worst state across classes.
  static SloState Overall(const std::vector<SloClassHealth>& classes);

  // Publishes slo.<class>.{burn_fast,burn_slow,state} gauges into the
  // global registry (state as 0/1/2), so Prometheus scrapes and registry
  // dumps carry SLO health without knowing the engine.
  void PublishGauges() const { PublishGaugesAt(MonotonicNanos()); }
  void PublishGaugesAt(uint64_t now_ns) const;

  // Machine-readable health report: {"windows": {...}, "overall": "...",
  // "classes": [...]}. The serve path embeds this in the kStats response.
  std::string ReportJson() const { return ReportJsonAt(MonotonicNanos()); }
  std::string ReportJsonAt(uint64_t now_ns) const;

 private:
  struct ClassState {
    explicit ClassState(const SloObjective& objective,
                        const WindowOptions& ring);
    SloObjective objective;
    WindowedCounter total;
    WindowedCounter bad;
    WindowedHistogram latency;  // executed requests only
    Histogram lifetime;
    // Registry gauge handles, resolved once.
    Gauge* burn_fast_gauge;
    Gauge* burn_slow_gauge;
    Gauge* state_gauge;
  };

  SloWindows windows_;
  std::vector<std::unique_ptr<ClassState>> classes_;
};

}  // namespace obs
}  // namespace dsig

#endif  // DSIG_OBS_SLO_H_
