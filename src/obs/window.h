// Rolling-window metrics: a ring of per-interval shards behind the
// lock-free Counter/Histogram primitives (obs/metrics.h).
//
// Process-lifetime histograms cannot answer "what is p99 over the LAST
// minute" — the question an operator (and the SLO engine, obs/slo.h)
// actually asks. A WindowedHistogram keeps `num_slots` full Histogram
// shards in a ring, each owning one `slot_ns` interval of wall time and
// tagged with the interval's tick (now / slot_ns). Recording is the
// existing lock-free Histogram::Record plus one acquire load of the slot's
// tick; a recorder that lands on a stale slot takes a small rotate mutex
// once per slot per interval to reset and re-tag it. Readers never pause
// recorders: a window snapshot Merge()s every shard whose tick falls
// inside the window into a caller-owned Histogram, so all the percentile
// machinery (bucket interpolation, min/max clamping) applies unchanged.
//
// Semantic races, by design (everything is atomics, so none of this is a
// data race):
//   * a recorder delayed across a slot boundary may charge its sample to
//     the adjacent interval (one-slot smear);
//   * a reader merging a shard that is concurrently recycled may include
//     or exclude a handful of in-flight samples. SnapshotWindowAt caps the
//     window at num_slots - 1 shards so the shard currently being
//     recycled (the oldest) is never merged mid-reset.
//
// Every time-taking entry point has an *At(..., now_ns) twin so tests
// drive the clock deterministically.
#ifndef DSIG_OBS_WINDOW_H_
#define DSIG_OBS_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "obs/metrics.h"

namespace dsig {
namespace obs {

struct WindowOptions {
  uint64_t slot_ns = 5ull * 1000 * 1000 * 1000;  // 5 s per shard
  int num_slots = 64;                            // 64 * 5 s covers > 5 min
};

class WindowedHistogram {
 public:
  explicit WindowedHistogram(const WindowOptions& options = {});
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Record(double value) { RecordAt(value, MonotonicNanos()); }
  void RecordAt(double value, uint64_t now_ns);

  // Merges the shards covering the last `window_ns` into `*out` (which the
  // caller typically default-constructs). Capped at num_slots - 1 shards.
  void SnapshotWindow(uint64_t window_ns, Histogram* out) const {
    SnapshotWindowAt(window_ns, MonotonicNanos(), out);
  }
  void SnapshotWindowAt(uint64_t window_ns, uint64_t now_ns,
                        Histogram* out) const;

  void Reset();

  uint64_t slot_ns() const { return options_.slot_ns; }
  int num_slots() const { return options_.num_slots; }
  // The widest window a snapshot can honour.
  uint64_t max_window_ns() const {
    return options_.slot_ns * static_cast<uint64_t>(options_.num_slots - 1);
  }

 private:
  // Tick that matches no real interval; slots start (and Reset to) it so an
  // untouched slot is never merged.
  static constexpr uint64_t kNeverTick = ~0ull;

  struct Slot {
    std::atomic<uint64_t> tick{kNeverTick};
    Histogram hist;
  };

  Slot* SlotFor(uint64_t tick, bool* fresh);

  WindowOptions options_;
  std::unique_ptr<Slot[]> slots_;
  std::mutex rotate_mu_;  // taken once per slot per interval, never on reads
};

// Same ring, scalar payload: "how many requests / errors in the last N
// seconds". Shares WindowOptions so an SLO class can keep its counters and
// latency shards on identical interval boundaries.
class WindowedCounter {
 public:
  explicit WindowedCounter(const WindowOptions& options = {});
  WindowedCounter(const WindowedCounter&) = delete;
  WindowedCounter& operator=(const WindowedCounter&) = delete;

  void Add(uint64_t delta = 1) { AddAt(delta, MonotonicNanos()); }
  void AddAt(uint64_t delta, uint64_t now_ns);

  uint64_t SumWindow(uint64_t window_ns) const {
    return SumWindowAt(window_ns, MonotonicNanos());
  }
  uint64_t SumWindowAt(uint64_t window_ns, uint64_t now_ns) const;

  void Reset();

  uint64_t slot_ns() const { return options_.slot_ns; }
  int num_slots() const { return options_.num_slots; }

 private:
  static constexpr uint64_t kNeverTick = ~0ull;

  struct Slot {
    std::atomic<uint64_t> tick{kNeverTick};
    std::atomic<uint64_t> value{0};
  };

  WindowOptions options_;
  std::unique_ptr<Slot[]> slots_;
  std::mutex rotate_mu_;
};

}  // namespace obs
}  // namespace dsig

#endif  // DSIG_OBS_WINDOW_H_
