// Process-wide metrics: named counters, gauges, and log-bucketed latency
// histograms with Prometheus-text and JSON exporters.
//
// The paper's §6 evaluation decomposes query cost into reads, backtracking
// steps, comparisons, and page I/O; this registry is where those numbers
// accumulate so benches, the `dsig_tool stats` subcommand, and per-query
// traces all read from one source. Design constraints:
//
//  - Recording is lock-free: counters and histogram buckets are relaxed
//    atomics, so instrumenting a hot loop costs one atomic add. The registry
//    mutex is only taken on name lookup — call sites cache the returned
//    pointer (metrics live for the process lifetime, pointers are stable).
//  - Histograms are log-bucketed (8 buckets per octave, ~9% relative width)
//    over 1e-6 .. 1e9, so one shape covers microsecond spans and multi-minute
//    builds. Percentiles come from bucket interpolation and are mergeable
//    across histogram instances — benches aggregate per-thread or per-phase
//    histograms without losing tail fidelity.
#ifndef DSIG_OBS_METRICS_H_
#define DSIG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dsig {
namespace obs {

class WindowedHistogram;  // obs/window.h
struct WindowOptions;

class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  // Overwrites the value; used when publishing an externally-kept total
  // (e.g. the legacy OpCounters globals) into the registry.
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time summary of a histogram; plain data, freely copyable.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

// Log-bucketed histogram. Record() is wait-free (one log2, three relaxed
// atomic ops, plus CAS loops for min/max that almost never retry).
// Percentiles are exact to within one bucket (~9% relative error) and are
// additionally clamped to the observed [min, max].
class Histogram {
 public:
  // 8 buckets per octave over [kMinTracked, kMinTracked * 2^kOctaves), plus
  // an underflow bucket 0 (values below kMinTracked, including zero) and a
  // final overflow bucket.
  static constexpr double kMinTracked = 1e-6;
  static constexpr int kBucketsPerOctave = 8;
  static constexpr int kOctaves = 50;  // 1e-6 .. ~1.1e9
  static constexpr int kNumBuckets = 2 + kOctaves * kBucketsPerOctave;

  void Record(double value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;  // 0 when empty
  double Max() const;  // 0 when empty

  // p in [0, 100]. Returns 0 on an empty histogram.
  double Percentile(double p) const;

  HistogramSnapshot Snapshot() const;

  // Bucket geometry, exposed for tests.
  static int BucketOf(double value);
  static double BucketLowerBound(int bucket);
  static double BucketUpperBound(int bucket);

  // Raw per-bucket count, for exporters and tests.
  uint64_t BucketCount(int bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

// Records wall-clock milliseconds into a histogram on destruction. The RAII
// shape matters: instrumented functions in this codebase return through
// Status macros with many exit paths.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram);
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer();

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

// Name -> metric maps. Metrics are created on first lookup and never
// destroyed (stable pointers); lookups are mutex-guarded, recording is not.
// Names use dotted lowercase ("buffer.hits", "query.knn.latency_ms").
class MetricsRegistry {
 public:
  // The windows every registered WindowedHistogram is summarized over in
  // ToJson / ToPrometheusText: 10 s, 60 s, 5 min.
  static constexpr uint64_t kExportWindowsNs[3] = {
      10ull * 1000 * 1000 * 1000, 60ull * 1000 * 1000 * 1000,
      300ull * 1000 * 1000 * 1000};

  MetricsRegistry();
  ~MetricsRegistry();

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  // Rolling-window companion to GetHistogram (obs/window.h). The options
  // apply on first creation only; later lookups of the same name return
  // the existing ring unchanged.
  WindowedHistogram* GetWindowedHistogram(const std::string& name);
  WindowedHistogram* GetWindowedHistogram(const std::string& name,
                                          const WindowOptions& options);

  // Zeroes every registered metric (names stay registered). Benches and the
  // stats subcommand use this to measure a clean window.
  void ResetAll();

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  // mean, min, max, p50, p90, p99}}, "windows": {name: {"10s": {...},
  // "60s": {...}, "300s": {...}}}}, keys sorted.
  std::string ToJson() const;

  // Prometheus text exposition, one HELP + TYPE block per family:
  // counters/gauges as their native types, histograms as real histogram
  // families (cumulative le="..." buckets at octave boundaries, _sum,
  // _count), windowed histograms as labeled gauges
  // (dsig_<name>_window{window="10s",stat="p99"}). Dots in names become
  // underscores, everything is prefixed "dsig_", and label values are
  // escaped per the exposition format.
  std::string ToPrometheusText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windows_;
};

// Plain point-in-time copy of the buffer-pool totals; what traces store and
// diff (BufferPoolTotals itself holds atomics and is not copyable).
struct BufferPoolTotalsSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t failed_reads = 0;
};

// Process-wide buffer-pool totals, charged by every BufferManager instance
// on its Access path and folded into query traces as deltas. Relaxed
// atomics: batch query workers on different threads share one pool, and a
// relaxed add per page access is the cheapest thing that stays coherent.
struct BufferPoolTotals {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> failed_reads{0};

  BufferPoolTotalsSnapshot Snapshot() const {
    BufferPoolTotalsSnapshot s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.failed_reads = failed_reads.load(std::memory_order_relaxed);
    return s;
  }
};
BufferPoolTotals& GlobalBufferPoolTotals();
// Copies the totals into the registry ("buffer.*" counters).
void PublishBufferPoolMetrics();

// Copies the process-wide ThreadPoolTotals (util/thread_pool.h) into the
// registry as "pool.*" counters, same pattern as the buffer pool.
void PublishThreadPoolMetrics();

// Registry handles for the buffer-pool gauges that track current state
// (cheap relaxed stores, set on insert/clear rather than per access).
struct BufferPoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* failed_reads;
  Gauge* cached_pages;
  Gauge* capacity_pages;
};
BufferPoolMetrics& GlobalBufferPoolMetrics();

// Monotonic nanoseconds since an arbitrary epoch (steady_clock).
uint64_t MonotonicNanos();

}  // namespace obs
}  // namespace dsig

#endif  // DSIG_OBS_METRICS_H_
