#include "obs/slo.h"

#include <algorithm>

#include "obs/json.h"

namespace dsig {
namespace obs {

const char* SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk:
      return "ok";
    case SloState::kWarning:
      return "warning";
    case SloState::kCritical:
      return "critical";
  }
  return "unknown";
}

namespace {

// A ring sized so the slow window always fits under the num_slots - 1
// snapshot cap, with one spare slot for the live interval.
WindowOptions RingFor(const SloWindows& windows) {
  WindowOptions ring;
  ring.slot_ns = std::max<uint64_t>(windows.slot_ns, 1);
  const uint64_t span =
      (std::max(windows.slow_ns, windows.fast_ns) + ring.slot_ns - 1) /
      ring.slot_ns;
  ring.num_slots = static_cast<int>(std::min<uint64_t>(span + 2, 1 << 12));
  return ring;
}

double BurnRate(uint64_t total, uint64_t bad, double availability) {
  if (total == 0) return 0.0;
  const double error_budget = std::clamp(1.0 - availability, 1e-9, 1.0);
  return (static_cast<double>(bad) / static_cast<double>(total)) /
         error_budget;
}

}  // namespace

SloEngine::ClassState::ClassState(const SloObjective& objective_in,
                                  const WindowOptions& ring)
    : objective(objective_in),
      total(ring),
      bad(ring),
      latency(ring) {
  auto& registry = MetricsRegistry::Global();
  const std::string prefix = "slo." + objective.name;
  burn_fast_gauge = registry.GetGauge(prefix + ".burn_fast");
  burn_slow_gauge = registry.GetGauge(prefix + ".burn_slow");
  state_gauge = registry.GetGauge(prefix + ".state");
}

SloEngine::SloEngine(std::vector<SloObjective> objectives,
                     const SloWindows& windows)
    : windows_(windows) {
  windows_.slot_ns = std::max<uint64_t>(windows_.slot_ns, 1);
  windows_.fast_ns = std::max(windows_.fast_ns, windows_.slot_ns);
  windows_.slow_ns = std::max(windows_.slow_ns, windows_.fast_ns);
  const WindowOptions ring = RingFor(windows_);
  classes_.reserve(objectives.size());
  for (SloObjective& objective : objectives) {
    classes_.push_back(std::make_unique<ClassState>(objective, ring));
  }
}

int SloEngine::ClassIndex(const std::string& name) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i]->objective.name == name) return static_cast<int>(i);
  }
  return -1;
}

bool SloEngine::RecordAt(int class_index, double latency_ms, bool ok,
                         bool executed, uint64_t now_ns) {
  if (class_index < 0 ||
      static_cast<size_t>(class_index) >= classes_.size()) {
    return false;
  }
  ClassState& c = *classes_[static_cast<size_t>(class_index)];
  const bool breach = !ok || latency_ms > c.objective.latency_budget_ms;
  c.total.AddAt(1, now_ns);
  if (breach) c.bad.AddAt(1, now_ns);
  if (executed) {
    c.latency.RecordAt(latency_ms, now_ns);
    c.lifetime.Record(latency_ms);
  }
  return breach;
}

SloClassHealth SloEngine::HealthAt(int class_index, uint64_t now_ns) const {
  const ClassState& c = *classes_[static_cast<size_t>(class_index)];
  SloClassHealth h;
  h.name = c.objective.name;
  h.latency_budget_ms = c.objective.latency_budget_ms;
  h.availability = c.objective.availability;
  h.fast_total = c.total.SumWindowAt(windows_.fast_ns, now_ns);
  h.fast_bad = c.bad.SumWindowAt(windows_.fast_ns, now_ns);
  h.slow_total = c.total.SumWindowAt(windows_.slow_ns, now_ns);
  h.slow_bad = c.bad.SumWindowAt(windows_.slow_ns, now_ns);
  h.fast_burn = BurnRate(h.fast_total, h.fast_bad, c.objective.availability);
  h.slow_burn = BurnRate(h.slow_total, h.slow_bad, c.objective.availability);
  if (h.fast_burn >= windows_.critical_burn &&
      h.slow_burn >= windows_.critical_burn) {
    h.state = SloState::kCritical;
  } else if (h.fast_burn >= windows_.warn_burn &&
             h.slow_burn >= windows_.warn_burn) {
    h.state = SloState::kWarning;
  } else {
    h.state = SloState::kOk;
  }
  Histogram window;
  c.latency.SnapshotWindowAt(windows_.slow_ns, now_ns, &window);
  h.window_p50_ms = window.Percentile(50);
  h.window_p99_ms = window.Percentile(99);
  h.window_count = window.Count();
  h.lifetime_p99_ms = c.lifetime.Percentile(99);
  h.lifetime_count = c.lifetime.Count();
  return h;
}

std::vector<SloClassHealth> SloEngine::ReportAllAt(uint64_t now_ns) const {
  std::vector<SloClassHealth> report;
  report.reserve(classes_.size());
  for (size_t i = 0; i < classes_.size(); ++i) {
    report.push_back(HealthAt(static_cast<int>(i), now_ns));
  }
  return report;
}

SloState SloEngine::Overall(const std::vector<SloClassHealth>& classes) {
  SloState worst = SloState::kOk;
  for (const SloClassHealth& h : classes) {
    if (static_cast<uint8_t>(h.state) > static_cast<uint8_t>(worst)) {
      worst = h.state;
    }
  }
  return worst;
}

void SloEngine::PublishGaugesAt(uint64_t now_ns) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    const SloClassHealth h = HealthAt(static_cast<int>(i), now_ns);
    const ClassState& c = *classes_[i];
    c.burn_fast_gauge->Set(h.fast_burn);
    c.burn_slow_gauge->Set(h.slow_burn);
    c.state_gauge->Set(static_cast<double>(h.state));
  }
}

std::string SloEngine::ReportJsonAt(uint64_t now_ns) const {
  const std::vector<SloClassHealth> classes = ReportAllAt(now_ns);
  JsonWriter w;
  w.BeginObject();
  w.Key("windows").BeginObject();
  w.Field("fast_s", static_cast<double>(windows_.fast_ns) * 1e-9);
  w.Field("slow_s", static_cast<double>(windows_.slow_ns) * 1e-9);
  w.Field("slot_s", static_cast<double>(windows_.slot_ns) * 1e-9);
  w.Field("critical_burn", windows_.critical_burn);
  w.Field("warn_burn", windows_.warn_burn);
  w.EndObject();
  w.Field("overall", SloStateName(Overall(classes)));
  w.Key("classes").BeginArray();
  for (const SloClassHealth& h : classes) {
    w.BeginObject();
    w.Field("class", h.name);
    w.Field("state", SloStateName(h.state));
    w.Field("latency_budget_ms", h.latency_budget_ms);
    w.Field("availability", h.availability);
    w.Field("fast_burn", h.fast_burn);
    w.Field("slow_burn", h.slow_burn);
    w.Field("fast_total", h.fast_total);
    w.Field("fast_bad", h.fast_bad);
    w.Field("slow_total", h.slow_total);
    w.Field("slow_bad", h.slow_bad);
    w.Field("window_p50_ms", h.window_p50_ms);
    w.Field("window_p99_ms", h.window_p99_ms);
    w.Field("window_count", h.window_count);
    w.Field("lifetime_p99_ms", h.lifetime_p99_ms);
    w.Field("lifetime_count", h.lifetime_count);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace obs
}  // namespace dsig
