// Per-query tracing: RAII spans that attribute a query's wall time to
// phases (row decode, resolve, guided backtracking, sort, Dijkstra
// fallback, buffer I/O) and emit one structured JSON line per query.
//
// Attribution is by SELF time: a span charges its phase with its elapsed
// time minus the time spent in nested spans, and reports its full elapsed
// time up to its parent. The phase totals of a query therefore partition
// the query's wall time exactly — "other" absorbs whatever ran outside any
// span — which is the property the trace consumer relies on (phases sum to
// ≈ total_ms).
//
// Tracing is off by default. When off, a Span costs one thread-local load
// and a branch, and a QueryTrace still records the query's latency into the
// metrics registry (histogram "query.<kind>.latency_ms") but emits nothing.
// Enable with SetTracingEnabled(true), a `--trace` flag in the tools, or
// the DSIG_TRACE environment variable (any non-empty value but "0").
//
// Nesting: composite queries reuse primitive ones (CNN runs a kNN per path
// node; aggregates run a range query). Only the OUTERMOST QueryTrace on a
// thread becomes the trace root and emits a line; inner QueryTraces still
// feed their latency histograms but fold their time into the enclosing
// trace's phases.
#ifndef DSIG_OBS_TRACE_H_
#define DSIG_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/op_counters.h"

namespace dsig {
namespace obs {

enum class Phase : int {
  kRowDecode = 0,
  kResolve,
  kBacktrack,
  kSort,
  kDijkstraFallback,
  kBufferIo,
  kOther,  // query time outside any span (bucketing, result assembly)
};
inline constexpr int kNumPhases = static_cast<int>(Phase::kOther) + 1;

const char* PhaseName(Phase phase);

bool TracingEnabled();
void SetTracingEnabled(bool enabled);

// Where trace lines go; default stderr. Not owned, must outlive tracing.
void SetTraceSink(std::FILE* sink);

class QueryTrace;

namespace internal {
// The root trace of the thread's current query, if tracing is on. Exposed
// so Span's disabled fast path inlines to a thread-local load and a branch
// — spans sit on per-backtrack-step and per-entry-decode paths where even
// an out-of-line call shows up in bench_knn at k = 50.
extern thread_local QueryTrace* g_active_trace;
}  // namespace internal

// The query trace currently open on this thread, if any.
inline QueryTrace* ActiveTrace() { return internal::g_active_trace; }

// Charges its phase (self time) on destruction. Safe to use anywhere; a
// no-op when no query trace is active on the thread.
class Span {
 public:
  explicit Span(Phase phase)
      : trace_(internal::g_active_trace), parent_(nullptr), phase_(phase) {
    if (trace_ != nullptr) Enter();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (trace_ != nullptr) Exit();
  }

 private:
  void Enter();  // links into the active trace's span chain, stamps start
  void Exit();   // charges self time to the phase, reports elapsed upward

  QueryTrace* trace_;  // nullptr when tracing is off
  Span* parent_;
  Phase phase_;
  uint64_t start_ns_ = 0;
  uint64_t child_ns_ = 0;
};

// Registry handles for one query kind, resolved once per call site (see
// DSIG_QUERY_TRACE). Construction hits the registry mutex; afterwards all
// recording is lock-free through the cached pointers.
struct QueryInstrument {
  explicit QueryInstrument(const char* kind);

  const char* kind;
  Histogram* latency_ms;
  Counter* count;
};

// What a collect-mode trace hands back from Finish(): the same phase/ops/
// buffer decomposition a trace line would carry, as data instead of JSON.
// The serve path stitches this into its per-request trace tree (admission
// queue-wait + degrade decision + these execution phases) and emits it for
// SLO-breaching requests only — tail-based sampling.
struct TraceSummary {
  bool collected = false;  // false when another trace owned the thread
  // True only for a full (span-rooting) collect: phases_ms carries real
  // attribution. A light collect reports everything under kOther.
  bool has_phases = false;
  double total_ms = 0;
  double phases_ms[kNumPhases] = {};
  OpCounters ops;                    // delta across the trace
  BufferPoolTotalsSnapshot buffer;   // delta across the trace
};

// Times one query end to end: always records latency + count into the
// registry; when tracing is enabled and this is the outermost query on the
// thread, also snapshots OpCounters and the buffer-pool totals and emits
// one JSON trace line on destruction.
//
// Mode::kCollectRoot instead makes this trace the thread's root regardless
// of the tracing flag and NEVER emits: the caller harvests the phase/ops
// decomposition with Finish() and decides what to do with it. Inner
// QueryTraces (the DSIG_QUERY_TRACE entry points) behave exactly as under
// an ordinary root: they feed their latency histograms and fold their
// spans into this trace.
class QueryTrace {
 public:
  enum class Mode : uint8_t {
    kAuto,         // root iff tracing is enabled and no root is active
    kCollectRoot,  // root unconditionally (if none active); emits nothing
    // Collects total time and op/buffer deltas WITHOUT becoming the span
    // root: every Span in the query keeps its disabled fast path (one
    // thread-local load), so this mode is cheap enough to wrap every
    // request. phases_ms comes back unattributed (all kOther). The serve
    // path uses this always-on and upgrades a sampled subset of requests
    // to kCollectRoot for full phase attribution — rooting spans costs
    // tens of nanoseconds per span across the query inner loops, which
    // bench_trace_overhead shows is far too much to pay on every request.
    kCollectLight,
  };

  // `instrument` may be null only in kCollectRoot mode (the caller records
  // its own latency metrics).
  explicit QueryTrace(QueryInstrument* instrument, Mode mode = Mode::kAuto);
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;
  ~QueryTrace();

  // Closes a collect-mode trace and returns its summary; the destructor
  // then only records the instrument metrics (if any). On a trace that is
  // not the collecting root (another query was already active on the
  // thread), returns a summary with collected == false and only total_ms
  // set.
  TraceSummary Finish();

 private:
  friend class Span;

  QueryInstrument* instrument_;
  bool root_ = false;   // outermost traced query on this thread
  bool light_ = false;  // kCollectLight: deltas without span rooting
  bool collect_ = false;
  bool finished_ = false;
  uint64_t start_ns_;
  uint64_t phase_ns_[kNumPhases] = {};
  uint64_t top_level_span_ns_ = 0;  // total time of depth-1 spans
  Span* current_span_ = nullptr;
  OpCounters ops_before_;
  BufferPoolTotalsSnapshot buffer_before_;
};

}  // namespace obs
}  // namespace dsig

// Declares this function a query entry point of the given kind (a string
// literal, e.g. "knn"). Resolves the registry handles once, then times every
// call.
#define DSIG_QUERY_TRACE(kind)                                     \
  static ::dsig::obs::QueryInstrument dsig_query_instrument{kind}; \
  ::dsig::obs::QueryTrace dsig_query_trace{&dsig_query_instrument}

#endif  // DSIG_OBS_TRACE_H_
