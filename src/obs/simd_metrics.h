// SIMD runtime-dispatch gauges (util/simd/simd.h).
//
//   simd.dispatch_level — the active simd::SimdLevel as its integer enum
//                         value (0 scalar, 1 sse4.2, 2 avx2, 3 neon)
//   simd.detected_level — the best level the build + CPU support, before
//                         any DSIG_FORCE_SCALAR / DSIG_SIMD override
//
// Recording both makes a forced-scalar run self-describing: a stats dump or
// serve report where dispatch_level < detected_level was pinned on purpose.
#ifndef DSIG_OBS_SIMD_METRICS_H_
#define DSIG_OBS_SIMD_METRICS_H_

namespace dsig::obs {

// Refreshes the simd.* gauges from the dispatcher's current state; cheap
// and idempotent, call before exporting metrics.
void PublishSimdMetrics();

}  // namespace dsig::obs

#endif  // DSIG_OBS_SIMD_METRICS_H_
