#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace dsig {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(value)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;  // value completes a "key": pair, no comma
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_element_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  MaybeComma();
  out_ += JsonNumber(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  MaybeComma();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view name, std::string_view value) {
  return Key(name).String(value);
}

JsonWriter& JsonWriter::Field(std::string_view name, double value) {
  return Key(name).Number(value);
}

JsonWriter& JsonWriter::Field(std::string_view name, uint64_t value) {
  return Key(name).Uint(value);
}

}  // namespace obs
}  // namespace dsig
