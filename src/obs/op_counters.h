// Process-wide counters of the signature's basic operations.
//
// The paper's analysis decomposes query cost into signature reads,
// backtracking steps, and comparisons (e.g., §6.2 attributes the kNN
// clock-time gap at k = 50 to sorting CPU and decompression). These counters
// expose that decomposition to benches, tests, traces, and the metrics
// registry. THREAD-LOCAL plain fields — each query stream counts into its
// own instance for free (no atomics on per-entry-decode paths), and the
// batch driver (query/batch.h) merges worker deltas back into the caller's
// counters with operator+= so single-threaded measurement code keeps
// working unchanged.
//
// The field list lives in one X-macro so a new counter automatically joins
// the struct, the snapshot delta, and every consumer that iterates fields
// (trace JSON, bench reports, registry publication). The decode_fallbacks
// addition had to touch three hand-maintained spots; never again.
#ifndef DSIG_OBS_OP_COUNTERS_H_
#define DSIG_OBS_OP_COUNTERS_H_

#include <cstdint>

namespace dsig {

// X(field, comment) for every counter, in declaration order. Order is part
// of the API: aggregate initialization (`OpCounters{1, 2, ...}`) in tests
// and benches follows it, so new counters go at the END.
#define DSIG_OP_COUNTER_FIELDS(X)                                           \
  X(row_reads, "whole signature rows decoded")                              \
  X(entry_reads, "single components decoded")                               \
  X(backtrack_steps, "guided-backtracking hops")                            \
  X(exact_compares, "Algorithm 2 invocations")                              \
  X(approx_compares, "Algorithm 3 invocations")                             \
  X(resolves, "compressed components decompressed")                         \
  /* Graceful degradation: rows that failed to decode (in-memory corruption \
     slipping past load-time checks) and were recomputed by bounded         \
     Dijkstra. Nonzero means queries stayed correct but paid shortest-path  \
     CPU for the affected rows. */                                          \
  X(decode_fallbacks,                                                        \
    "rows recomputed by bounded Dijkstra after decode failure")              \
  /* Exact-distance routing (query/planner.h): how many exact values the    \
     hub-label tier answered, and how many label-eligible requests the      \
     planner demoted to chasing/Dijkstra (stale latch, force-off pin, or    \
     cost model preferring the hop count). */                               \
  X(label_distances, "exact distances answered by the hub-label tier")       \
  X(label_demotions, "label-eligible requests routed to chase/Dijkstra")

struct OpCounters {
#define DSIG_OP_COUNTER_DECLARE(field, comment) uint64_t field = 0;
  DSIG_OP_COUNTER_FIELDS(DSIG_OP_COUNTER_DECLARE)
#undef DSIG_OP_COUNTER_DECLARE

  OpCounters operator-(const OpCounters& other) const {
    OpCounters delta;
#define DSIG_OP_COUNTER_SUB(field, comment) delta.field = field - other.field;
    DSIG_OP_COUNTER_FIELDS(DSIG_OP_COUNTER_SUB)
#undef DSIG_OP_COUNTER_SUB
    return delta;
  }

  OpCounters& operator+=(const OpCounters& other) {
#define DSIG_OP_COUNTER_ADD(field, comment) field += other.field;
    DSIG_OP_COUNTER_FIELDS(DSIG_OP_COUNTER_ADD)
#undef DSIG_OP_COUNTER_ADD
    return *this;
  }

  // Visits (name, value) for every counter in declaration order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
#define DSIG_OP_COUNTER_VISIT(field, comment) fn(#field, field);
    DSIG_OP_COUNTER_FIELDS(DSIG_OP_COUNTER_VISIT)
#undef DSIG_OP_COUNTER_VISIT
  }
};

// The CALLING THREAD's live counters (mutable; reset with ResetOpCounters).
// Each thread counts independently; aggregation across threads is the batch
// driver's job, not this accessor's.
OpCounters& GlobalOpCounters();

// Resets the calling thread's counters.
void ResetOpCounters();

// Copies the live counters into the metrics registry as "ops.<field>"
// counters, so registry dumps (dsig_tool stats, Prometheus text) include
// them alongside buffer and latency metrics.
void PublishOpCounters();

}  // namespace dsig

#endif  // DSIG_OBS_OP_COUNTERS_H_
