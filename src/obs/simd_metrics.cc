#include "obs/simd_metrics.h"

#include "obs/metrics.h"
#include "util/simd/simd.h"

namespace dsig::obs {

void PublishSimdMetrics() {
  auto& registry = MetricsRegistry::Global();
  registry.GetGauge("simd.dispatch_level")
      ->Set(static_cast<double>(static_cast<int>(simd::ActiveLevel())));
  registry.GetGauge("simd.detected_level")
      ->Set(static_cast<double>(static_cast<int>(simd::DetectedLevel())));
}

}  // namespace dsig::obs
