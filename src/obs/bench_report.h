// Machine-readable benchmark reports (the BENCH_*.json trajectory).
//
// Every table bench can mirror its printed exhibits into one JSON document:
// bench -> exhibits -> series -> points, where each point carries the mean,
// a latency histogram snapshot (p50/p90/p99/max), and generic op-counter /
// buffer-stat breakdowns. The schema is deliberately dumb — string x values,
// flat metric maps — so CI and notebooks can diff runs without bespoke
// parsers, and so the same writer serves benches that sweep k, radius,
// density, node count, or nothing at all.
//
// This layer knows nothing about OpCounters or BufferStats concretely; the
// bench harness folds them in through the generic `ops` / `buffer` maps
// (via their ForEach visitors), keeping obs below core and storage.
#ifndef DSIG_OBS_BENCH_REPORT_H_
#define DSIG_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace dsig {
namespace obs {

inline constexpr int kBenchReportSchemaVersion = 1;

class BenchReport {
 public:
  struct Point {
    std::string x;           // sweep coordinate, rendered ("10000", "k=16")
    uint64_t queries = 0;    // items measured at this point
    std::map<std::string, double> metrics;    // mean_ms, pages_per_query, ...
    bool has_latency = false;
    HistogramSnapshot latency;                // per-item milliseconds
    std::map<std::string, uint64_t> ops;      // OpCounters delta, totals
    std::map<std::string, uint64_t> buffer;   // BufferStats delta, totals
  };

  explicit BenchReport(std::string bench_name);

  // Bench-level parameters recorded once ("nodes" -> 10000, "seed" -> 42).
  void SetParam(const std::string& key, const std::string& value);
  void SetParam(const std::string& key, double value);

  // Appends a point to (exhibit, series), creating both on first use.
  // Insertion order is preserved in the output. The pointer stays valid
  // until the next AddPoint on the same series.
  Point* AddPoint(const std::string& exhibit, const std::string& series,
                  const std::string& x);

  std::string ToJson() const;

  // Writes ToJson() to `path`; false (with a logged error) on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  struct Series {
    std::string name;
    std::vector<Point> points;
  };
  struct Exhibit {
    std::string name;
    std::vector<Series> series;
  };

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> params_;  // value as JSON
  std::vector<Exhibit> exhibits_;
};

}  // namespace obs
}  // namespace dsig

#endif  // DSIG_OBS_BENCH_REPORT_H_
