#include "obs/trace.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json.h"

namespace dsig {
namespace obs {
namespace internal {
thread_local QueryTrace* g_active_trace = nullptr;
}  // namespace internal
using internal::g_active_trace;

namespace {

std::FILE* g_sink = nullptr;  // nullptr means stderr

// Initialized once from DSIG_TRACE, then steered by SetTracingEnabled.
std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool>* flag = new std::atomic<bool>([] {
    const char* env = std::getenv("DSIG_TRACE");
    return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  }());
  return *flag;
}

std::FILE* Sink() { return g_sink != nullptr ? g_sink : stderr; }

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kRowDecode:
      return "row_decode";
    case Phase::kResolve:
      return "resolve";
    case Phase::kBacktrack:
      return "backtrack";
    case Phase::kSort:
      return "sort";
    case Phase::kDijkstraFallback:
      return "dijkstra_fallback";
    case Phase::kBufferIo:
      return "buffer_io";
    case Phase::kOther:
      return "other";
  }
  return "unknown";
}

bool TracingEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

void SetTraceSink(std::FILE* sink) { g_sink = sink; }

void Span::Enter() {
  parent_ = trace_->current_span_;
  trace_->current_span_ = this;
  start_ns_ = MonotonicNanos();
}

void Span::Exit() {
  const uint64_t elapsed = MonotonicNanos() - start_ns_;
  const uint64_t self = elapsed > child_ns_ ? elapsed - child_ns_ : 0;
  trace_->phase_ns_[static_cast<int>(phase_)] += self;
  trace_->current_span_ = parent_;
  // Report FULL elapsed time upward: the parent's self time excludes us
  // entirely, so phase totals partition the query's wall time.
  if (parent_ != nullptr) {
    parent_->child_ns_ += elapsed;
  } else {
    trace_->top_level_span_ns_ += elapsed;
  }
}

QueryInstrument::QueryInstrument(const char* kind_name) : kind(kind_name) {
  auto& registry = MetricsRegistry::Global();
  const std::string prefix = std::string("query.") + kind_name;
  latency_ms = registry.GetHistogram(prefix + ".latency_ms");
  count = registry.GetCounter(prefix + ".count");
}

QueryTrace::QueryTrace(QueryInstrument* instrument, Mode mode)
    : instrument_(instrument), start_ns_(MonotonicNanos()) {
  if (mode == Mode::kCollectLight) {
    // Deltas only: g_active_trace stays untouched, so every Span keeps its
    // disabled fast path and an enclosing or nested full trace is
    // unaffected.
    light_ = true;
    collect_ = true;
    ops_before_ = GlobalOpCounters();
    buffer_before_ = GlobalBufferPoolTotals().Snapshot();
    return;
  }
  const bool want_root = mode == Mode::kCollectRoot || TracingEnabled();
  if (!want_root || g_active_trace != nullptr) return;
  // Outermost traced query on this thread: collect spans and deltas.
  root_ = true;
  collect_ = mode == Mode::kCollectRoot;
  g_active_trace = this;
  ops_before_ = GlobalOpCounters();
  buffer_before_ = GlobalBufferPoolTotals().Snapshot();
}

TraceSummary QueryTrace::Finish() {
  TraceSummary summary;
  const uint64_t total_ns = MonotonicNanos() - start_ns_;
  summary.total_ms = static_cast<double>(total_ns) * 1e-6;
  if (finished_ || (!root_ && !light_)) return summary;
  finished_ = true;
  if (root_) g_active_trace = nullptr;

  summary.collected = true;
  summary.has_phases = root_;
  if (root_) {
    phase_ns_[static_cast<int>(Phase::kOther)] +=
        total_ns > top_level_span_ns_ ? total_ns - top_level_span_ns_ : 0;
    for (int p = 0; p < kNumPhases; ++p) {
      summary.phases_ms[p] = static_cast<double>(phase_ns_[p]) * 1e-6;
    }
  } else {
    // No spans ran: the whole query is unattributed time, so the
    // phases-partition-the-total invariant still holds for consumers.
    summary.phases_ms[static_cast<int>(Phase::kOther)] = summary.total_ms;
  }
  summary.ops = GlobalOpCounters() - ops_before_;
  const BufferPoolTotalsSnapshot buffer = GlobalBufferPoolTotals().Snapshot();
  summary.buffer.hits = buffer.hits - buffer_before_.hits;
  summary.buffer.misses = buffer.misses - buffer_before_.misses;
  summary.buffer.evictions = buffer.evictions - buffer_before_.evictions;
  summary.buffer.failed_reads =
      buffer.failed_reads - buffer_before_.failed_reads;
  return summary;
}

QueryTrace::~QueryTrace() {
  const uint64_t total_ns = MonotonicNanos() - start_ns_;
  if (instrument_ != nullptr) {
    instrument_->latency_ms->Record(static_cast<double>(total_ns) * 1e-6);
    instrument_->count->Add(1);
  }
  if (!root_ || finished_) return;
  g_active_trace = nullptr;
  // A collect-mode root the caller never harvested has nowhere to report.
  if (collect_) return;

  // Whatever ran outside any top-level span is "other"; direct kOther spans
  // (already counted in top_level_span_ns_) keep their share.
  phase_ns_[static_cast<int>(Phase::kOther)] +=
      total_ns > top_level_span_ns_ ? total_ns - top_level_span_ns_ : 0;

  const OpCounters ops = GlobalOpCounters() - ops_before_;
  const BufferPoolTotalsSnapshot buffer = GlobalBufferPoolTotals().Snapshot();

  JsonWriter w;
  w.BeginObject();
  w.Field("query", instrument_->kind);
  w.Field("total_ms", static_cast<double>(total_ns) * 1e-6);
  w.Key("phases_ms").BeginObject();
  for (int p = 0; p < kNumPhases; ++p) {
    w.Field(PhaseName(static_cast<Phase>(p)),
            static_cast<double>(phase_ns_[p]) * 1e-6);
  }
  w.EndObject();
  w.Key("ops").BeginObject();
  ops.ForEach([&w](const char* name, uint64_t value) { w.Field(name, value); });
  w.EndObject();
  w.Key("buffer").BeginObject();
  w.Field("hits", buffer.hits - buffer_before_.hits);
  w.Field("misses", buffer.misses - buffer_before_.misses);
  w.Field("evictions", buffer.evictions - buffer_before_.evictions);
  w.Field("failed_reads", buffer.failed_reads - buffer_before_.failed_reads);
  w.EndObject();
  w.EndObject();

  // One fwrite per line so concurrent writers cannot interleave mid-record.
  std::string line = w.Take();
  line += '\n';
  std::FILE* sink = Sink();
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
}

}  // namespace obs
}  // namespace dsig
