#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/json.h"
#include "obs/window.h"
#include "util/thread_pool.h"

namespace dsig {
namespace obs {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

int Histogram::BucketOf(double value) {
  if (!(value >= kMinTracked)) return 0;  // also catches NaN and negatives
  const double octaves = std::log2(value / kMinTracked);
  const int index =
      1 + static_cast<int>(octaves * static_cast<double>(kBucketsPerOctave));
  return std::min(index, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(int bucket) {
  if (bucket <= 0) return 0.0;
  return kMinTracked *
         std::exp2(static_cast<double>(bucket - 1) /
                   static_cast<double>(kBucketsPerOctave));
}

double Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return kMinTracked;
  return kMinTracked * std::exp2(static_cast<double>(bucket) /
                                 static_cast<double>(kBucketsPerOctave));
}

namespace {

// Relaxed CAS update keeping the extremum; first sample always wins because
// the caller checks count beforehand.
void UpdateMin(std::atomic<double>* slot, double value, bool first) {
  double current = slot->load(std::memory_order_relaxed);
  if (first) {
    // Racy "first" from two threads resolves through the CAS loop below
    // because both then fall through to the min comparison.
    slot->compare_exchange_strong(current, value, std::memory_order_relaxed);
    current = slot->load(std::memory_order_relaxed);
  }
  while (value < current && !slot->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void UpdateMax(std::atomic<double>* slot, double value, bool first) {
  double current = slot->load(std::memory_order_relaxed);
  if (first) {
    slot->compare_exchange_strong(current, value, std::memory_order_relaxed);
    current = slot->load(std::memory_order_relaxed);
  }
  while (value > current && !slot->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicAddDouble(std::atomic<double>* slot, double delta) {
  double current = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(current, current + delta,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  const uint64_t prior = count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  UpdateMin(&min_, value, prior == 0);
  UpdateMax(&max_, value, prior == 0);
}

void Histogram::Merge(const Histogram& other) {
  const uint64_t other_count = other.count_.load(std::memory_order_relaxed);
  if (other_count == 0) return;
  const uint64_t prior = count_.fetch_add(other_count,
                                          std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  AtomicAddDouble(&sum_, other.sum_.load(std::memory_order_relaxed));
  UpdateMin(&min_, other.min_.load(std::memory_order_relaxed), prior == 0);
  UpdateMax(&max_, other.max_.load(std::memory_order_relaxed), prior == 0);
}

void Histogram::Reset() {
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  const uint64_t count = Count();
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested sample, 1-based; p50 of 4 samples is the 2nd.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // Geometric midpoint of the bucket, clamped to the observed range so
      // single-bucket histograms report the true extremes.
      double estimate;
      if (b == 0) {
        estimate = Min();
      } else if (b == kNumBuckets - 1) {
        estimate = Max();
      } else {
        estimate = std::sqrt(BucketLowerBound(b) * BucketUpperBound(b));
      }
      return std::clamp(estimate, Min(), Max());
    }
  }
  return Max();
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = Count();
  snap.sum = Sum();
  snap.min = Min();
  snap.max = Max();
  snap.p50 = Percentile(50);
  snap.p90 = Percentile(90);
  snap.p99 = Percentile(99);
  return snap;
}

ScopedTimer::ScopedTimer(Histogram* histogram)
    : histogram_(histogram), start_ns_(MonotonicNanos()) {}

ScopedTimer::~ScopedTimer() {
  histogram_->Record(static_cast<double>(MonotonicNanos() - start_ns_) * 1e-6);
}

// Out of line so WindowedHistogram (forward-declared in the header) is
// complete where the map's destructor is instantiated.
MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

WindowedHistogram* MetricsRegistry::GetWindowedHistogram(
    const std::string& name) {
  return GetWindowedHistogram(name, WindowOptions{});
}

WindowedHistogram* MetricsRegistry::GetWindowedHistogram(
    const std::string& name, const WindowOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = windows_[name];
  if (slot == nullptr) slot = std::make_unique<WindowedHistogram>(options);
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, window] : windows_) window->Reset();
}

namespace {

// The window labels matching MetricsRegistry::kExportWindowsNs.
const char* const kExportWindowNames[3] = {"10s", "60s", "300s"};

void WriteSnapshotJson(JsonWriter* w, const HistogramSnapshot& s) {
  w->Field("count", s.count);
  w->Field("sum", s.sum);
  w->Field("mean", s.Mean());
  w->Field("min", s.min);
  w->Field("max", s.max);
  w->Field("p50", s.p50);
  w->Field("p90", s.p90);
  w->Field("p99", s.p99);
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Field(name, counter->Value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Field(name, gauge->Value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w.Key(name).BeginObject();
    WriteSnapshotJson(&w, histogram->Snapshot());
    w.EndObject();
  }
  w.EndObject();
  w.Key("windows").BeginObject();
  {
    const uint64_t now_ns = MonotonicNanos();
    for (const auto& [name, window] : windows_) {
      w.Key(name).BeginObject();
      for (int i = 0; i < 3; ++i) {
        Histogram merged;
        window->SnapshotWindowAt(kExportWindowsNs[i], now_ns, &merged);
        w.Key(kExportWindowNames[i]).BeginObject();
        WriteSnapshotJson(&w, merged.Snapshot());
        w.EndObject();
      }
      w.EndObject();
    }
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "dsig_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

// Escapes a label VALUE per the exposition format: backslash, double quote,
// and newline must be backslash-escaped inside the quotes.
std::string PrometheusLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// HELP text: no newlines allowed; backslash must be escaped.
std::string PrometheusHelpText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendFamilyHeader(std::string* out, const std::string& prom,
                        const std::string& source_name, const char* type) {
  *out += "# HELP " + prom + " dsig metric " +
          PrometheusHelpText(source_name) + "\n";
  *out += "# TYPE " + prom + " " + type + "\n";
}

// One histogram family: cumulative le buckets at octave upper bounds (only
// where the cumulative count advances, plus +Inf), then _sum and _count.
// Scrapers require the bucket counts to be monotone and the +Inf bucket to
// equal _count; the conformance test pins both.
void AppendHistogramFamily(std::string* out, const std::string& prom,
                           const std::string& source_name,
                           const Histogram& histogram) {
  AppendFamilyHeader(out, prom, source_name, "histogram");
  uint64_t cumulative = 0;
  uint64_t last_emitted = 0;
  bool emitted_any = false;
  // Walk octaves; bucket 0 (underflow) folds into the first le line.
  uint64_t octave_pending =
      0;  // samples accumulated since the last emitted le
  for (int octave = 0; octave <= Histogram::kOctaves; ++octave) {
    if (octave == 0) {
      octave_pending += histogram.BucketCount(0);
    } else {
      const int first =
          1 + (octave - 1) * Histogram::kBucketsPerOctave;
      for (int b = first; b < first + Histogram::kBucketsPerOctave; ++b) {
        octave_pending += histogram.BucketCount(b);
      }
    }
    cumulative += octave_pending;
    octave_pending = 0;
    const bool advanced = cumulative != last_emitted;
    if (advanced || (!emitted_any && octave == Histogram::kOctaves)) {
      const double le =
          octave == 0 ? Histogram::kMinTracked
                      : Histogram::BucketUpperBound(
                            octave * Histogram::kBucketsPerOctave);
      *out += prom + "_bucket{le=\"" + JsonNumber(le) + "\"} " +
              std::to_string(cumulative) + "\n";
      last_emitted = cumulative;
      emitted_any = true;
    }
  }
  // The overflow bucket (kNumBuckets - 1) and anything else lands in +Inf.
  *out += prom + "_bucket{le=\"+Inf\"} " +
          std::to_string(histogram.Count()) + "\n";
  *out += prom + "_sum " + JsonNumber(histogram.Sum()) + "\n";
  *out += prom + "_count " + std::to_string(histogram.Count()) + "\n";
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name);
    AppendFamilyHeader(&out, prom, name, "counter");
    out += prom + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    AppendFamilyHeader(&out, prom, name, "gauge");
    out += prom + " " + JsonNumber(gauge->Value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    AppendHistogramFamily(&out, PrometheusName(name), name, *histogram);
  }
  // Windowed histograms: one gauge family per ring, labeled by window and
  // stat, plus a _count family so dashboards can see sample volume.
  const uint64_t now_ns = MonotonicNanos();
  for (const auto& [name, window] : windows_) {
    const std::string prom = PrometheusName(name) + "_window";
    AppendFamilyHeader(&out, prom, name, "gauge");
    std::string counts;
    for (int i = 0; i < 3; ++i) {
      Histogram merged;
      window->SnapshotWindowAt(kExportWindowsNs[i], now_ns, &merged);
      const HistogramSnapshot s = merged.Snapshot();
      const std::string win = PrometheusLabelValue(kExportWindowNames[i]);
      out += prom + "{window=\"" + win + "\",stat=\"p50\"} " +
             JsonNumber(s.p50) + "\n";
      out += prom + "{window=\"" + win + "\",stat=\"p99\"} " +
             JsonNumber(s.p99) + "\n";
      out += prom + "{window=\"" + win + "\",stat=\"mean\"} " +
             JsonNumber(s.Mean()) + "\n";
      counts += prom + "_count{window=\"" + win + "\"} " +
                std::to_string(s.count) + "\n";
    }
    AppendFamilyHeader(&out, prom + "_count", name, "gauge");
    out += counts;
  }
  return out;
}

BufferPoolTotals& GlobalBufferPoolTotals() {
  static BufferPoolTotals totals;
  return totals;
}

void PublishBufferPoolMetrics() {
  const BufferPoolTotalsSnapshot totals = GlobalBufferPoolTotals().Snapshot();
  const BufferPoolMetrics& m = GlobalBufferPoolMetrics();
  m.hits->Set(totals.hits);
  m.misses->Set(totals.misses);
  m.evictions->Set(totals.evictions);
  m.failed_reads->Set(totals.failed_reads);
}

void PublishThreadPoolMetrics() {
  const ThreadPoolTotals& totals = GlobalThreadPoolTotals();
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("pool.tasks_run")
      ->Set(totals.tasks_run.load(std::memory_order_relaxed));
  registry.GetCounter("pool.steals")
      ->Set(totals.steals.load(std::memory_order_relaxed));
  registry.GetCounter("pool.parallel_fors")
      ->Set(totals.parallel_fors.load(std::memory_order_relaxed));
  registry.GetCounter("pool.chunks_run")
      ->Set(totals.chunks_run.load(std::memory_order_relaxed));
}

BufferPoolMetrics& GlobalBufferPoolMetrics() {
  static BufferPoolMetrics* metrics = [] {
    auto& registry = MetricsRegistry::Global();
    auto* m = new BufferPoolMetrics;
    m->hits = registry.GetCounter("buffer.hits");
    m->misses = registry.GetCounter("buffer.misses");
    m->evictions = registry.GetCounter("buffer.evictions");
    m->failed_reads = registry.GetCounter("buffer.failed_reads");
    m->cached_pages = registry.GetGauge("buffer.cached_pages");
    m->capacity_pages = registry.GetGauge("buffer.capacity_pages");
    return m;
  }();
  return *metrics;
}

}  // namespace obs
}  // namespace dsig
