// Sharded LRU cache of fully-resolved signature rows.
//
// ReadEntry() hits a compressed component on almost every backtracking step
// of a kNN walk, and resolving it needs the whole row (§5.3). The previous
// memo was an unbounded-growth map wiped WHOLESALE when it reached its row
// cap — a working set one row over the cap got a 0% hit rate. This cache
// replaces it with:
//
//  * a byte budget (rows vary 10x in size with the object count, so bounding
//    rows bounded nothing useful),
//  * incremental LRU eviction — one victim at a time from the cold end, so a
//    working set slightly over budget degrades smoothly instead of cliffing,
//  * shards with per-shard mutexes, so parallel batch queries (query/batch.h)
//    share one index without serializing on a single cache lock. Rows are
//    handed out as shared_ptr<const SignatureRow>: eviction cannot pull a row
//    out from under a reader on another thread.
//
// Activity is charged directly to the process-wide metrics registry
// ("rowcache.hits" / "misses" / "evictions" / "inserts" counters, a
// "rowcache.bytes" gauge); pointers are resolved once per cache. The derived
// "rowcache.hit_rate" gauge is refreshed by PublishRowCacheMetrics().
#ifndef DSIG_CORE_ROW_CACHE_H_
#define DSIG_CORE_ROW_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/signature.h"
#include "graph/road_network.h"
#include "obs/metrics.h"

namespace dsig {

class RowCache {
 public:
  struct Options {
    // Total bytes of cached rows across all shards (approximate: entry
    // payload plus a fixed per-row overhead). 0 disables caching entirely —
    // Get() always misses silently and Put() drops the row.
    size_t byte_budget = size_t{8} << 20;
    // Per-shard mutexes bound contention; node ids spread across shards.
    size_t num_shards = 8;
  };

  RowCache();  // default Options
  explicit RowCache(const Options& options);

  RowCache(const RowCache&) = delete;
  RowCache& operator=(const RowCache&) = delete;

  // Returns the cached row for `n` (marking it most-recent), or nullptr.
  std::shared_ptr<const SignatureRow> Get(NodeId n) const;

  // Inserts (or replaces) `n`'s row and evicts cold rows one at a time until
  // the shard is back under its budget share. A shard always keeps its
  // most-recent row even when that row alone exceeds the share, so a single
  // huge row still caches rather than thrashing.
  void Put(NodeId n, std::shared_ptr<const SignatureRow> row);

  // Drops `n` if cached (row invalidation on update).
  void Erase(NodeId n);

  // Drops everything.
  void Clear();

  size_t bytes() const;    // current cached payload across shards
  size_t entries() const;  // current cached row count

  const Options& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const SignatureRow> row;
    size_t bytes = 0;
    std::list<NodeId>::iterator lru_it;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<NodeId> lru;  // front = most recent
    std::unordered_map<NodeId, Entry> table;
    size_t bytes = 0;
  };

  Shard& ShardOf(NodeId n) const {
    return shards_[static_cast<size_t>(n) % shards_.size()];
  }

  Options options_;
  size_t shard_budget_;
  mutable std::vector<Shard> shards_;

  // Registry handles, resolved once (stable pointers; recording is
  // lock-free relaxed atomics — see obs/metrics.h).
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* inserts_;
  obs::Gauge* bytes_gauge_;
};

// Refreshes the derived "rowcache.hit_rate" gauge (hits / (hits + misses),
// 0 when idle) from the registry counters. Called by `dsig_tool stats` and
// the benches next to PublishBufferPoolMetrics().
void PublishRowCacheMetrics();

}  // namespace dsig

#endif  // DSIG_CORE_ROW_CACHE_H_
