// Executable rendition of the paper's §5.1 analytic cost model.
//
// Under the simplifying assumptions — uniform grid (every node degree 4, all
// edge weights 1), objects uniformly distributed with density p, query
// spreadings uniform over [0, SP] — the paper derives the expected I/O cost
// of query processing as a function of the partition parameters (T, c)
// (Equations 1–4) and minimizes it to obtain c* = e, T* = sqrt(SP/e).
//
// This module implements the model by direct evaluation of the sums
// (Equations 1 and 2) rather than trusting the closed-form approximation.
//
// Reproduction finding (see EXPERIMENTS.md): direct evaluation CONFIRMS the
// paper's qualitative claims — cost is linear in density, so the optimal
// (T, c) is density-independent, and mis-parameterized partitions degrade
// gracefully — but does NOT reproduce the closed form c* = e,
// T* = sqrt(SP/e): the sums' numeric argmin sits at smaller c and larger T.
// The paper's own Fig 6.7 measurements (best c = 3, spread under 2x) are
// closer to its closed form than this model is, suggesting the empirical
// optimum is driven by page-granularity effects outside the §5.1 model.
#ifndef DSIG_CORE_COST_MODEL_H_
#define DSIG_CORE_COST_MODEL_H_

#include <cstddef>

namespace dsig {

// Number of grid nodes within network radius `i` of a node on an unbounded
// uniform grid: 2i² + i (paper Fig 5.3; excludes the node itself).
double GridNodesWithinRadius(double i);

struct GridCostModel {
  double density = 0.01;    // object density p
  double spreading = 1000;  // SP: spreadings uniform on [0, SP]

  // Expected refinement cost (Equation 2, up to the constant factor |D|·bits
  // that does not affect the optimum) for queries whose spreading falls in
  // the category containing `sp`, under partition (t, c).
  double QueryCost(double t, double c, double sp) const;

  // Average cost over spreadings 1..SP (Equation 1). Smaller is better.
  double AverageCost(double t, double c) const;

  struct Optimum {
    double t = 0;
    double c = 0;
    double cost = 0;
  };

  // Numerically minimizes AverageCost over a (t, c) grid.
  Optimum FindOptimum() const;

  // The paper's closed-form optimum for reference: c = e, T = sqrt(SP/e).
  Optimum PaperOptimum() const;
};

// Cost model for routing one exact point-to-point distance between the
// hub-label tier, signature link-chasing, and bounded Dijkstra (the
// query planner, query/planner.h). Same spirit as the §5.1 model above:
// relative units where one label-merge lane comparison costs 1.
//
// A label merge touches |L(u)| + |L(v)| ~ 2·avg_label_entries lanes. A
// chase covers the expected distance one edge at a time — expected hops ~
// distance / mean edge weight — and every hop decodes one signature
// component and touches one adjacency page, orders of magnitude above a
// lane. A bounded Dijkstra settles every node within the distance; the
// §5.1 grid estimate (GridNodesWithinRadius) prices that frontier.
struct ExactRouteCostModel {
  double avg_label_entries = 0;  // mean |L(v)| of the built labels
  double mean_edge_weight = 1;   // mean live-edge weight of the network
  double chase_hop_cost = 64;    // one decode + adjacency touch, in lanes
  double dijkstra_node_cost = 32;  // one settle + heap traffic, in lanes

  double LabelCost() const { return 2 * avg_label_entries; }

  double ChaseCost(double expected_distance) const {
    const double hops =
        mean_edge_weight > 0 ? expected_distance / mean_edge_weight : 1;
    return (hops < 1 ? 1 : hops) * chase_hop_cost;
  }

  double DijkstraCost(double expected_distance) const {
    const double radius =
        mean_edge_weight > 0 ? expected_distance / mean_edge_weight : 1;
    return (1 + GridNodesWithinRadius(radius < 1 ? 1 : radius)) *
           dijkstra_node_cost;
  }
};

}  // namespace dsig

#endif  // DSIG_CORE_COST_MODEL_H_
