// Process-wide counters of the signature's basic operations.
//
// The paper's analysis decomposes query cost into signature reads,
// backtracking steps, and comparisons (e.g., §6.2 attributes the kNN
// clock-time gap at k = 50 to sorting CPU and decompression). These counters
// expose that decomposition to benches and tests. Plain globals — the
// library is single-threaded per query stream, and the counters are
// diagnostics, not control flow.
#ifndef DSIG_CORE_OP_COUNTERS_H_
#define DSIG_CORE_OP_COUNTERS_H_

#include <cstdint>

namespace dsig {

struct OpCounters {
  uint64_t row_reads = 0;         // whole signature rows decoded
  uint64_t entry_reads = 0;       // single components decoded
  uint64_t backtrack_steps = 0;   // guided-backtracking hops
  uint64_t exact_compares = 0;    // Algorithm 2 invocations
  uint64_t approx_compares = 0;   // Algorithm 3 invocations
  uint64_t resolves = 0;          // compressed components decompressed
  // Graceful degradation: rows that failed to decode (in-memory corruption
  // slipping past load-time checks) and were recomputed by bounded Dijkstra.
  // Nonzero means queries stayed correct but paid shortest-path CPU for the
  // affected rows — benches report this as the degradation cost.
  uint64_t decode_fallbacks = 0;

  OpCounters operator-(const OpCounters& other) const {
    return {row_reads - other.row_reads,
            entry_reads - other.entry_reads,
            backtrack_steps - other.backtrack_steps,
            exact_compares - other.exact_compares,
            approx_compares - other.approx_compares,
            resolves - other.resolves,
            decode_fallbacks - other.decode_fallbacks};
  }
};

// The live counters (mutable; reset with ResetOpCounters).
OpCounters& GlobalOpCounters();

void ResetOpCounters();

}  // namespace dsig

#endif  // DSIG_CORE_OP_COUNTERS_H_
