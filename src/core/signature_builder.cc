#include "core/signature_builder.h"

#include <algorithm>
#include <utility>

namespace dsig {

SignatureRow BuildRowFromForest(const RoadNetwork& graph,
                                const SpanningForest& forest,
                                const CategoryPartition& partition, NodeId n) {
  SignatureRow row(forest.num_objects());
  for (uint32_t o = 0; o < forest.num_objects(); ++o) {
    const Weight d = forest.dist(o, n);
    DSIG_CHECK_LT(d, kInfiniteWeight)
        << "node " << n << " cannot reach object " << o
        << "; signatures require a connected network";
    SignatureEntry& entry = row[o];
    entry.category = static_cast<uint8_t>(partition.CategoryOf(d));
    if (forest.objects()[o] == n) {
      entry.link = 0;  // the object lives here; no next hop
    } else {
      // parent(o, n) is n's parent in the tree rooted at the object — the
      // next hop from n toward the object. The link stores its slot in n's
      // adjacency list (Fig 3.1).
      const EdgeId via = forest.parent_edge(o, n);
      DSIG_CHECK_NE(via, kInvalidEdge);
      const uint32_t slot = graph.AdjacencyIndexOf(n, via);
      DSIG_CHECK_LT(slot, 256u) << "adjacency slot exceeds 8-bit link";
      entry.link = static_cast<uint8_t>(slot);
    }
  }
  return row;
}

std::unique_ptr<SignatureIndex> BuildSignatureIndex(
    const RoadNetwork& graph, std::vector<NodeId> objects,
    const SignatureBuildOptions& options) {
  DSIG_CHECK(!objects.empty());
  std::sort(objects.begin(), objects.end());
  DSIG_CHECK(std::adjacent_find(objects.begin(), objects.end()) ==
             objects.end())
      << "duplicate object nodes";

  auto forest = std::make_unique<SpanningForest>(&graph, objects);
  forest->Build();

  // Partition the spectrum. max_distance = farthest (object, node) pair so
  // the finite boundaries cover the whole observed spectrum.
  Weight max_distance = 1;
  for (uint32_t o = 0; o < objects.size(); ++o) {
    for (NodeId n = 0; n < graph.num_nodes(); ++n) {
      const Weight d = forest->dist(o, n);
      DSIG_CHECK_LT(d, kInfiniteWeight)
          << "disconnected network: object " << o << " cannot reach node "
          << n;
      max_distance = std::max(max_distance, d);
    }
  }
  const CategoryPartition partition =
      options.optimal_partition
          ? CategoryPartition::Optimal(options.spreading_bound, max_distance)
          : CategoryPartition::Exponential(options.t, options.c,
                                           max_distance);
  const int m = partition.num_categories();
  DSIG_CHECK_LE(m, 255) << "category id must fit 8 bits";

  // Object-object distances; last-category pairs keep only a far marker.
  ObjectDistanceTable table(objects.size());
  for (uint32_t u = 0; u < objects.size(); ++u) {
    for (uint32_t v = u + 1; v < objects.size(); ++v) {
      const Weight d = forest->dist(u, objects[v]);
      if (partition.CategoryOf(d) == m - 1) {
        table.MarkFar(u, v);
      } else {
        table.Set(u, v, d);
      }
    }
  }

  const RowCompressor compressor(&partition, &table);

  // Pass 1: category frequencies of the uncompressed rows (the entropy code
  // is chosen against the pre-compression distribution, as in §5.2).
  std::vector<uint64_t> frequencies(static_cast<size_t>(m), 0);
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    const SignatureRow row = BuildRowFromForest(graph, *forest, partition, n);
    AccumulateCategoryFrequencies(row, &frequencies);
  }

  // Link width: one slot index per adjacency entry, with one spare bit of
  // headroom so edge insertions during maintenance rarely force a re-encode.
  int link_bits = 1;
  while ((1u << link_bits) < graph.max_degree()) ++link_bits;
  link_bits += 1;
  DSIG_CHECK_LE(link_bits, 8);

  SignatureCodec codec(BuildCategoryCode(options.code_kind, m, frequencies),
                       link_bits, options.compress);
  const HuffmanCode entropy_code =
      options.code_kind == CategoryCodeKind::kFixed
          ? HuffmanCode::ReverseZeroPadding(m)
          : BuildCategoryCode(options.code_kind, m, frequencies);

  // Pass 2: compress + encode every row, accumulating the size accounting
  // of Table 1 (raw -> encoded -> compressed).
  SignatureSizeStats stats;
  const int fixed_bits = partition.fixed_code_bits();
  std::vector<EncodedRow> rows(graph.num_nodes());
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    SignatureRow row = BuildRowFromForest(graph, *forest, partition, n);
    for (const SignatureEntry& entry : row) {
      stats.raw_bits += static_cast<uint64_t>(fixed_bits) + link_bits;
      stats.encoded_bits +=
          static_cast<uint64_t>(entropy_code.length(entry.category)) +
          link_bits;
      ++stats.entries;
    }
    if (options.compress) {
      stats.compressed_entries += compressor.Compress(&row);
    }
    rows[n] = codec.EncodeRow(row);
    stats.compressed_bits += rows[n].size_bits;
  }

  return std::make_unique<SignatureIndex>(
      &graph, std::move(objects), partition, std::move(codec),
      std::move(rows), std::move(table), stats,
      options.keep_forest ? std::move(forest) : nullptr);
}

}  // namespace dsig
