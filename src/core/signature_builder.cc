#include "core/signature_builder.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>

#include "util/thread_pool.h"

namespace dsig {

namespace {

// Nodes per chunk in the row sweeps: coarse enough that the chunk-claim
// mutex and the merge locks are noise, fine enough to steal-balance.
constexpr size_t kRowSweepGrain = 64;

}  // namespace

SignatureRow BuildRowFromForest(const RoadNetwork& graph,
                                const SpanningForest& forest,
                                const CategoryPartition& partition, NodeId n) {
  SignatureRow row(forest.num_objects());
  for (uint32_t o = 0; o < forest.num_objects(); ++o) {
    const Weight d = forest.dist(o, n);
    DSIG_CHECK_LT(d, kInfiniteWeight)
        << "node " << n << " cannot reach object " << o
        << "; signatures require a connected network";
    SignatureEntry& entry = row[o];
    entry.category = static_cast<uint8_t>(partition.CategoryOf(d));
    if (forest.objects()[o] == n) {
      entry.link = 0;  // the object lives here; no next hop
    } else {
      // parent(o, n) is n's parent in the tree rooted at the object — the
      // next hop from n toward the object. The link stores its slot in n's
      // adjacency list (Fig 3.1).
      const EdgeId via = forest.parent_edge(o, n);
      DSIG_CHECK_NE(via, kInvalidEdge);
      const uint32_t slot = graph.AdjacencyIndexOf(n, via);
      DSIG_CHECK_LT(slot, 256u) << "adjacency slot exceeds 8-bit link";
      entry.link = static_cast<uint8_t>(slot);
    }
  }
  return row;
}

std::unique_ptr<SignatureIndex> BuildSignatureIndex(
    const RoadNetwork& graph, std::vector<NodeId> objects,
    const SignatureBuildOptions& options) {
  DSIG_CHECK(!objects.empty());
  std::sort(objects.begin(), objects.end());
  DSIG_CHECK(std::adjacent_find(objects.begin(), objects.end()) ==
             objects.end())
      << "duplicate object nodes";

  // One pool drives every parallel phase. All cross-chunk merges below use
  // commutative operations only (sums, max), so the built index is
  // byte-identical at every thread count.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool = &ThreadPool::Global();
  if (options.num_threads > 0) {
    owned_pool = std::make_unique<ThreadPool>(options.num_threads);
    pool = owned_pool.get();
  }

  auto forest = std::make_unique<SpanningForest>(&graph, objects);
  forest->Build(pool);

  // Partition the spectrum. max_distance = farthest (object, node) pair so
  // the finite boundaries cover the whole observed spectrum. Per-object max
  // scans are independent; max merges commutatively.
  Weight max_distance = 1;
  std::mutex merge_mu;
  pool->ParallelForChunks(
      objects.size(), 1, [&](size_t obj_begin, size_t obj_end) {
        Weight local_max = 1;
        for (size_t o = obj_begin; o < obj_end; ++o) {
          for (NodeId n = 0; n < graph.num_nodes(); ++n) {
            const Weight d = forest->dist(static_cast<uint32_t>(o), n);
            DSIG_CHECK_LT(d, kInfiniteWeight)
                << "disconnected network: object " << o
                << " cannot reach node " << n;
            local_max = std::max(local_max, d);
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        max_distance = std::max(max_distance, local_max);
      });
  const CategoryPartition partition =
      options.optimal_partition
          ? CategoryPartition::Optimal(options.spreading_bound, max_distance)
          : CategoryPartition::Exponential(options.t, options.c,
                                           max_distance);
  const int m = partition.num_categories();
  DSIG_CHECK_LE(m, 255) << "category id must fit 8 bits";

  // Object-object distances; last-category pairs keep only a far marker.
  ObjectDistanceTable table(objects.size());
  for (uint32_t u = 0; u < objects.size(); ++u) {
    for (uint32_t v = u + 1; v < objects.size(); ++v) {
      const Weight d = forest->dist(u, objects[v]);
      if (partition.CategoryOf(d) == m - 1) {
        table.MarkFar(u, v);
      } else {
        table.Set(u, v, d);
      }
    }
  }

  const RowCompressor compressor(&partition, &table);

  // Sweep phase A: build every node's row ONCE, accumulating the category
  // frequencies the entropy code is chosen against (the pre-compression
  // distribution, as in §5.2). Rows are kept for phase B — the old pipeline
  // rebuilt each row from the forest a second time to encode it. Per-chunk
  // histograms merge by integer addition, so the totals are exact and
  // order-independent.
  const size_t num_nodes = graph.num_nodes();
  std::vector<SignatureRow> built_rows(num_nodes);
  std::vector<uint64_t> frequencies(static_cast<size_t>(m), 0);
  pool->ParallelForChunks(
      num_nodes, kRowSweepGrain, [&](size_t begin, size_t end) {
        std::vector<uint64_t> local_freq(static_cast<size_t>(m), 0);
        for (size_t n = begin; n < end; ++n) {
          built_rows[n] = BuildRowFromForest(graph, *forest, partition,
                                             static_cast<NodeId>(n));
          AccumulateCategoryFrequencies(built_rows[n], &local_freq);
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        for (size_t cat = 0; cat < local_freq.size(); ++cat) {
          frequencies[cat] += local_freq[cat];
        }
      });

  // Link width: one slot index per adjacency entry, with one spare bit of
  // headroom so edge insertions during maintenance rarely force a re-encode.
  int link_bits = 1;
  while ((1u << link_bits) < graph.max_degree()) ++link_bits;
  link_bits += 1;
  DSIG_CHECK_LE(link_bits, 8);

  SignatureCodec codec(BuildCategoryCode(options.code_kind, m, frequencies),
                       link_bits, options.compress);
  const HuffmanCode entropy_code =
      options.code_kind == CategoryCodeKind::kFixed
          ? HuffmanCode::ReverseZeroPadding(m)
          : BuildCategoryCode(options.code_kind, m, frequencies);

  // The raw/entropy-coded totals of Table 1 follow directly from the phase-A
  // category histogram (phase A sees every entry pre-compression), so the
  // encode sweep below no longer re-walks entries for size accounting.
  SignatureSizeStats stats;
  const int fixed_bits = partition.fixed_code_bits();
  for (size_t cat = 0; cat < frequencies.size(); ++cat) {
    stats.entries += frequencies[cat];
    stats.encoded_bits +=
        frequencies[cat] *
        static_cast<uint64_t>(entropy_code.length(static_cast<int>(cat)));
  }
  stats.raw_bits =
      stats.entries * static_cast<uint64_t>(fixed_bits + link_bits);
  stats.encoded_bits += stats.entries * static_cast<uint64_t>(link_bits);

  // Sweep phase B: compress + encode the rows built in phase A. Each row
  // encodes independently into its own slot through the word-level codec
  // kernels (EncodeRow pre-sizes its buffer, so each row costs one
  // allocation); per-chunk stats merge by addition. Rows are consumed
  // (moved out) as they encode, so peak memory falls as the sweep
  // progresses.
  std::vector<EncodedRow> rows(num_nodes);
  pool->ParallelForChunks(
      num_nodes, kRowSweepGrain, [&](size_t begin, size_t end) {
        uint64_t local_compressed_bits = 0;
        uint64_t local_compressed_entries = 0;
        for (size_t n = begin; n < end; ++n) {
          SignatureRow row = std::move(built_rows[n]);
          if (options.compress) {
            local_compressed_entries += compressor.Compress(&row);
          }
          rows[n] = codec.EncodeRow(row);
          local_compressed_bits += rows[n].size_bits;
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        stats.compressed_bits += local_compressed_bits;
        stats.compressed_entries += local_compressed_entries;
      });

  return std::make_unique<SignatureIndex>(
      &graph, std::move(objects), partition, std::move(codec),
      std::move(rows), std::move(table), stats,
      options.keep_forest ? std::move(forest) : nullptr);
}

}  // namespace dsig
