#include "core/versioned_rows.h"

#include <utility>

#include "util/logging.h"

namespace dsig {

VersionedRowStore::VersionedRowStore(std::vector<EncodedRow> rows)
    : heads_(rows.size()) {
  for (size_t n = 0; n < rows.size(); ++n) {
    Version* v = new Version{0, std::move(rows[n]), {}};
    heads_[n].store(v, std::memory_order_relaxed);
  }
}

VersionedRowStore::VersionedRowStore(VersionedRowStore&& other) noexcept {
  *this = std::move(other);
}

VersionedRowStore& VersionedRowStore::operator=(
    VersionedRowStore&& other) noexcept {
  if (this == &other) return *this;
  // Moves happen only single-threaded (construction / test setup), so plain
  // element-wise pointer transfer is fine.
  FreeAll();
  heads_ = std::vector<std::atomic<Version*>>(other.heads_.size());
  for (size_t n = 0; n < heads_.size(); ++n) {
    heads_[n].store(other.heads_[n].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    other.heads_[n].store(nullptr, std::memory_order_relaxed);
  }
  retired_ = std::move(other.retired_);
  other.retired_.clear();
  retired_bytes_.store(other.retired_bytes_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  other.retired_bytes_.store(0, std::memory_order_relaxed);
  return *this;
}

VersionedRowStore::~VersionedRowStore() { FreeAll(); }

void VersionedRowStore::FreeAll() {
  // Retired versions are still linked from their successors' prev pointers,
  // so freeing every chain from its head covers them too; the retired list
  // only needs clearing.
  for (std::atomic<Version*>& head : heads_) {
    Version* v = head.load(std::memory_order_relaxed);
    head.store(nullptr, std::memory_order_relaxed);
    while (v != nullptr) {
      Version* prev = v->prev.load(std::memory_order_relaxed);
      delete v;
      v = prev;
    }
  }
  retired_.clear();
  retired_bytes_.store(0, std::memory_order_relaxed);
}

const EncodedRow& VersionedRowStore::Read(NodeId n, uint64_t epoch) const {
  DSIG_CHECK_LT(n, heads_.size());
  const Version* v = heads_[n].load(std::memory_order_acquire);
  while (v != nullptr && v->epoch > epoch) {
    v = v->prev.load(std::memory_order_acquire);
  }
  DSIG_CHECK(v != nullptr) << "no row version at epoch " << epoch
                           << " for node " << n;
  return v->row;
}

const EncodedRow& VersionedRowStore::ReadNewest(NodeId n) const {
  DSIG_CHECK_LT(n, heads_.size());
  const Version* v = heads_[n].load(std::memory_order_acquire);
  DSIG_CHECK(v != nullptr);
  return v->row;
}

EncodedRow& VersionedRowStore::MutableNewest(NodeId n) {
  DSIG_CHECK_LT(n, heads_.size());
  Version* v = heads_[n].load(std::memory_order_acquire);
  DSIG_CHECK(v != nullptr);
  return v->row;
}

void VersionedRowStore::Publish(NodeId n, EncodedRow row, uint64_t epoch) {
  DSIG_CHECK_LT(n, heads_.size());
  Version* old_head = heads_[n].load(std::memory_order_relaxed);
  Version* v = new Version{epoch, std::move(row), {}};
  v->prev.store(old_head, std::memory_order_relaxed);
  // Release: a reader that loads the new head sees a fully built version and
  // the intact chain behind it.
  heads_[n].store(v, std::memory_order_release);
  if (old_head != nullptr) {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back({old_head, v, epoch});
    retired_bytes_.fetch_add(VersionBytes(*old_head),
                             std::memory_order_relaxed);
  }
}

uint64_t VersionedRowStore::Reclaim(uint64_t min_pinned) {
  uint64_t freed = 0;
  std::lock_guard<std::mutex> lock(retired_mu_);
  // FIFO: retire epochs are non-decreasing, so the reclaimable prefix is
  // contiguous. Within one node's chain the oldest version retires first, so
  // each entry freed here is the current tail of its chain; unlinking it
  // from its successor keeps every reachable prev pointer valid.
  while (!retired_.empty() && retired_.front().retire_epoch <= min_pinned) {
    const Retired entry = retired_.front();
    retired_.pop_front();
    entry.successor->prev.store(nullptr, std::memory_order_relaxed);
    freed += VersionBytes(*entry.version);
    delete entry.version;
  }
  retired_bytes_.fetch_sub(freed, std::memory_order_relaxed);
  return freed;
}

}  // namespace dsig
