#include "core/compression.h"

#include <algorithm>
#include <tuple>

#include "core/row_stage.h"
#include "util/logging.h"
#include "util/simd/simd.h"

namespace dsig {

namespace {

// Layout adapters: the AoS row and the SoA stage share one implementation
// of the rep rule (ComputeRepsView) so the two paths cannot drift.
struct AosRowView {
  const SignatureRow* row;
  size_t size() const { return row->size(); }
  bool compressed(uint32_t i) const { return (*row)[i].compressed; }
  uint8_t category(uint32_t i) const { return (*row)[i].category; }
  uint8_t link(uint32_t i) const { return (*row)[i].link; }
};

struct StageRowView {
  const RowStage* stage;
  size_t size() const { return stage->size(); }
  bool compressed(uint32_t i) const { return stage->flags()[i] != 0; }
  uint8_t category(uint32_t i) const { return stage->categories()[i]; }
  uint8_t link(uint32_t i) const { return stage->links()[i]; }
};

}  // namespace

int AddUpCategories(int a, int b, int num_categories) {
  DSIG_CHECK_GE(a, 0);
  DSIG_CHECK_GE(b, 0);
  DSIG_CHECK_LT(a, num_categories);
  DSIG_CHECK_LT(b, num_categories);
  if (a != b) return std::max(a, b);
  return std::min(a + 1, num_categories - 1);
}

RowCompressor::RowCompressor(const CategoryPartition* partition,
                             const ObjectDistanceTable* table)
    : partition_(partition), table_(table) {
  DSIG_CHECK(partition_ != nullptr);
  DSIG_CHECK(table_ != nullptr);
}

int RowCompressor::ObjectPairCategory(uint32_t u, uint32_t v) const {
  if (table_->IsFar(u, v)) return partition_->num_categories() - 1;
  return partition_->CategoryOf(table_->Get(u, v));
}

template <class View>
std::vector<RowCompressor::Rep> RowCompressor::ComputeRepsView(
    const View& view) const {
  std::vector<Rep> reps;
  const uint32_t n = static_cast<uint32_t>(view.size());
  for (uint32_t i = 0; i < n; ++i) {
    if (view.compressed(i)) continue;
    const uint8_t category = view.category(i);
    const uint8_t link = view.link(i);
    bool found = false;
    for (Rep& rep : reps) {
      if (rep.link != link) continue;
      found = true;
      // Position is the tie-break: the earlier object wins, and since we
      // scan in position order the incumbent already wins ties.
      if (category < rep.category) {
        rep = {i, category, link};
      }
      break;
    }
    if (!found) reps.push_back({i, category, link});
  }
  return reps;
}

std::vector<RowCompressor::Rep> RowCompressor::ComputeReps(
    const SignatureRow& row) const {
  return ComputeRepsView(AosRowView{&row});
}

bool RowCompressor::BestRep(const std::vector<Rep>& reps, uint32_t v,
                            uint8_t* category, uint8_t* link) const {
  const int m = partition_->num_categories();
  bool have = false;
  int best_sum = 0;
  uint8_t best_cat = 0;
  uint32_t best_pos = 0;
  uint8_t best_link = 0;
  for (const Rep& rep : reps) {
    if (rep.object == v) continue;
    const int sum =
        AddUpCategories(rep.category, ObjectPairCategory(rep.object, v), m);
    const bool better =
        !have ||
        std::make_tuple(sum, static_cast<int>(rep.category), rep.object) <
            std::make_tuple(best_sum, static_cast<int>(best_cat), best_pos);
    if (better) {
      have = true;
      best_sum = sum;
      best_cat = rep.category;
      best_pos = rep.object;
      best_link = rep.link;
    }
  }
  if (!have) return false;
  *category = static_cast<uint8_t>(best_sum);
  *link = best_link;
  return true;
}

size_t RowCompressor::Compress(SignatureRow* row) const {
  // Reps are fixed from the fully uncompressed row; flagged entries never
  // include a rep, so the decoder recovers the identical rep set.
  for (SignatureEntry& entry : *row) {
    DSIG_CHECK(!entry.compressed) << "row already compressed";
  }
  const std::vector<Rep> reps = ComputeReps(*row);
  size_t flagged = 0;
  for (uint32_t v = 0; v < row->size(); ++v) {
    SignatureEntry& entry = (*row)[v];
    uint8_t category = 0, link = 0;
    if (!BestRep(reps, v, &category, &link)) continue;
    if (category == entry.category && link == entry.link) {
      entry.compressed = true;
      ++flagged;
    }
  }
  return flagged;
}

SignatureEntry RowCompressor::Resolve(const SignatureRow& row,
                                      uint32_t index) const {
  DSIG_CHECK_LT(index, row.size());
  const SignatureEntry& entry = row[index];
  if (!entry.compressed) return entry;
  const std::vector<Rep> reps = ComputeReps(row);
  SignatureEntry resolved;
  const bool ok = BestRep(reps, index, &resolved.category, &resolved.link);
  DSIG_CHECK(ok) << "compressed entry with no representative";
  resolved.compressed = false;
  return resolved;
}

bool RowCompressor::TryResolveRow(SignatureRow* row) const {
  if (row->size() != table_->num_objects()) return false;
  const int m = partition_->num_categories();
  for (const SignatureEntry& entry : *row) {
    // Out-of-partition categories would abort inside AddUpCategories.
    if (!entry.compressed && entry.category >= m) return false;
  }
  const std::vector<Rep> reps = ComputeReps(*row);
  for (uint32_t v = 0; v < row->size(); ++v) {
    SignatureEntry& entry = (*row)[v];
    if (!entry.compressed) continue;
    if (!BestRep(reps, v, &entry.category, &entry.link)) return false;
    entry.compressed = false;
  }
  return true;
}

bool RowCompressor::TryResolveStage(RowStage* stage) const {
  if (stage->size() != table_->num_objects()) return false;
  const int m = partition_->num_categories();
  const size_t n = stage->size();
  const uint8_t* cats = stage->categories();
  const uint8_t* flags = stage->flags();
  const simd::KernelTable& k = simd::Kernels();
  // Out-of-partition categories among uncompressed entries, counted without
  // a filtered scan: flagged entries hold the 0xFF sentinel (the stage
  // invariant), so bad cats split into [m, 255) — uncompressed by
  // construction — plus the 0xFF lanes that are not flags.
  if (m <= 0xFF) {
    const size_t bad_below_ff = k.count_in_range(cats, n, m, 0xFF);
    const size_t cat_ff = k.count_in_range(cats, n, 0xFF, 256);
    const size_t num_flagged = k.count_in_range(flags, n, 1, 256);
    if (bad_below_ff != 0 || cat_ff != num_flagged) return false;
  }
  if (!stage->any_compressed()) return true;
  const std::vector<Rep> reps = ComputeRepsView(StageRowView{stage});
  uint32_t* const idx = stage->index_scratch();
  const size_t num_compressed = k.extract_in_range(flags, n, 1, 256, idx);
  uint8_t* const mcats = stage->categories();
  uint8_t* const mlinks = stage->links();
  uint8_t* const mflags = stage->flags();
  for (size_t j = 0; j < num_compressed; ++j) {
    const uint32_t v = idx[j];
    if (!BestRep(reps, v, &mcats[v], &mlinks[v])) return false;
    mflags[v] = 0;
  }
  stage->set_any_compressed(false);
  return true;
}

void RowCompressor::ResolveRow(SignatureRow* row) const {
  const std::vector<Rep> reps = ComputeReps(*row);
  for (uint32_t v = 0; v < row->size(); ++v) {
    SignatureEntry& entry = (*row)[v];
    if (!entry.compressed) continue;
    const bool ok = BestRep(reps, v, &entry.category, &entry.link);
    DSIG_CHECK(ok) << "compressed entry with no representative";
    entry.compressed = false;
  }
}

}  // namespace dsig
