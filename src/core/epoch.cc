#include "core/epoch.h"

#include <thread>
#include <vector>

#include "util/logging.h"

namespace dsig {
namespace {

// Per-thread registry of gates this thread currently holds, for snapshot
// re-entrancy and writer self-recognition. A thread realistically holds one
// or two gates at a time (e.g. a test comparing a maintained index against a
// rebuilt one), so a linear scan of a tiny vector beats any map.
struct GateState {
  const EpochGate* gate;
  int depth;        // nested ReadSnapshot count
  bool writer;      // inside an UpdateGuard
  uint64_t epoch;   // epoch the outermost snapshot pinned
};

thread_local std::vector<GateState> tls_gates;

GateState* FindGate(const EpochGate* gate) {
  for (GateState& state : tls_gates) {
    if (state.gate == gate) return &state;
  }
  return nullptr;
}

void EraseGate(const EpochGate* gate) {
  for (size_t i = 0; i < tls_gates.size(); ++i) {
    if (tls_gates[i].gate == gate) {
      tls_gates[i] = tls_gates.back();
      tls_gates.pop_back();
      return;
    }
  }
  DSIG_CHECK(false) << "releasing a gate this thread does not hold";
}

}  // namespace

uint64_t EpochGate::MinPinnedEpoch() const {
  uint64_t min_pinned = current_epoch();
  for (const PinSlot& slot : pins_) {
    const uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < min_pinned) min_pinned = pinned;
  }
  return min_pinned;
}

bool EpochGate::ThisThreadHoldsWrite() const {
  const GateState* state = FindGate(this);
  return state != nullptr && state->writer;
}

ReadSnapshot::ReadSnapshot(EpochGate* gate) : gate_(gate) {
  GateState* state = FindGate(gate);
  if (state != nullptr) {
    if (state->writer) {
      // The updater reading through the ordinary paths must see its own
      // not-yet-committed rows, and must not self-deadlock on the lock.
      epoch_ = ~uint64_t{0};
      return;
    }
    ++state->depth;
    epoch_ = state->epoch;
    return;
  }

  outermost_ = true;
  gate->mu_.lock_shared();
  // Claim a pin slot, then validate: if the epoch moved between reading it
  // and publishing the pin, a concurrent reclaimer may have missed us, so
  // re-pin at the newer epoch. (Under the shared lock no writer can be
  // advancing the epoch concurrently, so this loop exits first try; it keeps
  // the pin protocol independently correct for any future gate-free reader.)
  const size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      EpochGate::kPinSlots;
  for (int probe = 0; probe < EpochGate::kPinSlots; ++probe) {
    const size_t i = (start + probe) % EpochGate::kPinSlots;
    uint64_t free_slot = 0;
    if (gate->pins_[i].epoch.compare_exchange_strong(
            free_slot, gate->epoch_.load(std::memory_order_seq_cst),
            std::memory_order_seq_cst)) {
      slot_ = static_cast<int>(i);
      break;
    }
  }
  if (slot_ >= 0) {
    for (;;) {
      const uint64_t now = gate->epoch_.load(std::memory_order_seq_cst);
      if (gate->pins_[slot_].epoch.load(std::memory_order_seq_cst) == now) {
        epoch_ = now;
        break;
      }
      gate->pins_[slot_].epoch.store(now, std::memory_order_seq_cst);
    }
  } else {
    // All slots busy: the shared lock alone still excludes the writer, so
    // reading the current epoch unpinned is safe for lock-holding readers.
    epoch_ = gate->epoch_.load(std::memory_order_seq_cst);
  }
  tls_gates.push_back({gate, 1, false, epoch_});
}

ReadSnapshot::~ReadSnapshot() {
  GateState* state = FindGate(gate_);
  DSIG_CHECK(state != nullptr);
  if (state->writer) return;  // no-op snapshot inside the write guard
  if (--state->depth > 0) return;
  EraseGate(gate_);
  if (slot_ >= 0) {
    gate_->pins_[slot_].epoch.store(0, std::memory_order_seq_cst);
  }
  if (outermost_) gate_->mu_.unlock_shared();
}

UpdateGuard::UpdateGuard(EpochGate* gate) : gate_(gate) {
  GateState* state = FindGate(gate);
  DSIG_CHECK(state == nullptr)
      << "UpdateGuard taken while this thread already holds the gate "
      << (state != nullptr && state->writer ? "(nested update)"
                                            : "(inside a ReadSnapshot)");
  gate->mu_.lock();
  publish_epoch_ = gate->epoch_.load(std::memory_order_relaxed) + 1;
  tls_gates.push_back({gate, 0, true, publish_epoch_});
}

UpdateGuard::~UpdateGuard() {
  EraseGate(gate_);
  // Release store: everything published into the row store while the guard
  // was held happens-before any reader that observes the new epoch.
  gate_->epoch_.store(publish_epoch_, std::memory_order_release);
  gate_->mu_.unlock();
}

}  // namespace dsig
