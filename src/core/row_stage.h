// SoA staging of one decoded signature row.
//
// The AoS SignatureRow (3-byte entries) is convenient for per-entry logic
// but hostile to the SIMD query kernels (util/simd), which want one
// contiguous byte lane per field. A RowStage holds the same row as three
// parallel 64-byte-aligned arrays — categories, links, compression flags —
// emitted directly by the codec's fused decode (SignatureCodec::
// TryDecodeRowStage), so the hot query loops scan category lanes 16/32-wide
// without a gather or a transpose.
//
// Stages are scratch: query loops keep one thread_local instance and refill
// it per row, so the buffers stop reallocating once they reach the object
// count.
#ifndef DSIG_CORE_ROW_STAGE_H_
#define DSIG_CORE_ROW_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/signature.h"

namespace dsig {

class RowStage {
 public:
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Unresolved (compressed) entries hold kUnresolvedCategory /
  // kUnresolvedLink with flag 1; resolution (RowCompressor::TryResolveStage)
  // rewrites them in place and clears the flags.
  const uint8_t* categories() const { return categories_; }
  const uint8_t* links() const { return links_; }
  const uint8_t* flags() const { return flags_; }
  uint8_t* categories() { return categories_; }
  uint8_t* links() { return links_; }
  uint8_t* flags() { return flags_; }

  // True while any flag is set; decode and resolve maintain it so readers
  // can skip the resolve pass entirely for fully materialized rows.
  bool any_compressed() const { return any_compressed_; }
  void set_any_compressed(bool v) { any_compressed_ = v; }

  SignatureEntry entry(uint32_t i) const {
    return {categories_[i], links_[i], flags_[i] != 0};
  }

  // Sizes the arrays for `n` entries; contents are undefined afterwards.
  void Resize(size_t n);

  // AoS bridges (tests, fallback rows, legacy call sites).
  void Assign(const SignatureRow& row);
  SignatureRow ToRow() const;

  // Index buffer sized to the row, for kernel extraction output
  // (simd::KernelTable::extract_in_range writes at most size() indices).
  uint32_t* index_scratch();

 private:
  // One allocation, three lanes at 64-byte-aligned offsets.
  std::vector<uint8_t> buffer_;
  std::vector<uint32_t> scratch_;
  uint8_t* categories_ = nullptr;
  uint8_t* links_ = nullptr;
  uint8_t* flags_ = nullptr;
  size_t size_ = 0;
  bool any_compressed_ = false;
};

}  // namespace dsig

#endif  // DSIG_CORE_ROW_STAGE_H_
