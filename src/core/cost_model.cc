#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace dsig {

double GridNodesWithinRadius(double i) {
  DSIG_CHECK_GE(i, 0);
  return 2 * i * i + i;
}

namespace {

// Expected reverse-zero-padding code length per signature component under
// the grid object distribution: category k spans [c^{k-1}t, c^k t) and holds
// ~ O(ub) - O(lb) objects; RZP assigns 1 bit to the last category and one
// extra bit per earlier category. This is the per-node signature-size factor
// in Equation 2 — using the real entropy code (rather than a fixed log M)
// captures the §5.2 penalty of over-fine partitions.
double AverageRzpBits(double t, double c, double sp) {
  // Category bounds up to the spreading regime.
  std::vector<double> bounds = {0, t};
  while (bounds.back() < sp) bounds.push_back(bounds.back() * c);
  const int m = static_cast<int>(bounds.size()) - 1;  // categories
  double weighted = 0, total = 0;
  for (int k = 0; k < m; ++k) {
    const double mass =
        GridNodesWithinRadius(bounds[static_cast<size_t>(k) + 1]) -
        GridNodesWithinRadius(bounds[static_cast<size_t>(k)]);
    // RZP length: last category 1 bit, each earlier one +1, first category
    // shares the longest length.
    const int length = std::max(1, std::min(m - k, m - 1));
    weighted += mass * length;
    total += mass;
  }
  return total == 0 ? 1 : weighted / total;
}

}  // namespace

double GridCostModel::QueryCost(double t, double c, double sp) const {
  DSIG_CHECK_GT(t, 0);
  DSIG_CHECK_GT(c, 1);
  // Category bounds containing `sp` under the exponential partition.
  double lb = 0, ub = t;
  while (sp >= ub) {
    lb = ub;
    ub *= c;
  }
  // Open tail / oversized categories: the relevant objects cannot be farther
  // than the spreading regime allows.
  ub = std::min(ub, std::max(spreading, lb * c));

  // Refinement work (Equation 2): every object at distance j inside the
  // category must be backtracked j - lb nodes, and each visited node costs a
  // signature read whose size scales with log(#categories).
  const double from = std::floor(lb) + 1;
  const double to = std::floor(ub);
  double visits = 0;
  for (double j = from; j <= to; ++j) {
    const double ring = GridNodesWithinRadius(j) - GridNodesWithinRadius(j - 1);
    visits += (j - lb) * ring * density;
  }
  return visits * AverageRzpBits(t, c, spreading);
}

double GridCostModel::AverageCost(double t, double c) const {
  DSIG_CHECK_GE(spreading, 1);
  // cost(sp) is constant within a category (the paper's observation allowing
  // Equation 1 -> Equation 3), so evaluate once per category and weight by
  // the category's overlap with [0, SP].
  double total = 0;
  double lb = 0, ub = t;
  while (lb < spreading) {
    const double overlap = std::min(ub, spreading) - lb;
    if (overlap > 0) {
      total += overlap * QueryCost(t, c, (lb + std::min(ub, spreading)) / 2);
    }
    lb = ub;
    ub *= c;
  }
  return total / spreading;
}

GridCostModel::Optimum GridCostModel::FindOptimum() const {
  Optimum best;
  best.cost = std::numeric_limits<double>::infinity();
  for (double c = 1.3; c <= 8.0; c += 0.1) {
    // T candidates: log-spaced up to the spreading bound.
    for (double t = 1; t <= spreading; t *= 1.15) {
      const double cost = AverageCost(t, c);
      if (cost < best.cost) {
        best = {t, c, cost};
      }
    }
  }
  return best;
}

GridCostModel::Optimum GridCostModel::PaperOptimum() const {
  Optimum opt;
  opt.c = std::exp(1.0);
  opt.t = std::sqrt(spreading / opt.c);
  opt.cost = AverageCost(opt.t, opt.c);
  return opt;
}

}  // namespace dsig
