#include "core/object_distance_table.h"

namespace dsig {

ObjectDistanceTable::ObjectDistanceTable(size_t num_objects)
    : num_objects_(num_objects),
      table_(num_objects * num_objects, kInfiniteWeight) {
  for (uint32_t i = 0; i < num_objects_; ++i) table_[Slot(i, i)] = 0;
}

void ObjectDistanceTable::Set(uint32_t u, uint32_t v, Weight distance) {
  DSIG_CHECK_GE(distance, 0);
  DSIG_CHECK_LT(distance, kInfiniteWeight);
  if (table_[Slot(u, v)] == kInfiniteWeight && u != v) ++stored_pairs_;
  table_[Slot(u, v)] = distance;
  table_[Slot(v, u)] = distance;
}

void ObjectDistanceTable::MarkFar(uint32_t u, uint32_t v) {
  DSIG_CHECK_NE(u, v);
  if (table_[Slot(u, v)] != kInfiniteWeight) --stored_pairs_;
  table_[Slot(u, v)] = kInfiniteWeight;
  table_[Slot(v, u)] = kInfiniteWeight;
}

Weight ObjectDistanceTable::Get(uint32_t u, uint32_t v) const {
  const Weight d = table_[Slot(u, v)];
  DSIG_CHECK_LT(d, kInfiniteWeight);
  return d;
}

uint64_t ObjectDistanceTable::MemoryBytes() const {
  // Pairs are stored once conceptually (the matrix mirrors them for O(1)
  // lookup, but an on-disk/packed layout would not).
  return stored_pairs_ * sizeof(Weight);
}

}  // namespace dsig
