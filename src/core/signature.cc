#include "core/signature.h"

#include <utility>

#include "util/bitstream.h"
#include "util/logging.h"

namespace dsig {

SignatureCodec::SignatureCodec(HuffmanCode category_code, int link_bits,
                               bool has_flags)
    : category_code_(std::move(category_code)),
      link_bits_(link_bits),
      has_flags_(has_flags) {
  DSIG_CHECK_GE(link_bits_, 0);
  DSIG_CHECK_LE(link_bits_, 16);
}

EncodedRow SignatureCodec::EncodeRow(const SignatureRow& row) const {
  EncodedRow encoded;
  BitWriter writer;
  for (uint32_t i = 0; i < row.size(); ++i) {
    if (i % kCheckpointInterval == 0) {
      encoded.checkpoints.push_back(static_cast<uint32_t>(writer.size_bits()));
    }
    const SignatureEntry& entry = row[i];
    if (has_flags_) writer.WriteBit(entry.compressed);
    if (entry.compressed) {
      DSIG_CHECK(has_flags_) << "compressed entries need flag bits";
      continue;
    }
    category_code_.Encode(entry.category, &writer);
    DSIG_CHECK_LT(entry.link, 1u << link_bits_)
        << "backtracking link does not fit the codec's link width";
    writer.WriteBits(entry.link, link_bits_);
  }
  encoded.size_bits = static_cast<uint32_t>(writer.size_bits());
  encoded.bytes = writer.TakeBytes();
  return encoded;
}

SignatureRow SignatureCodec::DecodeRow(const EncodedRow& encoded) const {
  SignatureRow row;
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  while (!reader.AtEnd()) {
    SignatureEntry entry;
    if (has_flags_ && reader.ReadBit()) {
      entry.category = kUnresolvedCategory;
      entry.link = kUnresolvedLink;
      entry.compressed = true;
    } else {
      entry.category = static_cast<uint8_t>(category_code_.Decode(&reader));
      entry.link = static_cast<uint8_t>(reader.ReadBits(link_bits_));
    }
    row.push_back(entry);
  }
  return row;
}

SignatureEntry SignatureCodec::DecodeEntry(const EncodedRow& encoded,
                                           uint32_t index,
                                           uint64_t* bit_offset) const {
  const uint32_t checkpoint = index / kCheckpointInterval;
  DSIG_CHECK_LT(checkpoint, encoded.checkpoints.size());
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  reader.Seek(encoded.checkpoints[checkpoint]);
  SignatureEntry entry;
  for (uint32_t i = checkpoint * kCheckpointInterval;; ++i) {
    const uint64_t start = reader.position();
    if (has_flags_ && reader.ReadBit()) {
      entry.category = kUnresolvedCategory;
      entry.link = kUnresolvedLink;
      entry.compressed = true;
    } else {
      entry.category = static_cast<uint8_t>(category_code_.Decode(&reader));
      entry.link = static_cast<uint8_t>(reader.ReadBits(link_bits_));
      entry.compressed = false;
    }
    if (i == index) {
      if (bit_offset != nullptr) *bit_offset = start;
      return entry;
    }
  }
}

}  // namespace dsig
