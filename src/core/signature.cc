#include "core/signature.h"

#include <utility>

#include "util/bitstream.h"
#include "util/logging.h"

namespace dsig {

SignatureCodec::SignatureCodec(HuffmanCode category_code, int link_bits,
                               bool has_flags)
    : category_code_(std::move(category_code)),
      link_bits_(link_bits),
      has_flags_(has_flags) {
  DSIG_CHECK_GE(link_bits_, 0);
  DSIG_CHECK_LE(link_bits_, 16);
}

EncodedRow SignatureCodec::EncodeRow(const SignatureRow& row) const {
  EncodedRow encoded;
  BitWriter writer;
  for (uint32_t i = 0; i < row.size(); ++i) {
    if (i % kCheckpointInterval == 0) {
      encoded.checkpoints.push_back(static_cast<uint32_t>(writer.size_bits()));
    }
    const SignatureEntry& entry = row[i];
    if (has_flags_) writer.WriteBit(entry.compressed);
    if (entry.compressed) {
      DSIG_CHECK(has_flags_) << "compressed entries need flag bits";
      continue;
    }
    category_code_.Encode(entry.category, &writer);
    DSIG_CHECK_LT(entry.link, 1u << link_bits_)
        << "backtracking link does not fit the codec's link width";
    writer.WriteBits(entry.link, link_bits_);
  }
  encoded.size_bits = static_cast<uint32_t>(writer.size_bits());
  encoded.bytes = writer.TakeBytes();
  return encoded;
}

SignatureRow SignatureCodec::DecodeRow(const EncodedRow& encoded) const {
  SignatureRow row;
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  while (!reader.AtEnd()) {
    SignatureEntry entry;
    if (has_flags_ && reader.ReadBit()) {
      entry.category = kUnresolvedCategory;
      entry.link = kUnresolvedLink;
      entry.compressed = true;
    } else {
      entry.category = static_cast<uint8_t>(category_code_.Decode(&reader));
      entry.link = static_cast<uint8_t>(reader.ReadBits(link_bits_));
    }
    row.push_back(entry);
  }
  return row;
}

namespace {

// Reads one component without aborting; false on truncation / bad prefix /
// oversized link. Factored so row and entry decoding share the rules.
bool TryReadComponent(const HuffmanCode& category_code, int link_bits,
                      bool has_flags, BitReader* reader,
                      SignatureEntry* entry) {
  if (has_flags) {
    if (reader->AtEnd()) return false;
    if (reader->ReadBit()) {
      entry->category = kUnresolvedCategory;
      entry->link = kUnresolvedLink;
      entry->compressed = true;
      return true;
    }
  }
  int symbol = 0;
  if (!category_code.TryDecode(reader, &symbol)) return false;
  if (symbol > 0xFF) return false;
  if (reader->size_bits() - reader->position() <
      static_cast<size_t>(link_bits)) {
    return false;
  }
  const uint64_t link = reader->ReadBits(link_bits);
  if (link > 0xFF) return false;  // adjacency slots are uint8
  entry->category = static_cast<uint8_t>(symbol);
  entry->link = static_cast<uint8_t>(link);
  entry->compressed = false;
  return true;
}

}  // namespace

bool SignatureCodec::TryDecodeRow(const EncodedRow& encoded,
                                  size_t expected_entries,
                                  SignatureRow* row) const {
  row->clear();
  if (encoded.size_bits > encoded.bytes.size() * 8) return false;
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  while (!reader.AtEnd()) {
    SignatureEntry entry;
    if (!TryReadComponent(category_code_, link_bits_, has_flags_, &reader,
                          &entry)) {
      return false;
    }
    row->push_back(entry);
    if (row->size() > expected_entries) return false;  // trailing garbage
  }
  return row->size() == expected_entries;
}

bool SignatureCodec::TryDecodeEntry(const EncodedRow& encoded, uint32_t index,
                                    SignatureEntry* entry,
                                    uint64_t* bit_offset) const {
  if (encoded.size_bits > encoded.bytes.size() * 8) return false;
  const uint32_t checkpoint = index / kCheckpointInterval;
  if (checkpoint >= encoded.checkpoints.size()) return false;
  const uint32_t start_bit = encoded.checkpoints[checkpoint];
  if (start_bit > encoded.size_bits) return false;
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  reader.Seek(start_bit);
  for (uint32_t i = checkpoint * kCheckpointInterval; i <= index; ++i) {
    const uint64_t start = reader.position();
    if (!TryReadComponent(category_code_, link_bits_, has_flags_, &reader,
                          entry)) {
      return false;
    }
    if (i == index) {
      if (bit_offset != nullptr) *bit_offset = start;
      return true;
    }
  }
  return false;
}

SignatureEntry SignatureCodec::DecodeEntry(const EncodedRow& encoded,
                                           uint32_t index,
                                           uint64_t* bit_offset) const {
  const uint32_t checkpoint = index / kCheckpointInterval;
  DSIG_CHECK_LT(checkpoint, encoded.checkpoints.size());
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  reader.Seek(encoded.checkpoints[checkpoint]);
  SignatureEntry entry;
  for (uint32_t i = checkpoint * kCheckpointInterval;; ++i) {
    const uint64_t start = reader.position();
    if (has_flags_ && reader.ReadBit()) {
      entry.category = kUnresolvedCategory;
      entry.link = kUnresolvedLink;
      entry.compressed = true;
    } else {
      entry.category = static_cast<uint8_t>(category_code_.Decode(&reader));
      entry.link = static_cast<uint8_t>(reader.ReadBits(link_bits_));
      entry.compressed = false;
    }
    if (i == index) {
      if (bit_offset != nullptr) *bit_offset = start;
      return entry;
    }
  }
}

}  // namespace dsig
