#include "core/signature.h"

#include <utility>

#include "core/row_stage.h"
#include "util/bitstream.h"
#include "util/logging.h"

namespace dsig {

SignatureCodec::SignatureCodec(HuffmanCode category_code, int link_bits,
                               bool has_flags)
    : category_code_(std::move(category_code)),
      link_bits_(link_bits),
      has_flags_(has_flags) {
  DSIG_CHECK_GE(link_bits_, 0);
  DSIG_CHECK_LE(link_bits_, 16);
}

EncodedRow SignatureCodec::EncodeRow(const SignatureRow& row) const {
  EncodedRow encoded;
  encoded.checkpoints.reserve(
      (row.size() + kCheckpointInterval - 1) / kCheckpointInterval);
  // Exact-size first pass (array lookups only), so the writer allocates its
  // buffer once instead of growing through the bit appends.
  size_t total_bits = 0;
  for (const SignatureEntry& entry : row) {
    total_bits += has_flags_ ? 1 : 0;
    if (!entry.compressed) {
      total_bits += static_cast<size_t>(
                        category_code_.length(entry.category)) +
                    static_cast<size_t>(link_bits_);
    }
  }
  BitWriter writer;
  writer.Reserve(total_bits);
  for (uint32_t i = 0; i < row.size(); ++i) {
    if (i % kCheckpointInterval == 0) {
      encoded.checkpoints.push_back(static_cast<uint32_t>(writer.size_bits()));
    }
    const SignatureEntry& entry = row[i];
    if (has_flags_) writer.WriteBit(entry.compressed);
    if (entry.compressed) {
      DSIG_CHECK(has_flags_) << "compressed entries need flag bits";
      continue;
    }
    category_code_.Encode(entry.category, &writer);
    DSIG_CHECK_LT(entry.link, 1u << link_bits_)
        << "backtracking link does not fit the codec's link width";
    writer.WriteBits(entry.link, link_bits_);
  }
  encoded.size_bits = static_cast<uint32_t>(writer.size_bits());
  encoded.bytes = writer.TakeBytes();
  return encoded;
}

namespace {

// Peek width that one unaligned LoadWord can always satisfy (64 minus the
// worst-case 7-bit intra-byte offset). A full component — flag (<= 1 bit) +
// table-resolved category (<= HuffmanCode::kDecodeTableBits) + link
// (<= 16 bits) — is at most 28 bits, so one peeked window covers it.
constexpr int kFusedPeekBits = 57;

// Decodes one component at the reader's position on the trusted path: one
// peeked window feeds the flag test, the category table lookup, and the link
// extraction, and the position advances once. Aborts on truncation, exactly
// like the per-primitive reads it fuses (Skip and the fallbacks are
// bounds-checked).
inline SignatureEntry ReadComponentFused(const HuffmanCode& code,
                                         int link_bits, bool has_flags,
                                         BitReader* reader) {
  SignatureEntry entry;
  const uint64_t window = reader->PeekBits(kFusedPeekBits);
  if (has_flags && (window & 1)) {
    entry.category = kUnresolvedCategory;
    entry.link = kUnresolvedLink;
    entry.compressed = true;
    reader->Skip(1);
    return entry;
  }
  const int flag = has_flags ? 1 : 0;
  int symbol = 0;
  const int cat_len = code.DecodeWindow(window >> flag, &symbol);
  if (cat_len != 0) {
    entry.category = static_cast<uint8_t>(symbol);
    entry.link = static_cast<uint8_t>((window >> (flag + cat_len)) &
                                      bitstream_internal::LowMask(link_bits));
    reader->Skip(flag + cat_len + link_bits);
  } else {
    // Category code longer than the decode-table window: per-primitive path.
    if (has_flags) reader->Skip(1);
    entry.category = static_cast<uint8_t>(code.Decode(reader));
    entry.link = static_cast<uint8_t>(reader->ReadBits(link_bits));
  }
  return entry;
}

// Reads one component without aborting; false on truncation / bad prefix /
// oversized link. Factored so row and entry decoding share the rules. Same
// fused window as ReadComponentFused, with explicit bounds checks in place
// of the aborts.
bool TryReadComponent(const HuffmanCode& category_code, int link_bits,
                      bool has_flags, BitReader* reader,
                      SignatureEntry* entry) {
  const size_t remaining = reader->size_bits() - reader->position();
  const uint64_t window = reader->PeekBits(kFusedPeekBits);
  if (has_flags) {
    if (remaining == 0) return false;
    if (window & 1) {
      entry->category = kUnresolvedCategory;
      entry->link = kUnresolvedLink;
      entry->compressed = true;
      reader->Skip(1);
      return true;
    }
  }
  const int flag = has_flags ? 1 : 0;
  int symbol = 0;
  const int cat_len = category_code.DecodeWindow(window >> flag, &symbol);
  if (cat_len != 0) {
    // PeekBits zero-pads past the end, so a matched code (or its link) may
    // extend beyond the stream: that is a truncated component, not a decode.
    const size_t consumed = static_cast<size_t>(flag + cat_len + link_bits);
    if (consumed > remaining) return false;
    if (symbol > 0xFF) return false;
    const uint64_t link = (window >> (flag + cat_len)) &
                          bitstream_internal::LowMask(link_bits);
    if (link > 0xFF) return false;  // adjacency slots are uint8
    entry->category = static_cast<uint8_t>(symbol);
    entry->link = static_cast<uint8_t>(link);
    entry->compressed = false;
    reader->Skip(static_cast<int>(consumed));
    return true;
  }
  // Long category code (or no decode table): per-primitive path.
  if (has_flags) reader->Skip(1);
  if (!category_code.TryDecode(reader, &symbol)) return false;
  if (symbol > 0xFF) return false;
  if (reader->size_bits() - reader->position() <
      static_cast<size_t>(link_bits)) {
    return false;
  }
  const uint64_t link = reader->ReadBits(link_bits);
  if (link > 0xFF) return false;  // adjacency slots are uint8
  entry->category = static_cast<uint8_t>(symbol);
  entry->link = static_cast<uint8_t>(link);
  entry->compressed = false;
  return true;
}

}  // namespace

SignatureRow SignatureCodec::DecodeRow(const EncodedRow& encoded) const {
  SignatureRow row;
  // Checkpoints bound the component count from below; compressed rows can
  // hold more (one bit each), so this is a reservation, not a size.
  row.reserve(encoded.checkpoints.size() * kCheckpointInterval);
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  const HuffmanCode& code = category_code_;
  const int link_bits = link_bits_;
  const bool has_flags = has_flags_;
  while (!reader.AtEnd()) {
    row.push_back(ReadComponentFused(code, link_bits, has_flags, &reader));
  }
  return row;
}

bool SignatureCodec::TryDecodeRow(const EncodedRow& encoded,
                                  size_t expected_entries,
                                  SignatureRow* row) const {
  row->clear();
  row->reserve(expected_entries);
  if (encoded.size_bits > encoded.bytes.size() * 8) return false;
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  while (!reader.AtEnd()) {
    SignatureEntry entry;
    if (!TryReadComponent(category_code_, link_bits_, has_flags_, &reader,
                          &entry)) {
      return false;
    }
    row->push_back(entry);
    if (row->size() > expected_entries) return false;  // trailing garbage
  }
  return row->size() == expected_entries;
}

bool SignatureCodec::TryDecodeRowStage(const EncodedRow& encoded,
                                       size_t expected_entries,
                                       RowStage* stage) const {
  stage->Resize(expected_entries);
  if (encoded.size_bits > encoded.bytes.size() * 8) return false;
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  uint8_t* const cats = stage->categories();
  uint8_t* const links = stage->links();
  uint8_t* const flags = stage->flags();
  size_t count = 0;
  bool any_compressed = false;
  while (!reader.AtEnd()) {
    SignatureEntry entry;
    if (!TryReadComponent(category_code_, link_bits_, has_flags_, &reader,
                          &entry)) {
      return false;
    }
    if (count >= expected_entries) return false;  // trailing garbage
    cats[count] = entry.category;
    links[count] = entry.link;
    flags[count] = entry.compressed ? 1 : 0;
    any_compressed |= entry.compressed;
    ++count;
  }
  stage->set_any_compressed(any_compressed);
  return count == expected_entries;
}

bool SignatureCodec::TryDecodeEntry(const EncodedRow& encoded, uint32_t index,
                                    SignatureEntry* entry,
                                    uint64_t* bit_offset) const {
  if (encoded.size_bits > encoded.bytes.size() * 8) return false;
  const uint32_t checkpoint = index / kCheckpointInterval;
  if (checkpoint >= encoded.checkpoints.size()) return false;
  const uint32_t start_bit = encoded.checkpoints[checkpoint];
  if (start_bit > encoded.size_bits) return false;
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  reader.Seek(start_bit);
  for (uint32_t i = checkpoint * kCheckpointInterval; i <= index; ++i) {
    const uint64_t start = reader.position();
    if (!TryReadComponent(category_code_, link_bits_, has_flags_, &reader,
                          entry)) {
      return false;
    }
    if (i == index) {
      if (bit_offset != nullptr) *bit_offset = start;
      return true;
    }
  }
  return false;
}

SignatureEntry SignatureCodec::DecodeEntry(const EncodedRow& encoded,
                                           uint32_t index,
                                           uint64_t* bit_offset) const {
  const uint32_t checkpoint = index / kCheckpointInterval;
  DSIG_CHECK_LT(checkpoint, encoded.checkpoints.size());
  BitReader reader(encoded.bytes.data(), encoded.size_bits);
  reader.Seek(encoded.checkpoints[checkpoint]);
  for (uint32_t i = checkpoint * kCheckpointInterval;; ++i) {
    const uint64_t start = reader.position();
    const SignatureEntry entry =
        ReadComponentFused(category_code_, link_bits_, has_flags_, &reader);
    if (i == index) {
      if (bit_offset != nullptr) *bit_offset = start;
      return entry;
    }
  }
}

}  // namespace dsig
