// Category-code selection (paper §5.2).
//
// Three schemes, in increasing sophistication:
//  * kFixed — ceil(log2 M) bits per category id; the "raw signature".
//  * kReverseZeroPadding — the paper's unary-style code; optimal whenever
//    each category holds more objects than all earlier categories combined
//    (Theorem 5.1: guaranteed under exponential partition with c > 3/2 and
//    uniform data).
//  * kHuffman — exact Huffman code for the measured category frequencies;
//    optimal unconditionally, used as the fallback and as the yardstick in
//    tests of Theorem 5.1.
#ifndef DSIG_CORE_ENCODING_H_
#define DSIG_CORE_ENCODING_H_

#include <cstdint>
#include <vector>

#include "core/signature.h"
#include "util/huffman.h"

namespace dsig {

enum class CategoryCodeKind {
  kFixed,
  kReverseZeroPadding,
  kHuffman,
};

// Every scheme, in the order above — for benches and tests that sweep the
// codec configurations.
inline constexpr CategoryCodeKind kAllCategoryCodeKinds[] = {
    CategoryCodeKind::kFixed,
    CategoryCodeKind::kReverseZeroPadding,
    CategoryCodeKind::kHuffman,
};

const char* CategoryCodeKindName(CategoryCodeKind kind);

// Builds the category code. `frequencies` (one count per category) is only
// consulted by kHuffman; pass the real distribution for best compression.
HuffmanCode BuildCategoryCode(CategoryCodeKind kind, int num_categories,
                              const std::vector<uint64_t>& frequencies);

// Adds the row's category occurrences into `frequencies` (size M).
void AccumulateCategoryFrequencies(const SignatureRow& row,
                                   std::vector<uint64_t>* frequencies);

}  // namespace dsig

#endif  // DSIG_CORE_ENCODING_H_
