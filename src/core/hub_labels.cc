#include "core/hub_labels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <queue>
#include <random>
#include <utility>

#include "graph/dijkstra.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/simd/simd.h"
#include "util/thread_pool.h"

namespace dsig {
namespace {

constexpr uint32_t kLabelMagic = 0x4c475344;  // "DSGL"
constexpr uint32_t kLabelVersion = 1;

// Little-endian blob packing. The blob travels inside a CRC32C file section,
// so these helpers only need structure checks, not integrity ones.
void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void AppendF64(std::vector<uint8_t>* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

// Bounds-checked little-endian reader over the blob.
class BlobReader {
 public:
  explicit BlobReader(const std::vector<uint8_t>& blob) : blob_(blob) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == blob_.size(); }
  uint64_t remaining() const { return blob_.size() - pos_; }

  uint32_t ReadU32() {
    uint32_t v = 0;
    if (!Take(4)) return 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(blob_[pos_ - 4 + i]) << (8 * i);
    }
    return v;
  }

  uint64_t ReadU64() {
    uint64_t v = 0;
    if (!Take(8)) return 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(blob_[pos_ - 8 + i]) << (8 * i);
    }
    return v;
  }

  double ReadF64() { return std::bit_cast<double>(ReadU64()); }

 private:
  bool Take(size_t n) {
    if (!ok_ || blob_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::vector<uint8_t>& blob_;
  size_t pos_ = 0;
  bool ok_ = true;
};

double MeanLiveEdgeWeight(const RoadNetwork& graph) {
  double sum = 0;
  size_t count = 0;
  for (EdgeId e = 0; e < graph.num_edge_slots(); ++e) {
    if (graph.edge_removed(e)) continue;
    sum += graph.edge_weight(e);
    ++count;
  }
  return count == 0 ? 1.0 : sum / static_cast<double>(count);
}

// Centrality scores for the vertex order. kDegree: adjacency size. kCoverage:
// adds, over sampled shortest-path trees, the size of each node's subtree —
// the number of sampled shortest paths it lies on, which is precisely how
// useful it is as an early hub.
std::vector<double> CentralityScores(const RoadNetwork& graph,
                                     const HubLabels::BuildOptions& options,
                                     ThreadPool* pool) {
  const size_t n = graph.num_nodes();
  std::vector<double> score(n);
  for (NodeId v = 0; v < n; ++v) {
    score[v] = static_cast<double>(graph.degree(v));
  }
  if (options.order != HubLabels::BuildOptions::Order::kCoverage || n < 2) {
    return score;
  }
  const size_t samples = std::min(options.coverage_samples, n);
  std::mt19937_64 rng(options.seed);
  std::vector<NodeId> roots(samples);
  for (size_t s = 0; s < samples; ++s) {
    roots[s] = static_cast<NodeId>(rng() % n);
  }
  std::vector<std::vector<double>> subtree(samples);
  const auto run_sample = [&](size_t s) {
    const ShortestPathTree tree = RunDijkstra(graph, roots[s]);
    std::vector<double>& size = subtree[s];
    size.assign(n, 0);
    for (size_t i = tree.settle_order.size(); i-- > 0;) {
      const NodeId v = tree.settle_order[i];
      size[v] += 1;
      if (tree.parent[v] != kInvalidNode) size[tree.parent[v]] += size[v];
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(samples, run_sample);
  } else {
    for (size_t s = 0; s < samples; ++s) run_sample(s);
  }
  // Subtree sizes dominate the degree term (which only breaks ties among
  // nodes the samples never separated).
  for (size_t s = 0; s < samples; ++s) {
    for (NodeId v = 0; v < n; ++v) score[v] += subtree[s][v] * 1024.0;
  }
  return score;
}

}  // namespace

std::shared_ptr<HubLabels> HubLabels::Build(const RoadNetwork& graph,
                                            const BuildOptions& options,
                                            ThreadPool* pool) {
  auto labels = std::shared_ptr<HubLabels>(new HubLabels());
  const size_t n = graph.num_nodes();
  labels->num_nodes_ = n;
  labels->mean_edge_weight_ = MeanLiveEdgeWeight(graph);
  labels->decoded_.store(true, std::memory_order_release);
  labels->decode_ok_.store(true, std::memory_order_release);
  if (n == 0) {
    labels->offsets_.assign(1, 0);
    return labels;
  }

  // Vertex order: highest score first, node id breaking exact ties so the
  // build is deterministic for every thread count.
  const std::vector<double> score = CentralityScores(graph, options, pool);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&score](NodeId a, NodeId b) {
    return score[a] > score[b];
  });
  std::vector<uint32_t>& rank_of = labels->rank_of_;
  rank_of.assign(n, 0);
  for (uint32_t r = 0; r < n; ++r) rank_of[order[r]] = r;

  // Per-node growing labels; appended in rank order, so each stays sorted
  // ascending by hub rank for free.
  std::vector<std::vector<uint32_t>> hub_of(n);
  std::vector<std::vector<double>> dist_of(n);

  // Pruned Dijkstra per root, in rank order. Stamped scratch arrays avoid an
  // O(n) clear per root.
  std::vector<Weight> dist(n, kInfiniteWeight);
  std::vector<uint32_t> dist_stamp(n, 0);
  std::vector<Weight> root_dist(n, kInfiniteWeight);  // root's label, by hub
  std::vector<uint32_t> root_stamp(n, 0);
  uint32_t stamp = 0;
  uint64_t pruned = 0;
  using QueueEntry = std::pair<Weight, NodeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;

  for (uint32_t rank = 0; rank < n; ++rank) {
    const NodeId root = order[rank];
    ++stamp;
    // Index the root's current label for O(1) lookups during this search.
    for (size_t i = 0; i < hub_of[root].size(); ++i) {
      root_dist[hub_of[root][i]] = dist_of[root][i];
      root_stamp[hub_of[root][i]] = stamp;
    }
    dist[root] = 0;
    dist_stamp[root] = stamp;
    queue.push({0, root});
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (dist_stamp[u] != stamp || d > dist[u]) continue;  // stale entry
      dist[u] = -1;  // settled marker (real distances are >= 0)
      // Prune: if the labels built so far already certify d(root, u) <= d
      // through an earlier hub, u needs no entry for this root and the
      // search need not expand it.
      Weight via_labels = kInfiniteWeight;
      for (size_t i = 0; i < hub_of[u].size(); ++i) {
        const uint32_t h = hub_of[u][i];
        if (root_stamp[h] == stamp) {
          via_labels = std::min(via_labels, dist_of[u][i] + root_dist[h]);
        }
      }
      if (via_labels <= d) {
        ++pruned;
        continue;
      }
      hub_of[u].push_back(rank);
      dist_of[u].push_back(d);
      if (u == root) {  // keep the root's index current with its new entry
        root_dist[rank] = 0;
        root_stamp[rank] = stamp;
      }
      for (const AdjacencyEntry& hop : graph.adjacency(u)) {
        if (hop.removed) continue;
        const Weight nd = d + hop.weight;
        if (dist_stamp[hop.to] != stamp) {
          dist_stamp[hop.to] = stamp;
          dist[hop.to] = nd;
          queue.push({nd, hop.to});
        } else if (dist[hop.to] >= 0 && nd < dist[hop.to]) {
          dist[hop.to] = nd;
          queue.push({nd, hop.to});
        }
      }
    }
  }
  labels->pruned_settles_ = pruned;

  // Flatten into the canonical SoA pools (offsets are sequential; the copy
  // itself parallelizes).
  std::vector<uint64_t>& offsets = labels->offsets_;
  offsets.assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + hub_of[v].size();
  }
  labels->hubs_.resize(offsets[n]);
  labels->dists_.resize(offsets[n]);
  const auto flatten = [&](size_t v) {
    std::copy(hub_of[v].begin(), hub_of[v].end(),
              labels->hubs_.begin() + static_cast<ptrdiff_t>(offsets[v]));
    std::copy(dist_of[v].begin(), dist_of[v].end(),
              labels->dists_.begin() + static_cast<ptrdiff_t>(offsets[v]));
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, flatten);
  } else {
    for (size_t v = 0; v < n; ++v) flatten(v);
  }
  return labels;
}

std::shared_ptr<HubLabels> HubLabels::FromSerialized(
    std::vector<uint8_t> blob) {
  auto labels = std::shared_ptr<HubLabels>(new HubLabels());
  labels->blob_ = std::move(blob);
  return labels;
}

void HubLabels::EnsureDecoded() const {
  if (decoded_.load(std::memory_order_acquire)) return;
  std::call_once(decode_once_, [this] {
    decode_ok_.store(DecodeBlob(), std::memory_order_release);
    decoded_.store(true, std::memory_order_release);
    blob_.clear();
    blob_.shrink_to_fit();
  });
}

bool HubLabels::DecodeBlob() const {
  BlobReader reader(blob_);
  if (reader.ReadU32() != kLabelMagic) return false;
  if (reader.ReadU32() != kLabelVersion) return false;
  const uint64_t n = reader.ReadU64();
  const double mean_weight = reader.ReadF64();
  const uint64_t pruned = reader.ReadU64();
  if (!reader.ok()) return false;
  // Every node contributes >= 4 bytes of rank plus >= 8 of offset; reject
  // absurd counts before any allocation.
  if (n > reader.remaining() / 12) return false;
  if (!std::isfinite(mean_weight) || mean_weight <= 0) return false;

  std::vector<uint32_t> rank_of(n);
  for (uint64_t v = 0; v < n; ++v) rank_of[v] = reader.ReadU32();
  std::vector<uint64_t> offsets(n + 1);
  for (uint64_t v = 0; v <= n; ++v) offsets[v] = reader.ReadU64();
  if (!reader.ok()) return false;
  if (offsets[0] != 0) return false;
  for (uint64_t v = 0; v < n; ++v) {
    if (offsets[v + 1] < offsets[v]) return false;
  }
  const uint64_t entries = offsets[n];
  if (entries > reader.remaining() / 12) return false;

  std::vector<uint32_t> hubs(entries);
  for (uint64_t i = 0; i < entries; ++i) hubs[i] = reader.ReadU32();
  std::vector<double> dists(entries);
  for (uint64_t i = 0; i < entries; ++i) dists[i] = reader.ReadF64();
  if (!reader.ok() || !reader.AtEnd()) return false;

  // Structural checks the kernel contract depends on: per-label hubs are
  // strictly ascending ranks below n, distances finite and non-negative.
  for (uint64_t v = 0; v < n; ++v) {
    if (rank_of[v] >= n) return false;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (hubs[i] >= n) return false;
      if (i > offsets[v] && hubs[i] <= hubs[i - 1]) return false;
      if (!std::isfinite(dists[i]) || dists[i] < 0) return false;
    }
  }

  num_nodes_ = n;
  mean_edge_weight_ = mean_weight;
  pruned_settles_ = pruned;
  rank_of_ = std::move(rank_of);
  offsets_ = std::move(offsets);
  hubs_ = std::move(hubs);
  dists_ = std::move(dists);
  return true;
}

bool HubLabels::ready() const {
  EnsureDecoded();
  return decode_ok_.load(std::memory_order_acquire);
}

Weight HubLabels::Distance(NodeId u, NodeId v) const {
  if (!ready()) return kInfiniteWeight;
  DSIG_CHECK(u < num_nodes_ && v < num_nodes_);
  const uint64_t ou = offsets_[u];
  const uint64_t ov = offsets_[v];
  return simd::Kernels().label_merge(
      hubs_.data() + ou, dists_.data() + ou, offsets_[u + 1] - ou,
      hubs_.data() + ov, dists_.data() + ov, offsets_[v + 1] - ov);
}

HubLabelStats HubLabels::stats() const {
  HubLabelStats s;
  if (!ready()) return s;
  s.entries = offsets_.empty() ? 0 : offsets_.back();
  s.bytes = hubs_.size() * sizeof(uint32_t) + dists_.size() * sizeof(double) +
            offsets_.size() * sizeof(uint64_t) +
            rank_of_.size() * sizeof(uint32_t);
  s.avg_label_entries =
      num_nodes_ == 0 ? 0
                      : static_cast<double>(s.entries) /
                            static_cast<double>(num_nodes_);
  s.pruned_settles = pruned_settles_;
  return s;
}

std::vector<uint8_t> HubLabels::Serialize() const {
  DSIG_CHECK(ready()) << "cannot serialize undecodable hub labels";
  std::vector<uint8_t> blob;
  const uint64_t entries = offsets_.empty() ? 0 : offsets_.back();
  blob.reserve(40 + num_nodes_ * 12 + 8 + entries * 12);
  AppendU32(&blob, kLabelMagic);
  AppendU32(&blob, kLabelVersion);
  AppendU64(&blob, num_nodes_);
  AppendF64(&blob, mean_edge_weight_);
  AppendU64(&blob, pruned_settles_);
  for (size_t v = 0; v < num_nodes_; ++v) AppendU32(&blob, rank_of_[v]);
  for (size_t v = 0; v <= num_nodes_; ++v) AppendU64(&blob, offsets_[v]);
  for (const uint32_t h : hubs_) AppendU32(&blob, h);
  for (const double d : dists_) AppendF64(&blob, d);
  return blob;
}

Status HubLabels::VerifyStructure(const RoadNetwork& graph) const {
  if (!ready()) {
    return Status::Corruption("hub-label blob does not decode");
  }
  const size_t n = num_nodes_;
  if (n != graph.num_nodes()) {
    return Status::Corruption(
        "hub labels cover " + std::to_string(n) + " nodes but the graph has " +
        std::to_string(graph.num_nodes()));
  }
  // rank_of must be a permutation of [0, n).
  std::vector<char> rank_seen(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (rank_of_[v] >= n || rank_seen[rank_of_[v]]++ != 0) {
      return Status::Corruption("hub-label vertex order is not a permutation");
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const uint32_t* h = hubs(v);
    const double* d = dists(v);
    const size_t len = label_size(v);
    bool self = false;
    for (size_t i = 0; i < len; ++i) {
      if (h[i] >= n || (i > 0 && h[i] <= h[i - 1])) {
        return Status::Corruption("label of node " + std::to_string(v) +
                                  " is not strictly ascending in rank");
      }
      if (!std::isfinite(d[i]) || d[i] < 0) {
        return Status::Corruption("label of node " + std::to_string(v) +
                                  " holds a non-finite or negative distance");
      }
      if (h[i] == rank_of_[v]) {
        if (d[i] != 0) {
          return Status::Corruption("node " + std::to_string(v) +
                                    " is not at distance 0 from itself");
        }
        self = true;
      }
    }
    if (!self) {
      return Status::Corruption("label of node " + std::to_string(v) +
                                " is missing its self entry");
    }
  }
  // Metric spot check: a few full Dijkstras, every target compared. Exact
  // equality holds for integer-weight networks (all our generators); for
  // arbitrary weights allow last-ulp slack from differing summation orders.
  const size_t sample_roots = std::min<size_t>(n, 4);
  for (size_t s = 0; s < sample_roots; ++s) {
    const NodeId root = static_cast<NodeId>((s * n) / sample_roots);
    const ShortestPathTree tree = RunDijkstra(graph, root);
    for (NodeId v = 0; v < n; ++v) {
      const Weight got = Distance(root, v);
      const Weight want = tree.dist[v];
      if (got == want) continue;
      if (want != kInfiniteWeight && got != kInfiniteWeight &&
          std::abs(got - want) <= 1e-9 * std::max(1.0, want)) {
        continue;
      }
      return Status::Corruption(
          "hub-label distance(" + std::to_string(root) + ", " +
          std::to_string(v) + ") = " + std::to_string(got) +
          " disagrees with Dijkstra's " + std::to_string(want));
    }
  }
  return Status::Ok();
}

void PublishHubLabelMetrics(const HubLabels* labels) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Gauge* const present = registry.GetGauge("labels.present");
  static obs::Gauge* const entries = registry.GetGauge("labels.entries");
  static obs::Gauge* const bytes = registry.GetGauge("labels.bytes");
  static obs::Gauge* const avg = registry.GetGauge("labels.avg_entries");
  static obs::Gauge* const stale = registry.GetGauge("labels.stale");
  if (labels == nullptr || !labels->ready()) {
    present->Set(0);
    entries->Set(0);
    bytes->Set(0);
    avg->Set(0);
    stale->Set(0);
    return;
  }
  const HubLabelStats s = labels->stats();
  present->Set(1);
  entries->Set(static_cast<double>(s.entries));
  bytes->Set(static_cast<double>(s.bytes));
  avg->Set(s.avg_label_entries);
  stale->Set(labels->stale() ? 1 : 0);
}

}  // namespace dsig
