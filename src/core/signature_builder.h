// Signature-index construction (paper §5.2).
//
// Builds the shortest-path spanning tree of every object (not of every node:
// only object-rooted trees compute distances the signatures need), derives
// the category partition, fills and compresses each node's row, picks the
// category code, and bit-packs everything.
//
// The pipeline is parallel and single-pass: the per-object Dijkstras, the
// row-building + category-frequency sweep, and the compress + encode sweep
// all run as data-parallel loops on a ThreadPool, and each node's row is
// built exactly ONCE (it used to be built twice — once for frequencies, once
// for encoding). Per-chunk partial results merge with commutative operations
// only (integer sums, max), so the built index is byte-identical at every
// thread count — enforced by tests/parallel_build_test.cc.
#ifndef DSIG_CORE_SIGNATURE_BUILDER_H_
#define DSIG_CORE_SIGNATURE_BUILDER_H_

#include <memory>
#include <vector>

#include "core/encoding.h"
#include "core/signature_index.h"

namespace dsig {

struct SignatureBuildOptions {
  // Exponential partition parameters (§5.1): first boundary T and growth c.
  // When `optimal_partition` is set they are derived instead as c = e,
  // T = sqrt(spreading_bound / e).
  double t = 10.0;
  double c = 2.718281828459045;
  bool optimal_partition = false;
  Weight spreading_bound = 1000.0;

  CategoryCodeKind code_kind = CategoryCodeKind::kReverseZeroPadding;
  bool compress = true;
  // Retain the spanning forest (needed by SignatureUpdater). Costs
  // O(objects x nodes) memory.
  bool keep_forest = true;

  // Worker threads for the parallel phases: 0 = the process-wide pool,
  // N > 0 = a private pool of N threads for this build (what the benches'
  // --threads sweep and the determinism test use). The result is
  // byte-identical either way.
  size_t num_threads = 0;
};

// `objects` are dataset node ids (distinct). The graph must be connected and
// outlive the returned index.
std::unique_ptr<SignatureIndex> BuildSignatureIndex(
    const RoadNetwork& graph, std::vector<NodeId> objects,
    const SignatureBuildOptions& options);

// Builds node `n`'s uncompressed row from a finished forest — shared by the
// builder and the updater.
SignatureRow BuildRowFromForest(const RoadNetwork& graph,
                                const SpanningForest& forest,
                                const CategoryPartition& partition, NodeId n);

}  // namespace dsig

#endif  // DSIG_CORE_SIGNATURE_BUILDER_H_
