// Signature-index construction (paper §5.2).
//
// Builds the shortest-path spanning tree of every object (not of every node:
// only object-rooted trees compute distances the signatures need), derives
// the category partition, fills and compresses each node's row, picks the
// category code, and bit-packs everything.
#ifndef DSIG_CORE_SIGNATURE_BUILDER_H_
#define DSIG_CORE_SIGNATURE_BUILDER_H_

#include <memory>
#include <vector>

#include "core/encoding.h"
#include "core/signature_index.h"

namespace dsig {

struct SignatureBuildOptions {
  // Exponential partition parameters (§5.1): first boundary T and growth c.
  // When `optimal_partition` is set they are derived instead as c = e,
  // T = sqrt(spreading_bound / e).
  double t = 10.0;
  double c = 2.718281828459045;
  bool optimal_partition = false;
  Weight spreading_bound = 1000.0;

  CategoryCodeKind code_kind = CategoryCodeKind::kReverseZeroPadding;
  bool compress = true;
  // Retain the spanning forest (needed by SignatureUpdater). Costs
  // O(objects x nodes) memory.
  bool keep_forest = true;
};

// `objects` are dataset node ids (distinct). The graph must be connected and
// outlive the returned index.
std::unique_ptr<SignatureIndex> BuildSignatureIndex(
    const RoadNetwork& graph, std::vector<NodeId> objects,
    const SignatureBuildOptions& options);

// Builds node `n`'s uncompressed row from a finished forest — shared by the
// builder and the updater.
SignatureRow BuildRowFromForest(const RoadNetwork& graph,
                                const SpanningForest& forest,
                                const CategoryPartition& partition, NodeId n);

}  // namespace dsig

#endif  // DSIG_CORE_SIGNATURE_BUILDER_H_
