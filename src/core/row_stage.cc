#include "core/row_stage.h"

#include <cstdint>

namespace dsig {

namespace {
constexpr size_t kAlign = 64;

size_t RoundUp(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

uint8_t* AlignPtr(uint8_t* p) {
  const uintptr_t v = reinterpret_cast<uintptr_t>(p);
  return reinterpret_cast<uint8_t*>((v + kAlign - 1) & ~uintptr_t{kAlign - 1});
}
}  // namespace

void RowStage::Resize(size_t n) {
  const size_t stride = RoundUp(n);
  if (buffer_.size() < 3 * stride + kAlign) {
    buffer_.resize(3 * stride + kAlign);
  }
  uint8_t* base = AlignPtr(buffer_.data());
  categories_ = base;
  links_ = base + stride;
  flags_ = base + 2 * stride;
  size_ = n;
  any_compressed_ = false;
}

void RowStage::Assign(const SignatureRow& row) {
  Resize(row.size());
  bool any = false;
  for (size_t i = 0; i < row.size(); ++i) {
    // Flagged lanes always hold the sentinels — the invariant the kernelized
    // resolve validation relies on (compression.cc).
    if (row[i].compressed) {
      categories_[i] = kUnresolvedCategory;
      links_[i] = kUnresolvedLink;
      flags_[i] = 1;
      any = true;
    } else {
      categories_[i] = row[i].category;
      links_[i] = row[i].link;
      flags_[i] = 0;
    }
  }
  any_compressed_ = any;
}

SignatureRow RowStage::ToRow() const {
  SignatureRow row(size_);
  for (size_t i = 0; i < size_; ++i) row[i] = entry(static_cast<uint32_t>(i));
  return row;
}

uint32_t* RowStage::index_scratch() {
  if (scratch_.size() < size_) scratch_.resize(size_);
  return scratch_.data();
}

}  // namespace dsig
