// Exact-distance hub labels (pruned landmark labeling, a.k.a. 2-hop cover).
//
// Signatures answer *categorical* distance for free and exact distance by
// link-chasing — one row decode plus one adjacency page per hop. A pruned
// 2-hop labeling answers the same exact point-to-point query by merging two
// short sorted arrays: every node u carries a label L(u) of (hub rank,
// distance) pairs such that for any u, v some hub on a shortest u-v path
// appears in both labels, so
//
//     d(u, v) = min over shared hubs h of  d(u, h) + d(h, v).
//
// Construction (Akiba et al.'s pruned landmark labeling): order nodes by
// estimated centrality, then run one *pruned* Dijkstra per node in that
// order. When the Dijkstra from root r settles u at distance d, the already
// built labels are queried first — if they certify d(r, u) <= d through an
// earlier (more central) hub, u is pruned: it gets no entry for r and the
// search does not expand it. Central roots therefore build big trees and
// every later root's tree collapses to a thin residual, which is what keeps
// labels short. Root processing is inherently sequential (each root's
// pruning consults every earlier root's entries); the centrality estimate
// (sampled shortest-path trees) and the flattening sweep run on the shared
// ThreadPool.
//
// The label arrays are canonical: per node, hubs strictly ascending by rank
// with their distances in lockstep — exactly the layout the simd
// `label_merge` kernel consumes. Every node's label contains its own rank at
// distance 0.
//
// Distances are exact, not categorical, and because every graph generator
// produces integer-valued edge weights (graph/graph_generator.h), the label
// sums d(u,h) + d(h,v) are bitwise equal to the distances guided
// backtracking accumulates edge by edge — the planner (query/planner.h) can
// swap routes without perturbing a single result bit.
//
// Staleness: labels are immutable after construction. Any WAL-applied
// network change makes them permanently stale (MarkStale, a sticky latch the
// updater trips) until a rebuild installs a fresh instance; the planner
// demotes stale labels to the incrementally-maintained signature/Dijkstra
// paths. Persistence: one opaque blob (Serialize / FromSerialized) stored as
// an optional CRC32C section of the index file; decode is lazy — deferred to
// first use — so loading an index never pays for a tier the workload may not
// touch.
#ifndef DSIG_CORE_HUB_LABELS_H_
#define DSIG_CORE_HUB_LABELS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/road_network.h"
#include "util/status.h"

namespace dsig {

class ThreadPool;

// Construction-time accounting, reported by dsig_tool and the benches.
struct HubLabelStats {
  uint64_t entries = 0;       // total (hub, dist) pairs
  uint64_t bytes = 0;         // decoded in-memory footprint of the pools
  double avg_label_entries = 0;
  uint64_t pruned_settles = 0;  // Dijkstra settles cut by the label query
};

class HubLabels {
 public:
  struct BuildOptions {
    // Vertex order: highest estimated centrality first. kDegree is the
    // cheap classic; kCoverage refines it with sampled shortest-path-tree
    // subtree sizes (nodes that sit on many shortest paths rank early, which
    // is what makes pruning bite).
    enum class Order { kDegree, kCoverage };
    Order order = Order::kCoverage;
    size_t coverage_samples = 16;  // sampled SPT roots for kCoverage
    uint64_t seed = 0x9e3779b97f4a7c15ull;
  };

  // Builds labels for every node of `graph`. `pool` parallelizes the
  // centrality estimate and the flattening sweep (null = run on the caller).
  static std::shared_ptr<HubLabels> Build(const RoadNetwork& graph,
                                          const BuildOptions& options,
                                          ThreadPool* pool);

  // Wraps a serialized blob without decoding it; the first call that needs
  // the pools decodes under a once-flag. A blob that fails to decode makes
  // ready() false and the instance permanently unusable (the planner then
  // routes around it) — never a crash.
  static std::shared_ptr<HubLabels> FromSerialized(std::vector<uint8_t> blob);

  HubLabels(const HubLabels&) = delete;
  HubLabels& operator=(const HubLabels&) = delete;

  // Forces the lazy decode; true when the pools are usable.
  bool ready() const;

  // Exact d(u, v) via one label_merge kernel call; kInfiniteWeight when the
  // nodes share no hub (disconnected) or the instance is not ready().
  Weight Distance(NodeId u, NodeId v) const;

  // The decoded pools, for kernel-level consumers (benches, tests).
  // Valid only when ready().
  size_t num_nodes() const { return num_nodes_; }
  const uint32_t* hubs(NodeId n) const { return hubs_.data() + offsets_[n]; }
  const double* dists(NodeId n) const { return dists_.data() + offsets_[n]; }
  size_t label_size(NodeId n) const { return offsets_[n + 1] - offsets_[n]; }

  // Mean live-edge weight of the build graph, persisted with the labels:
  // the planner's chase-cost estimate (expected hops ~ distance / mean
  // weight) needs it without an O(E) sweep per process.
  double mean_edge_weight() const { return mean_edge_weight_; }

  HubLabelStats stats() const;

  // --- Staleness latch -----------------------------------------------------

  // Sticky: set by the updater on any WAL-applied network change; cleared
  // only by building a fresh instance.
  void MarkStale() { stale_.store(true, std::memory_order_release); }
  bool stale() const { return stale_.load(std::memory_order_acquire); }

  // --- Persistence ---------------------------------------------------------

  // Opaque little-endian blob (internal magic + version). The caller frames
  // it (CRC section, length prefix); FromSerialized re-checks the internal
  // structure on lazy decode anyway, so torn frames degrade, not crash.
  std::vector<uint8_t> Serialize() const;

  // --- Integrity -----------------------------------------------------------

  // Deep structural verification against `graph` (for SignatureIndex::Verify
  // coverage of loaded files): decodes if needed, then checks that offsets
  // are monotone, hub ranks are a permutation image (every label ascending,
  // in range, self-entry at distance 0), distances are finite and
  // non-negative, and — on a handful of sampled roots — that Distance()
  // agrees exactly with a Dijkstra ground truth.
  Status VerifyStructure(const RoadNetwork& graph) const;

 private:
  HubLabels() = default;

  // Decodes blob_ into the pools; called once, lazily.
  void EnsureDecoded() const;
  bool DecodeBlob() const;

  // Filled by Build() or the lazy decode.
  mutable size_t num_nodes_ = 0;
  mutable std::vector<uint64_t> offsets_;  // num_nodes_ + 1
  mutable std::vector<uint32_t> rank_of_;  // node -> rank (permutation)
  mutable std::vector<uint32_t> hubs_;     // per-label ascending ranks
  mutable std::vector<double> dists_;
  mutable double mean_edge_weight_ = 1.0;
  mutable uint64_t pruned_settles_ = 0;

  // Lazy-decode state.
  mutable std::vector<uint8_t> blob_;
  mutable std::once_flag decode_once_;
  mutable std::atomic<bool> decoded_{false};
  mutable std::atomic<bool> decode_ok_{false};

  std::atomic<bool> stale_{false};
};

// Refreshes the labels.* gauges (present / entries / bytes / avg_entries /
// stale) in the global metrics registry. Pass null for "no label tier".
void PublishHubLabelMetrics(const HubLabels* labels);

}  // namespace dsig

#endif  // DSIG_CORE_HUB_LABELS_H_
