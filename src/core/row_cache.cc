#include "core/row_cache.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dsig {
namespace {

// Approximate heap cost of one cached row: entry payload plus the list node,
// table slot, and shared_ptr control block.
constexpr size_t kPerRowOverhead = 96;

size_t RowBytes(const SignatureRow& row) {
  return row.size() * sizeof(SignatureEntry) + kPerRowOverhead;
}

}  // namespace

RowCache::RowCache() : RowCache(Options()) {}

RowCache::RowCache(const Options& options)
    : options_(options),
      shards_(std::max<size_t>(1, options.num_shards)) {
  shard_budget_ = options_.byte_budget / shards_.size();
  auto& registry = obs::MetricsRegistry::Global();
  hits_ = registry.GetCounter("rowcache.hits");
  misses_ = registry.GetCounter("rowcache.misses");
  evictions_ = registry.GetCounter("rowcache.evictions");
  inserts_ = registry.GetCounter("rowcache.inserts");
  bytes_gauge_ = registry.GetGauge("rowcache.bytes");
}

std::shared_ptr<const SignatureRow> RowCache::Get(NodeId n) const {
  if (options_.byte_budget == 0) return nullptr;
  Shard& shard = ShardOf(n);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.table.find(n);
  if (it == shard.table.end()) {
    misses_->Add();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  hits_->Add();
  return it->second.row;
}

void RowCache::Put(NodeId n, std::shared_ptr<const SignatureRow> row) {
  if (options_.byte_budget == 0) return;
  DSIG_CHECK(row != nullptr);
  const size_t bytes = RowBytes(*row);
  Shard& shard = ShardOf(n);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(n);
    if (it != shard.table.end()) {
      shard.bytes -= it->second.bytes;
      shard.bytes += bytes;
      it->second.row = std::move(row);
      it->second.bytes = bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    } else {
      shard.lru.push_front(n);
      Entry entry;
      entry.row = std::move(row);
      entry.bytes = bytes;
      entry.lru_it = shard.lru.begin();
      shard.table.emplace(n, std::move(entry));
      shard.bytes += bytes;
    }
    // Incremental eviction from the cold end; never evict the row just
    // touched (keep >= 1 so one oversized row does not thrash forever).
    while (shard.bytes > shard_budget_ && shard.table.size() > 1) {
      const NodeId victim = shard.lru.back();
      const auto victim_it = shard.table.find(victim);
      shard.bytes -= victim_it->second.bytes;
      shard.table.erase(victim_it);
      shard.lru.pop_back();
      ++evicted;
    }
  }
  inserts_->Add();
  if (evicted > 0) evictions_->Add(evicted);
  bytes_gauge_->Set(static_cast<double>(this->bytes()));
}

void RowCache::Erase(NodeId n) {
  Shard& shard = ShardOf(n);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.table.find(n);
    if (it == shard.table.end()) return;
    shard.bytes -= it->second.bytes;
    shard.lru.erase(it->second.lru_it);
    shard.table.erase(it);
  }
  bytes_gauge_->Set(static_cast<double>(bytes()));
}

void RowCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.table.clear();
    shard.bytes = 0;
  }
  bytes_gauge_->Set(0.0);
}

size_t RowCache::bytes() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

size_t RowCache::entries() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.table.size();
  }
  return total;
}

void PublishRowCacheMetrics() {
  auto& registry = obs::MetricsRegistry::Global();
  const double hits =
      static_cast<double>(registry.GetCounter("rowcache.hits")->Value());
  const double misses =
      static_cast<double>(registry.GetCounter("rowcache.misses")->Value());
  const double lookups = hits + misses;
  registry.GetGauge("rowcache.hit_rate")
      ->Set(lookups == 0 ? 0.0 : hits / lookups);
}

}  // namespace dsig
