// Cross-node signature compression — the paper's §7 future work, built out.
//
// Hypothesis (paper): "the signatures of nearby nodes are expected to be
// similar, [so cross-node] compression can further reduce the storage and
// search overhead, but possibly at the cost of a higher update overhead."
//
// We encode rows in storage (CCAM) order; a row may be stored as a *delta*
// against the immediately preceding row (reference chains are depth-limited
// so a read follows at most `max_chain` references). Delta format per
// object: a 1-bit same-category flag, the category code only when it
// differs, and the backtracking link always (links are node-local adjacency
// slots, which rarely coincide across nodes). Each row independently keeps
// whichever of {within-row form, delta form} is smaller (1 header bit).
//
// This module measures the achievable size so the hypothesis can be tested
// quantitatively (see bench_encoding); it is deliberately an analysis tool,
// not a third on-disk format.
#ifndef DSIG_CORE_CROSS_NODE_H_
#define DSIG_CORE_CROSS_NODE_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"

namespace dsig {

struct CrossNodeStats {
  // The index's stored (within-row compressed) size, for comparison.
  uint64_t within_row_bits = 0;
  // Total size when each row may delta against its predecessor.
  uint64_t cross_node_bits = 0;
  // Rows that chose the delta form.
  uint64_t delta_rows = 0;
  // Of the entries in delta rows: how many matched the reference category.
  uint64_t same_category_entries = 0;
  uint64_t delta_entries = 0;

  double Ratio() const {
    return within_row_bits == 0
               ? 1.0
               : static_cast<double>(cross_node_bits) / within_row_bits;
  }
  double SameCategoryFraction() const {
    return delta_entries == 0
               ? 0.0
               : static_cast<double>(same_category_entries) / delta_entries;
  }
};

// `order` is the storage order (reference = previous row in it); chains are
// cut every `max_chain` rows so reads stay bounded. max_chain >= 1.
CrossNodeStats AnalyzeCrossNodeCompression(const SignatureIndex& index,
                                           const std::vector<NodeId>& order,
                                           int max_chain);

}  // namespace dsig

#endif  // DSIG_CORE_CROSS_NODE_H_
