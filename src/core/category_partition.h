// Distance-spectrum partitioning into categories (paper §3.1, §5.1).
//
// The distance spectrum [0, ∞) is cut into M uneven categories. The paper
// partitions exponentially — boundaries at T, cT, c²T, … — so nearby objects
// get fine-grained categories and remote objects coarse ones, and derives the
// optimum c = e, T = sqrt(SP/e) for a uniform grid with query spreadings
// uniform on [0, SP].
//
// Category i's range is [lb_i, ub_i):
//   category 0      = [0, T)
//   category i>0    = [c^{i-1}·T, c^i·T)
//   category M-1    = [c^{M-2}·T, ∞)   (open-ended tail)
#ifndef DSIG_CORE_CATEGORY_PARTITION_H_
#define DSIG_CORE_CATEGORY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

// A half-open distance range [lb, ub); ub may be kInfiniteWeight.
struct DistanceRange {
  Weight lb = 0;
  Weight ub = kInfiniteWeight;

  bool Contains(Weight d) const { return d >= lb && d < ub; }

  // True when this range and [other_lb, other_ub) overlap but neither
  // contains the other's span entirely on one side — the "partial
  // intersection" test used by approximate retrieval (§3.2.1).
  bool PartiallyIntersects(const DistanceRange& other) const;
};

inline bool operator==(const DistanceRange& a, const DistanceRange& b) {
  return a.lb == b.lb && a.ub == b.ub;
}

class CategoryPartition {
 public:
  // Exponential partition with first boundary `t` and growth factor `c`;
  // finite boundaries are laid at t, ct, c²t, … below `max_distance`, and the
  // open tail [c^{M-2}·t, ∞) absorbs the farthest distances.
  // Requires t > 0, c > 1, max_distance >= t.
  static CategoryPartition Exponential(double t, double c,
                                       Weight max_distance);

  // Paper §5.1 optimum for spreading bound `sp`: c = e, T = sqrt(sp/e).
  static CategoryPartition Optimal(Weight sp, Weight max_distance);

  // Arbitrary ascending finite boundaries b_1 < … < b_{M-1}; category i =
  // [b_i, b_{i+1}) with b_0 = 0 and b_M = ∞. Mostly for tests.
  static CategoryPartition FromBoundaries(std::vector<Weight> boundaries);

  // Reassembles a partition from serialized parts (boundaries plus the
  // generating parameters, 0 when not built exponentially).
  static CategoryPartition Restore(std::vector<Weight> boundaries, double t,
                                   double c);

  // The ascending finite boundaries (boundary i = upper bound of category i).
  const std::vector<Weight>& boundaries() const { return boundaries_; }

  // Number of categories M.
  int num_categories() const {
    return static_cast<int>(boundaries_.size()) + 1;
  }

  // Category of distance `d` (d >= 0).
  int CategoryOf(Weight d) const;

  Weight LowerBound(int category) const;
  Weight UpperBound(int category) const;  // kInfiniteWeight for the last
  DistanceRange RangeOf(int category) const {
    return {LowerBound(category), UpperBound(category)};
  }

  // Bits of a fixed-length category id: ceil(log2 M), at least 1.
  int fixed_code_bits() const;

  // The generating parameters when built exponentially (0 otherwise).
  double t() const { return t_; }
  double c() const { return c_; }

 private:
  explicit CategoryPartition(std::vector<Weight> boundaries, double t,
                             double c);

  std::vector<Weight> boundaries_;  // ascending; boundary i = ub of cat i
  double t_ = 0;
  double c_ = 0;
};

}  // namespace dsig

#endif  // DSIG_CORE_CATEGORY_PARTITION_H_
