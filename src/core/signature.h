// Distance-signature rows and their bit-level encoding (paper §3.1, §5.2-5.3).
//
// A node's signature is a sequence of components, one per dataset object (in
// a fixed global object order): the object's distance *category* plus a
// *backtracking link* — the position, in the node's adjacency list, of the
// next hop on the shortest path toward the object. Components may instead be
// *compressed* to a single flag bit (§5.3), in which case both category and
// link are reconstructed from the closest link-sharing object (see
// compression.h).
//
// Encoded layout per component:
//   [flag (1 bit, only when the codec has compression flags)]
//   [category code (variable, Huffman/reverse-zero-padding/fixed)]
//   [link (fixed link_bits)]
// Compressed components consist of the flag bit alone.
#ifndef DSIG_CORE_SIGNATURE_H_
#define DSIG_CORE_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "util/huffman.h"

namespace dsig {

class RowStage;

// Sentinels for entries whose category/link await decompression.
inline constexpr uint8_t kUnresolvedCategory = 0xFF;
inline constexpr uint8_t kUnresolvedLink = 0xFF;

struct SignatureEntry {
  uint8_t category = 0;  // distance category id
  uint8_t link = 0;      // index into the node's adjacency list
  bool compressed = false;

  bool IsResolved() const { return !compressed; }
};

inline bool operator==(const SignatureEntry& a, const SignatureEntry& b) {
  return a.category == b.category && a.link == b.link &&
         a.compressed == b.compressed;
}

// One node's signature row, indexed by object index.
using SignatureRow = std::vector<SignatureEntry>;

// Bit-packed row plus checkpoints for random component access.
struct EncodedRow {
  std::vector<uint8_t> bytes;
  uint32_t size_bits = 0;
  // checkpoints[k] = bit offset where component k * kCheckpointInterval
  // starts; an in-memory acceleration, not counted in index size.
  std::vector<uint32_t> checkpoints;
};

class SignatureCodec {
 public:
  static constexpr uint32_t kCheckpointInterval = 32;

  // `category_code` encodes category ids; `link_bits` is the fixed width of
  // a backtracking link; `has_flags` prefixes every component with a
  // compression flag bit.
  SignatureCodec(HuffmanCode category_code, int link_bits, bool has_flags);

  int link_bits() const { return link_bits_; }
  bool has_flags() const { return has_flags_; }
  const HuffmanCode& category_code() const { return category_code_; }

  EncodedRow EncodeRow(const SignatureRow& row) const;

  // Decodes all components. Compressed components come back with
  // kUnresolvedCategory / kUnresolvedLink and compressed = true.
  SignatureRow DecodeRow(const EncodedRow& encoded) const;

  // Decodes component `index` only, scanning from the nearest checkpoint.
  // If `bit_offset` is non-null it receives the component's start offset —
  // the address used to charge the page holding this component.
  SignatureEntry DecodeEntry(const EncodedRow& encoded, uint32_t index,
                             uint64_t* bit_offset) const;

  // Non-aborting decode for untrusted rows (corrupt files, bit rot): false
  // when the bits end mid-component, follow no category prefix, decode a
  // link that cannot be an adjacency slot (> 255), or leave trailing
  // garbage. `expected_entries` is the object count the row must decode to.
  bool TryDecodeRow(const EncodedRow& encoded, size_t expected_entries,
                    SignatureRow* row) const;

  // SoA twin of TryDecodeRow: identical failure conditions and component
  // rules, but the fused decode writes straight into the stage's category /
  // link / flag lanes (core/row_stage.h) so the SIMD query kernels can scan
  // them contiguously. Compressed components are staged as
  // kUnresolvedCategory / kUnresolvedLink with flag 1.
  bool TryDecodeRowStage(const EncodedRow& encoded, size_t expected_entries,
                         RowStage* stage) const;

  // Non-aborting single-component decode; same failure conditions plus a
  // missing or out-of-range checkpoint.
  bool TryDecodeEntry(const EncodedRow& encoded, uint32_t index,
                      SignatureEntry* entry, uint64_t* bit_offset) const;

 private:
  HuffmanCode category_code_;
  int link_bits_;
  bool has_flags_;
};

}  // namespace dsig

#endif  // DSIG_CORE_SIGNATURE_H_
