// In-memory object-to-object distance table (paper §3.2.2, §5.3).
//
// Approximate distance comparison embeds nodes in 2-D using exact distances
// *between objects*, and signature compression adds up an object-to-object
// category; both need d(u, v) for object pairs. The paper stores these in
// memory ("to eliminate the I/O cost for these frequently accessed
// distances") and drops pairs whose distance falls in the last category —
// such objects are never each other's observers. Dropped pairs keep a "far"
// marker: the pair's category is still known (the last one), only the exact
// value is gone.
#ifndef DSIG_CORE_OBJECT_DISTANCE_TABLE_H_
#define DSIG_CORE_OBJECT_DISTANCE_TABLE_H_

#include <cstdint>
#include <vector>

#include "graph/road_network.h"

namespace dsig {

class ObjectDistanceTable {
 public:
  explicit ObjectDistanceTable(size_t num_objects);

  size_t num_objects() const { return num_objects_; }

  // Records the exact distance between object indexes u and v (symmetric).
  void Set(uint32_t u, uint32_t v, Weight distance);

  // Marks the pair as falling in the last category; its exact distance is
  // not retained.
  void MarkFar(uint32_t u, uint32_t v);

  bool IsFar(uint32_t u, uint32_t v) const {
    return table_[Slot(u, v)] == kInfiniteWeight;
  }

  // Exact distance; the pair must not be far.
  Weight Get(uint32_t u, uint32_t v) const;

  // Dense row of distances from object u, num_objects() long: far pairs hold
  // kInfiniteWeight, the diagonal 0. The SIMD near/far partition in
  // reverse-kNN consumes it directly (simd::KernelTable::compact_finite_f64).
  const Weight* Row(uint32_t u) const {
    DSIG_CHECK_LT(u, num_objects_);
    return table_.data() + static_cast<size_t>(u) * num_objects_;
  }

  // Memory footprint of the retained distances (what the paper reports as
  // the "additional memory cost for object distances").
  uint64_t MemoryBytes() const;

 private:
  size_t Slot(uint32_t u, uint32_t v) const {
    DSIG_CHECK_LT(u, num_objects_);
    DSIG_CHECK_LT(v, num_objects_);
    return static_cast<size_t>(u) * num_objects_ + v;
  }

  size_t num_objects_;
  // kInfiniteWeight encodes "far"; the diagonal is 0.
  std::vector<Weight> table_;
  uint64_t stored_pairs_ = 0;
};

}  // namespace dsig

#endif  // DSIG_CORE_OBJECT_DISTANCE_TABLE_H_
