#include "core/signature_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/op_counters.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/simd/simd.h"

namespace dsig {

SignatureIndex::SignatureIndex(const RoadNetwork* graph,
                               std::vector<NodeId> objects,
                               CategoryPartition partition,
                               SignatureCodec codec,
                               std::vector<EncodedRow> rows,
                               ObjectDistanceTable table,
                               SignatureSizeStats size_stats,
                               std::unique_ptr<SpanningForest> forest)
    : graph_(graph),
      objects_(std::move(objects)),
      partition_(std::move(partition)),
      codec_(std::move(codec)),
      rows_(std::move(rows)),
      table_(std::move(table)),
      compressor_(&partition_, &table_),
      size_stats_(size_stats),
      forest_(std::move(forest)),
      resolved_cache_(std::make_unique<RowCache>()) {
  DSIG_CHECK(graph_ != nullptr);
  DSIG_CHECK_EQ(rows_.size(), graph_->num_nodes());
  object_of_node_.assign(graph_->num_nodes(), kInvalidObject);
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    object_of_node_[objects_[i]] = i;
  }
}

SignatureRow SignatureIndex::ReadRow(NodeId n) const {
  // One snapshot across decode *and* resolve: resolution consults the object
  // table, which the updater also rewrites.
  const ReadSnapshot snapshot(&gate_);
  SignatureRow row = ReadRowUnresolved(n);
  const obs::Span span(obs::Phase::kResolve);
  if (!compressor_.TryResolveRow(&row)) {
    // An entry decoded but cannot be resolved/validated — same degradation
    // path as an undecodable row.
    row = FallbackRow(n);
  }
  return row;
}

SignatureRow SignatureIndex::ReadRowUnresolved(NodeId n) const {
  const ReadSnapshot snapshot(&gate_);
  const obs::Span span(obs::Phase::kRowDecode);
  DSIG_CHECK_LT(n, rows_.size());
  ++GlobalOpCounters().row_reads;
  const EncodedRow& encoded = rows_.Read(n, snapshot.epoch());
  if (merged_) {
    // Only the signature portion of the combined record is scanned.
    store_.TouchRecordBits(n, adjacency_bits_[n],
                           adjacency_bits_[n] + encoded.size_bits);
  } else {
    store_.TouchRecord(n);
  }
  SignatureRow row;
  if (!codec_.TryDecodeRow(encoded, objects_.size(), &row)) {
    return FallbackRow(n);  // fully resolved, which is also a valid
                            // "unresolved" row (nothing left compressed)
  }
  return row;
}

void SignatureIndex::ReadRowStaged(NodeId n, RowStage* stage) const {
  // One snapshot across decode *and* resolve, as in ReadRow.
  const ReadSnapshot snapshot(&gate_);
  {
    const obs::Span span(obs::Phase::kRowDecode);
    DSIG_CHECK_LT(n, rows_.size());
    ++GlobalOpCounters().row_reads;
    const EncodedRow& encoded = rows_.Read(n, snapshot.epoch());
    if (merged_) {
      store_.TouchRecordBits(n, adjacency_bits_[n],
                             adjacency_bits_[n] + encoded.size_bits);
    } else {
      store_.TouchRecord(n);
    }
    if (!codec_.TryDecodeRowStage(encoded, objects_.size(), stage)) {
      stage->Assign(FallbackRow(n));
      return;
    }
  }
  const obs::Span span(obs::Phase::kResolve);
  if (!compressor_.TryResolveStage(stage)) {
    stage->Assign(FallbackRow(n));
  }
}

SignatureEntry SignatureIndex::ReadEntry(NodeId n,
                                         uint32_t object_index) const {
  const ReadSnapshot snapshot(&gate_);
  const obs::Span span(obs::Phase::kRowDecode);
  DSIG_CHECK_LT(n, rows_.size());
  DSIG_CHECK_LT(object_index, objects_.size());
  ++GlobalOpCounters().entry_reads;
  const EncodedRow& encoded = rows_.Read(n, snapshot.epoch());
  uint64_t bit_offset = 0;
  SignatureEntry entry;
  if (!codec_.TryDecodeEntry(encoded, object_index, &entry, &bit_offset)) {
    // Charge the page at the row's start — the read was attempted — then
    // degrade to the recomputed row.
    store_.TouchRecordAt(n, merged_ ? adjacency_bits_[n] : 0);
    return FallbackRow(n)[object_index];
  }
  if (merged_) bit_offset += adjacency_bits_[n];
  store_.TouchRecordAt(n, bit_offset);
  if (entry.compressed) {
    const obs::Span resolve_span(obs::Phase::kResolve);
    ++GlobalOpCounters().resolves;
    // Decompression is CPU work against the in-memory object table plus the
    // already-fetched row (paper §5.3); no extra page charge. Resolved rows
    // are cached — backtracking walks revisit nodes constantly, and batch
    // workers share the LRU (the shared_ptr keeps a row alive for this read
    // even if another thread evicts it).
    std::shared_ptr<const SignatureRow> resolved = resolved_cache_->Get(n);
    if (resolved == nullptr) {
      SignatureRow row;
      if (!codec_.TryDecodeRow(encoded, objects_.size(), &row) ||
          !compressor_.TryResolveRow(&row)) {
        row = FallbackRow(n);
      }
      auto owned = std::make_shared<const SignatureRow>(std::move(row));
      resolved_cache_->Put(n, owned);
      resolved = std::move(owned);
    }
    entry = (*resolved)[object_index];
  }
  return entry;
}

const SignatureRow& SignatureIndex::FallbackRow(NodeId n) const {
  {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    const auto it = fallback_rows_.find(n);
    if (it != fallback_rows_.end()) return it->second;
  }
  // Compute outside the lock — bounded Dijkstra is milliseconds, and other
  // readers must not stall behind it. A concurrent computation of the same
  // row is wasted work, not a correctness problem: emplace keeps the first.
  SignatureRow computed = ComputeFallbackRow(n);
  std::lock_guard<std::mutex> lock(fallback_mu_);
  return fallback_rows_.emplace(n, std::move(computed)).first->second;
}

SignatureRow SignatureIndex::ComputeFallbackRow(NodeId n) const {
  const obs::Span span(obs::Phase::kDijkstraFallback);
  // The computed row is memoized and outlives the current request, so it
  // must never be truncated by the request's deadline.
  const DeadlineScope shield(Deadline::Infinite());
  ++GlobalOpCounters().decode_fallbacks;
  // Dijkstra from n, bounded to stop once every object is settled; along the
  // way remember which adjacency slot of n each shortest path leaves through
  // — that slot is the backtracking link.
  const size_t num_nodes = graph_->num_nodes();
  std::vector<Weight> dist(num_nodes, kInfiniteWeight);
  std::vector<char> settled(num_nodes, 0);
  std::vector<uint8_t> first_slot(num_nodes, 0);
  using Item = std::pair<Weight, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> frontier;
  dist[n] = 0;
  frontier.push({0, n});
  size_t objects_left = objects_.size();
  while (!frontier.empty() && objects_left > 0) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    if (object_of_node_[u] != kInvalidObject) --objects_left;
    const auto& adjacency = graph_->adjacency(u);
    for (size_t slot = 0; slot < adjacency.size(); ++slot) {
      const AdjacencyEntry& hop = adjacency[slot];
      if (hop.removed) continue;
      const Weight candidate = d + hop.weight;
      if (candidate < dist[hop.to]) {
        dist[hop.to] = candidate;
        first_slot[hop.to] =
            u == n ? static_cast<uint8_t>(slot) : first_slot[u];
        frontier.push({candidate, hop.to});
      }
    }
  }
  const int last_category = partition_.num_categories() - 1;
  SignatureRow row(objects_.size());
  for (uint32_t o = 0; o < objects_.size(); ++o) {
    const NodeId object_node = objects_[o];
    SignatureEntry& entry = row[o];
    entry.compressed = false;
    if (object_node == n) {
      entry.category = 0;
      entry.link = 0;
      continue;
    }
    if (dist[object_node] == kInfiniteWeight) {
      // Signatures require a connected network; an unreachable object means
      // the graph itself degraded. Park it in the open-ended last category.
      entry.category = static_cast<uint8_t>(last_category);
      entry.link = 0;
      continue;
    }
    entry.category =
        static_cast<uint8_t>(partition_.CategoryOf(dist[object_node]));
    entry.link = first_slot[object_node];
  }
  return row;
}

EncodedRow& SignatureIndex::mutable_encoded_row(NodeId n) {
  DSIG_CHECK_LT(n, rows_.size());
  resolved_cache_->Erase(n);
  {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    fallback_rows_.erase(n);
  }
  return rows_.MutableNewest(n);
}

void SignatureIndex::InvalidateCachedRows(const std::vector<NodeId>& nodes) {
  for (const NodeId n : nodes) resolved_cache_->Erase(n);
  std::lock_guard<std::mutex> lock(fallback_mu_);
  for (const NodeId n : nodes) fallback_rows_.erase(n);
}

void SignatureIndex::ReclaimRetiredRows() {
  const uint64_t min_pinned = gate_.MinPinnedEpoch();
  rows_.Reclaim(min_pinned);
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Gauge* const epoch_gauge = registry.GetGauge("update.epoch");
  static obs::Gauge* const lag_gauge = registry.GetGauge("update.epoch_lag");
  static obs::Gauge* const retired_gauge =
      registry.GetGauge("update.retired_bytes");
  const uint64_t current = gate_.current_epoch();
  epoch_gauge->Set(static_cast<double>(current));
  lag_gauge->Set(static_cast<double>(current - min_pinned));
  retired_gauge->Set(static_cast<double>(rows_.retired_bytes()));
}

void SignatureIndex::ConfigureRowCache(const RowCache::Options& options) {
  resolved_cache_ = std::make_unique<RowCache>(options);
}

void SignatureIndex::AttachStorage(BufferManager* buffer,
                                   const NetworkStore* network,
                                   const std::vector<NodeId>& order) {
  std::vector<uint64_t> record_bits(rows_.size());
  for (size_t n = 0; n < rows_.size(); ++n) {
    record_bits[n] = rows_.ReadNewest(n).size_bits;
  }
  store_ = PagedStore(PageLayout(record_bits, order), buffer);
  network_store_ = network;
  merged_ = false;
  adjacency_bits_.clear();
}

void SignatureIndex::AttachMergedStorage(BufferManager* buffer,
                                         const std::vector<NodeId>& order) {
  adjacency_bits_.resize(rows_.size());
  std::vector<uint64_t> record_bits(rows_.size());
  for (NodeId n = 0; n < rows_.size(); ++n) {
    adjacency_bits_[n] = AdjacencyRecordBits(*graph_, n);
    record_bits[n] = adjacency_bits_[n] + rows_.ReadNewest(n).size_bits;
  }
  store_ = PagedStore(PageLayout(record_bits, order), buffer);
  network_store_ = nullptr;
  merged_ = true;
}

void SignatureIndex::TouchAdjacency(NodeId n) const {
  if (merged_) {
    // The adjacency list heads the combined record.
    store_.TouchRecordAt(n, 0);
    return;
  }
  if (network_store_ != nullptr) network_store_->TouchNode(n);
}

void SignatureIndex::RebuildForest() {
  forest_ = std::make_unique<SpanningForest>(graph_, objects_);
  forest_->Build();
}

uint64_t SignatureIndex::IndexBytes() const {
  return (size_stats_.compressed_bits + 7) / 8;
}

namespace {

std::string NodeObjectContext(NodeId n, uint32_t object) {
  return "node " + std::to_string(n) + ", object " + std::to_string(object);
}

}  // namespace

Status SignatureIndex::Verify() const {
  static obs::Histogram* const verify_ms =
      obs::MetricsRegistry::Global().GetHistogram("index.verify_ms");
  const obs::ScopedTimer timer(verify_ms);
  // One snapshot for the whole verification: both passes must see a single
  // generation of rows, table, and graph even if an updater is waiting.
  const ReadSnapshot snapshot(&gate_);
  const size_t num_nodes = graph_->num_nodes();
  const size_t num_objects = objects_.size();
  if (rows_.size() != num_nodes) {
    return Status::Corruption("index has " + std::to_string(rows_.size()) +
                              " rows but the graph has " +
                              std::to_string(num_nodes) + " nodes");
  }

  // Partition: finite, strictly ascending boundaries; category ids must fit
  // the uint8 every signature entry stores.
  const int num_categories = partition_.num_categories();
  if (num_categories > 256) {
    return Status::Corruption(
        "partition has " + std::to_string(num_categories) +
        " categories; category ids are 8-bit");
  }
  const std::vector<Weight>& boundaries = partition_.boundaries();
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (!std::isfinite(boundaries[i]) || boundaries[i] <= 0 ||
        (i > 0 && boundaries[i] <= boundaries[i - 1])) {
      return Status::Corruption(
          "category boundaries are not finite, positive, and strictly "
          "ascending");
    }
  }

  // Objects: in range, one per node at most.
  std::vector<char> object_here(num_nodes, 0);
  for (uint32_t o = 0; o < num_objects; ++o) {
    if (objects_[o] >= num_nodes) {
      return Status::Corruption("object " + std::to_string(o) +
                                " lives on out-of-range node " +
                                std::to_string(objects_[o]));
    }
    if (object_here[objects_[o]]++ != 0) {
      return Status::Corruption("two objects share node " +
                                std::to_string(objects_[o]));
    }
  }

  // Pass 1 — decode and resolve every row (staged, so the bulk checks run
  // on the SIMD kernels); validate categories and links; collect the link
  // matrix for the chain walk below.
  std::vector<uint8_t> links(num_nodes * num_objects, 0);
  std::vector<uint8_t> categories(num_nodes * num_objects, 0);
  const simd::KernelTable& kernels = simd::Kernels();
  RowStage stage;
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (!codec_.TryDecodeRowStage(rows_.Read(n, snapshot.epoch()),
                                  num_objects, &stage)) {
      return Status::Corruption("row of node " + std::to_string(n) +
                                " does not decode");
    }
    if (!compressor_.TryResolveStage(&stage)) {
      return Status::Corruption(
          "row of node " + std::to_string(n) +
          " has a compressed entry the shared rule cannot resolve");
    }
    // Vectorized clean-row test. It is deliberately stricter than the real
    // invariants (the object's own entry need not have a valid link; links
    // may legally point below any removed slot), so a miss only routes the
    // row through the exact per-entry checks below — which also keep the
    // first-violation messages.
    const auto& adjacency = graph_->adjacency(n);
    bool adjacency_clean = true;
    for (const AdjacencyEntry& hop : adjacency) {
      if (hop.removed) {
        adjacency_clean = false;
        break;
      }
    }
    const ObjectId self = object_of_node_[n];
    const bool fast_ok =
        adjacency_clean &&
        kernels.max_u8(stage.categories(), num_objects) < num_categories &&
        kernels.max_u8(stage.links(), num_objects) < adjacency.size() &&
        (self == kInvalidObject || stage.categories()[self] == 0);
    if (!fast_ok) {
      for (uint32_t o = 0; o < num_objects; ++o) {
        const SignatureEntry entry = stage.entry(o);
        if (entry.category >= num_categories) {
          return Status::Corruption("category " +
                                    std::to_string(entry.category) +
                                    " out of partition range at " +
                                    NodeObjectContext(n, o));
        }
        if (objects_[o] == n) {
          if (entry.category != 0) {
            return Status::Corruption(
                "object's own node is not in category 0 at " +
                NodeObjectContext(n, o));
          }
        } else {
          if (entry.link >= graph_->degree(n)) {
            return Status::Corruption("link " + std::to_string(entry.link) +
                                      " beyond the adjacency list at " +
                                      NodeObjectContext(n, o));
          }
          if (graph_->adjacency(n)[entry.link].removed) {
            return Status::Corruption("link points at a removed edge at " +
                                      NodeObjectContext(n, o));
          }
        }
      }
    }
    std::memcpy(&links[static_cast<size_t>(n) * num_objects],
                stage.links(), num_objects);
    std::memcpy(&categories[static_cast<size_t>(n) * num_objects],
                stage.categories(), num_objects);
  }

  // Pass 2 — per object: follow every node's link chain. Chains must reach
  // the object without revisiting a node (tree-shaped, so within |V| steps),
  // and the distance accumulated along the chain must fall in the stored
  // category (small tolerance: chain summation order can differ from the
  // builder's Dijkstra by an ulp on non-integer weights).
  std::vector<uint8_t> state(num_nodes);  // 0 unvisited, 1 on path, 2 done
  std::vector<Weight> chain_dist(num_nodes);
  std::vector<NodeId> path;
  for (uint32_t o = 0; o < num_objects; ++o) {
    const NodeId object_node = objects_[o];
    std::fill(state.begin(), state.end(), 0);
    state[object_node] = 2;
    chain_dist[object_node] = 0;
    for (NodeId start = 0; start < num_nodes; ++start) {
      if (state[start] != 0) continue;
      path.clear();
      NodeId cur = start;
      while (state[cur] == 0) {
        state[cur] = 1;
        path.push_back(cur);
        cur = graph_->adjacency(
            cur)[links[static_cast<size_t>(cur) * num_objects + o]].to;
      }
      if (state[cur] == 1) {
        return Status::Corruption(
            "backtracking links cycle instead of reaching object " +
            std::to_string(o) + " (entered the cycle from node " +
            std::to_string(start) + ")");
      }
      for (size_t i = path.size(); i-- > 0;) {
        const NodeId u = path[i];
        const AdjacencyEntry& hop = graph_->adjacency(
            u)[links[static_cast<size_t>(u) * num_objects + o]];
        chain_dist[u] = hop.weight + chain_dist[hop.to];
        state[u] = 2;
        const int stored =
            categories[static_cast<size_t>(u) * num_objects + o];
        if (partition_.CategoryOf(chain_dist[u]) != stored) {
          const DistanceRange range = partition_.RangeOf(stored);
          const Weight eps =
              1e-9 * std::max<Weight>(1.0, std::fabs(chain_dist[u]));
          if (chain_dist[u] < range.lb - eps || chain_dist[u] >= range.ub + eps) {
            return Status::Corruption(
                "stored category " + std::to_string(stored) +
                " disagrees with the distance " +
                std::to_string(chain_dist[u]) +
                " accumulated along the link chain at " +
                NodeObjectContext(u, o));
          }
        }
      }
    }
  }

  // Hub-label tier, when attached: structural invariants plus a sampled
  // Dijkstra spot check. A stale tier is skipped — the latch already routes
  // queries around it, and post-update labels legitimately disagree with the
  // mutated graph.
  if (labels_ != nullptr && !labels_->stale()) {
    DSIG_RETURN_IF_ERROR(labels_->VerifyStructure(*graph_));
  }
  return Status::Ok();
}

size_t SignatureIndex::ReplaceRow(NodeId n, const SignatureRow& row) {
  DSIG_CHECK_LT(n, rows_.size());
  DSIG_CHECK_EQ(row.size(), objects_.size());
  // Diff against the old row in resolved form so flag-only differences (same
  // category/link, different compression decision) do not count as changes.
  // TryDecodeRow rather than the aborting DecodeRow: a row corrupted in
  // memory must degrade (count every component as changed), not crash the
  // updater.
  const EncodedRow& old_encoded = rows_.ReadNewest(n);
  SignatureRow new_resolved = row;
  compressor_.ResolveRow(&new_resolved);
  size_t changed = 0;
  SignatureRow old_row;
  if (codec_.TryDecodeRow(old_encoded, objects_.size(), &old_row) &&
      compressor_.TryResolveRow(&old_row)) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (!(old_row[i] == new_resolved[i])) ++changed;
    }
  } else {
    changed = row.size();
  }

  resolved_cache_->Erase(n);
  {
    // The fallback memo is derived from the graph, which just changed under
    // this row; a stale entry would shadow the replacement.
    std::lock_guard<std::mutex> lock(fallback_mu_);
    fallback_rows_.erase(n);
  }
  EncodedRow new_encoded = codec_.EncodeRow(row);
  size_stats_.compressed_bits += new_encoded.size_bits;
  size_stats_.compressed_bits -= old_encoded.size_bits;
  // Copy-on-write publish: inside an UpdateGuard the new version carries the
  // guard's publish epoch and stays invisible until the guard commits;
  // quiesced callers (tests, tools) publish at the current epoch instead.
  const uint64_t publish_epoch = gate_.ThisThreadHoldsWrite()
                                     ? gate_.current_epoch() + 1
                                     : gate_.current_epoch();
  rows_.Publish(n, std::move(new_encoded), publish_epoch);
  return changed;
}

}  // namespace dsig
