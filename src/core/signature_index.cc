#include "core/signature_index.h"

#include <utility>

#include "core/op_counters.h"

namespace dsig {
namespace {

// Bound on the resolved-row memo (rows are a few hundred bytes each).
constexpr size_t kResolvedCacheRows = 4096;

}  // namespace

SignatureIndex::SignatureIndex(const RoadNetwork* graph,
                               std::vector<NodeId> objects,
                               CategoryPartition partition,
                               SignatureCodec codec,
                               std::vector<EncodedRow> rows,
                               ObjectDistanceTable table,
                               SignatureSizeStats size_stats,
                               std::unique_ptr<SpanningForest> forest)
    : graph_(graph),
      objects_(std::move(objects)),
      partition_(std::move(partition)),
      codec_(std::move(codec)),
      rows_(std::move(rows)),
      table_(std::move(table)),
      compressor_(&partition_, &table_),
      size_stats_(size_stats),
      forest_(std::move(forest)) {
  DSIG_CHECK(graph_ != nullptr);
  DSIG_CHECK_EQ(rows_.size(), graph_->num_nodes());
  object_of_node_.assign(graph_->num_nodes(), kInvalidObject);
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    object_of_node_[objects_[i]] = i;
  }
}

SignatureRow SignatureIndex::ReadRow(NodeId n) const {
  SignatureRow row = ReadRowUnresolved(n);
  compressor_.ResolveRow(&row);
  return row;
}

SignatureRow SignatureIndex::ReadRowUnresolved(NodeId n) const {
  DSIG_CHECK_LT(n, rows_.size());
  ++GlobalOpCounters().row_reads;
  if (merged_) {
    // Only the signature portion of the combined record is scanned.
    store_.TouchRecordBits(n, adjacency_bits_[n],
                           adjacency_bits_[n] + rows_[n].size_bits);
  } else {
    store_.TouchRecord(n);
  }
  return codec_.DecodeRow(rows_[n]);
}

SignatureEntry SignatureIndex::ReadEntry(NodeId n,
                                         uint32_t object_index) const {
  DSIG_CHECK_LT(n, rows_.size());
  DSIG_CHECK_LT(object_index, objects_.size());
  ++GlobalOpCounters().entry_reads;
  uint64_t bit_offset = 0;
  SignatureEntry entry = codec_.DecodeEntry(rows_[n], object_index,
                                            &bit_offset);
  if (merged_) bit_offset += adjacency_bits_[n];
  store_.TouchRecordAt(n, bit_offset);
  if (entry.compressed) {
    ++GlobalOpCounters().resolves;
    // Decompression is CPU work against the in-memory object table plus the
    // already-fetched row (paper §5.3); no extra page charge. Resolved rows
    // are memoized — backtracking walks revisit nodes constantly.
    auto it = resolved_cache_.find(n);
    if (it == resolved_cache_.end()) {
      if (resolved_cache_.size() >= kResolvedCacheRows) {
        resolved_cache_.clear();
      }
      SignatureRow row = codec_.DecodeRow(rows_[n]);
      compressor_.ResolveRow(&row);
      it = resolved_cache_.emplace(n, std::move(row)).first;
    }
    entry = it->second[object_index];
  }
  return entry;
}

void SignatureIndex::AttachStorage(BufferManager* buffer,
                                   const NetworkStore* network,
                                   const std::vector<NodeId>& order) {
  std::vector<uint64_t> record_bits(rows_.size());
  for (size_t n = 0; n < rows_.size(); ++n) {
    record_bits[n] = rows_[n].size_bits;
  }
  store_ = PagedStore(PageLayout(record_bits, order), buffer);
  network_store_ = network;
  merged_ = false;
  adjacency_bits_.clear();
}

void SignatureIndex::AttachMergedStorage(BufferManager* buffer,
                                         const std::vector<NodeId>& order) {
  adjacency_bits_.resize(rows_.size());
  std::vector<uint64_t> record_bits(rows_.size());
  for (NodeId n = 0; n < rows_.size(); ++n) {
    adjacency_bits_[n] = AdjacencyRecordBits(*graph_, n);
    record_bits[n] = adjacency_bits_[n] + rows_[n].size_bits;
  }
  store_ = PagedStore(PageLayout(record_bits, order), buffer);
  network_store_ = nullptr;
  merged_ = true;
}

void SignatureIndex::TouchAdjacency(NodeId n) const {
  if (merged_) {
    // The adjacency list heads the combined record.
    store_.TouchRecordAt(n, 0);
    return;
  }
  if (network_store_ != nullptr) network_store_->TouchNode(n);
}

void SignatureIndex::RebuildForest() {
  forest_ = std::make_unique<SpanningForest>(graph_, objects_);
  forest_->Build();
}

uint64_t SignatureIndex::IndexBytes() const {
  return (size_stats_.compressed_bits + 7) / 8;
}

size_t SignatureIndex::ReplaceRow(NodeId n, const SignatureRow& row) {
  DSIG_CHECK_LT(n, rows_.size());
  DSIG_CHECK_EQ(row.size(), objects_.size());
  // Diff against the old row in resolved form so flag-only differences (same
  // category/link, different compression decision) do not count as changes.
  SignatureRow old_row = codec_.DecodeRow(rows_[n]);
  compressor_.ResolveRow(&old_row);
  SignatureRow new_resolved = row;
  compressor_.ResolveRow(&new_resolved);
  size_t changed = 0;
  for (size_t i = 0; i < row.size(); ++i) {
    if (!(old_row[i] == new_resolved[i])) ++changed;
  }

  resolved_cache_.erase(n);
  const EncodedRow& old_encoded = rows_[n];
  EncodedRow new_encoded = codec_.EncodeRow(row);
  size_stats_.compressed_bits += new_encoded.size_bits;
  size_stats_.compressed_bits -= old_encoded.size_bits;
  rows_[n] = std::move(new_encoded);
  return changed;
}

}  // namespace dsig
