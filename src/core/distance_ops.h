// Basic operations on distance signatures (paper §3.2): retrieval,
// comparison, and sorting.
//
// Exact values are reached by *guided backtracking*: each signature
// component's link names the next hop on the shortest path toward the
// object, so following links accumulates the exact distance edge by edge,
// and the category read at every intermediate node keeps an ever-tighter
// range [acc + lb, acc + ub). Approximate variants stop as soon as the range
// answers the caller's question.
#ifndef DSIG_CORE_DISTANCE_OPS_H_
#define DSIG_CORE_DISTANCE_OPS_H_

#include <cstdint>
#include <vector>

#include "core/signature_index.h"

namespace dsig {

enum class CompareResult { kLess, kEqual, kGreater };

// Resumable backtracking along the shortest path from a node toward an
// object. Every Step() charges one adjacency page and one signature page.
class RetrievalCursor {
 public:
  // `initial` is the already-read component s(n)[object] (so callers that
  // read the whole row are not charged twice); pass null to have the cursor
  // read it (one page charge).
  RetrievalCursor(const SignatureIndex* index, NodeId n, uint32_t object,
                  const SignatureEntry* initial);

  // Current knowledge of d(n, object).
  DistanceRange range() const { return range_; }
  bool exact() const { return exact_; }
  Weight exact_distance() const {
    DSIG_CHECK(exact_);
    return range_.lb;
  }

  // One backtracking step; no-op (returns false) once exact.
  bool Step();

  // Steps until the range no longer partially intersects `delta` (§3.2.1's
  // approximate retrieval) or the value is exact.
  DistanceRange RefineAgainst(const DistanceRange& delta);

  // Steps all the way to the object.
  Weight RetrieveExact();

 private:
  void LoadEntry(const SignatureEntry* initial);

  const SignatureIndex* index_;
  uint32_t object_;
  NodeId pos_;
  Weight accumulated_ = 0;
  uint8_t link_ = 0;
  DistanceRange range_;
  bool exact_ = false;
  size_t steps_ = 0;
};

// d(n, object), exact, via guided backtracking.
Weight ExactDistance(const SignatureIndex& index, NodeId n, uint32_t object);

// Approximate retrieval: a range containing d(n, object) that does not
// partially intersect `delta`.
DistanceRange ApproximateDistance(const SignatureIndex& index, NodeId n,
                                  uint32_t object, const DistanceRange& delta);

// Exact comparison of d(n, a) vs d(n, b) (Algorithm 2): alternately refines
// the two distances, in batches, until unambiguous.
CompareResult ExactCompare(const SignatureIndex& index, NodeId n, uint32_t a,
                           uint32_t b, const SignatureRow& row);

// Approximate comparison (Algorithm 3): uses only s(n) plus the in-memory
// object table. Observers — objects in strictly closer categories — vote on
// which side of the perpendicular bisector of (a, b) the node lies in a 2-D
// embedding; majority wins, any ambiguity yields kEqual. Never charges
// pages beyond the row the caller already read.
CompareResult ApproximateCompare(const SignatureIndex& index, NodeId n,
                                 uint32_t a, uint32_t b,
                                 const SignatureRow& row);

// SoA variant: the observer pre-filter (category strictly below a's) runs as
// one vectorized extraction over the stage's category lane instead of a
// per-entry scan; each surviving observer then votes exactly as above, so
// the verdict is identical to the AoS form on the same row at every SIMD
// dispatch level.
CompareResult ApproximateCompare(const SignatureIndex& index, NodeId n,
                                 uint32_t a, uint32_t b, const RowStage& stage);

// Distance sorting (Algorithm 4): an approximate-comparison insertion sort
// followed by an exact-comparison bubble refinement. On return `objects` is
// exactly ordered by d(n, ·) — unless the ambient request deadline
// (util/deadline.h) expired mid-sort, in which case the vector is left an
// approximately-ordered permutation of its input and DeadlineExpired() is
// true; callers tag their result partial.
void SortByDistance(const SignatureIndex& index, NodeId n,
                    const RowStage& stage, std::vector<uint32_t>* objects);

// AoS bridge: stages `row` once and runs the SoA sort above.
void SortByDistance(const SignatureIndex& index, NodeId n,
                    const SignatureRow& row, std::vector<uint32_t>* objects);

}  // namespace dsig

#endif  // DSIG_CORE_DISTANCE_OPS_H_
