// Signature compression (paper §5.3).
//
// Observation: many objects share a node's backtracking link, and a remote
// object v's category is often derivable from a closer object u with the
// same link as s(n)[u] ⊕ s(u)[v], where ⊕ is the categorical add-up of
// Definition 5.1 (max of unequal categories; increment when equal). Such
// entries are replaced by a single flag bit; category AND link are
// reconstructed at read time from u and the in-memory object-distance table.
//
// The paper leaves the reader to infer how the decompressor re-identifies u
// once v's entry is gone; we fix a deterministic rule both sides share (see
// DESIGN.md):
//   * reps: for each link value, the uncompressed entry minimizing
//     (category, object position). Reps are provably never compressed, so
//     the decoder recovers the same rep set from the surviving entries.
//   * u(v): over all reps u, minimize (s(n)[u] ⊕ s(u)[v], s(n)[u] category,
//     position). The encoder flags v only when u(v)'s add-up reproduces v's
//     category exactly AND u(v) shares v's link — making decompression
//     lossless by construction.
#ifndef DSIG_CORE_COMPRESSION_H_
#define DSIG_CORE_COMPRESSION_H_

#include <cstdint>

#include "core/category_partition.h"
#include "core/object_distance_table.h"
#include "core/signature.h"

namespace dsig {

// Definition 5.1: the categorical sum of two categories. When they differ
// the larger dominates; when equal the sum likely spills into the next
// category (clamped to the last).
int AddUpCategories(int a, int b, int num_categories);

class RowCompressor {
 public:
  // Both referents must outlive the compressor.
  RowCompressor(const CategoryPartition* partition,
                const ObjectDistanceTable* table);

  // Category of the object-object distance d(u, v) (object indexes); far
  // pairs fall in the last category by definition.
  int ObjectPairCategory(uint32_t u, uint32_t v) const;

  // Flags every compressible entry of `row` (Algorithm 7); returns the
  // number of flagged entries. Category-0 entries (including the entry of an
  // object living on this very node) can never be flagged because the add-up
  // of Definition 5.1 is always positive.
  size_t Compress(SignatureRow* row) const;

  // Reconstructs the category and link of compressed entry `index`; `row`
  // is the decoded row (compressed entries unresolved).
  SignatureEntry Resolve(const SignatureRow& row, uint32_t index) const;

  // Resolves every compressed entry in place.
  void ResolveRow(SignatureRow* row) const;

  // Non-aborting variant for untrusted rows: false (row left partially
  // resolved) when the row's size does not match the object table, an
  // uncompressed category is outside the partition, or a compressed entry
  // has no representative — all states only a corrupt index can reach.
  bool TryResolveRow(SignatureRow* row) const;

  // SoA twin of TryResolveRow for staged rows (core/row_stage.h): the same
  // deterministic rule and failure conditions through the same shared core,
  // with category validation and flag extraction running on the SIMD
  // kernels. Resolved entries are written back into the stage's lanes and
  // the flags cleared. Relies on the stage invariant that flagged entries
  // hold the kUnresolved sentinels (which decode guarantees).
  bool TryResolveStage(RowStage* stage) const;

 private:
  struct Rep {
    uint32_t object = 0;  // object index of the representative
    uint8_t category = 0;
    uint8_t link = 0;
  };

  // One rep per distinct link value present among uncompressed entries.
  // View adapters (defined in compression.cc) give the AoS row and the SoA
  // stage one implementation of the rep/resolve rule, so the two layouts
  // cannot drift apart.
  template <class View>
  std::vector<Rep> ComputeRepsView(const View& view) const;
  std::vector<Rep> ComputeReps(const SignatureRow& row) const;

  // Best u(v) under the deterministic rule; returns false when no rep
  // precedes v. On success fills `category` (the add-up) and `link`.
  bool BestRep(const std::vector<Rep>& reps, uint32_t v, uint8_t* category,
               uint8_t* link) const;

  const CategoryPartition* partition_;
  const ObjectDistanceTable* table_;
};

}  // namespace dsig

#endif  // DSIG_CORE_COMPRESSION_H_
