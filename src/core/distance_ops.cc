#include "core/distance_ops.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/row_stage.h"
#include "obs/op_counters.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/simd/simd.h"

namespace dsig {
namespace {

// True when the relation between the two ranges is decided: every value of A
// is strictly below every value of B, or vice versa, or both are exact.
bool Decided(const RetrievalCursor& a, const RetrievalCursor& b,
             CompareResult* result) {
  const DistanceRange ra = a.range();
  const DistanceRange rb = b.range();
  if (a.exact() && b.exact()) {
    if (ra.lb < rb.lb) {
      *result = CompareResult::kLess;
    } else if (ra.lb > rb.lb) {
      *result = CompareResult::kGreater;
    } else {
      *result = CompareResult::kEqual;
    }
    return true;
  }
  // A's supremum: its exact value, else the exclusive upper bound.
  const Weight a_sup = a.exact() ? ra.lb : ra.ub;
  const Weight b_sup = b.exact() ? rb.lb : rb.ub;
  // a < b guaranteed: a <= a_sup (strictly below ub when inexact) and
  // b >= rb.lb. Exact-vs-boundary ties stay ambiguous (could be equal).
  if (a.exact() ? a_sup < rb.lb : a_sup <= rb.lb) {
    *result = CompareResult::kLess;
    return true;
  }
  if (b.exact() ? b_sup < ra.lb : b_sup <= ra.lb) {
    *result = CompareResult::kGreater;
    return true;
  }
  return false;
}

}  // namespace

RetrievalCursor::RetrievalCursor(const SignatureIndex* index, NodeId n,
                                 uint32_t object,
                                 const SignatureEntry* initial)
    : index_(index), object_(object), pos_(n) {
  DSIG_CHECK(index_ != nullptr);
  if (index_->object_node(object_) == pos_) {
    exact_ = true;
    range_ = {0, 0};
    return;
  }
  LoadEntry(initial);
}

void RetrievalCursor::LoadEntry(const SignatureEntry* initial) {
  SignatureEntry entry;
  if (initial != nullptr) {
    entry = *initial;
    DSIG_CHECK(!entry.compressed) << "pass resolved entries to the cursor";
  } else {
    entry = index_->ReadEntry(pos_, object_);
  }
  link_ = entry.link;
  const DistanceRange cat = index_->partition().RangeOf(entry.category);
  range_ = {accumulated_ + cat.lb,
            cat.ub == kInfiniteWeight ? kInfiniteWeight
                                      : accumulated_ + cat.ub};
}

bool RetrievalCursor::Step() {
  if (exact_) return false;
  const obs::Span span(obs::Phase::kBacktrack);
  ++GlobalOpCounters().backtrack_steps;
  // A healthy index reaches the object within one simple path; anything
  // longer means the backtracking links cycle (index corruption) — fail fast
  // rather than walk forever.
  ++steps_;
  DSIG_CHECK_LE(steps_, index_->graph().num_nodes())
      << "backtracking links do not reach object " << object_
      << "; the signature index is corrupt";
  // Follow the backtracking link: one adjacency page at the current node
  // (free when the schema merges it with the signature we just read and
  // both sit on a cached page).
  index_->TouchAdjacency(pos_);
  const auto& adjacency = index_->graph().adjacency(pos_);
  DSIG_CHECK_LT(link_, adjacency.size());
  const AdjacencyEntry& hop = adjacency[link_];
  DSIG_CHECK(!hop.removed) << "backtracking link points at a removed edge";
  accumulated_ += hop.weight;
  pos_ = hop.to;
  if (index_->object_node(object_) == pos_) {
    exact_ = true;
    range_ = {accumulated_, accumulated_};
    return true;
  }
  LoadEntry(nullptr);
  return true;
}

DistanceRange RetrievalCursor::RefineAgainst(const DistanceRange& delta) {
  while (!exact_ && range_.PartiallyIntersects(delta)) Step();
  return range_;
}

Weight RetrievalCursor::RetrieveExact() {
  while (!exact_) Step();
  return range_.lb;
}

Weight ExactDistance(const SignatureIndex& index, NodeId n, uint32_t object) {
  // Snapshot spans every backtracking step, so the link chain is walked
  // against one published index state. Re-entrant: free under an outer
  // query-level snapshot.
  const ReadSnapshot snapshot(index.epoch_gate());
  RetrievalCursor cursor(&index, n, object, nullptr);
  return cursor.RetrieveExact();
}

DistanceRange ApproximateDistance(const SignatureIndex& index, NodeId n,
                                  uint32_t object,
                                  const DistanceRange& delta) {
  const ReadSnapshot snapshot(index.epoch_gate());
  RetrievalCursor cursor(&index, n, object, nullptr);
  return cursor.RefineAgainst(delta);
}

CompareResult ExactCompare(const SignatureIndex& index, NodeId n, uint32_t a,
                           uint32_t b, const SignatureRow& row) {
  const ReadSnapshot snapshot(index.epoch_gate());
  ++GlobalOpCounters().exact_compares;
  RetrievalCursor ca(&index, n, a, &row[a]);
  RetrievalCursor cb(&index, n, b, &row[b]);
  CompareResult result = CompareResult::kEqual;
  while (!Decided(ca, cb, &result)) {
    // Batched alternation (Algorithm 2): push one side as far as the other's
    // current range requires, then switch.
    bool progressed = false;
    if (!ca.exact() && ca.range().PartiallyIntersects(cb.range())) {
      ca.RefineAgainst(cb.range());
      progressed = true;
    }
    if (Decided(ca, cb, &result)) return result;
    if (!cb.exact() && cb.range().PartiallyIntersects(ca.range())) {
      cb.RefineAgainst(ca.range());
      progressed = true;
    }
    if (!progressed) {
      // Ranges coincide (e.g., both spans are the same category): neither
      // "partially" intersects the other, so force a step to break the tie.
      if (!ca.exact()) {
        ca.Step();
      } else {
        cb.Step();
      }
    }
  }
  return result;
}

namespace {

// Geometry for the observer heuristic (Fig 3.2). Objects a, b are embedded
// at (0,0) and (d_ab, 0); candidate positions of the node on the
// perpendicular bisector x = d_ab/2 have |y| in [y_min, y_max], derived from
// the node's (shared) category range toward a and b.
struct BisectorSegment {
  double x = 0;
  double y_min = 0;
  double y_max = 0;
  bool valid = false;
};

BisectorSegment ComputeBisectorSegment(double d_ab, double range_lb,
                                       double range_ub) {
  BisectorSegment segment;
  segment.x = d_ab / 2;
  const double base = segment.x * segment.x;
  const double hi = range_ub * range_ub - base;
  if (hi < 0) return segment;  // no bisector point satisfies the range
  const double lo = range_lb * range_lb - base;
  segment.y_min = lo > 0 ? std::sqrt(lo) : 0;
  segment.y_max = std::sqrt(hi);
  segment.valid = true;
  return segment;
}

// The bisector segment for the (a, b) embedding, or invalid when no bisector
// position is compatible with the shared category range (verdict kEqual).
BisectorSegment SegmentForPair(const CategoryPartition& partition,
                               uint8_t shared_category, double d_ab) {
  // The open-ended last category gets a pragmatic cap for the embedding.
  const DistanceRange shared = partition.RangeOf(shared_category);
  const double growth = partition.c() > 1 ? partition.c() : 2.0;
  const double shared_ub =
      shared.ub == kInfiniteWeight
          ? std::max<double>(shared.lb * growth, shared.lb + d_ab)
          : shared.ub;
  return ComputeBisectorSegment(d_ab, shared.lb, shared_ub);
}

// One observer's vote: -1 for "a is closer", +1 for "b is closer", 0 when it
// abstains (far pair, sits on the bisector, or its range straddles the
// candidate segment). Shared by the AoS and SoA comparison paths so their
// verdicts cannot drift.
int ObserverVote(const CategoryPartition& partition,
                 const ObjectDistanceTable& table,
                 const BisectorSegment& segment, double d_ab, uint32_t a,
                 uint32_t b, uint32_t c, uint8_t observer_category) {
  if (table.IsFar(c, a) || table.IsFar(c, b)) return 0;
  const double d_ca = table.Get(c, a);
  const double d_cb = table.Get(c, b);
  if (d_ca == d_cb) return 0;  // the observer sits on the bisector itself

  // Triangulate the observer; clamp the discriminant (network distances
  // need not satisfy planar geometry exactly).
  const double cx = (d_ca * d_ca + d_ab * d_ab - d_cb * d_cb) / (2 * d_ab);
  const double cy2 = std::max(0.0, d_ca * d_ca - cx * cx);
  const double cy = std::sqrt(cy2);

  // Distance from the observer to the four candidate segment endpoints
  // (two y signs x two extremes); monotone along each segment, so the
  // extremes bound all candidate positions.
  double d_min = kInfiniteWeight, d_max = 0;
  for (const double sy : {+1.0, -1.0}) {
    for (const double y : {segment.y_min, segment.y_max}) {
      const double d = std::hypot(segment.x - cx, sy * y - cy);
      d_min = std::min(d_min, d);
      d_max = std::max(d_max, d);
    }
  }

  const DistanceRange observed = partition.RangeOf(observer_category);
  // Closer-to-a / closer-to-b side of the bisector, seen from c.
  const bool c_nearer_a = d_ca < d_cb;
  if (observed.ub != kInfiniteWeight && observed.ub <= d_min) {
    // n is closer to c than any bisector position: n lies on c's side.
    return c_nearer_a ? -1 : +1;
  }
  if (observed.lb >= d_max) {
    // n is farther from c than any bisector position: opposite side.
    return c_nearer_a ? +1 : -1;
  }
  return 0;
}

}  // namespace

CompareResult ApproximateCompare(const SignatureIndex& index,
                                 NodeId /*n: embedding is node-independent*/,
                                 uint32_t a, uint32_t b,
                                 const SignatureRow& row) {
  const ReadSnapshot snapshot(index.epoch_gate());
  ++GlobalOpCounters().approx_compares;
  DSIG_CHECK(!row[a].compressed && !row[b].compressed);
  if (row[a].category != row[b].category) {
    return row[a].category < row[b].category ? CompareResult::kLess
                                             : CompareResult::kGreater;
  }
  const CategoryPartition& partition = index.partition();
  const ObjectDistanceTable& table = index.object_table();
  if (table.IsFar(a, b)) return CompareResult::kEqual;  // cannot embed
  const double d_ab = table.Get(a, b);
  if (d_ab <= 0) return CompareResult::kEqual;  // co-located objects

  const BisectorSegment segment =
      SegmentForPair(partition, row[a].category, d_ab);
  if (!segment.valid) return CompareResult::kEqual;

  int votes_a = 0, votes_b = 0;  // votes for "a is closer" / "b is closer"
  for (uint32_t c = 0; c < row.size(); ++c) {
    if (c == a || c == b || row[c].compressed) continue;
    // Observers are objects in strictly closer categories: their ranges are
    // tighter and their embedding distortion smaller (§3.2.2).
    if (row[c].category >= row[a].category) continue;
    const int vote =
        ObserverVote(partition, table, segment, d_ab, a, b, c, row[c].category);
    if (vote < 0) {
      ++votes_a;
    } else if (vote > 0) {
      ++votes_b;
    }
  }
  if (votes_a > votes_b) return CompareResult::kLess;
  if (votes_b > votes_a) return CompareResult::kGreater;
  return CompareResult::kEqual;
}

CompareResult ApproximateCompare(const SignatureIndex& index,
                                 NodeId /*n: embedding is node-independent*/,
                                 uint32_t a, uint32_t b,
                                 const RowStage& stage) {
  const ReadSnapshot snapshot(index.epoch_gate());
  ++GlobalOpCounters().approx_compares;
  const uint8_t* cats = stage.categories();
  DSIG_CHECK(stage.flags()[a] == 0 && stage.flags()[b] == 0);
  if (cats[a] != cats[b]) {
    return cats[a] < cats[b] ? CompareResult::kLess : CompareResult::kGreater;
  }
  const CategoryPartition& partition = index.partition();
  const ObjectDistanceTable& table = index.object_table();
  if (table.IsFar(a, b)) return CompareResult::kEqual;  // cannot embed
  const double d_ab = table.Get(a, b);
  if (d_ab <= 0) return CompareResult::kEqual;  // co-located objects

  const BisectorSegment segment = SegmentForPair(partition, cats[a], d_ab);
  if (!segment.valid) return CompareResult::kEqual;

  // Observer pre-filter in one vector pass: the candidates are exactly the
  // entries with category strictly below a's. a and b themselves (equal
  // category) and unresolved entries (0xFF sentinel lanes) fall outside the
  // extraction range, so no per-entry exclusion tests remain.
  static thread_local std::vector<uint32_t> observers;
  if (observers.size() < stage.size()) observers.resize(stage.size());
  const size_t count = simd::Kernels().extract_in_range(
      cats, stage.size(), 0, cats[a], observers.data());

  int votes_a = 0, votes_b = 0;  // votes for "a is closer" / "b is closer"
  for (size_t j = 0; j < count; ++j) {
    const uint32_t c = observers[j];
    const int vote =
        ObserverVote(partition, table, segment, d_ab, a, b, c, cats[c]);
    if (vote < 0) {
      ++votes_a;
    } else if (vote > 0) {
      ++votes_b;
    }
  }
  if (votes_a > votes_b) return CompareResult::kLess;
  if (votes_b > votes_a) return CompareResult::kGreater;
  return CompareResult::kEqual;
}

namespace {

// Exact comparison over *persistent* cursors: identical decision procedure
// to ExactCompare, but refinement progress survives across comparisons, so a
// sort's total backtracking is bounded by one walk per object instead of one
// per pair — the I/O-batching reading of §3.2.2.
CompareResult CompareWithCursors(RetrievalCursor* ca, RetrievalCursor* cb) {
  ++GlobalOpCounters().exact_compares;
  CompareResult result = CompareResult::kEqual;
  while (!Decided(*ca, *cb, &result)) {
    bool progressed = false;
    if (!ca->exact() && ca->range().PartiallyIntersects(cb->range())) {
      ca->RefineAgainst(cb->range());
      progressed = true;
    }
    if (Decided(*ca, *cb, &result)) return result;
    if (!cb->exact() && cb->range().PartiallyIntersects(ca->range())) {
      cb->RefineAgainst(ca->range());
      progressed = true;
    }
    if (!progressed) {
      if (!ca->exact()) {
        ca->Step();
      } else {
        cb->Step();
      }
    }
  }
  return result;
}

}  // namespace

void SortByDistance(const SignatureIndex& index, NodeId n,
                    const RowStage& stage, std::vector<uint32_t>* objects) {
  const obs::Span span(obs::Phase::kSort);
  const ReadSnapshot snapshot(index.epoch_gate());
  std::vector<uint32_t>& objs = *objects;
  // Initial ordering: insertion sort driven by the approximate comparison.
  // (The observer heuristic is not a strict weak ordering, so std::sort is
  // off the table; insertion sort is safe with any comparator.)
  for (size_t i = 1; i < objs.size(); ++i) {
    if ((i & 15u) == 0 && DeadlineExpired()) return;
    const uint32_t value = objs[i];
    size_t j = i;
    while (j > 0 && ApproximateCompare(index, n, value, objs[j - 1], stage) ==
                        CompareResult::kLess) {
      objs[j] = objs[j - 1];
      --j;
    }
    objs[j] = value;
  }
  // Refinement (Algorithm 4): exact-compare consecutive pairs, bubbling a
  // switched element back until the order is confirmed. One cursor per
  // object persists across comparisons.
  std::vector<std::unique_ptr<RetrievalCursor>> cursors(stage.size());
  const auto cursor_of = [&](uint32_t object) {
    if (cursors[object] == nullptr) {
      const SignatureEntry initial = stage.entry(object);
      cursors[object] =
          std::make_unique<RetrievalCursor>(&index, n, object, &initial);
    }
    return cursors[object].get();
  };
  size_t i = 0;
  while (objs.size() > 1 && i + 1 < objs.size()) {
    // Each exact comparison can cost several backtracking page reads, so the
    // refinement loop is the sort's deadline phase boundary. Aborting leaves
    // `objects` an approximately-ordered permutation — callers observe
    // DeadlineExpired() and tag the result partial.
    if (DeadlineExpired()) return;
    if (CompareWithCursors(cursor_of(objs[i]), cursor_of(objs[i + 1])) ==
        CompareResult::kGreater) {
      std::swap(objs[i], objs[i + 1]);
      if (i > 0) {
        --i;
        continue;
      }
    }
    ++i;
  }
}

void SortByDistance(const SignatureIndex& index, NodeId n,
                    const SignatureRow& row, std::vector<uint32_t>* objects) {
  static thread_local RowStage stage;
  stage.Assign(row);
  SortByDistance(index, n, stage, objects);
}

}  // namespace dsig
