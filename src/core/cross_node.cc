#include "core/cross_node.h"

#include "util/logging.h"

namespace dsig {

CrossNodeStats AnalyzeCrossNodeCompression(const SignatureIndex& index,
                                           const std::vector<NodeId>& order,
                                           int max_chain) {
  DSIG_CHECK_GE(max_chain, 1);
  DSIG_CHECK_EQ(order.size(), index.graph().num_nodes());
  const SignatureCodec& codec = index.codec();
  const HuffmanCode& code = codec.category_code();

  CrossNodeStats stats;
  SignatureRow reference;
  int chain_depth = 0;
  for (const NodeId n : order) {
    const uint64_t stored_bits = index.encoded_row(n).size_bits;
    stats.within_row_bits += stored_bits;

    // Deltas compare *resolved* categories: the delta form replaces the
    // within-row compression, it does not stack on top of it.
    SignatureRow row = codec.DecodeRow(index.encoded_row(n));
    index.compressor().ResolveRow(&row);

    uint64_t delta_bits = 0;
    uint64_t same = 0;
    const bool can_delta =
        !reference.empty() && chain_depth < max_chain;
    if (can_delta) {
      for (uint32_t o = 0; o < row.size(); ++o) {
        delta_bits += 1;  // same-category flag
        if (row[o].category == reference[o].category) {
          ++same;
        } else {
          delta_bits += static_cast<uint64_t>(code.length(row[o].category));
        }
        delta_bits += static_cast<uint64_t>(codec.link_bits());
      }
    }

    // 1 header bit selects the form.
    if (can_delta && delta_bits + 1 < stored_bits + 1) {
      stats.cross_node_bits += delta_bits + 1;
      ++stats.delta_rows;
      stats.same_category_entries += same;
      stats.delta_entries += row.size();
      ++chain_depth;
    } else {
      stats.cross_node_bits += stored_bits + 1;
      chain_depth = 0;
    }
    reference = std::move(row);
  }
  return stats;
}

}  // namespace dsig
