// Write-ahead log for live network updates (paper §5.4 made crash-safe).
//
// The paper's update argument is locality — an edge change rewrites only the
// signature rows it touches — but locality says nothing about a process that
// dies mid-rewrite. The durability protocol is the classic one: every
// AddEdge/RemoveEdge/SetEdgeWeight is appended to this log (and optionally
// fsync'd) *before* the in-memory index mutates, and periodic checkpoints
// persist the full network+index with PR 1's atomic temp+rename saves, after
// which the log restarts from the checkpoint's sequence number. Recovery
// loads the newest checkpoint and replays the committed log tail.
//
// On-disk format (little-endian, matching io/binary_io conventions):
//
//   header   magic "DSWL" (u32) · version (u32) · base_seq (u64) ·
//            crc32c(preceding 16 bytes) (u32)
//   record*  payload_len (u32) · crc32c(payload) (u32) · payload
//   payload  op (u8) · a (u32) · b (u32) · weight (f64)
//
// Record i (0-based) carries implicit sequence number base_seq + i + 1, which
// is how recovery stays idempotent: records with seq <= the checkpoint's seq
// are skipped, so a crash between "manifest renamed" and "log rewritten"
// never replays an AddEdge twice (which would allocate a duplicate EdgeId and
// shift every later id).
//
// Torn-tail policy (the crash-consistency contract, exercised byte-by-byte
// by tests/update_chaos_test.cc): a record frame that runs past end-of-file,
// or whose checksum fails *with nothing after it*, is a torn tail from a
// crash mid-append — it is silently discarded and the log is valid up to the
// previous record. A checksum failure with more committed bytes *after* it
// can only be bit rot, never a torn write, and fails with kCorruption.
//
// Errors are sticky, like BinaryWriter: the first failed append latches into
// status() and every later append/sync refuses, so a caller can never commit
// an update whose log record did not reach the file.
#ifndef DSIG_CORE_UPDATE_LOG_H_
#define DSIG_CORE_UPDATE_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/road_network.h"
#include "util/fault_plan.h"
#include "util/status.h"

namespace dsig {

// One logged network mutation. `a`/`b` are overloaded by op, mirroring the
// RoadNetwork mutation API exactly so replay is mechanical.
struct UpdateRecord {
  enum Op : uint8_t {
    kAddEdge = 1,        // a = node u, b = node v, weight
    kRemoveEdge = 2,     // a = edge id
    kSetEdgeWeight = 3,  // a = edge id, weight
  };

  uint8_t op = kAddEdge;
  uint32_t a = 0;
  uint32_t b = 0;
  double weight = 0;

  static UpdateRecord Add(NodeId u, NodeId v, Weight w) {
    return UpdateRecord{kAddEdge, u, v, w};
  }
  static UpdateRecord Remove(EdgeId e) {
    return UpdateRecord{kRemoveEdge, e, 0, 0};
  }
  static UpdateRecord SetWeight(EdgeId e, Weight w) {
    return UpdateRecord{kSetEdgeWeight, e, 0, w};
  }

  bool operator==(const UpdateRecord& o) const {
    return op == o.op && a == o.a && b == o.b && weight == o.weight;
  }

  // Semantic validation replay relies on (op in range, AddEdge endpoints
  // distinct, weights finite and positive where required). A record that
  // passes the CRC but fails this is corruption the checksum missed.
  Status Validate() const;

  // Applies this record to `graph`. AddEdge allocates the next sequential
  // EdgeId, so replaying the same record stream against the same starting
  // graph reproduces edge ids exactly.
  Status ApplyTo(RoadNetwork* graph) const;
};

// Result of scanning a log: the committed record prefix plus where it ends.
struct WalReplay {
  uint64_t base_seq = 0;              // checkpoint seq this log extends
  std::vector<UpdateRecord> records;  // committed records, in append order
  uint64_t committed_bytes = 0;       // header + committed frames
  uint64_t torn_bytes = 0;            // crash-torn tail bytes discarded
};

// Append-side handle on a write-ahead log file. Not thread-safe: the update
// protocol has a single writer (core/update.h's exclusive UpdateGuard).
class UpdateLog {
 public:
  static constexpr uint32_t kMagic = 0x4C575344;  // "DSWL"
  static constexpr uint32_t kVersion = 1;
  static constexpr uint64_t kHeaderBytes = 4 + 4 + 8 + 4;
  static constexpr uint64_t kPayloadBytes = 1 + 4 + 4 + 8;
  static constexpr uint64_t kFrameBytes = 4 + 4 + kPayloadBytes;

  // Creates (or atomically replaces, via temp+rename) an empty log at `path`
  // extending checkpoint `base_seq`, fsync'd before the rename so a crash at
  // any byte leaves either the old log or a complete new one.
  static Status Create(const std::string& path, uint64_t base_seq,
                       const WriteFaultPlan& faults = {});

  // Scans `path`, validating every frame, and returns the committed prefix
  // under the torn-tail policy above. Never aborts; corruption that cannot
  // be a torn write returns kCorruption.
  static StatusOr<WalReplay> Replay(const std::string& path,
                                    const ReadFaultPlan& faults = {});

  // Opens an existing log for appending: replays it, truncates any torn
  // tail, and positions at the committed end.
  static StatusOr<std::unique_ptr<UpdateLog>> Open(
      const std::string& path, const WriteFaultPlan& faults = {});

  ~UpdateLog();
  UpdateLog(const UpdateLog&) = delete;
  UpdateLog& operator=(const UpdateLog&) = delete;

  // Appends one record frame (buffered). The injected fault plan is keyed on
  // absolute log byte offsets and models a crash: bytes before `fail_at`
  // reach the file, nothing at or after it does — so every-byte crash sweeps
  // can place the torn boundary anywhere inside a frame.
  Status Append(const UpdateRecord& record);

  // Flushes stdio buffers and fsyncs the file. Durability point: a record is
  // committed once Sync() returns OK after its Append.
  Status Sync();

  // Flush + fsync + close; idempotent; returns the sticky status.
  Status Close();

  const Status& status() const { return status_; }
  uint64_t base_seq() const { return base_seq_; }
  // Records in the log (existing committed + appended). The next record
  // appended gets sequence number base_seq() + record_count() + 1.
  uint64_t record_count() const { return record_count_; }
  uint64_t bytes() const { return bytes_; }

 private:
  UpdateLog() = default;

  void WriteRaw(const void* data, size_t size);

  std::FILE* file_ = nullptr;
  Status status_;
  uint64_t base_seq_ = 0;
  uint64_t record_count_ = 0;
  uint64_t bytes_ = 0;  // absolute offset of the next byte to write
  WriteFaultPlan fault_plan_;
};

}  // namespace dsig

#endif  // DSIG_CORE_UPDATE_LOG_H_
