#include "core/update.h"

#include <algorithm>

#include "core/signature_builder.h"
#include "obs/metrics.h"

namespace dsig {
namespace {

// update.* registry counters (satellite of the WAL/snapshot work): the
// running totals dsig_tool stats and the benches read.
void RecordUpdateMetrics(const UpdateStats& stats) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const edges =
      registry.GetCounter("update.edges_applied");
  static obs::Counter* const rows =
      registry.GetCounter("update.rows_rewritten");
  static obs::Counter* const tree =
      registry.GetCounter("update.tree_entries_changed");
  static obs::Counter* const entries =
      registry.GetCounter("update.entries_changed");
  edges->Add(1);
  rows->Add(stats.rows_rewritten);
  tree->Add(stats.tree_entries_changed);
  entries->Add(stats.entries_changed);
}

}  // namespace

SignatureUpdater::SignatureUpdater(RoadNetwork* graph, SignatureIndex* index)
    : graph_(graph), index_(index) {
  DSIG_CHECK(graph_ != nullptr);
  DSIG_CHECK(index_ != nullptr);
  DSIG_CHECK_EQ(graph_, &index_->graph());
  DSIG_CHECK(index_->mutable_forest() != nullptr)
      << "build the index with keep_forest = true to enable updates";
}

UpdateStats SignatureUpdater::AddEdge(NodeId u, NodeId v, Weight weight,
                                      EdgeId* edge_out) {
  const UpdateGuard guard(index_->epoch_gate());
  index_->ReclaimRetiredRows();  // lazy: previous update's versions drained
  // Any network change invalidates the hub-label tier (sticky latch): labels
  // are built offline and cannot be maintained incrementally, so the planner
  // demotes exact distances to the chase/Dijkstra paths until a rebuild.
  index_->InvalidateHubLabels();
  const EdgeId edge = graph_->AddEdge(u, v, weight);
  if (edge_out != nullptr) *edge_out = edge;
  const UpdateStats stats =
      ApplyTreeChanges(index_->mutable_forest()->OnEdgeAddedOrDecreased(edge));
  RecordUpdateMetrics(stats);
  return stats;
}

UpdateStats SignatureUpdater::RemoveEdge(EdgeId edge) {
  const UpdateGuard guard(index_->epoch_gate());
  index_->ReclaimRetiredRows();
  index_->InvalidateHubLabels();
  graph_->RemoveEdge(edge);
  const UpdateStats stats = ApplyTreeChanges(
      index_->mutable_forest()->OnEdgeIncreasedOrRemoved(edge));
  RecordUpdateMetrics(stats);
  return stats;
}

UpdateStats SignatureUpdater::SetEdgeWeight(EdgeId edge, Weight weight) {
  const UpdateGuard guard(index_->epoch_gate());
  index_->ReclaimRetiredRows();
  index_->InvalidateHubLabels();
  const Weight old_weight = graph_->edge_weight(edge);
  graph_->SetEdgeWeight(edge, weight);
  UpdateStats stats;
  if (weight < old_weight) {
    stats = ApplyTreeChanges(
        index_->mutable_forest()->OnEdgeAddedOrDecreased(edge));
  } else if (weight > old_weight) {
    stats = ApplyTreeChanges(
        index_->mutable_forest()->OnEdgeIncreasedOrRemoved(edge));
  }
  RecordUpdateMetrics(stats);
  return stats;
}

UpdateStats SignatureUpdater::Apply(const UpdateRecord& record) {
  switch (record.op) {
    case UpdateRecord::kAddEdge:
      return AddEdge(record.a, record.b, record.weight);
    case UpdateRecord::kRemoveEdge:
      return RemoveEdge(record.a);
    case UpdateRecord::kSetEdgeWeight:
      return SetEdgeWeight(record.a, record.weight);
    default:
      DSIG_CHECK(false) << "unvalidated update record op "
                        << static_cast<int>(record.op);
  }
  return {};
}

UpdateStats SignatureUpdater::ApplyTreeChanges(
    const std::vector<TreeChange>& changes) {
  UpdateStats stats;
  stats.tree_entries_changed = changes.size();
  if (changes.empty()) return stats;

  const SpanningForest& forest = *index_->forest();
  const CategoryPartition& partition = index_->partition();
  ObjectDistanceTable* table = index_->mutable_object_table();
  const int last_category = partition.num_categories() - 1;

  // Refresh object-object distances first: row recompression consults them.
  // Pairs whose *category* moved poison the compression of rows that were
  // otherwise untouched (their flagged entries resolve through the table),
  // so track the affected objects and rewrite those rows too below.
  std::vector<bool> dirty_object(index_->num_objects(), false);
  bool any_dirty = false;
  for (const TreeChange& change : changes) {
    const ObjectId other = index_->object_at(change.node);
    if (other == kInvalidObject || other == change.object_index) continue;
    const Weight d = forest.dist(change.object_index, change.node);
    const int old_category =
        table->IsFar(change.object_index, other)
            ? last_category
            : partition.CategoryOf(table->Get(change.object_index, other));
    int new_category;
    if (d == kInfiniteWeight || partition.CategoryOf(d) == last_category) {
      if (!table->IsFar(change.object_index, other)) {
        table->MarkFar(change.object_index, other);
      }
      new_category = last_category;
    } else {
      table->Set(change.object_index, other, d);
      new_category = partition.CategoryOf(d);
    }
    if (new_category != old_category) {
      dirty_object[change.object_index] = true;
      dirty_object[other] = true;
      any_dirty = true;
    }
  }

  // Rewrite each affected node's row once (a node may appear under several
  // objects). Rebuilding the whole row keeps compression decisions
  // consistent — a changed component can alter its neighbours' reps.
  std::vector<NodeId> nodes;
  nodes.reserve(changes.size());
  for (const TreeChange& change : changes) nodes.push_back(change.node);
  if (any_dirty && index_->codec().has_flags()) {
    // Category changes in the object table invalidate the stored compression
    // of rows holding a flagged entry for a dirty object: their decoder-side
    // resolution would now disagree with the encoder's. Sweep the rows (an
    // in-memory scan; no page I/O) and schedule the affected ones.
    for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
      SignatureRow row;
      if (!index_->codec().TryDecodeRow(index_->encoded_row(n),
                                        index_->num_objects(), &row)) {
        // Undecodable (in-memory rot): rebuild it from the forest rather
        // than aborting the update.
        nodes.push_back(n);
        continue;
      }
      for (uint32_t o = 0; o < row.size(); ++o) {
        if (row[o].compressed && dirty_object[o]) {
          nodes.push_back(n);
          break;
        }
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  // Invalidate the caches for the *complete* affected set before publishing
  // any rewritten row. ReplaceRow also erases per node as it goes, but doing
  // it up front means no interleaving of this loop can leave a cached
  // resolution (computed against the pre-update object table) alive after
  // its row publishes.
  index_->InvalidateCachedRows(nodes);

  for (const NodeId n : nodes) {
    SignatureRow row =
        BuildRowFromForest(*graph_, forest, partition, n);
    if (index_->codec().has_flags()) index_->compressor().Compress(&row);
    stats.entries_changed += index_->ReplaceRow(n, row);
    ++stats.rows_rewritten;
  }
  return stats;
}

}  // namespace dsig
