#include "core/update.h"

#include <algorithm>

#include "core/signature_builder.h"

namespace dsig {

SignatureUpdater::SignatureUpdater(RoadNetwork* graph, SignatureIndex* index)
    : graph_(graph), index_(index) {
  DSIG_CHECK(graph_ != nullptr);
  DSIG_CHECK(index_ != nullptr);
  DSIG_CHECK_EQ(graph_, &index_->graph());
  DSIG_CHECK(index_->mutable_forest() != nullptr)
      << "build the index with keep_forest = true to enable updates";
}

UpdateStats SignatureUpdater::AddEdge(NodeId u, NodeId v, Weight weight,
                                      EdgeId* edge_out) {
  const EdgeId edge = graph_->AddEdge(u, v, weight);
  if (edge_out != nullptr) *edge_out = edge;
  return ApplyTreeChanges(index_->mutable_forest()->OnEdgeAddedOrDecreased(edge));
}

UpdateStats SignatureUpdater::RemoveEdge(EdgeId edge) {
  graph_->RemoveEdge(edge);
  return ApplyTreeChanges(
      index_->mutable_forest()->OnEdgeIncreasedOrRemoved(edge));
}

UpdateStats SignatureUpdater::SetEdgeWeight(EdgeId edge, Weight weight) {
  const Weight old_weight = graph_->edge_weight(edge);
  graph_->SetEdgeWeight(edge, weight);
  if (weight == old_weight) return {};
  if (weight < old_weight) {
    return ApplyTreeChanges(
        index_->mutable_forest()->OnEdgeAddedOrDecreased(edge));
  }
  return ApplyTreeChanges(
      index_->mutable_forest()->OnEdgeIncreasedOrRemoved(edge));
}

UpdateStats SignatureUpdater::ApplyTreeChanges(
    const std::vector<TreeChange>& changes) {
  UpdateStats stats;
  stats.tree_entries_changed = changes.size();
  if (changes.empty()) return stats;

  const SpanningForest& forest = *index_->forest();
  const CategoryPartition& partition = index_->partition();
  ObjectDistanceTable* table = index_->mutable_object_table();
  const int last_category = partition.num_categories() - 1;

  // Refresh object-object distances first: row recompression consults them.
  // Pairs whose *category* moved poison the compression of rows that were
  // otherwise untouched (their flagged entries resolve through the table),
  // so track the affected objects and rewrite those rows too below.
  std::vector<bool> dirty_object(index_->num_objects(), false);
  bool any_dirty = false;
  for (const TreeChange& change : changes) {
    const ObjectId other = index_->object_at(change.node);
    if (other == kInvalidObject || other == change.object_index) continue;
    const Weight d = forest.dist(change.object_index, change.node);
    const int old_category =
        table->IsFar(change.object_index, other)
            ? last_category
            : partition.CategoryOf(table->Get(change.object_index, other));
    int new_category;
    if (d == kInfiniteWeight || partition.CategoryOf(d) == last_category) {
      if (!table->IsFar(change.object_index, other)) {
        table->MarkFar(change.object_index, other);
      }
      new_category = last_category;
    } else {
      table->Set(change.object_index, other, d);
      new_category = partition.CategoryOf(d);
    }
    if (new_category != old_category) {
      dirty_object[change.object_index] = true;
      dirty_object[other] = true;
      any_dirty = true;
    }
  }

  // Rewrite each affected node's row once (a node may appear under several
  // objects). Rebuilding the whole row keeps compression decisions
  // consistent — a changed component can alter its neighbours' reps.
  std::vector<NodeId> nodes;
  nodes.reserve(changes.size());
  for (const TreeChange& change : changes) nodes.push_back(change.node);
  if (any_dirty && index_->codec().has_flags()) {
    // Category changes in the object table invalidate the stored compression
    // of rows holding a flagged entry for a dirty object: their decoder-side
    // resolution would now disagree with the encoder's. Sweep the rows (an
    // in-memory scan; no page I/O) and schedule the affected ones.
    for (NodeId n = 0; n < graph_->num_nodes(); ++n) {
      const SignatureRow row = index_->codec().DecodeRow(index_->encoded_row(n));
      for (uint32_t o = 0; o < row.size(); ++o) {
        if (row[o].compressed && dirty_object[o]) {
          nodes.push_back(n);
          break;
        }
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  for (const NodeId n : nodes) {
    SignatureRow row =
        BuildRowFromForest(*graph_, forest, partition, n);
    if (index_->codec().has_flags()) index_->compressor().Compress(&row);
    stats.entries_changed += index_->ReplaceRow(n, row);
    ++stats.rows_rewritten;
  }
  return stats;
}

}  // namespace dsig
