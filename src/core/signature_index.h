// The distance-signature index — the paper's primary contribution.
//
// One SignatureIndex bundles everything a query processor needs:
//   * the category partition (§5.1) and codec (§5.2-5.3),
//   * one encoded signature row per network node,
//   * the in-memory object-object distance table (§3.2.2),
//   * optionally the per-object spanning forest kept for updates (§5.4),
//   * optionally a paged store charging row accesses to a buffer pool.
//
// Build instances with BuildSignatureIndex (signature_builder.h); distance
// retrieval / comparison / sorting live in distance_ops.h; query processing
// in query/; maintenance in update.h.
#ifndef DSIG_CORE_SIGNATURE_INDEX_H_
#define DSIG_CORE_SIGNATURE_INDEX_H_

#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/category_partition.h"
#include "core/compression.h"
#include "core/epoch.h"
#include "core/hub_labels.h"
#include "core/object_distance_table.h"
#include "core/row_cache.h"
#include "core/row_stage.h"
#include "core/signature.h"
#include "core/versioned_rows.h"
#include "graph/road_network.h"
#include "graph/spanning_tree.h"
#include "storage/network_store.h"
#include "storage/pager.h"
#include "util/status.h"

namespace dsig {

// Byte/bit accounting for Fig 6.4(a) and Table 1.
struct SignatureSizeStats {
  uint64_t raw_bits = 0;         // fixed-length category ids + links
  uint64_t encoded_bits = 0;     // entropy-coded ids + links, no compression
  uint64_t compressed_bits = 0;  // as stored (flags + surviving components)
  uint64_t entries = 0;
  uint64_t compressed_entries = 0;

  double EncodedRatio() const {
    return raw_bits == 0 ? 0 : static_cast<double>(encoded_bits) / raw_bits;
  }
  double CompressedRatio() const {
    return encoded_bits == 0
               ? 0
               : static_cast<double>(compressed_bits) / encoded_bits;
  }
};

class SignatureIndex {
 public:
  // Assembled by BuildSignatureIndex; not movable (internal back-pointers).
  SignatureIndex(const RoadNetwork* graph, std::vector<NodeId> objects,
                 CategoryPartition partition, SignatureCodec codec,
                 std::vector<EncodedRow> rows, ObjectDistanceTable table,
                 SignatureSizeStats size_stats,
                 std::unique_ptr<SpanningForest> forest);

  SignatureIndex(const SignatureIndex&) = delete;
  SignatureIndex& operator=(const SignatureIndex&) = delete;

  const RoadNetwork& graph() const { return *graph_; }
  const CategoryPartition& partition() const { return partition_; }
  const SignatureCodec& codec() const { return codec_; }
  const ObjectDistanceTable& object_table() const { return table_; }
  const RowCompressor& compressor() const { return compressor_; }

  size_t num_objects() const { return objects_.size(); }
  const std::vector<NodeId>& objects() const { return objects_; }
  NodeId object_node(uint32_t object_index) const {
    return objects_[object_index];
  }
  // Object living on node `n`, or kInvalidObject.
  ObjectId object_at(NodeId n) const { return object_of_node_[n]; }

  // --- Concurrency ---------------------------------------------------------

  // Gate coordinating concurrent queries with the single live updater. Query
  // entry points hold a ReadSnapshot on it for their whole run (epoch.h);
  // SignatureUpdater holds an UpdateGuard while mutating. Every row read
  // below takes its own (re-entrant, cheap) snapshot, so plain callers stay
  // correct too — an outer snapshot just widens the atomicity to the whole
  // query.
  EpochGate* epoch_gate() const { return &gate_; }

  // Frees retired row versions no pinned reader can still reach, and
  // refreshes the update.epoch / update.epoch_lag / update.retired_bytes
  // gauges. Called by the updater at the start of each exclusive section;
  // safe to call from any quiesced context.
  void ReclaimRetiredRows();

  // Bytes held by retired-but-unreclaimed row versions.
  uint64_t retired_row_bytes() const { return rows_.retired_bytes(); }

  // --- Row access (all charge pages when storage is attached) -------------

  // Full signature of `n` with every compressed component resolved; charges
  // every page the row spans.
  SignatureRow ReadRow(NodeId n) const;

  // Full signature with compressed components left unresolved (cheaper when
  // the caller only cares about categories of resolved entries).
  SignatureRow ReadRowUnresolved(NodeId n) const;

  // SoA twin of ReadRow: the fused decode writes straight into `stage`'s
  // category/link/flag lanes (core/row_stage.h) and resolution runs in
  // place, so query loops can hand the lanes to the SIMD kernels without a
  // transpose. Charges the same pages and op counters as ReadRow and
  // degrades to the recomputed fallback row identically.
  void ReadRowStaged(NodeId n, RowStage* stage) const;

  // Single component, resolved; charges only the page holding it.
  SignatureEntry ReadEntry(NodeId n, uint32_t object_index) const;

  // --- Storage -------------------------------------------------------------

  // Separate storage schema (paper §3.1, Fig 3.1): signature rows live in
  // their own file, laid out in `order`; backtracking charges adjacency
  // pages to `network` (may be null) and signature pages here.
  void AttachStorage(BufferManager* buffer, const NetworkStore* network,
                     const std::vector<NodeId>& order);

  // Merged storage schema (paper §3.1's preferred option when signatures
  // are usually accessed together with the adjacency list): each node's
  // record holds its adjacency list followed by its signature, so a
  // backtracking step usually costs a single page.
  void AttachMergedStorage(BufferManager* buffer,
                           const std::vector<NodeId>& order);

  // Charges the page(s) for reading node `n`'s adjacency list under the
  // current schema. Used by the retrieval cursor.
  void TouchAdjacency(NodeId n) const;

  const NetworkStore* network_store() const { return network_store_; }
  bool merged_storage() const { return merged_; }

  // --- Decoded-row cache ---------------------------------------------------

  // Replaces the resolved-row cache (dropping its contents). byte_budget = 0
  // disables caching; see row_cache.h. Not thread-safe — configure before
  // serving queries.
  void ConfigureRowCache(const RowCache::Options& options);
  const RowCache& row_cache() const { return *resolved_cache_; }

  // Payload size of the index as stored (compressed form), in bytes.
  uint64_t IndexBytes() const;
  const SignatureSizeStats& size_stats() const { return size_stats_; }

  // --- Exact-distance hub-label tier (optional; see core/hub_labels.h) -----

  // The attached labels, or null. The pointer is stable for the index's
  // lifetime once set; the instance itself is immutable apart from its
  // sticky stale latch, so queries read it without extra locking.
  const HubLabels* hub_labels() const { return labels_.get(); }
  std::shared_ptr<HubLabels> shared_hub_labels() const { return labels_; }

  // Attaches (or replaces) the label tier. A fresh instance clears the
  // effect of any earlier InvalidateHubLabels. Quiesced callers only
  // (build/load time, or inside an UpdateGuard).
  void set_hub_labels(std::shared_ptr<HubLabels> labels) {
    labels_ = std::move(labels);
  }

  // Trips the sticky stale latch: the planner stops routing exact distances
  // through the labels until a rebuild installs a fresh instance. Called by
  // SignatureUpdater on every WAL-applied network change.
  void InvalidateHubLabels() {
    if (labels_ != nullptr) labels_->MarkStale();
  }

  // --- Integrity -----------------------------------------------------------

  // Deep verification of the index's structural invariants, for indexes from
  // untrusted sources (a loaded file, a long-running mutated instance):
  //   * every row decodes and every compressed entry resolves via the shared
  //     decoder rule;
  //   * categories lie inside the CategoryPartition, links name live
  //     adjacency slots;
  //   * every backtracking link chain terminates at its object without
  //     cycling (so within |V| steps), and the distance accumulated along
  //     the chain falls in the stored category;
  //   * when a hub-label tier is attached, its structural invariants and a
  //     sampled Dijkstra spot check (HubLabels::VerifyStructure).
  // Returns the first violation found. O(|V|·|objects|) time and memory;
  // charges no pages and no op counters. LoadSignatureIndex runs this when
  // asked (LoadOptions::verify), and `dsig_tool verify` exposes it on the
  // command line.
  Status Verify() const;

  // --- Maintenance / test hooks -------------------------------------------

  // Direct mutable access to the stored encoded row — the corruption-test
  // seam (fault-injection harnesses flip bits in rows_[n].bytes). Drops the
  // node's cached resolved/fallback state so the next read re-decodes.
  EncodedRow& mutable_encoded_row(NodeId n);

  // Drops cached resolved rows and fallback memos for every listed node in
  // one sweep. The updater calls this with the complete set of affected
  // nodes *before* publishing any rewritten row, so a hot cache can never
  // serve a resolution computed against the pre-update object table.
  void InvalidateCachedRows(const std::vector<NodeId>& nodes);

  // --- Maintenance hooks (used by SignatureUpdater) ------------------------

  // Forest retained for updates; null when built with keep_forest = false.
  SpanningForest* mutable_forest() { return forest_.get(); }

  // (Re)builds the spanning forest — e.g. after loading a serialized index,
  // which does not persist it. One Dijkstra per object.
  void RebuildForest();
  const SpanningForest* forest() const { return forest_.get(); }
  ObjectDistanceTable* mutable_object_table() { return &table_; }

  // Replaces node `n`'s row (already compressed by the caller), returning
  // how many resolved components differ from the previous row. Invalidates
  // the page layout until AttachStorage is called again. Inside an
  // UpdateGuard the new row is published copy-on-write at the guard's
  // publish epoch (invisible to concurrent readers until the guard commits);
  // outside one it publishes at the current epoch, immediately visible.
  size_t ReplaceRow(NodeId n, const SignatureRow& row);

  // Newest stored version of `n`'s row (quiesced callers: persistence,
  // stats, cross-node analysis, the updater itself).
  const EncodedRow& encoded_row(NodeId n) const { return rows_.ReadNewest(n); }

 private:
  // Decode-failure degradation: a row whose bits no longer decode (in-memory
  // corruption that slipped past load-time checks) is recomputed from the
  // graph by a Dijkstra bounded to the farthest object, memoized, and
  // counted in OpCounters::decode_fallbacks. Queries stay oracle-correct —
  // any shortest-path first hop is a valid backtracking link.
  const SignatureRow& FallbackRow(NodeId n) const;
  SignatureRow ComputeFallbackRow(NodeId n) const;

  const RoadNetwork* graph_;
  std::vector<NodeId> objects_;
  std::vector<ObjectId> object_of_node_;
  CategoryPartition partition_;
  SignatureCodec codec_;
  // Epoch-versioned copy-on-write rows plus the reader/updater gate; see
  // epoch.h for the snapshot-isolation protocol.
  VersionedRowStore rows_;
  mutable EpochGate gate_;
  ObjectDistanceTable table_;
  RowCompressor compressor_;
  SignatureSizeStats size_stats_;
  std::unique_ptr<SpanningForest> forest_;
  // Optional exact-distance hub-label tier (null when absent). Shared so a
  // saver/bench can hold the labels across an index swap.
  std::shared_ptr<HubLabels> labels_;

  PagedStore store_;
  const NetworkStore* network_store_ = nullptr;
  // CPU cache of resolved rows, used when a single-component read hits a
  // compressed entry (resolution needs the whole row). Sharded LRU with a
  // byte budget and incremental eviction; thread-safe, so RunBatch workers
  // share it. Never null.
  mutable std::unique_ptr<RowCache> resolved_cache_;
  // Rows recomputed after a decode failure (see FallbackRow). Bounded by the
  // number of corrupt rows; guarded by fallback_mu_ for concurrent readers
  // (values are node-stable: inserts never move them, only the exclusive
  // maintenance hooks erase).
  mutable std::mutex fallback_mu_;
  mutable std::unordered_map<NodeId, SignatureRow> fallback_rows_;
  // Merged schema: row bits start after the adjacency record inside each
  // node's combined record.
  bool merged_ = false;
  std::vector<uint64_t> adjacency_bits_;
};

}  // namespace dsig

#endif  // DSIG_CORE_SIGNATURE_INDEX_H_
