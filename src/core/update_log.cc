#include "core/update_log.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "util/crc32c.h"

namespace dsig {
namespace {

// Little-endian field packing, byte-for-byte compatible with io/binary_io.
void PutU32(uint8_t* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<uint8_t>(value >> (8 * i));
}

void PutU64(uint8_t* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(value >> (8 * i));
}

uint32_t GetU32(const uint8_t* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(in[i]) << (8 * i);
  return value;
}

uint64_t GetU64(const uint8_t* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(in[i]) << (8 * i);
  return value;
}

void EncodePayload(const UpdateRecord& record,
                   uint8_t out[UpdateLog::kPayloadBytes]) {
  out[0] = record.op;
  PutU32(out + 1, record.a);
  PutU32(out + 5, record.b);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(record.weight));
  __builtin_memcpy(&bits, &record.weight, sizeof(bits));
  PutU64(out + 9, bits);
}

UpdateRecord DecodePayload(const uint8_t* in) {
  UpdateRecord record;
  record.op = in[0];
  record.a = GetU32(in + 1);
  record.b = GetU32(in + 5);
  const uint64_t bits = GetU64(in + 9);
  __builtin_memcpy(&record.weight, &bits, sizeof(record.weight));
  return record;
}

Status FsyncFile(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError("fflush failed for " + path + " (disk full?)");
  }
  obs::ScopedTimer timer(
      obs::MetricsRegistry::Global().GetHistogram("wal.fsync_ms"));
  if (fsync(fileno(file)) != 0) {
    return Status::IoError("fsync failed for " + path);
  }
  return Status::Ok();
}

}  // namespace

Status UpdateRecord::Validate() const {
  switch (op) {
    case kAddEdge:
      if (a == b) return Status::Corruption("logged AddEdge is a self-loop");
      if (!(weight > 0) || !std::isfinite(weight)) {
        return Status::Corruption("logged AddEdge weight is not positive");
      }
      return Status::Ok();
    case kRemoveEdge:
      return Status::Ok();
    case kSetEdgeWeight:
      if (!(weight > 0) || !std::isfinite(weight)) {
        return Status::Corruption("logged weight is not positive");
      }
      return Status::Ok();
    default:
      return Status::Corruption("unknown update op " + std::to_string(op));
  }
}

Status UpdateRecord::ApplyTo(RoadNetwork* graph) const {
  DSIG_RETURN_IF_ERROR(Validate());
  switch (op) {
    case kAddEdge:
      if (a >= graph->num_nodes() || b >= graph->num_nodes()) {
        return Status::Corruption("logged AddEdge endpoint out of range");
      }
      graph->AddEdge(a, b, weight);
      return Status::Ok();
    case kRemoveEdge:
      if (a >= graph->num_edge_slots()) {
        return Status::Corruption("logged RemoveEdge id out of range");
      }
      if (graph->edge_removed(a)) {
        return Status::Corruption("logged RemoveEdge hits a removed edge");
      }
      graph->RemoveEdge(a);
      return Status::Ok();
    case kSetEdgeWeight:
      if (a >= graph->num_edge_slots()) {
        return Status::Corruption("logged SetEdgeWeight id out of range");
      }
      if (graph->edge_removed(a)) {
        return Status::Corruption("logged SetEdgeWeight hits a removed edge");
      }
      graph->SetEdgeWeight(a, weight);
      return Status::Ok();
    default:
      return Status::Corruption("unknown update op " + std::to_string(op));
  }
}

Status UpdateLog::Create(const std::string& path, uint64_t base_seq,
                         const WriteFaultPlan& faults) {
  // Temp + rename, like io/persistence's AtomicSave: a crash at any byte of
  // the new header leaves the previous log (if any) untouched.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::IoError("cannot create " + tmp);

  uint8_t header[kHeaderBytes];
  PutU32(header, kMagic);
  PutU32(header + 4, kVersion);
  PutU64(header + 8, base_seq);
  PutU32(header + 16, Crc32c(header, 16));

  Status status;
  const uint64_t keep =
      faults.fail_at == kNoFault
          ? kHeaderBytes
          : (faults.fail_at < kHeaderBytes ? faults.fail_at : kHeaderBytes);
  if (keep > 0 && std::fwrite(header, 1, keep, file) != keep) {
    status = Status::IoError("short write creating " + tmp);
  }
  if (status.ok() && keep < kHeaderBytes) {
    status = Status::IoError("injected write failure at byte " +
                             std::to_string(faults.fail_at));
  }
  if (status.ok()) status = FsyncFile(file, tmp);
  if (std::fclose(file) != 0 && status.ok()) {
    status = Status::IoError("fclose failed for " + tmp);
  }
  if (!status.ok()) {
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

StatusOr<WalReplay> UpdateLog::Replay(const std::string& path,
                                      const ReadFaultPlan& faults) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  if (size < 0 || std::fseek(file, 0, SEEK_SET) != 0) {
    std::fclose(file);
    return Status::IoError("cannot size " + path);
  }
  std::vector<uint8_t> data(static_cast<size_t>(size));
  if (!data.empty() && std::fread(data.data(), 1, data.size(), file) !=
                           data.size()) {
    std::fclose(file);
    return Status::IoError("read failed for " + path);
  }
  std::fclose(file);

  // Deterministic faults, applied as a corrupted medium would present them:
  // truncation shortens what the scan can see, flips mutate a byte beneath
  // the checksum layer, fail_at fires only if the scan actually reaches it.
  uint64_t effective = data.size();
  if (faults.truncate_at != kNoFault && faults.truncate_at < effective) {
    effective = faults.truncate_at;
  }
  if (faults.flip_byte != kNoFault && faults.flip_byte < effective) {
    data[faults.flip_byte] ^= faults.flip_mask;
  }
  const auto read_hits_fault = [&faults](uint64_t begin, uint64_t end) {
    return faults.fail_at != kNoFault && faults.fail_at >= begin &&
           faults.fail_at < end;
  };

  if (effective < kHeaderBytes) {
    return Status::Corruption("update log header truncated (" +
                              std::to_string(effective) + " bytes)");
  }
  if (read_hits_fault(0, kHeaderBytes)) {
    return Status::IoError("injected read failure at byte " +
                           std::to_string(faults.fail_at));
  }
  if (GetU32(data.data()) != kMagic) {
    return Status::Corruption("bad update log magic in " + path);
  }
  if (GetU32(data.data() + 4) != kVersion) {
    return Status::Corruption("unsupported update log version " +
                              std::to_string(GetU32(data.data() + 4)));
  }
  // The header checksum covers base_seq: a silently-wrong base would make
  // recovery splice the log onto the wrong checkpoint.
  if (Crc32c(data.data(), 16) != GetU32(data.data() + 16)) {
    return Status::Corruption("update log header failed its checksum");
  }

  WalReplay replay;
  replay.base_seq = GetU64(data.data() + 8);
  uint64_t pos = kHeaderBytes;
  while (pos < effective) {
    const uint64_t remaining = effective - pos;
    if (remaining < 8) break;  // torn tail: partial frame header
    if (read_hits_fault(pos, pos + 8)) {
      return Status::IoError("injected read failure at byte " +
                             std::to_string(faults.fail_at));
    }
    const uint32_t payload_len = GetU32(data.data() + pos);
    const uint32_t stored_crc = GetU32(data.data() + pos + 4);
    // A torn append leaves a strict prefix of a valid frame, so a complete
    // length field always holds the real length; anything else is bit rot.
    if (payload_len != kPayloadBytes) {
      return Status::Corruption("update log record at byte " +
                                std::to_string(pos) + " has length " +
                                std::to_string(payload_len));
    }
    if (remaining < 8 + static_cast<uint64_t>(payload_len)) {
      break;  // torn tail: partial payload
    }
    if (read_hits_fault(pos + 8, pos + 8 + payload_len)) {
      return Status::IoError("injected read failure at byte " +
                             std::to_string(faults.fail_at));
    }
    const uint8_t* payload = data.data() + pos + 8;
    if (Crc32c(payload, payload_len) != stored_crc) {
      // Bad checksum on the *last* frame is the torn-write signature (a
      // crashed writer's final sectors may persist partially); bad checksum
      // with committed bytes after it can only be corruption.
      if (pos + 8 + payload_len == effective) break;
      return Status::Corruption("update log record at byte " +
                                std::to_string(pos) +
                                " failed its checksum mid-log");
    }
    const UpdateRecord record = DecodePayload(payload);
    // The checksum proves these bytes are what the writer wrote, so a
    // semantically invalid record is a writer bug or checksummed garbage —
    // never a torn tail.
    DSIG_RETURN_IF_ERROR(record.Validate());
    replay.records.push_back(record);
    pos += kFrameBytes;
    replay.committed_bytes = pos;
  }
  replay.committed_bytes =
      replay.records.empty() ? kHeaderBytes : replay.committed_bytes;
  replay.torn_bytes = effective - replay.committed_bytes;
  return replay;
}

StatusOr<std::unique_ptr<UpdateLog>> UpdateLog::Open(
    const std::string& path, const WriteFaultPlan& faults) {
  StatusOr<WalReplay> replay = Replay(path);
  if (!replay.ok()) return replay.status();

  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) return Status::IoError("cannot open " + path);
  // Drop any crash-torn tail so new appends extend the committed prefix.
  if (replay->torn_bytes > 0 &&
      ftruncate(fileno(file), static_cast<off_t>(replay->committed_bytes)) !=
          0) {
    std::fclose(file);
    return Status::IoError("cannot truncate torn tail of " + path);
  }
  if (std::fseek(file, static_cast<long>(replay->committed_bytes),
                 SEEK_SET) != 0) {
    std::fclose(file);
    return Status::IoError("cannot seek " + path);
  }

  std::unique_ptr<UpdateLog> log(new UpdateLog());
  log->file_ = file;
  log->base_seq_ = replay->base_seq;
  log->record_count_ = replay->records.size();
  log->bytes_ = replay->committed_bytes;
  log->fault_plan_ = faults;
  return log;
}

UpdateLog::~UpdateLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void UpdateLog::WriteRaw(const void* data, size_t size) {
  if (!status_.ok()) return;
  // Crash semantics, not disk-full semantics: bytes strictly before fail_at
  // reach the file, nothing at or after it does. This is what lets the chaos
  // harness place the torn boundary at every byte of a frame.
  size_t keep = size;
  bool crash = false;
  if (fault_plan_.fail_at != kNoFault && bytes_ + size > fault_plan_.fail_at) {
    keep = fault_plan_.fail_at > bytes_
               ? static_cast<size_t>(fault_plan_.fail_at - bytes_)
               : 0;
    crash = true;
  }
  if (keep > 0 && std::fwrite(data, 1, keep, file_) != keep) {
    status_ = Status::IoError("short write at byte " + std::to_string(bytes_) +
                              " (disk full?)");
    return;
  }
  bytes_ += keep;
  if (crash) {
    std::fflush(file_);  // make the torn prefix visible, as a real crash would
    status_ = Status::IoError("injected write failure at byte " +
                              std::to_string(fault_plan_.fail_at));
  }
}

Status UpdateLog::Append(const UpdateRecord& record) {
  if (!status_.ok()) return status_;
  Status valid = record.Validate();
  if (!valid.ok()) return valid;  // caller bug; do not latch the log

  uint8_t frame[kFrameBytes];
  PutU32(frame, static_cast<uint32_t>(kPayloadBytes));
  EncodePayload(record, frame + 8);
  PutU32(frame + 4, Crc32c(frame + 8, kPayloadBytes));
  WriteRaw(frame, kFrameBytes);
  if (!status_.ok()) return status_;

  ++record_count_;
  static obs::Counter* records =
      obs::MetricsRegistry::Global().GetCounter("wal.records");
  static obs::Counter* bytes =
      obs::MetricsRegistry::Global().GetCounter("wal.bytes");
  records->Add(1);
  bytes->Add(kFrameBytes);
  return status_;
}

Status UpdateLog::Sync() {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) return status_;
  status_ = FsyncFile(file_, "update log");
  if (status_.ok()) {
    static obs::Counter* syncs =
        obs::MetricsRegistry::Global().GetCounter("wal.syncs");
    syncs->Add(1);
  }
  return status_;
}

Status UpdateLog::Close() {
  if (file_ == nullptr) return status_;
  Sync();
  if (std::fclose(file_) != 0 && status_.ok()) {
    status_ = Status::IoError("fclose failed for update log");
  }
  file_ = nullptr;
  return status_;
}

}  // namespace dsig
