// Epoch-based snapshot isolation for the live-update protocol (§5.4 made
// concurrency-safe).
//
// The moving parts:
//
//  - EpochGate: a shared_mutex plus a monotonically increasing epoch counter
//    and a fixed array of per-reader pin slots. Queries enter shared, the
//    single updater enters exclusive; the epoch only advances when an update
//    commits, so an epoch names one immutable generation of the index.
//
//  - ReadSnapshot (RAII): pins the current epoch for the duration of a query.
//    The outermost snapshot on a thread takes the shared lock and claims a
//    pin slot; nested snapshots (ReadRow inside a kNN loop inside a batch
//    driver) are free no-ops reusing the outer pin, and a snapshot taken by
//    the thread that holds the write guard is also a no-op that reads the
//    writer's own in-progress generation — so the update path can reuse the
//    ordinary read paths without self-deadlock.
//
//  - UpdateGuard (RAII): exclusive writer scope. Rewritten rows are published
//    into the VersionedRowStore at epoch current+1 while the guard is held;
//    the destructor advances the epoch with a release store, making every row
//    of the update visible to new readers atomically — a query observes all
//    of an update's rewrites or none of them.
//
// The shared lock gives per-query atomicity (queries also walk the adjacency
// lists and weights of the shared RoadNetwork, which are not versioned); the
// epoch pins are what make row publication and reclamation safe: a retired
// row version is freed only once every pinned epoch has advanced past it, so
// even a reader outside the gate could never chase a freed row.
#ifndef DSIG_CORE_EPOCH_H_
#define DSIG_CORE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace dsig {

class EpochGate {
 public:
  // Upper bound on simultaneously pinned outermost snapshots; slots are
  // claimed by thread-id hash with linear probing. 128 comfortably exceeds
  // any RunBatch worker count; if every slot is somehow taken the snapshot
  // still proceeds safely under the shared lock alone (see ReadSnapshot).
  static constexpr int kPinSlots = 128;

  EpochGate() = default;
  EpochGate(const EpochGate&) = delete;
  EpochGate& operator=(const EpochGate&) = delete;

  // The current published generation. Starts at 1; row versions stamped 0
  // (the built index) are visible to every reader.
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  // The oldest epoch any active reader still pins (current_epoch() when no
  // reader is active). Row versions retired at or before this are
  // unreachable and may be freed.
  uint64_t MinPinnedEpoch() const;

  // True when the calling thread is inside an UpdateGuard on this gate.
  bool ThisThreadHoldsWrite() const;

 private:
  friend class ReadSnapshot;
  friend class UpdateGuard;

  struct alignas(64) PinSlot {
    std::atomic<uint64_t> epoch{0};  // 0 = free
  };

  std::shared_mutex mu_;
  std::atomic<uint64_t> epoch_{1};
  PinSlot pins_[kPinSlots];
};

// RAII read scope; see the file comment. Cheap: the outermost snapshot costs
// one shared-lock acquire plus one CAS; nested ones cost a thread-local scan
// of the (tiny) set of gates this thread currently holds.
class ReadSnapshot {
 public:
  explicit ReadSnapshot(EpochGate* gate);
  ~ReadSnapshot();
  ReadSnapshot(const ReadSnapshot&) = delete;
  ReadSnapshot& operator=(const ReadSnapshot&) = delete;

  // The generation this snapshot reads. ~0 inside the write guard (the
  // writer always sees its own freshest rows).
  uint64_t epoch() const { return epoch_; }

 private:
  EpochGate* gate_;
  uint64_t epoch_ = 0;
  int slot_ = -1;            // claimed pin slot, -1 when none
  bool outermost_ = false;   // this snapshot owns the shared lock
};

// RAII exclusive writer scope; see the file comment. Must not be nested.
class UpdateGuard {
 public:
  explicit UpdateGuard(EpochGate* gate);
  ~UpdateGuard();
  UpdateGuard(const UpdateGuard&) = delete;
  UpdateGuard& operator=(const UpdateGuard&) = delete;

  // The epoch this update's row rewrites publish at; becomes the current
  // epoch when the guard is released.
  uint64_t publish_epoch() const { return publish_epoch_; }

 private:
  EpochGate* gate_;
  uint64_t publish_epoch_;
};

}  // namespace dsig

#endif  // DSIG_CORE_EPOCH_H_
